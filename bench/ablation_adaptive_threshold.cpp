// ablation_adaptive_threshold — ABL2: READ with and without Fig. 6's
// adaptive idleness threshold (lines 20-24). Without it the hard veto
// still caps transitions, but disks burn the whole budget early and then
// can never spin down again; with it the threshold doubles pre-emptively,
// spreading the budget across the day (fewer forced-high hours, better
// energy at equal reliability).
#include <iostream>

#include "bench_common.h"
#include "core/session.h"
#include "policy/read_policy.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  // Same low-traffic day as ABL1: the threshold adaptation only matters
  // when disks actually cycle (see ablation_transition_cap.cpp).
  auto wc = worldcup98_light_config(42);
  wc.mean_interarrival = Seconds{0.7};
  wc.request_count = 120'000;
  if (bench::quick_mode()) {
    wc.file_count = 1000;
    wc.request_count = 30'000;
  }
  const auto w = generate_workload(wc);

  SystemConfig cfg;
  cfg.sim.disk_count = 8;
  cfg.sim.epoch = Seconds{3600.0};

  bench::CsvSink csv("ablation_adaptive_threshold");
  csv.row(std::string("variant"), std::string("cap_s"),
          std::string("array_afr"), std::string("energy_j"),
          std::string("mean_rt_ms"), std::string("transitions"),
          std::string("max_trans_per_day"));

  AsciiTable table(
      "ABL2 — READ adaptive idleness threshold on/off (8 disks, light "
      "WC98-like day)");
  table.set_header({"variant", "S", "array AFR", "energy (kJ)",
                    "mean RT (ms)", "transitions", "max trans/day"});

  for (std::uint64_t cap : {10ull, 40ull}) {
    for (bool adaptive : {true, false}) {
      ReadConfig rc;
      rc.max_transitions_per_day = cap;
      rc.adaptive_threshold = adaptive;
      ReadPolicy policy(rc);
      const auto report = SimulationSession(cfg)
                              .with_workload(w.files, w.trace)
                              .with_policy(policy)
                              .run();
      const std::string variant =
          adaptive ? "adaptive H (Fig. 6)" : "fixed H (veto only)";
      table.add_row({variant, std::to_string(cap), pct(report.array_afr, 2),
                     num(report.sim.energy_joules() / 1e3, 1),
                     num(report.sim.mean_response_time_s() * 1e3, 2),
                     std::to_string(report.sim.total_transitions),
                     num(report.sim.max_transitions_per_day, 1)});
      csv.row(variant, cap, report.array_afr, report.sim.energy_joules(),
              report.sim.mean_response_time_s() * 1e3,
              report.sim.total_transitions,
              report.sim.max_transitions_per_day);
    }
  }
  table.print(std::cout);
  return 0;
}
