// fleet_throughput — google-benchmark for the sharded fleet simulator
// (sim/fleet_sim). The headline point is the ISSUE target: a 10,000-disk
// fleet serving a 100,000,000-request day, which must complete in
// single-digit seconds on one core. Workloads are materialized ONCE
// outside the timing loop (materialize_fleet_workload): at fleet scale
// synthetic generation costs more than simulation, and the replay path is
// byte-identical to the streamed one (test_fleet pins this), so the timed
// region is pure simulator.
//
// PR_BENCH_QUICK=1 (the CI quick-bench loop) drops the expensive points
// and keeps only an 80-disk / 100k-request smoke, so this binary stays
// sub-second there while local runs record the full family for
// scripts/bench_snapshot.sh.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.h"
#include "core/registry.h"
#include "sim/fleet_sim.h"
#include "workload/synthetic.h"

namespace {

using namespace pr;

FleetConfig fleet_config(std::uint32_t shards, std::uint32_t disks_per_shard,
                         std::uint64_t requests) {
  FleetConfig fleet;
  fleet.shard.disk_params = two_speed_cheetah();
  fleet.shard.disk_count = disks_per_shard;
  fleet.shard.epoch = Seconds{600.0};
  fleet.shards = shards;
  fleet.threads = 0;  // hardware concurrency; never changes result bytes
  fleet.workload = worldcup98_light_config(42);
  fleet.workload.file_count = 400;
  fleet.workload.request_count = requests;  // fleet total, split per shard
  fleet.base_seed = 42;
  fleet.policy = policies::make("read");
  return fleet;
}

void run_point(benchmark::State& state, std::uint32_t shards,
               std::uint32_t disks_per_shard, std::uint64_t requests) {
  const FleetConfig config = fleet_config(shards, disks_per_shard, requests);
  const FleetWorkload workload = materialize_fleet_workload(config);
  std::uint64_t served = 0;
  for (auto _ : state) {
    FleetResult result = run_fleet(config, workload);
    served = result.merged.user_requests;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(served));
  state.counters["fleet_disks"] =
      static_cast<double>(fleet_disk_count(shards, disks_per_shard));
}

void register_point(const char* name, std::uint32_t shards,
                    std::uint32_t disks_per_shard, std::uint64_t requests) {
  benchmark::RegisterBenchmark(name,
                               [=](benchmark::State& state) {
                                 run_point(state, shards, disks_per_shard,
                                           requests);
                               })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  // Always-on smoke point; the expensive family only outside quick mode.
  register_point("BM_FleetThroughput/80disks_100k", 10, 8, 100'000);
  if (!pr::bench::quick_mode()) {
    register_point("BM_FleetThroughput/1000disks_1M", 125, 8, 1'000'000);
    register_point("BM_FleetThroughput/10000disks_100M", 1'250, 8,
                   100'000'000);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
