// fig2_temperature — regenerates Figure 2b: the temperature-reliability
// function (AFR of a 3-year-old disk vs operating temperature), derived
// from Google's field data ([22] Fig. 5). Prints the curve over the
// [25, 50] °C domain plus the two operating points PRESS actually uses
// (40 °C low speed, 50 °C high speed).
#include <iostream>

#include "bench_common.h"
#include "press/temperature_fn.h"

int main() {
  using namespace pr;
  bench::CsvSink csv("fig2b_temperature_reliability");
  csv.row(std::string("temperature_c"), std::string("afr"));

  AsciiTable table(
      "Figure 2b — temperature-reliability function (3-year-old disks, "
      "digitized from [22] Fig. 5)");
  table.set_header({"temp (C)", "AFR", "note"});
  for (double t = 25.0; t <= 50.0 + 1e-9; t += 2.5) {
    const double afr = temperature_afr(Celsius{t});
    std::string note;
    if (t == 40.0) note = "<- low-speed operating point (3,600 RPM)";
    if (t == 50.0) note = "<- high-speed operating point (10,000 RPM)";
    table.add_row({num(t, 1), pct(afr, 2), note});
    csv.row(t, afr);
  }
  table.add_separator();
  table.add_row({"anchors", "", "piecewise-linear between the points below"});
  for (const auto& a : kTemperatureAnchors) {
    table.add_row({num(a.celsius, 0), pct(a.afr, 1), "digitized anchor"});
  }
  table.print(std::cout);

  std::cout << "\nShape check (paper §3.2): AFR(50C)/AFR(40C) = "
            << num(temperature_afr(Celsius{50.0}) /
                       temperature_afr(Celsius{40.0}),
                   2)
            << "  (high temperature is the second most significant ESRRA "
               "factor)\n";
  return 0;
}
