// robustness_seeds — are the Fig. 7 headline improvements a property of
// the policies or of one random trace? Re-runs the 8-disk light-day
// comparison across independent workload seeds and reports the mean ±
// stddev of READ's reliability/energy improvements over each baseline.
// Every individual run is bit-deterministic; the spread across seeds is
// pure workload sampling noise. The seed axis rides the scenario engine
// (scenarios/robustness_seeds.ini is the config-file equivalent).
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/experiment.h"
#include "exp/scenario_engine.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace pr;
  const std::vector<std::uint64_t> seeds = {42, 7, 1234, 2026, 99991};

  ScenarioSpec spec;
  spec.name = "robustness_seeds";
  spec.seeds = seeds;
  spec.disks = {8};
  spec.epochs = {3600.0};
  ScenarioWorkload light;
  light.name = "light";
  light.preset = "wc98-light";
  if (bench::quick_mode()) {
    light.files = 1000;
    light.requests = 80'000;
  }
  spec.workloads = {light};
  spec.policies = {{"read", "READ", {}},
                   {"maid", "MAID", {}},
                   {"pdc", "PDC", {}}};

  const auto result = run_scenario(spec);
  std::map<std::pair<std::string, std::uint64_t>, const ScenarioCell*> by_key;
  for (const auto& c : result.cells) {
    by_key[{c.policy, c.seed}] = &c;
  }

  bench::CsvSink csv("robustness_seeds");
  csv.row(std::string("seed"), std::string("read_afr"),
          std::string("maid_afr"), std::string("pdc_afr"),
          std::string("rel_improvement_vs_maid"),
          std::string("rel_improvement_vs_pdc"),
          std::string("energy_ratio_vs_maid"),
          std::string("energy_ratio_vs_pdc"));

  StreamingStats maid_rel;
  StreamingStats pdc_rel;
  StreamingStats maid_energy;
  StreamingStats pdc_energy;

  AsciiTable table(
      "Seed robustness — READ vs baselines at 8 disks, light WC98-like "
      "day, independent workload seeds");
  table.set_header({"seed", "READ AFR", "MAID AFR", "PDC AFR",
                    "rel. gain vs MAID", "rel. gain vs PDC"});

  for (const std::uint64_t seed : seeds) {
    const auto& r_read = by_key.at({"READ", seed})->report;
    const auto& r_maid = by_key.at({"MAID", seed})->report;
    const auto& r_pdc = by_key.at({"PDC", seed})->report;

    const double gain_maid =
        improvement(r_read.array_afr, r_maid.array_afr);
    const double gain_pdc = improvement(r_read.array_afr, r_pdc.array_afr);
    const double e_maid =
        r_read.sim.energy_joules() / r_maid.sim.energy_joules();
    const double e_pdc =
        r_read.sim.energy_joules() / r_pdc.sim.energy_joules();
    maid_rel.add(gain_maid);
    pdc_rel.add(gain_pdc);
    maid_energy.add(e_maid);
    pdc_energy.add(e_pdc);

    table.add_row({std::to_string(seed), pct(r_read.array_afr, 2),
                   pct(r_maid.array_afr, 2), pct(r_pdc.array_afr, 2),
                   pct(gain_maid, 1), pct(gain_pdc, 1)});
    csv.row(seed, r_read.array_afr, r_maid.array_afr, r_pdc.array_afr,
            gain_maid, gain_pdc, e_maid, e_pdc);
  }
  table.add_separator();
  table.add_row({"mean±sd", "", "", "",
                 pct(maid_rel.mean(), 1) + " ± " + pct(maid_rel.stddev(), 1),
                 pct(pdc_rel.mean(), 1) + " ± " + pct(pdc_rel.stddev(), 1)});
  table.print(std::cout);

  std::cout << "\nEnergy ratio READ/baseline across seeds: vs MAID "
            << num(maid_energy.mean(), 3) << " ± "
            << num(maid_energy.stddev(), 3) << ", vs PDC "
            << num(pdc_energy.mean(), 3) << " ± "
            << num(pdc_energy.stddev(), 3)
            << " — the orderings are seed-independent; only magnitudes "
               "wobble.\n";
  return 0;
}
