// fig3_utilization — regenerates Figure 3b: the utilization-reliability
// function (AFR of a 4-year-old disk vs utilization), derived from
// Google's field data ([22] Fig. 3) with §3.3's continuous [25%, 100%]
// re-parameterisation of the low/medium/high buckets.
#include <iostream>

#include "bench_common.h"
#include "press/utilization_fn.h"
#include "util/table.h"

namespace {
const char* band_name(pr::UtilizationBand b) {
  switch (b) {
    case pr::UtilizationBand::kLow: return "low";
    case pr::UtilizationBand::kMedium: return "medium";
    case pr::UtilizationBand::kHigh: return "high";
  }
  return "?";
}
}  // namespace

int main() {
  using namespace pr;
  bench::CsvSink csv("fig3b_utilization_reliability");
  csv.row(std::string("utilization"), std::string("afr"),
          std::string("band"));

  AsciiTable table(
      "Figure 3b — utilization-reliability function (4-year-old disks, "
      "digitized from [22] Fig. 3)");
  table.set_header({"utilization", "band", "AFR"});
  for (double u = 0.25; u <= 1.0 + 1e-9; u += 0.05) {
    const double afr = utilization_afr(u);
    const auto band = utilization_band(u);
    table.add_row({pct(u, 0), band_name(band), pct(afr, 2)});
    csv.row(u, afr, std::string(band_name(band)));
  }
  table.print(std::cout);

  std::cout << "\nShape check (paper §3.5): AFR(high)/AFR(medium) = "
            << num(utilization_afr(0.875) / utilization_afr(0.625), 2)
            << ", AFR(high)-AFR(medium) = "
            << pct(utilization_afr(0.875) - utilization_afr(0.625), 1)
            << " — \"differences in AFR between high and medium "
               "utilizations are slim\", so uneven utilization is the "
               "least significant ESRRA factor.\n";
  return 0;
}
