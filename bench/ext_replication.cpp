// ext_replication — EXT1 (paper §6 future work): hot-file replication on
// top of READ. Sweeps the replica count and reports response time
// (mean + tail), migration/copy traffic, energy and PRESS AFR — the
// trade the paper anticipates: replicas absorb load spikes and migration
// churn at the cost of extra copy I/O.
#include <iostream>

#include "bench_common.h"
#include "core/session.h"
#include "policy/read_policy.h"
#include "policy/replication.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  auto wc = worldcup98_light_config(42);
  // Concentrated variant: a hotter head stresses the hottest disk, which
  // is where replication pays (the paper's "dramatically changing access
  // patterns" scenario).
  wc.zipf_alpha = 1.0;
  if (bench::quick_mode()) {
    wc.file_count = 1000;
    wc.request_count = 80'000;
  }
  const auto w = generate_workload(wc);

  SystemConfig cfg;
  cfg.sim.disk_count = 8;
  cfg.sim.epoch = Seconds{3600.0};

  bench::CsvSink csv("ext_replication");
  csv.row(std::string("replicas"), std::string("mean_rt_ms"),
          std::string("p99_rt_ms"), std::string("array_afr"),
          std::string("energy_j"), std::string("copies"),
          std::string("offloaded_reads"));

  AsciiTable table(
      "EXT1 — hot-file replication over READ (8 disks, WC98-like day, "
      "Zipf alpha=1.0; replicas=1 is plain READ)");
  table.set_header({"replicas", "mean RT (ms)", "p99 RT (ms)", "array AFR",
                    "energy (kJ)", "copies", "offloaded reads"});

  for (std::size_t k : {1u, 2u, 3u}) {
    std::unique_ptr<Policy> policy;
    if (k == 1) {
      policy = std::make_unique<ReadPolicy>();
    } else {
      ReplicationConfig rc;
      rc.replicas = k;
      rc.top_files = 64;
      policy = std::make_unique<ReplicatedReadPolicy>(rc);
    }
    const auto report = SimulationSession(cfg)
                            .with_workload(w.files, w.trace)
                            .with_policy(*policy)
                            .run();
    const auto& counters = report.sim.counters;
    auto counter = [&](const char* name) -> std::uint64_t {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    };
    table.add_row({std::to_string(k),
                   num(report.sim.mean_response_time_s() * 1e3, 2),
                   num(report.sim.response_time_sample.quantile(0.99) * 1e3, 2),
                   pct(report.array_afr, 2),
                   num(report.sim.energy_joules() / 1e3, 1),
                   std::to_string(counter("replication.copy")),
                   std::to_string(counter("replication.offloaded_read"))});
    csv.row(k, report.sim.mean_response_time_s() * 1e3,
            report.sim.response_time_sample.quantile(0.99) * 1e3,
            report.array_afr, report.sim.energy_joules(),
            counter("replication.copy"),
            counter("replication.offloaded_read"));
  }
  table.print(std::cout);
  return 0;
}
