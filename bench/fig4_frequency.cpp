// fig4_frequency — regenerates Figure 4a (IDEMA spindle start/stop
// failure-rate adder), the §3.4 Coffin–Manson derivation chain (Eq. 1-2
// with the paper's printed intermediate constants), and Figure 4b (the
// frequency-reliability function: halved-IDEMA construction and the
// printed Eq. 3 fit).
#include <iostream>

#include "bench_common.h"
#include "press/coffin_manson.h"
#include "press/frequency_fn.h"
#include "util/table.h"

int main() {
  using namespace pr;

  // ------------------------------------------------------------- Fig. 4a
  {
    bench::CsvSink csv("fig4a_idema_start_stop_adder");
    csv.row(std::string("start_stops_per_month"), std::string("afr_adder"));
    AsciiTable table(
        "Figure 4a — IDEMA spindle start/stop failure-rate adder "
        "(quadratic fit; [0,350]/month given, extended per §3.4)");
    table.set_header({"start/stops per month", "AFR adder"});
    for (double x = 0.0; x <= 350.0 + 1e-9; x += 50.0) {
      table.add_row({num(x, 0), pct(idema_start_stop_adder(x), 2)});
      csv.row(x, idema_start_stop_adder(x));
    }
    table.add_separator();
    for (double x : {500.0, 1000.0, 1600.0}) {
      table.add_row({num(x, 0) + " (extended)",
                     pct(idema_start_stop_adder(x), 1)});
      csv.row(x, idema_start_stop_adder(x));
    }
    table.print(std::cout);
  }

  // ----------------------------------------------------- Eq. 1-2 chain
  {
    const auto d = derive_speed_transition_damage();
    AsciiTable table(
        "§3.4 modified Coffin-Manson derivation (Eq. 1-2) — paper's "
        "printed constants vs this implementation");
    table.set_header({"quantity", "paper", "computed", "ratio"});
    table.add_row({"G(Tmax=50C) / A", "3.2275e-20", num(d.g_tmax_start_stop / 1e-20, 4) + "e-20",
                   num(d.g_tmax_start_stop / 3.2275e-20, 4)});
    table.add_row({"A*A0", "2.564317e26", num(d.a_a0 / 1e26, 4) + "e26",
                   num(d.a_a0 / 2.564317e26, 4)});
    table.add_row({"N'f (transitions to failure)", "118529",
                   num(d.transitions_to_failure, 0),
                   num(d.transitions_to_failure / 118'529.0, 4)});
    table.add_row({"damage ratio N'f/Nf", "~2 (\"roughly twice\")",
                   num(d.damage_ratio, 3), ""});
    table.add_row({"5-yr daily transition limit", "65",
                   num(d.daily_limit_5yr, 1),
                   num(d.daily_limit_5yr / 65.0, 4)});
    table.print(std::cout);
    std::cout << "\n=> a speed transition causes ~50% of a start/stop's "
                 "damage; Fig. 4a is halved and relabelled to obtain "
                 "Fig. 4b.\n\n";
  }

  // ------------------------------------------------------------- Fig. 4b
  {
    bench::CsvSink csv("fig4b_frequency_reliability");
    csv.row(std::string("transitions_per_day"), std::string("afr_eq3"),
            std::string("afr_halved_idema"));
    AsciiTable table(
        "Figure 4b — frequency-reliability function: printed Eq. 3 "
        "(PRESS default) and the halved-IDEMA construction");
    table.set_header({"transitions/day", "Eq. 3", "halved IDEMA", "note"});
    for (double f : {0.0, 5.0, 10.0, 25.0, 40.0, 65.0, 100.0, 200.0, 400.0,
                     800.0, 1600.0}) {
      std::string note;
      if (f == 40.0) note = "<- READ's cap S (§5.2)";
      if (f == 65.0) note = "<- 5-yr warranty limit (§3.5)";
      table.add_row({num(f, 0), pct(eq3_frequency_afr(f), 2),
                     pct(halved_idema_frequency_afr(f), 2), note});
      csv.row(f, eq3_frequency_afr(f), halved_idema_frequency_afr(f));
    }
    table.print(std::cout);
    std::cout
        << "\nFidelity note: the printed Eq. 3 is not numerically "
           "consistent with the halved-IDEMA construction at small f (the "
           "paper's own inconsistency; see EXPERIMENTS.md). PRESS uses "
           "Eq. 3, under which frequency is the dominant ESRRA factor — "
           "exactly the paper's §3.5 insight 1.\n";
  }
  return 0;
}
