// ext_striping — EXT2 (paper §6 future work): RAID-0 striping. Two
// workloads make the paper's point:
//   * the WC98-like web day (files ≪ 512 KB stripe unit): striping is
//     "not crucial" — response times match the whole-file layout;
//   * a media workload (video clips / office documents, 1-64 MiB):
//     striping slashes large-transfer response time by parallelising the
//     transfer across the array.
#include <iostream>

#include "bench_common.h"
#include "core/session.h"
#include "policy/static_policy.h"
#include "policy/read_policy.h"
#include "policy/striped_read_policy.h"
#include "policy/striping.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace {

pr::SyntheticWorkloadConfig media_config(bool quick) {
  pr::SyntheticWorkloadConfig c;
  c.file_count = 400;
  c.request_count = quick ? 10'000 : 60'000;
  c.mean_interarrival = pr::Seconds{1.0};  // large transfers, modest rate
  c.zipf_alpha = 0.8;
  // Video-clip-sized bodies: median ≈ 4 MiB, capped at 64 MiB.
  c.size_log_mu = 15.2;
  c.size_log_sigma = 1.0;
  c.min_file_bytes = 256 * pr::kKiB;
  c.max_file_bytes = 64 * pr::kMiB;
  c.seed = 42;
  return c;
}

}  // namespace

int main() {
  using namespace pr;
  const bool quick = bench::quick_mode();

  auto web_cfg = worldcup98_light_config(42);
  if (quick) {
    web_cfg.file_count = 1000;
    web_cfg.request_count = 80'000;
  }
  const auto web = generate_workload(web_cfg);
  const auto media = generate_workload(media_config(quick));

  SystemConfig cfg;
  cfg.sim.disk_count = 8;

  bench::CsvSink csv("ext_striping");
  csv.row(std::string("workload"), std::string("layout"),
          std::string("mean_rt_ms"), std::string("p99_rt_ms"),
          std::string("energy_j"));

  AsciiTable table(
      "EXT2 — RAID-0 striping (512 KiB units, 8 disks, all-high-speed "
      "layouts)");
  table.set_header({"workload", "layout", "mean RT (ms)", "p99 RT (ms)",
                    "energy (kJ)"});

  struct Cell {
    const char* workload;
    const SyntheticWorkload* w;
  };
  for (const Cell& cell : {Cell{"web (WC98-like)", &web},
                           Cell{"media (1-64 MiB files)", &media}}) {
    for (int layout = 0; layout < 4; ++layout) {
      std::unique_ptr<Policy> policy;
      switch (layout) {
        case 0: policy = std::make_unique<StaticPolicy>(); break;
        case 1: policy = std::make_unique<StripedStaticPolicy>(); break;
        case 2: policy = std::make_unique<ReadPolicy>(); break;
        default: policy = std::make_unique<StripedReadPolicy>(); break;
      }
      const auto report =
          SimulationSession(cfg)
              .with_workload(cell.w->files, cell.w->trace)
              .with_policy(*policy)
              .run();
      const char* layout_name = report.sim.policy_name == "Static"
                                    ? "whole-file (Static)"
                                : report.sim.policy_name == "RAID0-Static"
                                    ? "RAID-0 striped (Static)"
                                : report.sim.policy_name == "READ"
                                    ? "whole-file (READ)"
                                    : "striped hot zone (READ+RAID0)";
      table.add_row({cell.workload, layout_name,
                     num(report.sim.mean_response_time_s() * 1e3, 2),
                     num(report.sim.response_time_sample.quantile(0.99) * 1e3,
                         2),
                     num(report.sim.energy_joules() / 1e3, 1)});
      csv.row(std::string(cell.workload), std::string(layout_name),
              report.sim.mean_response_time_s() * 1e3,
              report.sim.response_time_sample.quantile(0.99) * 1e3,
              report.sim.energy_joules());
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper §6: \"For the web server environment, files are "
               "usually very small, and thus stripping is not crucial. "
               "However, for large files such as video clips ... stripping "
               "is needed.\" READ+RAID0 is the paper's proposed "
               "combination: small files keep READ's zoned placement, "
               "large files stripe across the hot zone.\n";
  return 0;
}
