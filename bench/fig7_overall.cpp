// fig7_overall — regenerates Figure 7, the paper's main evaluation: READ
// vs MAID vs PDC on a WorldCup98-like day, arrays of 6-16 disks, light
// (paper rate) and heavy (4×) workload conditions. Prints the three
// panels — (a) reliability (PRESS array AFR), (b) energy, (c) mean
// response time — plus the headline improvement percentages §5.2/§6
// report. A Static (no energy saving) reference column is included.
//
// The grid itself is a declarative ScenarioSpec run through the scenario
// engine (src/exp/) — scenarios/fig7_overall.ini is the config-file
// equivalent of what this bench builds in code.
//
// PR_BENCH_QUICK=1 shrinks the trace ~20× for smoke runs.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/experiment.h"
#include "exp/scenario_engine.h"
#include "util/table.h"

namespace {

using namespace pr;

struct Key {
  std::string policy;
  std::string workload;
  std::size_t disks;
  auto operator<=>(const Key&) const = default;
};

}  // namespace

int main() {
  const bool quick = bench::quick_mode();

  ScenarioSpec spec;
  spec.name = "fig7_overall";
  spec.seeds = {42};
  spec.disks = {6, 8, 10, 12, 14, 16};
  spec.epochs = {3600.0};

  ScenarioWorkload light;
  light.name = "light";
  light.preset = "wc98-light";
  ScenarioWorkload heavy;
  heavy.name = "heavy";
  heavy.preset = "wc98-heavy";
  if (quick) {
    light.files = heavy.files = 1000;
    light.requests = heavy.requests = 80'000;
  }
  spec.workloads = {light, heavy};

  spec.policies = {{"read", "READ", {}},
                   {"maid", "MAID", {}},
                   {"pdc", "PDC", {}},
                   {"static", "Static", {}}};

  const auto base_cfg = preset_workload_config("wc98-light", 42);
  std::cout << "generating workloads ("
            << (quick ? 80'000 : base_cfg.request_count) << " requests, "
            << (quick ? 1000 : base_cfg.file_count) << " files"
            << (quick ? ", QUICK mode" : "") << ")...\n";
  std::cout << "running "
            << spec.policies.size() * spec.workloads.size() *
                   spec.disks.size()
            << " simulations...\n\n";
  const auto result = run_scenario(spec);
  const auto& cells = result.cells;

  std::map<Key, const ScenarioCell*> by_key;
  for (const auto& c : cells) {
    by_key[{c.policy, c.workload, c.disks}] = &c;
  }
  auto cell = [&](const std::string& p, const std::string& w,
                  std::size_t n) -> const ScenarioCell& {
    return *by_key.at({p, w, n});
  };

  bench::CsvSink csv("fig7_overall");
  csv.row(std::string("workload"), std::string("policy"),
          std::string("disks"), std::string("array_afr"),
          std::string("energy_j"), std::string("mean_rt_ms"),
          std::string("transitions"), std::string("max_trans_per_day"),
          std::string("migrations"));
  for (const auto& c : cells) {
    csv.row(c.workload, c.policy, c.disks, c.report.array_afr,
            c.report.sim.energy_joules(),
            c.report.sim.mean_response_time_s() * 1e3,
            c.report.sim.total_transitions,
            c.report.sim.max_transitions_per_day, c.report.sim.migrations);
  }

  const std::vector<std::string> panel_policies = {"READ", "MAID", "PDC",
                                                   "Static"};
  for (const auto& workload : {std::string("light"), std::string("heavy")}) {
    // (a) reliability
    {
      AsciiTable t("Figure 7a (" + workload +
                   ") — disk array reliability: PRESS AFR of the least "
                   "reliable disk (lower is better)");
      t.set_header({"disks", "READ", "MAID", "PDC", "Static (ref)"});
      for (std::size_t n : spec.disks) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto& p : panel_policies) {
          row.push_back(pct(cell(p, workload, n).report.array_afr, 2));
        }
        t.add_row(row);
      }
      t.print(std::cout);
      std::cout << "\n";
    }
    // (b) energy
    {
      AsciiTable t("Figure 7b (" + workload +
                   ") — energy consumption (kJ, lower is better)");
      t.set_header({"disks", "READ", "MAID", "PDC", "Static (ref)"});
      for (std::size_t n : spec.disks) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto& p : panel_policies) {
          row.push_back(
              num(cell(p, workload, n).report.sim.energy_joules() / 1e3, 1));
        }
        t.add_row(row);
      }
      t.print(std::cout);
      std::cout << "\n";
    }
    // (c) mean response time
    {
      AsciiTable t("Figure 7c (" + workload +
                   ") — mean response time (ms, lower is better)");
      t.set_header({"disks", "READ", "MAID", "PDC", "Static (ref)"});
      for (std::size_t n : spec.disks) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto& p : panel_policies) {
          row.push_back(num(
              cell(p, workload, n).report.sim.mean_response_time_s() * 1e3,
              2));
        }
        t.add_row(row);
      }
      t.print(std::cout);
      std::cout << "\n";
    }
  }

  // ------------------------------------------------ headline comparisons
  auto averages = [&](const std::string& workload, const std::string& base) {
    double afr_sum = 0.0;
    double afr_max = 0.0;
    double energy_sum = 0.0;
    double rt_better = 0.0;
    for (std::size_t n : spec.disks) {
      const auto& read = cell("READ", workload, n).report;
      const auto& other = cell(base, workload, n).report;
      const double afr_improvement =
          improvement(read.array_afr, other.array_afr);
      afr_sum += afr_improvement;
      afr_max = std::max(afr_max, afr_improvement);
      energy_sum += improvement(read.sim.energy_joules(),
                                other.sim.energy_joules());
      if (read.sim.mean_response_time_s() < other.sim.mean_response_time_s())
        rt_better += 1.0;
    }
    const double k = static_cast<double>(spec.disks.size());
    return std::tuple{afr_sum / k, afr_max, energy_sum / k, rt_better / k};
  };

  AsciiTable headline(
      "Headline comparison — READ vs baselines (paper §5.2/§6: reliability "
      "+24.9%/+50.8% avg, up to +39.7%/+57.5%; energy -4.8%/-12.6% avg "
      "under light load; RT better in all cases)");
  headline.set_header({"workload", "baseline", "reliability avg", "reliability max",
                       "energy avg", "RT better (frac of sizes)"});
  for (const auto& workload : {std::string("light"), std::string("heavy")}) {
    for (const auto& base : {std::string("MAID"), std::string("PDC")}) {
      const auto [afr_avg, afr_max, energy_avg, rt_frac] =
          averages(workload, base);
      headline.add_row({workload, base, pct(afr_avg, 1), pct(afr_max, 1),
                        pct(energy_avg, 1), num(rt_frac, 2)});
    }
  }
  headline.print(std::cout);

  std::cout << "\nREAD transition cap check: max transitions/day across all "
               "READ cells = ";
  double worst = 0.0;
  for (const auto& c : cells) {
    if (c.policy == "READ") {
      worst = std::max(worst, c.report.sim.max_transitions_per_day);
    }
  }
  std::cout << num(worst, 1) << " (budget S = 40)\n";
  return 0;
}
