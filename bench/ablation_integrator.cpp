// ablation_integrator — ABL3: the PRESS reliability integrator is the one
// under-specified piece of §3.5; this bench re-scores identical simulation
// runs under all three combination rules (Sum / Max / IndependentHazards)
// and shows the paper's cross-policy *ordering* (READ ≤ MAID ≤ PDC) is
// integrator-invariant — the paper's own validity argument ("all
// algorithms are evaluated using the same set of reliability functions").
#include <iostream>

#include "bench_common.h"
#include "core/system.h"
#include "policy/maid_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  auto wc = worldcup98_light_config(42);
  if (bench::quick_mode()) {
    wc.file_count = 1000;
    wc.request_count = 80'000;
  }
  const auto w = generate_workload(wc);

  SystemConfig cfg;
  cfg.sim.disk_count = 8;
  cfg.sim.epoch = Seconds{3600.0};

  // One simulation per policy; re-scored under each integrator.
  ReadPolicy read;
  MaidPolicy maid;
  PdcPolicy pdc;
  std::vector<std::pair<std::string, SimResult>> runs;
  runs.emplace_back("READ",
                    run_simulation(cfg.sim, w.files, w.trace, read));
  runs.emplace_back("MAID",
                    run_simulation(cfg.sim, w.files, w.trace, maid));
  runs.emplace_back("PDC", run_simulation(cfg.sim, w.files, w.trace, pdc));

  bench::CsvSink csv("ablation_integrator");
  csv.row(std::string("integrator"), std::string("policy"),
          std::string("array_afr"));

  AsciiTable table(
      "ABL3 — PRESS integrator strategy: array AFR per policy (8 disks, "
      "light WC98-like day)");
  table.set_header({"integrator", "READ", "MAID", "PDC",
                    "ordering preserved"});
  const std::vector<std::pair<std::string, IntegratorStrategy>> strategies =
      {{"Sum (default)", IntegratorStrategy::kSum},
       {"Max", IntegratorStrategy::kMax},
       {"IndependentHazards", IntegratorStrategy::kIndependentHazards}};
  for (const auto& [name, strategy] : strategies) {
    PressModel press({strategy, FrequencyCurve::kEq3});
    std::vector<double> afr;
    for (const auto& [policy, sim] : runs) {
      const auto report = score(press, sim);
      afr.push_back(report.array_afr);
      csv.row(name, policy, report.array_afr);
    }
    const bool ordered = afr[0] <= afr[1] && afr[0] <= afr[2];
    table.add_row({name, pct(afr[0], 2), pct(afr[1], 2), pct(afr[2], 2),
                   ordered ? "yes (READ best)" : "NO"});
  }
  table.print(std::cout);
  return 0;
}
