// cost_analysis — ABL4: §3.5's "is it worthwhile?" argument computed in
// dollars. For each policy (plus READ with an uncapped transition budget,
// the straw man the paper warns against), annualize the simulated day's
// energy bill and the PRESS-implied reliability bill (replacements +
// expected data-loss), and report the net against the Static baseline.
// Also quotes the array-level annual data-loss probability under RAID5,
// driven by each policy's worst-disk AFR.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/session.h"
#include "policy/maid_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "press/economics.h"
#include "press/montecarlo.h"
#include "press/mttdl.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  // The low-traffic day from ABL1 — the regime where DPM actually cycles
  // and the trade-off is live.
  auto wc = worldcup98_light_config(42);
  wc.mean_interarrival = Seconds{0.7};
  wc.request_count = 120'000;
  if (bench::quick_mode()) {
    wc.file_count = 1000;
    wc.request_count = 30'000;
  }
  const auto w = generate_workload(wc);

  SystemConfig cfg;
  cfg.sim.disk_count = 8;
  cfg.sim.epoch = Seconds{3600.0};

  struct Candidate {
    std::string label;
    std::unique_ptr<Policy> policy;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"Static (baseline)", std::make_unique<StaticPolicy>()});
  candidates.push_back({"READ (S=40)", std::make_unique<ReadPolicy>()});
  {
    ReadConfig rc;
    rc.max_transitions_per_day = 100'000;  // the paper's cautionary tale
    candidates.push_back(
        {"READ uncapped", std::make_unique<ReadPolicy>(rc)});
  }
  candidates.push_back({"MAID", std::make_unique<MaidPolicy>()});
  candidates.push_back({"PDC", std::make_unique<PdcPolicy>()});

  const CostModel money;  // documented defaults in press/economics.h
  bench::CsvSink csv("cost_analysis");
  csv.row(std::string("policy"), std::string("energy_usd_yr"),
          std::string("replacement_usd_yr"), std::string("data_loss_usd_yr"),
          std::string("total_usd_yr"), std::string("net_vs_static_usd_yr"),
          std::string("raid5_annual_loss_prob"),
          std::string("raid5_mc_loss_prob_5yr"));

  AsciiTable table(
      "ABL4 — annualized cost: is sacrificing reliability worthwhile? "
      "(8 disks, low-traffic day; $" +
      num(money.dollars_per_kwh, 2) + "/kWh, $" +
      num(money.disk_replacement_dollars, 0) + "/disk, $" +
      num(money.data_loss_dollars_per_failure, 0) + "/loss)");
  table.set_header({"policy", "energy $/yr", "repl. $/yr", "loss $/yr",
                    "total $/yr", "net vs Static", "RAID5 P(loss)/yr",
                    "MC P(loss)/5yr"});

  AnnualCost baseline;
  bool have_baseline = false;
  for (const auto& candidate : candidates) {
    const auto report =
        SimulationSession(cfg)
            .with_workload(w.files, w.trace)
            .with_policy(*candidate.policy)
            .run();
    std::vector<double> afrs;
    for (const auto& b : report.disk_press) afrs.push_back(b.combined_afr);
    const auto cost =
        annual_cost(report.sim.total_energy, report.sim.horizon, afrs, money);
    if (!have_baseline) {
      baseline = cost;
      have_baseline = true;
    }
    const auto delta = compare_costs(cost, baseline);

    MttdlInputs mttdl;
    mttdl.disk_afr = report.array_afr;  // bottleneck disk, conservative
    mttdl.disks = cfg.sim.disk_count;
    const double p_loss =
        annual_data_loss_probability(RaidLevel::kRaid5, mttdl);

    // Monte-Carlo cross-check over a 5-year deployment with the actual
    // per-disk AFR vector (the closed form assumes a uniform array).
    MonteCarloConfig mc;
    mc.horizon_years = 5.0;
    mc.trials = bench::quick_mode() ? 300 : 2'000;
    const auto mc_result =
        simulate_array_lifetime(RaidLevel::kRaid5, afrs, mc);

    const std::string net =
        candidate.label == "Static (baseline)"
            ? "--"
            : (delta.net_saved() >= 0.0 ? "+$" + num(delta.net_saved(), 0) +
                                              " (worthwhile)"
                                        : "-$" + num(-delta.net_saved(), 0) +
                                              " (NOT worthwhile)");
    table.add_row({candidate.label, num(cost.energy_dollars, 0),
                   num(cost.replacement_dollars, 0),
                   num(cost.data_loss_dollars, 0),
                   num(cost.total_dollars(), 0), net, pct(p_loss, 3),
                   pct(mc_result.loss_probability, 2)});
    csv.row(candidate.label, cost.energy_dollars, cost.replacement_dollars,
            cost.data_loss_dollars, cost.total_dollars(), delta.net_saved(),
            p_loss, mc_result.loss_probability);
  }
  table.print(std::cout);
  std::cout << "\n§3.5: \"the value of lost data plus the price of failed "
               "disks substantially outweigh the energy-saving gained\" — "
               "compare READ (S=40) with READ uncapped.\n";
  return 0;
}
