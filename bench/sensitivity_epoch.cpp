// sensitivity_epoch — READ's epoch length P (Fig. 6 input the paper never
// fixes): short epochs track popularity closely but churn migrations;
// long epochs are cheap but stale. Reported for READ and PDC (both are
// epoch-driven; MAID is not).
#include <iostream>

#include "bench_common.h"
#include "core/system.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  auto wc = worldcup98_light_config(42);
  if (bench::quick_mode()) {
    wc.file_count = 1000;
    wc.request_count = 80'000;
  }
  const auto w = generate_workload(wc);

  bench::CsvSink csv("sensitivity_epoch");
  csv.row(std::string("policy"), std::string("epoch_s"),
          std::string("array_afr"), std::string("energy_j"),
          std::string("mean_rt_ms"), std::string("migrations"),
          std::string("migration_mb"));

  AsciiTable table(
      "Epoch-length sensitivity (8 disks, light WC98-like day)");
  table.set_header({"policy", "epoch", "array AFR", "energy (kJ)",
                    "mean RT (ms)", "migrations", "migrated (MB)"});

  for (double epoch_s : {900.0, 1800.0, 3600.0, 7200.0, 14400.0}) {
    for (const bool is_read : {true, false}) {
      SystemConfig cfg;
      cfg.sim.disk_count = 8;
      cfg.sim.epoch = Seconds{epoch_s};
      std::unique_ptr<Policy> policy;
      if (is_read) {
        policy = std::make_unique<ReadPolicy>();
      } else {
        policy = std::make_unique<PdcPolicy>();
      }
      const auto report = evaluate(cfg, w.files, w.trace, *policy);
      table.add_row(
          {report.sim.policy_name, num(epoch_s / 60.0, 0) + " min",
           pct(report.array_afr, 2),
           num(report.sim.energy_joules() / 1e3, 1),
           num(report.sim.mean_response_time_s() * 1e3, 2),
           std::to_string(report.sim.migrations),
           num(static_cast<double>(report.sim.migration_bytes) / 1e6, 1)});
      csv.row(report.sim.policy_name, epoch_s, report.array_afr,
              report.sim.energy_joules(),
              report.sim.mean_response_time_s() * 1e3, report.sim.migrations,
              static_cast<double>(report.sim.migration_bytes) / 1e6);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\nThe paper's §6 worry — \"a high file redistribution cost "
               "may arise as the number of file migrations increases\" — "
               "is the left end of this sweep.\n";
  return 0;
}
