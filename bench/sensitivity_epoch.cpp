// sensitivity_epoch — READ's epoch length P (Fig. 6 input the paper never
// fixes): short epochs track popularity closely but churn migrations;
// long epochs are cheap but stale. Reported for READ and PDC (both are
// epoch-driven; MAID is not). The epoch axis rides the scenario engine
// (scenarios/sensitivity_epoch.ini is the config-file equivalent).
#include <iostream>
#include <map>

#include "bench_common.h"
#include "exp/scenario_engine.h"
#include "util/table.h"

int main() {
  using namespace pr;
  const std::vector<double> epochs = {900.0, 1800.0, 3600.0, 7200.0,
                                      14400.0};

  ScenarioSpec spec;
  spec.name = "sensitivity_epoch";
  spec.seeds = {42};
  spec.disks = {8};
  spec.epochs = epochs;
  ScenarioWorkload light;
  light.name = "light";
  light.preset = "wc98-light";
  if (bench::quick_mode()) {
    light.files = 1000;
    light.requests = 80'000;
  }
  spec.workloads = {light};
  spec.policies = {{"read", "READ", {}}, {"pdc", "PDC", {}}};

  const auto result = run_scenario(spec);
  std::map<std::pair<std::string, double>, const ScenarioCell*> by_key;
  for (const auto& c : result.cells) {
    by_key[{c.policy, c.epoch_s}] = &c;
  }

  bench::CsvSink csv("sensitivity_epoch");
  csv.row(std::string("policy"), std::string("epoch_s"),
          std::string("array_afr"), std::string("energy_j"),
          std::string("mean_rt_ms"), std::string("migrations"),
          std::string("migration_mb"));

  AsciiTable table(
      "Epoch-length sensitivity (8 disks, light WC98-like day)");
  table.set_header({"policy", "epoch", "array AFR", "energy (kJ)",
                    "mean RT (ms)", "migrations", "migrated (MB)"});

  for (const double epoch_s : epochs) {
    for (const char* label : {"READ", "PDC"}) {
      const auto& report = by_key.at({label, epoch_s})->report;
      table.add_row(
          {report.sim.policy_name, num(epoch_s / 60.0, 0) + " min",
           pct(report.array_afr, 2),
           num(report.sim.energy_joules() / 1e3, 1),
           num(report.sim.mean_response_time_s() * 1e3, 2),
           std::to_string(report.sim.migrations),
           num(static_cast<double>(report.sim.migration_bytes) / 1e6, 1)});
      csv.row(report.sim.policy_name, epoch_s, report.array_afr,
              report.sim.energy_joules(),
              report.sim.mean_response_time_s() * 1e3, report.sim.migrations,
              static_cast<double>(report.sim.migration_bytes) / 1e6);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\nThe paper's §6 worry — \"a high file redistribution cost "
               "may arise as the number of file migrations increases\" — "
               "is the left end of this sweep.\n";
  return 0;
}
