// fig5_press_surface — regenerates Figure 5: the PRESS model surfaces at
// the two operating temperatures (40 °C low speed, 50 °C high speed) over
// the utilization × transition-frequency plane. The paper renders two 3-D
// plots; we print the same surfaces as grids and emit CSVs for plotting.
#include <iostream>

#include "bench_common.h"
#include "press/press_model.h"
#include "util/table.h"

namespace {

void surface(double temp_c, const char* fig, pr::bench::CsvSink& csv) {
  using namespace pr;
  PressModel press;
  AsciiTable table(std::string("Figure ") + fig + " — PRESS model at " +
                   num(temp_c, 0) + " C (combined AFR; integrator = Sum)");
  std::vector<std::string> header{"util \\ f/day"};
  const std::vector<double> freqs{0, 10, 20, 40, 65, 100, 150, 200};
  for (double f : freqs) header.push_back(num(f, 0));
  table.set_header(header);
  for (double util = 0.25; util <= 1.0 + 1e-9; util += 0.125) {
    std::vector<std::string> row{pct(util, 0)};
    for (double f : freqs) {
      DiskTelemetry t;
      t.temperature = Celsius{temp_c};
      t.utilization = util;
      t.transitions_per_day = f;
      const double afr = press.disk_afr(t);
      row.push_back(pct(afr, 1));
      csv.row(temp_c, util, f, afr);
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  pr::bench::CsvSink csv("fig5_press_surfaces");
  csv.row(std::string("temperature_c"), std::string("utilization"),
          std::string("transitions_per_day"), std::string("afr"));
  surface(40.0, "5a", csv);
  surface(50.0, "5b", csv);
  std::cout << "Reading the surfaces (paper §3.5): frequency dominates "
               "(steepest axis), temperature second (the 5a->5b offset), "
               "utilization least (shallow axis).\n";
  return 0;
}
