// baseline_drpm — the paper's *other* energy-saving family (§2: power
// management — Multi-speed, DRPM, Hibernator) evaluated under PRESS,
// against READ and Static. PRESS's Fig. 1 explicitly lists DRPM among the
// schemes whose ESRRA factors it scores; this bench supplies that row of
// the story: load-driven speed modulation with no reliability safeguard
// cycles freely and pays for it in AFR.
#include <iostream>
#include <memory>
#include "bench_common.h"
#include "core/registry.h"
#include "core/session.h"
#include "policy/drpm_policy.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;

  bench::CsvSink csv("baseline_drpm");
  csv.row(std::string("traffic"), std::string("policy"),
          std::string("array_afr"), std::string("energy_j"),
          std::string("mean_rt_ms"), std::string("transitions"),
          std::string("max_trans_per_day"));

  AsciiTable table(
      "Power management (DRPM-style) vs READ vs Static under PRESS "
      "(8 disks, WC98-like day)");
  table.set_header({"traffic", "policy", "array AFR", "energy (kJ)",
                    "mean RT (ms)", "transitions", "max trans/day"});

  struct Scenario {
    const char* label;
    double interarrival_s;
    std::size_t requests;
  };
  for (const Scenario& scenario :
       {Scenario{"peak (58.4 ms)", 0.0584, 1'480'081},
        Scenario{"quiet (0.7 s)", 0.7, 120'000}}) {
    auto wc = worldcup98_light_config(42);
    wc.mean_interarrival = Seconds{scenario.interarrival_s};
    wc.request_count =
        bench::quick_mode() ? scenario.requests / 10 : scenario.requests;
    const auto w = generate_workload(wc);

    SystemConfig cfg;
    cfg.sim.disk_count = 8;
    cfg.sim.epoch = Seconds{3600.0};

    // Registry names cover the stock policies; the bench-tuned aggressive
    // DRPM variant (threshold 10 s, not the library default) is handed to
    // the session as a constructed instance.
    std::vector<std::unique_ptr<Policy>> policies;
    policies.push_back(pr::policies::make("read")());
    policies.push_back(pr::policies::make("drpm")());
    {
      DrpmConfig aggressive;
      aggressive.aggressive = true;
      aggressive.idleness_threshold = Seconds{10.0};
      policies.push_back(std::make_unique<DrpmPolicy>(aggressive));
    }
    policies.push_back(pr::policies::make("hibernator")());
    policies.push_back(pr::policies::make("static")());
    for (auto& policy : policies) {
      const auto report = SimulationSession(cfg)
                              .with_workload(w.files, w.trace)
                              .with_policy(*policy)
                              .run();
      table.add_row({scenario.label, report.sim.policy_name,
                     pct(report.array_afr, 2),
                     num(report.sim.energy_joules() / 1e3, 1),
                     num(report.sim.mean_response_time_s() * 1e3, 2),
                     std::to_string(report.sim.total_transitions),
                     num(report.sim.max_transitions_per_day, 1)});
      csv.row(std::string(scenario.label), report.sim.policy_name,
              report.array_afr, report.sim.energy_joules(),
              report.sim.mean_response_time_s() * 1e3,
              report.sim.total_transitions,
              report.sim.max_transitions_per_day);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout
      << "\nReading: at peak load no power-management scheme can help "
         "(idle windows are too small — the paper's §2 argument for why "
         "plain spin-down fails on server workloads). On quiet traffic, "
         "gentle modulation (serve-at-low, promote-on-backlog) is safe and "
         "cheap, but the aggressive performance-first tuning — spin up for "
         "every request — cycles without bound and pays in AFR: §3.5's "
         "\"it is not wise to aggressively switch disk speed to save some "
         "amount of energy\", quantified. READ's budget S keeps cycling "
         "bounded by construction at any tuning.\n";
  return 0;
}
