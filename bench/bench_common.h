// bench_common.h — shared plumbing for the figure/table harnesses: every
// bench prints the rows the paper's figure plots (ASCII table) and also
// drops a CSV under results/ so the data can be re-plotted externally.
//
// Environment knobs:
//   PR_BENCH_QUICK=1   scale the Fig. 7 workload down ~20× (CI-sized runs;
//                      shapes hold, absolute totals shrink)
//   PR_RESULTS_DIR=dir override the CSV output directory (default
//                      ./results relative to the current directory)
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "util/csv.h"
#include "util/table.h"

namespace pr::bench {

inline bool quick_mode() {
  const char* v = std::getenv("PR_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

inline std::filesystem::path results_dir() {
  const char* v = std::getenv("PR_RESULTS_DIR");
  std::filesystem::path dir = v ? v : "results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir;
}

/// RAII CSV sink under results/<name>.csv; silently becomes a no-op when
/// the directory is not writable (benches must still print).
class CsvSink {
 public:
  explicit CsvSink(const std::string& name)
      : out_(results_dir() / (name + ".csv")), writer_(out_) {
    if (!out_) {
      std::cerr << "note: cannot write " << name << ".csv; printing only\n";
    }
  }

  template <typename... Ts>
  void row(const Ts&... vals) {
    if (out_) writer_.row(vals...);
  }

 private:
  std::ofstream out_;
  CsvWriter writer_;
};

}  // namespace pr::bench
