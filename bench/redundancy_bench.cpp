// redundancy_bench — google-benchmark for the redundancy seam
// (src/redundancy + the array-simulator degraded path). Two questions:
//
//   BM_DegradedRead     what a run costs when one disk is down from t=0
//                       and every read that lands on it fans out into a
//                       parity reconstruction (RAID-5: group-wide,
//                       declustered: rotated partners), against the
//                       fault-free baseline of the same parity config
//   BM_RebuildOverhead  what the background rebuild engine adds to a
//                       mid-run failure — scheduler steps, wakeups, and
//                       the synthetic recovery — against the same kill
//                       with rebuild disabled (disk stays degraded)
//
// Workloads are materialized ONCE outside the timing loop so the timed
// region is pure simulator; fault plans are fixed event lists, so every
// iteration replays the identical faulted run (determinism makes these
// benches noise-free by construction).
//
// PR_BENCH_QUICK=1 (the CI quick-bench loop) scales the request count
// down ~5× so the binary stays sub-second there; local runs record the
// full points for scripts/bench_snapshot.sh.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_common.h"
#include "core/session.h"
#include "fault/fault_plan.h"
#include "redundancy/redundancy_config.h"
#include "workload/synthetic.h"

namespace {

using namespace pr;

SyntheticWorkload make_workload(std::uint64_t requests) {
  auto wc = worldcup98_light_config(42);
  wc.file_count = 200;
  wc.request_count = requests;
  return generate_workload(wc);
}

SystemConfig make_config(RedundancyKind kind, bool rebuild, double mbps) {
  SystemConfig cfg;
  cfg.sim.disk_count = 6;
  cfg.sim.epoch = Seconds{600.0};
  cfg.sim.redundancy.kind = kind;
  cfg.sim.redundancy.rebuild = rebuild;
  cfg.sim.redundancy.rebuild_mbps = mbps;
  return cfg;
}

void run_point(benchmark::State& state, const SyntheticWorkload& workload,
               RedundancyKind kind, const FaultPlan* plan, bool rebuild,
               double mbps) {
  const SystemConfig cfg = make_config(kind, rebuild, mbps);
  for (auto _ : state) {
    SimulationSession session(cfg);
    session.with_workload(workload).with_policy("read");
    if (plan != nullptr) session.with_faults(*plan);
    SystemReport report = session.run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(workload.trace.requests.size()));
}

void register_point(const char* name, const SyntheticWorkload& workload,
                    RedundancyKind kind, const FaultPlan* plan, bool rebuild,
                    double mbps) {
  benchmark::RegisterBenchmark(name,
                               [&workload, kind, plan, rebuild,
                                mbps](benchmark::State& state) {
                                 run_point(state, workload, kind, plan,
                                           rebuild, mbps);
                               })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t requests = pr::bench::quick_mode() ? 20'000 : 100'000;
  const SyntheticWorkload workload = make_workload(requests);

  // Disk 0 down before the first arrival and never repaired: every read
  // routed there is degraded for the whole run.
  const FaultPlan whole_run =
      FaultPlan::from_events({{Seconds{0.0}, 0, FaultKind::kFail}});
  // Mid-run kill for the rebuild points (the wc98-light horizon is
  // ~58.4 ms per request, so 300 s sits inside even the quick run).
  const FaultPlan mid_run =
      FaultPlan::from_events({{Seconds{300.0}, 0, FaultKind::kFail}});

  register_point("BM_DegradedRead/raid5_fault_free", workload,
                 RedundancyKind::kRaid5, nullptr, false, 32.0);
  register_point("BM_DegradedRead/raid5_one_down", workload,
                 RedundancyKind::kRaid5, &whole_run, false, 32.0);
  register_point("BM_DegradedRead/declustered_one_down", workload,
                 RedundancyKind::kDeclustered, &whole_run, false, 32.0);

  register_point("BM_RebuildOverhead/raid5_no_rebuild", workload,
                 RedundancyKind::kRaid5, &mid_run, false, 32.0);
  register_point("BM_RebuildOverhead/raid5_rebuild_8mbps", workload,
                 RedundancyKind::kRaid5, &mid_run, true, 8.0);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
