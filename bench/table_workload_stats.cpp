// table_workload_stats — regenerates §5.1's in-text workload
// characterisation and validates the synthetic substitution against it:
// the paper reports the WorldCup98-05-09 day as 4,079 files, 1,480,081
// requests, 58.4 ms mean inter-arrival. The generator must reproduce
// those numbers (the first two by construction, the third statistically)
// plus the structural properties the policies rely on (Zipf-like skew,
// size/popularity anti-correlation).
#include <iostream>

#include "bench_common.h"
#include "trace/trace_stats.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  auto cfg = worldcup98_light_config(42);
  if (bench::quick_mode()) cfg.request_count = 100'000;
  const auto w = generate_workload(cfg);
  const auto stats = compute_trace_stats(w.trace);

  // Size/popularity rank correlation (Fig. 6 step 5's assumption).
  std::vector<double> sizes;
  std::vector<double> counts;
  for (std::size_t f = 0; f < w.files.size(); ++f) {
    sizes.push_back(static_cast<double>(w.files[f].size));
    counts.push_back(static_cast<double>(stats.access_counts[f]));
  }
  const double rank_corr = spearman_correlation(sizes, counts);

  bench::CsvSink csv("table_workload_stats");
  csv.row(std::string("statistic"), std::string("paper"),
          std::string("measured"));

  AsciiTable table(
      "§5.1 workload characterisation — paper's WorldCup98-05-09 day vs "
      "the synthetic substitute (see DESIGN.md, Substitutions)");
  table.set_header({"statistic", "paper reports", "synthetic trace"});
  table.add_row({"distinct files", "4,079", std::to_string(stats.file_count)});
  table.add_row({"requests", "1,480,081",
                 std::to_string(stats.request_count)});
  table.add_row({"mean inter-arrival", "58.4 ms",
                 num(stats.mean_interarrival.value() * 1e3, 1) + " ms"});
  table.add_row({"duration", "~1 day (implied)",
                 num(stats.duration.value() / 3600.0, 1) + " h"});
  table.add_separator();
  table.add_row({"Zipf-like popularity, alpha in [0,1] (paper S4)",
                 "assumed", num(stats.zipf_alpha, 2) + " (fitted)"});
  table.add_row({"skew theta (Lee et al. [20])", "workload-dependent",
                 num(stats.theta, 3)});
  table.add_row({"top-20%-of-files access share", "highly skewed",
                 pct(stats.top_fraction_accesses, 1)});
  table.add_row({"size vs popularity rank correlation (paper S4)",
                 "inverse", num(rank_corr, 2)});
  table.add_row({"mean request size", "(not reported)",
                 num(stats.mean_request_bytes / 1024.0, 1) + " KiB"});
  table.print(std::cout);

  csv.row(std::string("files"), 4079.0,
          static_cast<double>(stats.file_count));
  csv.row(std::string("requests"), 1480081.0,
          static_cast<double>(stats.request_count));
  csv.row(std::string("mean_interarrival_ms"), 58.4,
          stats.mean_interarrival.value() * 1e3);
  csv.row(std::string("zipf_alpha"), 0.8, stats.zipf_alpha);
  csv.row(std::string("theta"), 0.0, stats.theta);
  csv.row(std::string("size_pop_rank_corr"), -1.0, rank_corr);

  std::cout << "\nThese statistics are what the policies actually consume "
               "(arrival rate, skew, sizes); matching them is the "
               "substitution argument for the unavailable real trace.\n";
  return 0;
}
