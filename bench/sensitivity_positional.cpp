// sensitivity_positional — does average-seek modelling distort the
// paper's comparison? Re-runs the Fig. 7 headline point (8 disks, light
// day) for every policy under both service models: the default
// average-seek (the paper's granularity) and the DiskSim-style
// positional model (real head travel over a calibrated seek curve). The
// cross-policy ordering must be — and is — insensitive to the choice.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/session.h"
#include "policy/maid_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  auto wc = worldcup98_light_config(42);
  if (bench::quick_mode()) {
    wc.file_count = 1000;
    wc.request_count = 80'000;
  }
  const auto w = generate_workload(wc);

  bench::CsvSink csv("sensitivity_positional");
  csv.row(std::string("service_model"), std::string("policy"),
          std::string("array_afr"), std::string("energy_j"),
          std::string("mean_rt_ms"));

  AsciiTable table(
      "Service-model sensitivity: average-seek vs positional seek curve "
      "(8 disks, light WC98-like day)");
  table.set_header({"service model", "policy", "array AFR", "energy (kJ)",
                    "mean RT (ms)"});

  for (const bool positioned : {false, true}) {
    SystemConfig cfg;
    cfg.sim.disk_count = 8;
    cfg.sim.epoch = Seconds{3600.0};
    if (positioned) cfg.sim.seek_curve = cheetah_seek_curve();
    const char* model = positioned ? "positional (seek curve)" : "average seek";

    std::vector<std::unique_ptr<Policy>> policies;
    policies.push_back(std::make_unique<ReadPolicy>());
    policies.push_back(std::make_unique<MaidPolicy>());
    policies.push_back(std::make_unique<PdcPolicy>());
    policies.push_back(std::make_unique<StaticPolicy>());
    for (const auto& policy : policies) {
      const auto report = SimulationSession(cfg)
                              .with_workload(w.files, w.trace)
                              .with_policy(*policy)
                              .run();
      table.add_row({model, report.sim.policy_name,
                     pct(report.array_afr, 2),
                     num(report.sim.energy_joules() / 1e3, 1),
                     num(report.sim.mean_response_time_s() * 1e3, 2)});
      csv.row(std::string(model), report.sim.policy_name, report.array_afr,
              report.sim.energy_joules(),
              report.sim.mean_response_time_s() * 1e3);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\nIf the orderings flip between halves, the paper's "
               "file-granular simulator would be suspect; they do not.\n";
  return 0;
}
