// sensitivity_hardware — second hardware point: the Hitachi Deskstar
// 7K400 (§2's [16], the real two-speed product the paper cites) against
// the default Cheetah-class preset. The Deskstar's shallower speed gap
// means cheaper transitions but a smaller idle-power saving; the paper's
// qualitative conclusions (READ best reliability, comparable energy)
// must not depend on which drive is simulated.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/session.h"
#include "policy/maid_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  auto wc = worldcup98_light_config(42);
  if (bench::quick_mode()) {
    wc.file_count = 1000;
    wc.request_count = 80'000;
  }
  const auto w = generate_workload(wc);

  bench::CsvSink csv("sensitivity_hardware");
  csv.row(std::string("drive"), std::string("policy"),
          std::string("array_afr"), std::string("energy_j"),
          std::string("mean_rt_ms"), std::string("transitions"));

  AsciiTable table(
      "Hardware sensitivity: Cheetah-class (10k/3.6k RPM) vs Deskstar "
      "7K400 (7.2k/4.5k RPM), 8 disks, light WC98-like day");
  table.set_header({"drive", "policy", "array AFR", "energy (kJ)",
                    "mean RT (ms)", "transitions"});

  struct Drive {
    const char* label;
    TwoSpeedDiskParams params;
  };
  for (const Drive& drive :
       {Drive{"Cheetah 2-speed", two_speed_cheetah()},
        Drive{"Deskstar 7K400", two_speed_deskstar()}}) {
    SystemConfig cfg;
    cfg.sim.disk_params = drive.params;
    cfg.sim.disk_count = 8;
    cfg.sim.epoch = Seconds{3600.0};

    std::vector<std::unique_ptr<Policy>> policies;
    policies.push_back(std::make_unique<ReadPolicy>());
    policies.push_back(std::make_unique<MaidPolicy>());
    policies.push_back(std::make_unique<PdcPolicy>());
    policies.push_back(std::make_unique<StaticPolicy>());
    for (const auto& policy : policies) {
      const auto report = SimulationSession(cfg)
                              .with_workload(w.files, w.trace)
                              .with_policy(*policy)
                              .run();
      table.add_row({drive.label, report.sim.policy_name,
                     pct(report.array_afr, 2),
                     num(report.sim.energy_joules() / 1e3, 1),
                     num(report.sim.mean_response_time_s() * 1e3, 2),
                     std::to_string(report.sim.total_transitions)});
      csv.row(std::string(drive.label), report.sim.policy_name,
              report.array_afr, report.sim.energy_joules(),
              report.sim.mean_response_time_s() * 1e3,
              report.sim.total_transitions);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "\nNote the Deskstar's narrower temperature bands (40-45 C) "
               "compress the temperature factor: the frequency factor — "
               "the one READ controls — matters even more there.\n";
  return 0;
}
