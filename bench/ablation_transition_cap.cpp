// ablation_transition_cap — ABL1: the title question quantified. Sweeps
// READ's daily speed-transition budget S and reports the energy ⇄
// reliability trade-off: small S sacrifices energy saving for reliability,
// huge S behaves like an unconstrained DPM scheme. The paper's §3.5
// argument is that beyond ~65 transitions/day the reliability cost
// outweighs the energy saved — this bench shows exactly that crossover.
#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "core/session.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  // Low-traffic day: at the WC98 peak rate the hot zone never idles long
  // enough to spin down, so the budget S never binds (READ simply runs
  // high, the paper's own heavy-load observation). The interesting regime
  // for the title question is a quiet day where DPM actually cycles.
  auto wc = worldcup98_light_config(42);
  wc.mean_interarrival = Seconds{0.7};
  wc.request_count = 120'000;  // ≈ one day at the reduced rate
  if (bench::quick_mode()) {
    wc.file_count = 1000;
    wc.request_count = 30'000;
  }
  const auto w = generate_workload(wc);

  SystemConfig cfg;
  cfg.sim.disk_count = 8;
  cfg.sim.epoch = Seconds{3600.0};

  // Static reference for the energy-saving fraction.
  StaticPolicy static_policy;
  const auto static_report =
      SimulationSession(cfg)
          .with_workload(w.files, w.trace)
          .with_policy(static_policy)
          .run();
  const double e_static = static_report.sim.energy_joules();

  bench::CsvSink csv("ablation_transition_cap");
  csv.row(std::string("cap_s"), std::string("array_afr"),
          std::string("energy_j"), std::string("energy_saving"),
          std::string("mean_rt_ms"), std::string("max_trans_per_day"));

  AsciiTable table(
      "ABL1 — READ transition budget S: reliability vs energy "
      "(8 disks, light WC98-like day; Static energy = " +
      num(e_static / 1e3, 1) + " kJ)");
  table.set_header({"S (per day)", "array AFR", "energy (kJ)",
                    "energy saving vs Static", "mean RT (ms)",
                    "max trans/day", "note"});

  for (std::uint64_t cap : {4ull, 10ull, 20ull, 40ull, 64ull, 130ull,
                            1000ull, 100000ull}) {
    ReadConfig rc;
    rc.max_transitions_per_day = cap;
    ReadPolicy policy(rc);
    const auto report = SimulationSession(cfg)
                            .with_workload(w.files, w.trace)
                            .with_policy(policy)
                            .run();
    std::string note;
    if (cap == 40) note = "<- paper's choice (§5.2)";
    if (cap == 64) note = "<- ~5-yr warranty limit 65 (§3.5)";
    if (cap == 100000) note = "<- effectively uncapped";
    const double saving =
        improvement(report.sim.energy_joules(), e_static);
    table.add_row({std::to_string(cap), pct(report.array_afr, 2),
                   num(report.sim.energy_joules() / 1e3, 1), pct(saving, 1),
                   num(report.sim.mean_response_time_s() * 1e3, 2),
                   num(report.sim.max_transitions_per_day, 1), note});
    csv.row(cap, report.array_afr, report.sim.energy_joules(), saving,
            report.sim.mean_response_time_s() * 1e3,
            report.sim.max_transitions_per_day);
  }
  table.print(std::cout);
  std::cout << "\nReading: energy saving saturates while AFR keeps climbing "
               "with S — saving energy by unbounded speed switching is not "
               "worthwhile (the paper's title question, answered).\n";
  return 0;
}
