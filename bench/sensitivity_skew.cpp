// sensitivity_skew — popularity skew (Zipf α) sensitivity. The paper's §4
// grounds READ in "highly skewed data popularity"; this sweep shows what
// happens as that assumption weakens: at α → 0 there is no popular set
// to zone around (θ → 1), READ's hot zone swallows the array, and the
// energy advantage over Static evaporates — while the reliability
// guarantee (the cap) still holds.
#include <iostream>

#include "bench_common.h"
#include "core/session.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "trace/trace_stats.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;

  bench::CsvSink csv("sensitivity_skew");
  csv.row(std::string("zipf_alpha"), std::string("theta"),
          std::string("read_afr"), std::string("read_energy_j"),
          std::string("static_energy_j"), std::string("energy_saving"),
          std::string("read_rt_ms"));

  AsciiTable table(
      "Popularity-skew sensitivity: READ vs Static (8 disks, one day)");
  table.set_header({"Zipf α", "measured θ", "READ AFR", "READ energy (kJ)",
                    "Static energy (kJ)", "saving", "READ RT (ms)"});

  for (double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto wc = worldcup98_light_config(42);
    wc.zipf_alpha = alpha;
    if (bench::quick_mode()) {
      wc.file_count = 1000;
      wc.request_count = 80'000;
    }
    const auto w = generate_workload(wc);
    const auto stats = compute_trace_stats(w.trace);

    SystemConfig cfg;
    cfg.sim.disk_count = 8;
    cfg.sim.epoch = Seconds{3600.0};

    ReadPolicy read;
    StaticPolicy none;
    const auto r_read = SimulationSession(cfg)
                            .with_workload(w.files, w.trace)
                            .with_policy(read)
                            .run();
    const auto r_static = SimulationSession(cfg)
                              .with_workload(w.files, w.trace)
                              .with_policy(none)
                              .run();
    const double saving = 1.0 - r_read.sim.energy_joules() /
                                    r_static.sim.energy_joules();
    table.add_row({num(alpha, 1), num(stats.theta, 3),
                   pct(r_read.array_afr, 2),
                   num(r_read.sim.energy_joules() / 1e3, 1),
                   num(r_static.sim.energy_joules() / 1e3, 1),
                   pct(saving, 1),
                   num(r_read.sim.mean_response_time_s() * 1e3, 2)});
    csv.row(alpha, stats.theta, r_read.array_afr,
            r_read.sim.energy_joules(), r_static.sim.energy_joules(), saving,
            r_read.sim.mean_response_time_s() * 1e3);
  }
  table.print(std::cout);
  return 0;
}
