// control_bench — google-benchmark for the feedback-control seam
// (src/control + the array-simulator telemetry fold/actuation). The
// question: what does the control loop COST on the hot path? Its
// per-request work is one admission check plus a telemetry accumulate,
// and the per-epoch work is one ControlLoop::update() plus knob
// actuation — so enabled-vs-disabled should be within noise, and this
// bench is the receipt:
//
//   BM_Control/disabled           today's path, control compiled in but
//                                 off (the byte-identity configuration)
//   BM_Control/latency_only       target-latency controller driving the
//                                 spin-down threshold H
//   BM_Control/full_stack         latency + energy-budget + adaptive
//                                 epoch + admission window, on the
//                                 online-READ policy so the per-epoch
//                                 Zipf re-estimate is in the loop too
//
// Workloads are materialized ONCE outside the timing loop; every
// iteration replays the identical run (byte-determinism makes the
// points noise-free by construction). PR_BENCH_QUICK=1 scales the
// request count down ~5× for the CI quick-bench loop.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string_view>

#include "bench_common.h"
#include "control/control_config.h"
#include "core/session.h"
#include "workload/synthetic.h"

namespace {

using namespace pr;

SyntheticWorkload make_workload(std::uint64_t requests) {
  auto wc = worldcup98_light_config(42);
  wc.file_count = 200;
  wc.request_count = requests;
  return generate_workload(wc);
}

ControlConfig latency_only() {
  ControlConfig c;
  c.enabled = true;
  c.target_rt_ms = 12.0;
  c.hysteresis = 0.5;
  c.persistence = 1;
  return c;
}

ControlConfig full_stack() {
  ControlConfig c = latency_only();
  c.energy_budget_w = 120.0;
  c.adapt_epoch = true;
  c.admit_window_s = 2.0;
  return c;
}

void run_point(benchmark::State& state, const SyntheticWorkload& workload,
               const ControlConfig& control, std::string_view policy) {
  SystemConfig cfg;
  cfg.sim.disk_count = 6;
  cfg.sim.epoch = Seconds{100.0};
  cfg.sim.control = control;
  for (auto _ : state) {
    SimulationSession session(cfg);
    session.with_workload(workload).with_policy(policy);
    SystemReport report = session.run();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(workload.trace.requests.size()));
}

void register_point(const char* name, const SyntheticWorkload& workload,
                    const ControlConfig& control, std::string_view policy) {
  benchmark::RegisterBenchmark(
      name,
      [&workload, control, policy](benchmark::State& state) {
        run_point(state, workload, control, policy);
      })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t requests = pr::bench::quick_mode() ? 20'000 : 100'000;
  const SyntheticWorkload workload = make_workload(requests);

  register_point("BM_Control/disabled", workload, ControlConfig{}, "read");
  register_point("BM_Control/latency_only", workload, latency_only(), "read");
  register_point("BM_Control/full_stack", workload, full_stack(),
                 "online-read");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
