// obs_overhead — measures what the observability layer costs the
// simulation loop. Three configurations over the same workload/policy:
//   detached   — no observer attached (the null-object fast path; every
//                emission site is a single pointer test). Target: within
//                5% of the pre-observability simulator loop.
//   counting   — a minimal observer that just counts callbacks (pure
//                dispatch cost: virtual calls + per-request ledger deltas).
//   timeseries — TimeSeriesRecorder with 60 s windows (realistic telemetry).
//   jsonl      — JsonlTraceWriter into a discarding stream (serialization
//                cost; dominated by number formatting).
//
// PR_BENCH_QUICK=1 shrinks the trace for smoke runs.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <ostream>
#include <streambuf>
#include <vector>

#include "bench_common.h"
#include "obs/jsonl_writer.h"
#include "obs/time_series.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "sim/array_sim.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace {

using namespace pr;

/// Discards everything written to it (measures formatting, not I/O).
class NullBuffer final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

class CountingObserver final : public SimObserver {
 public:
  void on_request_complete(const RequestCompleteEvent&) override { ++events; }
  void on_speed_transition(const SpeedTransitionEvent&) override { ++events; }
  void on_epoch_end(const EpochEndEvent&) override { ++events; }
  std::uint64_t events = 0;
};

/// One full run under READ (DPM enabled, so the idle-check machinery is
/// actually exercised), for counter inspection and timing. StaticPolicy
/// disables spin-downs entirely, which would leave the churn counters at
/// zero regardless of the scheduling backend.
SimResult run_read(const SimConfig& sim, const SyntheticWorkload& w) {
  ReadPolicy policy;
  return run_simulation(sim, w.files, w.trace, policy, nullptr);
}

/// Best-of-`reps` wall time of a READ run, in seconds.
double time_read_run(const SimConfig& sim, const SyntheticWorkload& w,
                     int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    ReadPolicy policy;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = run_simulation(sim, w.files, w.trace, policy, nullptr);
    const auto t1 = std::chrono::steady_clock::now();
    if (result.user_requests != w.trace.requests.size()) {
      std::cerr << "unexpected request count\n";
      std::exit(1);
    }
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Best-of-`reps` wall time of one simulation run, in seconds.
double time_run(const SimConfig& sim, const SyntheticWorkload& w,
                SimObserver* observer, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    StaticPolicy policy;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result =
        run_simulation(sim, w.files, w.trace, policy, observer);
    const auto t1 = std::chrono::steady_clock::now();
    if (result.user_requests != w.trace.requests.size()) {
      std::cerr << "unexpected request count\n";
      std::exit(1);
    }
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();

  SyntheticWorkloadConfig wc;
  wc.file_count = 1'000;
  wc.request_count = quick ? 50'000 : 500'000;
  const auto w = generate_workload(wc);

  SimConfig sim;
  sim.disk_params = two_speed_cheetah();
  sim.disk_count = 8;
  sim.epoch = Seconds{600.0};

  const int reps = quick ? 3 : 5;
  // Warm up allocators and caches before the measured runs.
  (void)time_run(sim, w, nullptr, 1);

  const double detached = time_run(sim, w, nullptr, reps);

  // Same detached loop on the EventQueue fallback scheduler — the delta is
  // what the per-disk timer heap buys on idle-check churn.
  SimConfig sim_queue = sim;
  sim_queue.idle_scheduler = IdleScheduler::kEventQueue;
  const double detached_queue = time_run(sim_queue, w, nullptr, reps);

  CountingObserver counting;
  const double with_counting = time_run(sim, w, &counting, reps);

  TimeSeriesRecorder recorder{Seconds{60.0}};
  const double with_timeseries = time_run(sim, w, &recorder, reps);

  NullBuffer sink_buffer;
  std::ostream sink(&sink_buffer);
  JsonlTraceWriter writer(sink);
  const double with_jsonl = time_run(sim, w, &writer, reps);

  const double per_req = 1e9 / static_cast<double>(w.trace.requests.size());
  AsciiTable table("Observer overhead, " +
                   std::to_string(w.trace.requests.size()) +
                   " requests, 8 disks, Static policy (best of " +
                   std::to_string(reps) + ")");
  table.set_header({"configuration", "time (ms)", "ns/request",
                    "vs detached"});
  const auto row = [&](const char* label, double t) {
    table.add_row({label, num(t * 1e3, 2), num(t * per_req, 1),
                   pct(t / detached - 1.0, 1)});
  };
  row("detached (no observer)", detached);
  row("detached (event-queue fallback)", detached_queue);
  row("counting observer", with_counting);
  row("timeseries (60 s windows)", with_timeseries);
  row("jsonl (discarded stream)", with_jsonl);
  table.print(std::cout);

  bench::CsvSink csv("obs_overhead");
  csv.row(std::string("configuration"), std::string("seconds"),
          std::string("vs_detached"));
  csv.row(std::string("detached"), detached, 0.0);
  csv.row(std::string("detached_event_queue"), detached_queue,
          detached_queue / detached - 1.0);
  csv.row(std::string("counting"), with_counting,
          with_counting / detached - 1.0);
  csv.row(std::string("timeseries"), with_timeseries,
          with_timeseries / detached - 1.0);
  csv.row(std::string("jsonl"), with_jsonl, with_jsonl / detached - 1.0);

  // Idle-scheduling comparison under READ, where DPM is live and every
  // serve (re-)arms a deadline. Timings plus the churn counters the
  // snapshot script records next to them.
  {
    const double read_timer = time_read_run(sim, w, reps);
    const double read_queue = time_read_run(sim_queue, w, reps);
    const SimResult timer_result = run_read(sim, w);
    const SimResult queue_result = run_read(sim_queue, w);

    AsciiTable sched("Idle scheduling under READ (DPM live), same workload");
    sched.set_header({"backend", "time (ms)", "ns/request", "idle checks",
                      "stale"});
    const auto srow = [&](const char* label, double t, const SimResult& r) {
      sched.add_row({label, num(t * 1e3, 2), num(t * per_req, 1),
                     std::to_string(r.counters.at("sim.idle_checks")),
                     std::to_string(r.counters.at("sim.idle_checks_stale"))});
    };
    std::cout << "\n";
    srow("timer heap (default)", read_timer, timer_result);
    srow("event queue (fallback)", read_queue, queue_result);
    sched.print(std::cout);

    bench::CsvSink churn("obs_overhead_counters");
    churn.row(std::string("counter"), std::string("timer_heap"),
              std::string("event_queue"));
    for (const char* key :
         {"sim.idle_checks", "sim.idle_checks_stale",
          "sim.idle_checks_deferred", "sim.spin_downs",
          "sim.spin_ups_to_serve", "sim.epochs"}) {
      const auto pick = [&](const SimResult& r) -> std::uint64_t {
        const auto it = r.counters.find(key);
        return it == r.counters.end() ? 0 : it->second;
      };
      churn.row(std::string(key), pick(timer_result), pick(queue_result));
    }
    churn.row(std::string("read_run_ns"),
              static_cast<std::uint64_t>(read_timer * 1e9),
              static_cast<std::uint64_t>(read_queue * 1e9));
  }

  std::cout << "\nThe detached configuration is the acceptance gate: every "
               "emission site collapses to one pointer test, so it must sit "
               "within 5% of the pre-observability loop. Attached observers "
               "pay dispatch + per-request ledger deltas; JSONL additionally "
               "pays number formatting.\n";
  std::cout << "counting observer saw " << counting.events << " events\n";
  return 0;
}
