// micro_benchmarks — google-benchmark microbenchmarks for the hot paths:
// event queue, Zipf sampling, disk service, PRESS evaluation, and
// end-to-end simulation throughput. These guard against performance
// regressions that would make the Fig. 7 grid impractical.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/system.h"
#include "obs/counter_registry.h"
#include "obs/time_series.h"
#include "policy/online_read_policy.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "press/press_model.h"
#include "sim/event_queue.h"
#include "sim/idle_timer.h"
#include "trace/csv_trace.h"
#include "trace/stream_reader.h"
#include "workload/synthetic.h"
#include "workload/zipf.h"

namespace {

using namespace pr;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    EventQueue<int> q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(Seconds{rng.uniform()}, static_cast<int>(i));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1'000)->Arg(100'000);

// The DPM scheduling pattern: every serve re-arms the disk's single idle
// deadline. The queue-based alternative pushes a fresh event per serve and
// later pops the stale ones; the heap replaces in place, so n re-arms keep
// the structure at |disks| entries instead of n.
void BM_IdleTimerRearm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kDisks = 8;
  Rng rng(1);
  for (auto _ : state) {
    IdleTimerHeap h;
    h.resize(kDisks);
    std::uint64_t seq = 0;
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += rng.uniform();
      h.arm(static_cast<std::uint32_t>(rng() % kDisks), Seconds{t + 10.0},
            seq++);
    }
    while (!h.empty()) benchmark::DoNotOptimize(h.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_IdleTimerRearm)->Arg(1'000)->Arg(100'000);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)), 0.8);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(4'079)->Arg(100'000);

void BM_DiskServe(benchmark::State& state) {
  Disk disk(0, two_speed_cheetah(), DiskSpeed::kHigh);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    benchmark::DoNotOptimize(disk.serve(Seconds{t}, 8 * kKiB));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskServe);

void BM_PressDiskAfr(benchmark::State& state) {
  PressModel press;
  DiskTelemetry t;
  t.temperature = Celsius{47.0};
  t.utilization = 0.62;
  t.transitions_per_day = 38.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(press.disk_afr(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PressDiskAfr);

void BM_TraceGeneration(benchmark::State& state) {
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 1'000;
  cfg.request_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_workload(cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TraceGeneration)->Arg(10'000)->Arg(100'000);

void BM_SimulationThroughput(benchmark::State& state) {
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 1'000;
  cfg.request_count = static_cast<std::size_t>(state.range(0));
  const auto w = generate_workload(cfg);
  SimConfig sim;
  sim.disk_params = two_speed_cheetah();
  sim.disk_count = 8;
  for (auto _ : state) {
    StaticPolicy policy;
    benchmark::DoNotOptimize(
        run_simulation(sim, w.files, w.trace, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimulationThroughput)->Arg(10'000)->Arg(100'000);

void BM_ReadPolicySimulation(benchmark::State& state) {
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 1'000;
  cfg.request_count = static_cast<std::size_t>(state.range(0));
  const auto w = generate_workload(cfg);
  SimConfig sim;
  sim.disk_params = two_speed_cheetah();
  sim.disk_count = 8;
  sim.epoch = Seconds{600.0};
  for (auto _ : state) {
    ReadPolicy policy;
    benchmark::DoNotOptimize(
        run_simulation(sim, w.files, w.trace, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ReadPolicySimulation)->Arg(10'000)->Arg(100'000);

// Same loop as BM_SimulationThroughput with a TimeSeriesRecorder attached;
// the gap to the detached run is the full observability cost (dispatch +
// ledger deltas + window bucketing). bench/obs_overhead prints the same
// comparison as a readable table.
void BM_SimulationWithTimeSeries(benchmark::State& state) {
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 1'000;
  cfg.request_count = static_cast<std::size_t>(state.range(0));
  const auto w = generate_workload(cfg);
  SimConfig sim;
  sim.disk_params = two_speed_cheetah();
  sim.disk_count = 8;
  for (auto _ : state) {
    StaticPolicy policy;
    TimeSeriesRecorder recorder{Seconds{60.0}};
    benchmark::DoNotOptimize(
        run_simulation(sim, w.files, w.trace, policy, &recorder));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimulationWithTimeSeries)->Arg(10'000)->Arg(100'000);

// Batch READ vs the incremental variant on the same trace: the delta is
// the per-serve counting plus mid-epoch promotions against the O(k)
// boundary rebalance both share.
void BM_OnlineReadSimulation(benchmark::State& state) {
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 1'000;
  cfg.request_count = static_cast<std::size_t>(state.range(0));
  const auto w = generate_workload(cfg);
  SimConfig sim;
  sim.disk_params = two_speed_cheetah();
  sim.disk_count = 8;
  sim.epoch = Seconds{600.0};
  for (auto _ : state) {
    OnlineReadPolicy policy;
    benchmark::DoNotOptimize(
        run_simulation(sim, w.files, w.trace, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_OnlineReadSimulation)->Arg(10'000)->Arg(100'000);

// Parse + frame throughput of the bounded-memory CSV reader, excluding
// simulation: the floor any streaming run pays per request over the
// materialized path.
void BM_StreamingIngest(benchmark::State& state) {
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 1'000;
  cfg.request_count = static_cast<std::size_t>(state.range(0));
  const auto w = generate_workload(cfg);
  std::ostringstream text;
  write_csv_trace(w.trace, text);
  const std::string bytes = text.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    CsvStreamSource source(in, "bench.csv");
    Request r;
    while (source.next(r)) benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StreamingIngest)->Arg(10'000)->Arg(100'000);

// End-to-end streamed simulation (CSV text -> reader -> simulator),
// comparable against BM_SimulationThroughput's materialized loop.
void BM_StreamingSimulation(benchmark::State& state) {
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 1'000;
  cfg.request_count = static_cast<std::size_t>(state.range(0));
  const auto w = generate_workload(cfg);
  std::ostringstream text;
  write_csv_trace(w.trace, text);
  const std::string bytes = text.str();
  SimConfig sim;
  sim.disk_params = two_speed_cheetah();
  sim.disk_count = 8;
  for (auto _ : state) {
    std::istringstream in(bytes);
    CsvStreamSource source(in, "bench.csv");
    StaticPolicy policy;
    benchmark::DoNotOptimize(
        run_simulation(sim, w.files, source, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StreamingSimulation)->Arg(10'000)->Arg(100'000);

void BM_CounterRegistryAdd(benchmark::State& state) {
  CounterRegistry registry;
  const auto handle = registry.intern("bench.counter");
  for (auto _ : state) {
    registry.add(handle);
    benchmark::DoNotOptimize(registry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterRegistryAdd);

void BM_CounterRegistryAddByName(benchmark::State& state) {
  CounterRegistry registry;
  registry.add("bench.counter");
  for (auto _ : state) {
    registry.add("bench.counter");
    benchmark::DoNotOptimize(registry);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterRegistryAddByName);

}  // namespace

BENCHMARK_MAIN();
