// multiday_cap — READ's guarantee is *per day* ("each disk's number of
// speed transitions ... cannot be larger than S", §5.2): a single-day run
// cannot distinguish a per-day budget from a one-shot one. This bench
// simulates three consecutive days of quiet traffic (the regime where DPM
// cycles) and reports, per policy, the worst calendar-day transition
// count across all disks — READ must hold ≤ S on *every* day while the
// uncapped schemes accumulate freely.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/session.h"
#include "policy/drpm_policy.h"
#include "policy/read_policy.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main() {
  using namespace pr;
  auto wc = worldcup98_light_config(42);
  wc.mean_interarrival = Seconds{0.7};
  wc.request_count = bench::quick_mode() ? 90'000 : 360'000;  // ≈ 3 days
  const auto w = generate_workload(wc);
  const double days = w.trace.duration().value() / kSecondsPerDay.value();

  SystemConfig cfg;
  cfg.sim.disk_count = 8;
  cfg.sim.epoch = Seconds{3600.0};

  bench::CsvSink csv("multiday_cap");
  csv.row(std::string("policy"), std::string("days"),
          std::string("total_transitions"),
          std::string("worst_day_transitions"), std::string("array_afr"),
          std::string("energy_j"));

  AsciiTable table("Multi-day transition budget (" + num(days, 1) +
                   " simulated days, quiet traffic, 8 disks; READ S = 40)");
  table.set_header({"policy", "total transitions", "worst disk-day",
                    "array AFR", "energy (kJ)"});

  struct Candidate {
    std::string label;
    std::unique_ptr<Policy> policy;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"READ (S=40)", std::make_unique<ReadPolicy>()});
  {
    ReadConfig rc;
    rc.max_transitions_per_day = 100'000;
    candidates.push_back({"READ uncapped", std::make_unique<ReadPolicy>(rc)});
  }
  {
    DrpmConfig dc;
    dc.aggressive = true;
    dc.idleness_threshold = Seconds{10.0};
    candidates.push_back(
        {"DRPM aggressive", std::make_unique<DrpmPolicy>(dc)});
  }

  for (auto& candidate : candidates) {
    const auto report = SimulationSession(cfg)
                            .with_workload(w.files, w.trace)
                            .with_policy(*candidate.policy)
                            .run();
    std::uint64_t worst_day = 0;
    for (const auto& l : report.sim.ledgers) {
      worst_day = std::max(worst_day, l.max_transitions_in_day);
    }
    table.add_row({candidate.label,
                   std::to_string(report.sim.total_transitions),
                   std::to_string(worst_day), pct(report.array_afr, 2),
                   num(report.sim.energy_joules() / 1e3, 1)});
    csv.row(candidate.label, days, report.sim.total_transitions, worst_day,
            report.array_afr, report.sim.energy_joules());
  }
  table.print(std::cout);
  std::cout << "\nEvery READ (S=40) disk-day stays within the budget: the "
               "per-day counter resets at each day boundary, so the "
               "guarantee renews rather than exhausting (the adaptive H "
               "only ever grows, which is conservative).\n";
  return 0;
}
