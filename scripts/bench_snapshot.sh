#!/usr/bin/env bash
# bench_snapshot.sh — capture a performance snapshot of the hot paths.
#
# Runs bench/obs_overhead (simulation-loop cost per configuration, plus
# idle-check churn counters for both scheduling backends),
# bench/micro_benchmarks (google-benchmark JSON),
# bench/fleet_throughput (the BM_FleetThroughput family up to the
# 10k-disk / 100M-request fleet day), and bench/redundancy_bench (the
# degraded-read / rebuild-overhead points), and merges them into
# BENCH_<date>.json at the repo root: benchmark -> ns/op plus the key
# sim.* counters, a "fleet" section, and a "redundancy" section. Commit
# the file to record a before/after pair across a performance PR (see
# docs/PERFORMANCE.md).
#
# Usage: scripts/bench_snapshot.sh [output.json]
#   BUILD_DIR=dir   build directory (default: build; configured Release if
#                   missing)
#   MIN_TIME=secs   google-benchmark --benchmark_min_time (default: 0.1)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
MIN_TIME="${MIN_TIME:-0.1}"
OUT="${1:-BENCH_$(date +%F).json}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target obs_overhead micro_benchmarks \
  fleet_throughput redundancy_bench -j

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# obs_overhead prints the table and drops CSVs where PR_RESULTS_DIR says.
PR_RESULTS_DIR="$TMP" "$BUILD_DIR/bench/obs_overhead" | tee "$TMP/obs_overhead.txt"

"$BUILD_DIR/bench/micro_benchmarks" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/micro.json"

# The fleet family materializes its workloads once per point and replays
# them, so the timed region is pure simulator; the 100M-request point runs
# a single iteration (~6 s simulated fleet day).
"$BUILD_DIR/bench/fleet_throughput" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/fleet.json"

# Degraded reads and the rebuild engine; the fault plans are fixed event
# lists, so every iteration replays the identical faulted run.
"$BUILD_DIR/bench/redundancy_bench" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json >"$TMP/redundancy.json"

python3 - "$TMP" "$OUT" <<'EOF'
import csv, json, os, subprocess, sys

tmp, out = sys.argv[1], sys.argv[2]

snapshot = {
    "commit": subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True).stdout.strip() or None,
    "benchmarks": {},
    "fleet": {},
    "redundancy": {},
    "obs_overhead": {},
    "sim_counters": {},
}

with open(os.path.join(tmp, "micro.json")) as f:
    micro = json.load(f)
snapshot["context"] = {
    k: micro.get("context", {}).get(k)
    for k in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
}
for b in micro.get("benchmarks", []):
    entry = {"real_time_ns": b["real_time"], "cpu_time_ns": b["cpu_time"]}
    if "items_per_second" in b:
        entry["ns_per_item"] = 1e9 / b["items_per_second"]
    snapshot["benchmarks"][b["name"]] = entry

with open(os.path.join(tmp, "fleet.json")) as f:
    fleet = json.load(f)
for b in fleet.get("benchmarks", []):
    entry = {"real_time_ms": b["real_time"]}
    if "items_per_second" in b:
        entry["requests_per_second"] = b["items_per_second"]
        entry["ns_per_request"] = 1e9 / b["items_per_second"]
    if "fleet_disks" in b:
        entry["fleet_disks"] = int(b["fleet_disks"])
    snapshot["fleet"][b["name"]] = entry

with open(os.path.join(tmp, "redundancy.json")) as f:
    redundancy = json.load(f)
for b in redundancy.get("benchmarks", []):
    entry = {"real_time_ms": b["real_time"]}
    if "items_per_second" in b:
        entry["requests_per_second"] = b["items_per_second"]
        entry["ns_per_request"] = 1e9 / b["items_per_second"]
    snapshot["redundancy"][b["name"]] = entry

with open(os.path.join(tmp, "obs_overhead.csv")) as f:
    for row in csv.DictReader(f):
        snapshot["obs_overhead"][row["configuration"]] = {
            "seconds": float(row["seconds"]),
            "vs_detached": float(row["vs_detached"]),
        }

with open(os.path.join(tmp, "obs_overhead_counters.csv")) as f:
    for row in csv.DictReader(f):
        snapshot["sim_counters"][row["counter"]] = {
            "timer_heap": int(row["timer_heap"]),
            "event_queue": int(row["event_queue"]),
        }

with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
EOF
