#!/usr/bin/env bash
# Build, test, and regenerate every figure/table — the full reproduction
# pipeline. Outputs land in results/ (CSV) and on stdout (ASCII tables).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  [ -x "$b" ] && [ ! -d "$b" ] || continue
  echo
  echo "================================================================"
  echo "== $(basename "$b")"
  echo "================================================================"
  "$b"
done
