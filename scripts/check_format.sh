#!/usr/bin/env sh
# check_format.sh — advisory clang-format check (never mutates files).
#
# Lists every tracked C++ source whose formatting differs from
# .clang-format and exits 1 if any do. Intentionally NOT wired into CI:
# the tree predates the config, so enforcement would force a noisy
# whole-tree reformat commit. Run it on the files you touch.
#
# Usage: scripts/check_format.sh [path...]   (defaults to src tests tools)
set -u

FORMAT_BIN="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMAT_BIN" >/dev/null 2>&1; then
  echo "check_format.sh: $FORMAT_BIN not found; skipping (install clang-format or set CLANG_FORMAT)" >&2
  exit 0
fi

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT" || exit 2

PATHS="${*:-src tests tools}"
STATUS=0
COUNT=0
# shellcheck disable=SC2086
for f in $(find $PATHS -type f \( -name '*.h' -o -name '*.hpp' -o -name '*.cc' -o -name '*.cpp' -o -name '*.cxx' \) | sort); do
  COUNT=$((COUNT + 1))
  if ! "$FORMAT_BIN" --style=file --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs-format: $f"
    STATUS=1
  fi
done

if [ "$STATUS" -eq 0 ]; then
  echo "check_format.sh: $COUNT files clean"
else
  echo "check_format.sh: run '$FORMAT_BIN -i <file>' on the files above" >&2
fi
exit "$STATUS"
