#!/usr/bin/env sh
# static_checks.sh — the one static-analysis entry point (used by the CI
# `detlint` job; run it locally before pushing).
#
# Three passes over the tree, all through the prlint binary:
#
#   1. src/ — every rule, whole-program passes included (layer DAG from
#      tools/detlint/layers.ini, schema docs cross-check), with a
#      suppression budget of ZERO: src/ must be clean, not quieted.
#      Also extracts the include graph as Graphviz DOT (CI uploads it
#      as a build artifact).
#   2. tools/ + bench/ — the entropy and locale-float rules only.
#      Suppressions are allowed there (a bench may time itself), but
#      they are counted and reported, never silent.
#   3. scripts/check_format.sh — advisory formatting check; never fails
#      the run (the tree predates the config).
#
# Usage: scripts/static_checks.sh [build-dir] [dot-output]
#   build-dir   where the prlint binary lives (default: build)
#   dot-output  include-graph DOT path (default: <build-dir>/include_graph.dot)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT" || exit 2

BUILD_DIR="${1:-build}"
DOT_OUT="${2:-$BUILD_DIR/include_graph.dot}"
PRLINT="$BUILD_DIR/tools/detlint/prlint"

if [ ! -x "$PRLINT" ]; then
  echo "static_checks.sh: $PRLINT not built (cmake --build $BUILD_DIR --target prlint)" >&2
  exit 2
fi

STATUS=0

echo "== prlint: src/ (all rules, zero suppressions) =="
"$PRLINT" --fix-hints \
  --layers tools/detlint/layers.ini \
  --csv-doc EXPERIMENTS.md \
  --jsonl-doc docs/OBSERVABILITY.md \
  --emit-graph "$DOT_OUT" \
  --max-suppressions 0 \
  src || STATUS=1
echo "static_checks.sh: include graph written to $DOT_OUT"

echo "== prlint: tools/ + bench/ (entropy + locale-float, suppressions counted) =="
"$PRLINT" --fix-hints \
  --select banned-entropy,locale-float \
  --count-suppressions \
  tools bench || STATUS=1

echo "== check_format.sh (advisory) =="
scripts/check_format.sh || true

exit "$STATUS"
