// detlint CLI — determinism lint over the PRESS/READ sources.
//
// Usage: detlint [--fix-hints] [--list-rules] <path>...
//
// Paths may be files or directories (directories are scanned recursively
// for .h/.hpp/.cc/.cpp/.cxx). Exit status: 0 clean, 1 findings, 2 usage
// or I/O error. Output is `path:line: [rule] message`, sorted, so CI logs
// are stable across runs.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "detlint.h"

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: detlint [--fix-hints] [--list-rules] <path>...\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool fix_hints = false;
  bool list_rules = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const detlint::RuleInfo& rule : detlint::rules()) {
      std::printf("%-20s %s\n", std::string(rule.id).c_str(),
                  std::string(rule.summary).c_str());
    }
    if (paths.empty()) return 0;
  }

  if (paths.empty()) {
    print_usage();
    return 2;
  }

  int total = 0;
  int files = 0;
  try {
    for (const std::string& path : detlint::collect_sources(paths)) {
      ++files;
      for (const detlint::Finding& f : detlint::lint_file(path)) {
        ++total;
        std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
        if (fix_hints && !f.hint.empty()) {
          std::printf("    hint: %s\n", f.hint.c_str());
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::fprintf(stderr, "detlint: %d finding%s in %d file%s\n", total,
               total == 1 ? "" : "s", files, files == 1 ? "" : "s");
  return total == 0 ? 0 : 1;
}
