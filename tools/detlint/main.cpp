// prlint CLI — whole-program architecture & determinism lint over the
// PRESS/READ sources (grown from the per-file detlint of PR 4).
//
// Usage:
//   prlint [--fix-hints] [--list-rules] [--select <r1,r2,...>]
//          [--layers <layers.ini>] [--csv-doc <file>] [--jsonl-doc <file>]
//          [--emit-graph <out.dot>] [--count-suppressions]
//          [--max-suppressions <n>] <path>...
//
// Paths may be files or directories (directories are scanned recursively
// for .h/.hpp/.cc/.cpp/.cxx). Per-file rules always run (narrowed by
// --select); the whole-program passes need their inputs: --layers enables
// layer-dag, --csv-doc/--jsonl-doc enable the schema-drift sides.
// --emit-graph writes the extracted include graph as Graphviz DOT (CI
// uploads it as a build artifact). --count-suppressions reports
// suppressed findings in the summary; --max-suppressions N (implies
// counting) fails the run when more than N findings are suppressed — the
// src/ scan runs with a budget of 0.
//
// Exit status: 0 clean, 1 findings (or suppression budget exceeded),
// 2 usage or I/O error. Output is `path:line: [rule] message`, sorted, so
// CI logs are stable across runs.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.h"
#include "prlint.h"

namespace {

void print_usage() {
  std::fprintf(
      stderr,
      "usage: prlint [--fix-hints] [--list-rules] [--select r1,r2]\n"
      "              [--layers layers.ini] [--csv-doc file] "
      "[--jsonl-doc file]\n"
      "              [--emit-graph out.dot] [--count-suppressions]\n"
      "              [--max-suppressions n] <path>...\n");
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool known_rule(const std::string& id) {
  for (const auto& rule : detlint::rules()) {
    if (rule.id == id) return true;
  }
  for (const auto& rule : prlint::rules()) {
    if (rule.id == id) return true;
  }
  return false;
}

std::string read_file(const std::string& path) {
  const auto sources = prlint::load_sources({path});
  return sources.front().source;
}

}  // namespace

int main(int argc, char** argv) {
  bool fix_hints = false;
  bool list_rules = false;
  bool count_suppressions = false;
  std::optional<long> max_suppressions;
  std::string layers_path;
  std::string csv_doc_path;
  std::string jsonl_doc_path;
  std::string graph_path;
  detlint::LintOptions options;
  std::vector<std::string> paths;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "prlint: %s needs an argument\n", flag);
      print_usage();
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix-hints") {
      fix_hints = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--count-suppressions") {
      count_suppressions = true;
    } else if (arg == "--max-suppressions") {
      max_suppressions = std::strtol(next_arg(i, "--max-suppressions"),
                                     nullptr, 10);
      count_suppressions = true;
    } else if (arg == "--select") {
      for (const std::string& id : split_csv(next_arg(i, "--select"))) {
        if (!known_rule(id)) {
          std::fprintf(stderr, "prlint: unknown rule '%s'\n", id.c_str());
          return 2;
        }
        options.select.push_back(id);
      }
    } else if (arg == "--layers") {
      layers_path = next_arg(i, "--layers");
    } else if (arg == "--csv-doc") {
      csv_doc_path = next_arg(i, "--csv-doc");
    } else if (arg == "--jsonl-doc") {
      jsonl_doc_path = next_arg(i, "--jsonl-doc");
    } else if (arg == "--emit-graph") {
      graph_path = next_arg(i, "--emit-graph");
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "prlint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const detlint::RuleInfo& rule : detlint::rules()) {
      std::printf("%-20s %s\n", std::string(rule.id).c_str(),
                  std::string(rule.summary).c_str());
    }
    for (const detlint::RuleInfo& rule : prlint::rules()) {
      std::printf("%-20s %s\n", std::string(rule.id).c_str(),
                  std::string(rule.summary).c_str());
    }
    if (paths.empty()) return 0;
  }

  if (paths.empty()) {
    print_usage();
    return 2;
  }

  options.keep_suppressed = count_suppressions;

  int total = 0;
  long suppressed = 0;
  int files = 0;
  std::vector<detlint::Finding> findings;
  try {
    const std::vector<std::string> source_paths =
        detlint::collect_sources(paths);
    files = static_cast<int>(source_paths.size());

    // Per-file rules.
    for (const std::string& path : source_paths) {
      for (detlint::Finding& f : detlint::lint_file(path, options)) {
        findings.push_back(std::move(f));
      }
    }

    // Whole-program passes (inputs permitting, and honoring --select).
    const bool want_layers =
        !layers_path.empty() && options.selected("layer-dag");
    const bool want_schema = (!csv_doc_path.empty() ||
                              !jsonl_doc_path.empty()) &&
                             options.selected("schema-drift");
    if (want_layers || want_schema || !graph_path.empty()) {
      const std::vector<prlint::SourceFile> sources =
          prlint::load_sources(source_paths);
      if (want_layers || !graph_path.empty()) {
        std::optional<prlint::LayerConfig> layers;
        if (!layers_path.empty()) {
          layers = prlint::load_layers(layers_path);
        }
        if (want_layers) {
          for (detlint::Finding& f :
               prlint::check_layers(sources, *layers)) {
            if (f.suppressed && !options.keep_suppressed) continue;
            findings.push_back(std::move(f));
          }
        }
        if (!graph_path.empty()) {
          const prlint::IncludeGraph graph =
              prlint::extract_includes(sources);
          const std::string dot =
              prlint::to_dot(graph, layers ? &*layers : nullptr);
          std::FILE* out = std::fopen(graph_path.c_str(), "wb");
          if (out == nullptr) {
            std::fprintf(stderr, "prlint: cannot write %s\n",
                         graph_path.c_str());
            return 2;
          }
          std::fwrite(dot.data(), 1, dot.size(), out);
          std::fclose(out);
        }
      }
      if (want_schema) {
        prlint::SchemaDocs docs;
        if (!csv_doc_path.empty()) {
          docs.csv_doc_path = csv_doc_path;
          docs.csv_doc = read_file(csv_doc_path);
        }
        if (!jsonl_doc_path.empty()) {
          docs.jsonl_doc_path = jsonl_doc_path;
          docs.jsonl_doc = read_file(jsonl_doc_path);
        }
        for (detlint::Finding& f : prlint::check_schema(sources, docs)) {
          if (f.suppressed && !options.keep_suppressed) continue;
          findings.push_back(std::move(f));
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::sort(findings.begin(), findings.end(),
            [](const detlint::Finding& a, const detlint::Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  for (const detlint::Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      std::printf("%s:%d: [%s] suppressed: %s\n", f.path.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
      continue;
    }
    ++total;
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
    if (fix_hints && !f.hint.empty()) {
      std::printf("    hint: %s\n", f.hint.c_str());
    }
  }

  if (count_suppressions) {
    std::fprintf(stderr, "prlint: %d finding%s (%ld suppressed) in %d file%s\n",
                 total, total == 1 ? "" : "s", suppressed, files,
                 files == 1 ? "" : "s");
  } else {
    std::fprintf(stderr, "prlint: %d finding%s in %d file%s\n", total,
                 total == 1 ? "" : "s", files, files == 1 ? "" : "s");
  }
  if (max_suppressions && suppressed > *max_suppressions) {
    std::fprintf(stderr,
                 "prlint: suppression budget exceeded: %ld > %ld allowed\n",
                 suppressed, *max_suppressions);
    return 1;
  }
  return total == 0 ? 0 : 1;
}
