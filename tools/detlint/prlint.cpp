#include "prlint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace prlint {

namespace {

constexpr std::string_view kLayerDag = "layer-dag";
constexpr std::string_view kSchemaDrift = "schema-drift";

constexpr std::string_view kLayerHint =
    "depend downward only: move the shared type into a lower layer, or — "
    "if the architecture really changed — re-declare the DAG in "
    "tools/detlint/layers.ini (reviewed like any interface change)";
constexpr std::string_view kSchemaHint =
    "document the column/key in the schema table (EXPERIMENTS.md for CSV, "
    "docs/OBSERVABILITY.md for JSONL) in the same change that emits it, "
    "or drop the emit; prlint cross-checks emitters against the docs";

std::string normalized(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

/// src-relative id of a path: the part after the last `src/` component
/// ("src/sim/array_sim.h" -> "sim/array_sim.h"); the normalized path
/// itself when no src/ component exists (virtual fixture ids).
std::string src_relative(const std::string& path) {
  const std::string norm = normalized(path);
  if (norm.rfind("src/", 0) == 0) return norm.substr(4);
  const std::size_t at = norm.rfind("/src/");
  if (at != std::string::npos) return norm.substr(at + 5);
  return norm;
}

/// Top-level directory of a src-relative id ("" when the id has none).
std::string dir_of(const std::string& id) {
  const std::size_t slash = id.find('/');
  return slash == std::string::npos ? std::string() : id.substr(0, slash);
}

std::string basename_of(const std::string& path) {
  const std::string norm = normalized(path);
  const std::size_t slash = norm.find_last_of('/');
  return slash == std::string::npos ? norm : norm.substr(slash + 1);
}

/// Does `doc` contain `token` as a whole word?
bool documented(std::string_view token, std::string_view doc) {
  const auto word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  std::size_t at = doc.find(token);
  while (at != std::string_view::npos) {
    const bool left_ok = at == 0 || !word_char(doc[at - 1]);
    const std::size_t end = at + token.size();
    const bool right_ok = end >= doc.size() || !word_char(doc[end]);
    if (left_ok && right_ok) return true;
    at = doc.find(token, at + 1);
  }
  return false;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kLayerDag,
       "upward or cyclic #include against the layer DAG declared in "
       "tools/detlint/layers.ini (util -> disk/trace -> workload -> "
       "obs/press -> sim/fault/redundancy -> policy -> core -> exp)"},
      {kSchemaDrift,
       "CSV column (scenario_report.cpp) or JSONL key (jsonl_writer.cpp) "
       "emitted but not documented in EXPERIMENTS.md / "
       "docs/OBSERVABILITY.md"},
  };
  return kRules;
}

std::vector<SourceFile> load_sources(const std::vector<std::string>& paths) {
  std::vector<SourceFile> out;
  out.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("prlint: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out.push_back(SourceFile{path, buffer.str()});
  }
  return out;
}

// ------------------------------------------------------------ layer DAG

int LayerConfig::rank_of(std::string_view dir) const {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const std::string& d : layers[i].dirs) {
      if (d == dir) return static_cast<int>(i);
    }
  }
  return -1;
}

const std::string& LayerConfig::name_of(int rank) const {
  return layers.at(static_cast<std::size_t>(rank)).name;
}

std::vector<std::string> LayerConfig::declared_dirs() const {
  std::vector<std::string> out;
  for (const Layer& layer : layers) {
    out.insert(out.end(), layer.dirs.begin(), layer.dirs.end());
  }
  return out;
}

LayerConfig parse_layers(std::string_view text, const std::string& path) {
  LayerConfig config;
  std::set<std::string> seen_dirs;
  bool in_layers = false;
  int line_no = 0;
  std::size_t start = 0;
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error(path + ":" + std::to_string(line_no) + ": " +
                             what);
  };
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string line(text.substr(start, end - start));
    ++line_no;
    const bool last = end == text.size();
    start = end + 1;

    // Strip comments and whitespace.
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    const auto is_space = [](unsigned char c) { return std::isspace(c); };
    line.erase(line.begin(),
               std::find_if_not(line.begin(), line.end(), is_space));
    while (!line.empty() && is_space(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    if (line.empty()) {
      if (last) break;
      continue;
    }

    if (line.front() == '[') {
      if (line != "[layers]") fail("unknown section '" + line + "'");
      if (in_layers) fail("duplicate [layers] section");
      in_layers = true;
      if (last) break;
      continue;
    }
    if (!in_layers) fail("expected [layers] before '" + line + "'");

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail("expected 'name = dir[, dir...]'");
    std::string name = line.substr(0, eq);
    while (!name.empty() && is_space(static_cast<unsigned char>(name.back()))) {
      name.pop_back();
    }
    if (name.empty()) fail("empty layer name");

    LayerConfig::Layer layer;
    layer.name = name;
    std::string dirs = line.substr(eq + 1);
    std::istringstream stream(dirs);
    std::string dir;
    while (std::getline(stream, dir, ',')) {
      dir.erase(dir.begin(),
                std::find_if_not(dir.begin(), dir.end(), is_space));
      while (!dir.empty() && is_space(static_cast<unsigned char>(dir.back()))) {
        dir.pop_back();
      }
      if (dir.empty()) fail("empty directory in layer '" + name + "'");
      if (!seen_dirs.insert(dir).second) {
        fail("directory '" + dir + "' declared twice");
      }
      layer.dirs.push_back(dir);
    }
    if (layer.dirs.empty()) fail("layer '" + name + "' declares no dirs");
    config.layers.push_back(std::move(layer));
    if (last) break;
  }
  if (config.layers.empty()) {
    throw std::runtime_error(path + ": no layers declared");
  }
  return config;
}

LayerConfig load_layers(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("prlint: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_layers(buffer.str(), path);
}

IncludeGraph extract_includes(const std::vector<SourceFile>& files) {
  IncludeGraph graph;
  static const std::regex include_re(R"re(^\s*#\s*include\s*"([^"]+)")re");
  for (const SourceFile& file : files) {
    graph.files.push_back(src_relative(file.path));
    int line_no = 0;
    std::size_t start = 0;
    const std::string& text = file.source;
    while (start <= text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      const std::string line = text.substr(start, end - start);
      ++line_no;
      std::smatch m;
      if (std::regex_search(line, m, include_re)) {
        const std::string target = normalized(m[1].str());
        // Same-directory includes written without a path cannot cross a
        // layer; skip them (they also keep tool sources like
        // `#include "detlint.h"` out of the graph).
        if (target.find('/') != std::string::npos) {
          graph.edges.push_back(IncludeEdge{src_relative(file.path),
                                            file.path, line_no, target});
        }
      }
      if (end == text.size()) break;
      start = end + 1;
    }
  }
  std::sort(graph.files.begin(), graph.files.end());
  graph.files.erase(std::unique(graph.files.begin(), graph.files.end()),
                    graph.files.end());
  return graph;
}

std::string to_dot(const IncludeGraph& graph, const LayerConfig* layers) {
  // Directory-level aggregation with file-include counts as edge labels.
  std::set<std::string> dirs;
  std::map<std::pair<std::string, std::string>, int> edges;
  for (const std::string& id : graph.files) {
    const std::string d = dir_of(id);
    if (!d.empty()) dirs.insert(d);
  }
  for (const IncludeEdge& e : graph.edges) {
    const std::string from = dir_of(e.from);
    const std::string to = dir_of(e.to);
    if (from.empty() || to.empty() || from == to) continue;
    dirs.insert(from);
    dirs.insert(to);
    ++edges[{from, to}];
  }
  std::ostringstream out;
  out << "digraph include_graph {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  if (layers != nullptr) {
    for (std::size_t i = 0; i < layers->layers.size(); ++i) {
      const auto& layer = layers->layers[i];
      out << "  subgraph cluster_" << i << " {\n"
          << "    label=\"" << i << ": " << layer.name << "\";\n";
      for (const std::string& d : layer.dirs) {
        if (dirs.count(d)) out << "    \"" << d << "\";\n";
      }
      out << "  }\n";
    }
    for (const std::string& d : dirs) {
      if (layers->rank_of(d) < 0) out << "  \"" << d << "\";\n";
    }
  } else {
    for (const std::string& d : dirs) out << "  \"" << d << "\";\n";
  }
  for (const auto& [edge, count] : edges) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second
        << "\" [label=" << count << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::vector<Finding> check_layers(const std::vector<SourceFile>& files,
                                  const LayerConfig& layers) {
  std::vector<Finding> findings;
  const IncludeGraph graph = extract_includes(files);

  // Per-file allow markers (the scrub also guards nothing else here —
  // include extraction works on raw lines, so `detlint:allow` comments
  // keep their usual same-line / previous-line semantics).
  std::map<std::string, detlint::Scrubbed> scrubbed;
  for (const SourceFile& file : files) {
    scrubbed.emplace(file.path, detlint::scrub(file.source));
  }
  const auto report = [&](const std::string& path, int line,
                          std::string message) {
    const auto it = scrubbed.find(path);
    const bool is_suppressed =
        it != scrubbed.end() &&
        detlint::suppressed(it->second, line, kLayerDag);
    findings.push_back(Finding{path, line, std::string(kLayerDag),
                               std::move(message), std::string(kLayerHint),
                               is_suppressed});
  };

  // Undeclared directories: every scanned file must live in a declared
  // layer, so a new subsystem cannot appear without a DAG decision.
  std::set<std::string> reported_dirs;
  for (const SourceFile& file : files) {
    const std::string dir = dir_of(src_relative(file.path));
    if (dir.empty() || layers.rank_of(dir) >= 0) continue;
    if (!reported_dirs.insert(dir).second) continue;
    report(file.path, 1,
           "directory '" + dir +
               "' is not declared in layers.ini — every subsystem needs a "
               "layer");
  }

  // Upward includes.
  for (const IncludeEdge& e : graph.edges) {
    const std::string from_dir = dir_of(e.from);
    const std::string to_dir = dir_of(e.to);
    if (from_dir.empty() || to_dir.empty()) continue;
    const int from_rank = layers.rank_of(from_dir);
    const int to_rank = layers.rank_of(to_dir);
    if (from_rank < 0) continue;  // already reported as undeclared
    if (to_rank < 0) {
      report(e.from_path, e.line,
             "include of '" + e.to + "' — directory '" + to_dir +
                 "' is not declared in layers.ini");
      continue;
    }
    if (to_rank > from_rank) {
      report(e.from_path, e.line,
             "upward include: " + from_dir + " (layer " +
                 std::to_string(from_rank) + " '" +
                 layers.name_of(from_rank) + "') includes '" + e.to +
                 "' (layer " + std::to_string(to_rank) + " '" +
                 layers.name_of(to_rank) + "')");
    }
  }

  // File-level include cycles (DFS over edges whose targets are in the
  // scanned set). Layer ordering already forbids cross-layer cycles;
  // this catches same-layer ones (sim <-> fault would compile with
  // forward declarations yet still knot the build).
  std::map<std::string, std::vector<const IncludeEdge*>> adj;
  std::set<std::string> known(graph.files.begin(), graph.files.end());
  for (const IncludeEdge& e : graph.edges) {
    if (known.count(e.to)) adj[e.from].push_back(&e);
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::set<std::vector<std::string>> reported_cycles;

  const std::function<void(const std::string&)> dfs =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const IncludeEdge* e : adj[node]) {
          const int c = color[e->to];
          if (c == 0) {
            dfs(e->to);
          } else if (c == 1) {
            // Back edge: the cycle is the stack suffix from e->to.
            const auto at = std::find(stack.begin(), stack.end(), e->to);
            std::vector<std::string> cycle(at, stack.end());
            std::vector<std::string> key = cycle;
            std::sort(key.begin(), key.end());
            if (reported_cycles.insert(key).second) {
              std::string chain;
              for (const std::string& n : cycle) chain += n + " -> ";
              chain += e->to;
              report(e->from_path, e->line, "include cycle: " + chain);
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const std::string& id : graph.files) {
    if (color[id] == 0) dfs(id);
  }

  sort_findings(findings);
  return findings;
}

// --------------------------------------------------------- schema drift

std::vector<Finding> check_schema(const std::vector<SourceFile>& files,
                                  const SchemaDocs& docs) {
  std::vector<Finding> findings;

  const auto report = [&](const SourceFile& file, int line,
                          std::string message) {
    const detlint::Scrubbed scrubbed = detlint::scrub(file.source);
    const bool is_suppressed =
        detlint::suppressed(scrubbed, line, kSchemaDrift);
    findings.push_back(Finding{file.path, line, std::string(kSchemaDrift),
                               std::move(message), std::string(kSchemaHint),
                               is_suppressed});
  };

  for (const SourceFile& file : files) {
    const std::string base = basename_of(file.path);

    // CSV emitters: every comma-separated column-list literal.
    if (base == "scenario_report.cpp" && !docs.csv_doc.empty()) {
      static const std::regex column_list_re(
          R"(^,?[a-z][a-z0-9_]*(,[a-z][a-z0-9_]*)+,?$)");
      for (const auto& [line, literal] : detlint::string_literals(file.source)) {
        if (!std::regex_match(literal, column_list_re)) continue;
        std::istringstream stream(literal);
        std::string column;
        while (std::getline(stream, column, ',')) {
          if (column.empty()) continue;
          if (documented(column, docs.csv_doc)) continue;
          report(file, line,
                 "CSV column '" + column + "' is emitted but not documented "
                 "in " + docs.csv_doc_path);
        }
      }
    }

    // JSONL emitters: `"key":` patterns plus `"ev":"name"` event names.
    if (base == "jsonl_writer.cpp" && !docs.jsonl_doc.empty()) {
      static const std::regex key_re(R"xx("([A-Za-z_]\w*)"\s*:)xx");
      static const std::regex event_re(R"xx("ev"\s*:\s*"(\w+)")xx");
      for (const auto& [line, literal] : detlint::string_literals(file.source)) {
        std::set<std::string> tokens;
        for (auto it = std::sregex_iterator(literal.begin(), literal.end(),
                                            key_re);
             it != std::sregex_iterator(); ++it) {
          tokens.insert((*it)[1].str());
        }
        for (auto it = std::sregex_iterator(literal.begin(), literal.end(),
                                            event_re);
             it != std::sregex_iterator(); ++it) {
          tokens.insert((*it)[1].str());
        }
        for (const std::string& token : tokens) {
          if (documented(token, docs.jsonl_doc)) continue;
          report(file, line,
                 "JSONL key '" + token + "' is emitted but not documented "
                 "in " + docs.jsonl_doc_path);
        }
      }
    }
  }

  sort_findings(findings);
  return findings;
}

}  // namespace prlint
