// detlint.h — determinism lint for the PRESS/READ source tree.
//
// The repo's headline guarantee is byte-identical output across scheduler
// backends and thread counts; the golden tests check it end-to-end, this
// linter guards the code patterns that break it at the source level:
//
//   unordered-iteration  iteration over std::unordered_map/_set in a file
//                        that also emits report/CSV/JSONL output (hash
//                        iteration order is libstdc++-version- and
//                        salt-dependent, so emitted order is not stable)
//   banned-entropy       rand()/srand()/std::random_device/time()/
//                        std::chrono::system_clock inside src/sim, policy,
//                        exp, fault, redundancy, or the streaming readers under
//                        src/trace (stream_*/request_source*/
//                        trace_reader* — they feed the run path; the
//                        ambient-log parsers like CLF stay out because
//                        timestamp decoding needs <ctime>). Randomness
//                        must flow from the run's seed; time from the
//                        simulation clock.
//   locale-float         locale-sensitive float formatting/parsing
//                        outside util/ (stream precision manipulators,
//                        printf %f/%g/%e, stod/strtod, locale installs) —
//                        util/fmt.h is the sanctioned formatting path
//
// detlint is a lexical analyzer, not a compiler front end: it scrubs
// comments and string literals (so neither can produce false positives),
// then pattern-matches the remaining token text line by line. That keeps
// it dependency-free and fast enough to run on every CI push; the gtest
// suite (tests/test_detlint.cpp) pins each rule's positive and negative
// fixtures.
//
// A finding on line N is suppressed by `// detlint:allow(<rule>)` on line
// N or on line N-1. `--fix-hints` adds a remediation hint per finding.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace detlint {

struct Finding {
  std::string path;
  int line = 0;       // 1-based
  std::string rule;   // rule id, e.g. "banned-entropy"
  std::string message;
  std::string hint;   // remediation suggestion (shown with --fix-hints)
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The rule catalogue, in reporting order.
const std::vector<RuleInfo>& rules();

/// Comment/literal scrub of `source`: every comment and string/char
/// literal byte is replaced with a space (newlines kept, so line numbers
/// survive), and `detlint:allow(...)` markers are collected per line.
struct Scrubbed {
  std::string code;
  /// line (1-based) -> rule ids allowed on that line and the next.
  std::unordered_map<int, std::vector<std::string>> allows;
};
Scrubbed scrub(std::string_view source);

/// Lint one in-memory source. `path` is used both for reporting and for
/// the path-scoped rules (banned-entropy applies under
/// src/sim|policy|exp|fault|redundancy plus the streaming readers in
/// src/trace, locale-float everywhere but util/), which is what lets the
/// test suite lint fixture files under virtual src/ paths.
std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view source);

/// Load and lint a file. Throws std::runtime_error if unreadable.
std::vector<Finding> lint_file(const std::string& path);

/// Expand files/directories into a sorted list of C++ sources
/// (.h/.hpp/.cc/.cpp/.cxx); order is lexicographic so runs are stable.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths);

}  // namespace detlint
