// detlint.h — per-file determinism rules of the prlint analyzer.
//
// The repo's headline guarantee is byte-identical output across scheduler
// backends and thread counts; the golden tests check it end-to-end, this
// linter guards the code patterns that break it at the source level:
//
//   unordered-iteration  iteration over std::unordered_map/_set in a file
//                        that also emits report/CSV/JSONL output (hash
//                        iteration order is libstdc++-version- and
//                        salt-dependent, so emitted order is not stable)
//   banned-entropy       rand()/srand()/std::random_device/time()/
//                        std::chrono::system_clock inside src/sim, policy,
//                        exp, fault, redundancy, the streaming readers under
//                        src/trace (stream_*/request_source*/
//                        trace_reader* — they feed the run path; the
//                        ambient-log parsers like CLF stay out because
//                        timestamp decoding needs <ctime>), and — since the
//                        scope grew to the whole repo — tools/ and bench/.
//                        Randomness must flow from the run's seed; time
//                        from the simulation clock.
//   locale-float         locale-sensitive float formatting/parsing
//                        outside util/ (stream precision manipulators,
//                        printf %f/%g/%e, stod/strtod, locale installs) —
//                        util/fmt.h is the sanctioned formatting path
//   hot-path-counter     string-keyed CounterRegistry access
//                        (bump("...") / value("...")) inside the
//                        request-path subsystems (src/sim, src/policy,
//                        src/redundancy, src/fault). Interned Handles are
//                        the sanctioned path (PR 2); per-event string
//                        hashing is both a hot-path tax and a reporting
//                        hazard (typos silently create new counters)
//   float-fold-order     double/float accumulation whose fold order is
//                        not deterministic: `+=` onto a float declared
//                        outside a range-for over an unordered container,
//                        std::accumulate over an unordered range, or `+=`
//                        onto a float captured by a [&]/[=] lambda in a
//                        file that uses util/thread_pool.h. The sanctioned
//                        merge paths are the shard-order helpers in
//                        src/sim/fleet_sim.* and util/stats.*
//
// detlint is a lexical analyzer, not a compiler front end: it scrubs
// comments and string literals (so neither can produce false positives),
// then pattern-matches the remaining token text line by line. That keeps
// it dependency-free and fast enough to run on every CI push; the gtest
// suite (tests/test_detlint.cpp) pins each rule's positive and negative
// fixtures. The whole-program passes (layer-dag, schema-drift) live in
// prlint.h.
//
// A finding on line N is suppressed by `// detlint:allow(<rule>)` on line
// N or on line N-1. `--fix-hints` adds a remediation hint per finding.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace detlint {

struct Finding {
  std::string path;
  int line = 0;       // 1-based
  std::string rule;   // rule id, e.g. "banned-entropy"
  std::string message;
  std::string hint;   // remediation suggestion (shown with --fix-hints)
  /// True when a detlint:allow(...) marker covers the finding. Suppressed
  /// findings are dropped by default; LintOptions::keep_suppressed keeps
  /// them (flagged) so callers can count and budget them.
  bool suppressed = false;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The per-file rule catalogue, in reporting order. The whole-program
/// rules (prlint.h) append theirs via prlint::rules().
const std::vector<RuleInfo>& rules();

/// Lint configuration shared by the per-file rules and the CLI.
struct LintOptions {
  /// Run only these rule ids (empty = all rules).
  std::vector<std::string> select;
  /// Keep suppressed findings in the result (with suppressed = true)
  /// instead of dropping them, so suppression budgets can be enforced.
  bool keep_suppressed = false;

  [[nodiscard]] bool selected(std::string_view rule) const;
};

/// Comment/literal scrub of `source`: every comment and string/char
/// literal byte is replaced with a space (newlines kept, so line numbers
/// survive), and `detlint:allow(...)` markers are collected per line.
struct Scrubbed {
  std::string code;
  /// line (1-based) -> rule ids allowed on that line and the next.
  std::unordered_map<int, std::vector<std::string>> allows;
};
Scrubbed scrub(std::string_view source);

/// True when an allow marker on `line` or `line - 1` names `rule` (or *).
bool suppressed(const Scrubbed& scrubbed, int line, std::string_view rule);

/// Every string literal in `source` with the line it starts on, in
/// source order. Raw literal bodies are returned verbatim; escaped
/// quotes in ordinary literals are unescaped to `"` so JSON key patterns
/// survive. Feeds the schema-drift pass (prlint.h), which must look *at*
/// emitted text rather than scrub it away.
std::vector<std::pair<int, std::string>> string_literals(
    std::string_view source);

/// Lint one in-memory source. `path` is used both for reporting and for
/// the path-scoped rules (banned-entropy under src/sim|policy|exp|fault|
/// redundancy, the streaming readers in src/trace, plus tools/ and bench/;
/// hot-path-counter under src/sim|policy|redundancy|fault; locale-float
/// everywhere but util/), which is what lets the test suite lint fixture
/// files under virtual src/ paths.
std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view source,
                                 const LintOptions& options = {});

/// Load and lint a file. Throws std::runtime_error if unreadable.
std::vector<Finding> lint_file(const std::string& path,
                               const LintOptions& options = {});

/// Expand files/directories into a sorted list of C++ sources
/// (.h/.hpp/.cc/.cpp/.cxx); order is lexicographic so runs are stable.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths);

}  // namespace detlint
