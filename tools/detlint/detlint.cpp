#include "detlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace detlint {

namespace {

// ---------------------------------------------------------------- rules

constexpr std::string_view kUnorderedIteration = "unordered-iteration";
constexpr std::string_view kBannedEntropy = "banned-entropy";
constexpr std::string_view kLocaleFloat = "locale-float";
constexpr std::string_view kHotPathCounter = "hot-path-counter";
constexpr std::string_view kFloatFoldOrder = "float-fold-order";

constexpr std::string_view kUnorderedHint =
    "iterate a sorted view instead (std::map, or sort the keys into a "
    "vector) so emitted order cannot depend on hash salt or libstdc++ "
    "version";
constexpr std::string_view kEntropyHint =
    "derive randomness from the run's seed (util/rng.h) and time from the "
    "simulation clock; ambient entropy makes runs irreproducible";
constexpr std::string_view kLocaleHint =
    "format through pr::format_double (util/fmt.h) or imbue "
    "std::locale::classic(); default-locale formatting changes bytes when "
    "the host installs a global locale";
constexpr std::string_view kHotPathHint =
    "intern a CounterRegistry::Handle once (in initialize(), or lazily on "
    "the first fault-path hit) and bump through it; string keys hash on "
    "every event and a typo silently mints a new counter";
constexpr std::string_view kFloatFoldHint =
    "fold in a deterministic order: sort the keys (or use std::map), or "
    "merge per-shard partials in shard order through the sanctioned "
    "helpers (sim/fleet_sim, util/stats); float addition is not "
    "associative, so fold order changes emitted bytes";

// ---------------------------------------------------------- path scoping

std::string normalized(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool in_dir(const std::string& path, std::string_view dir) {
  std::string inner;
  inner.reserve(dir.size() + 2);
  inner.push_back('/');
  inner.append(dir);
  inner.push_back('/');
  return path.find(inner) != std::string::npos ||
         path.compare(0, inner.size() - 1, inner, 1, inner.size() - 1) == 0;
}

/// The streaming-ingestion files under src/trace feed requests straight
/// into the deterministic run path, so they join the entropy scope. The
/// rest of src/trace parses ambient log formats (CLF timestamps need
/// <ctime>) and stays out.
bool streaming_trace(const std::string& path) {
  if (!in_dir(path, "trace")) return false;
  const std::size_t slash = path.find_last_of('/');
  const std::string_view base = std::string_view(path).substr(
      slash == std::string::npos ? 0 : slash + 1);
  return base.rfind("stream_", 0) == 0 ||
         base.rfind("request_source", 0) == 0 ||
         base.rfind("trace_reader", 0) == 0;
}

/// banned-entropy scope: the deterministic simulation core, the streaming
/// trace readers, and (since the CI scan grew repo-wide) tools/ and
/// bench/ — suppressions are allowed outside src/ but counted.
bool entropy_scoped(const std::string& path) {
  return in_dir(path, "sim") || in_dir(path, "policy") ||
         in_dir(path, "exp") || in_dir(path, "fault") ||
         in_dir(path, "redundancy") || streaming_trace(path) ||
         in_dir(path, "tools") || in_dir(path, "bench");
}

/// locale-float scope: everywhere except util/ (which owns the sanctioned
/// locale-independent formatting helpers).
bool locale_scoped(const std::string& path) { return !in_dir(path, "util"); }

/// hot-path-counter scope: the request-path subsystems. Every per-event
/// counter there must go through an interned handle (PR 2).
bool hot_path_scoped(const std::string& path) {
  return in_dir(path, "sim") || in_dir(path, "policy") ||
         in_dir(path, "redundancy") || in_dir(path, "fault");
}

/// float-fold-order scope: all of src/, minus the sanctioned shard-order
/// merge helpers (fleet_sim's deterministic fold, util/stats' Welford
/// merges) whose entire job is order-controlled accumulation.
bool float_fold_scoped(const std::string& path) {
  const bool in_src =
      path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
  if (!in_src) return false;
  return path.find("sim/fleet_sim") == std::string::npos &&
         path.find("util/stats") == std::string::npos;
}

// -------------------------------------------------------------- scrubber

/// Extract rule ids from a comment body containing `detlint:allow(...)`.
std::vector<std::string> parse_allows(std::string_view comment) {
  std::vector<std::string> out;
  const std::string_view marker = "detlint:allow(";
  std::size_t at = comment.find(marker);
  while (at != std::string_view::npos) {
    const std::size_t open = at + marker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) break;
    std::string id;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = i < close ? comment[i] : ',';
      if (c == ',' || c == ' ') {
        if (!id.empty()) out.push_back(id);
        id.clear();
      } else {
        id.push_back(c);
      }
    }
    at = comment.find(marker, close);
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kUnorderedIteration,
       "iteration over std::unordered_map/_set in a file that emits "
       "report/CSV/JSONL output"},
      {kBannedEntropy,
       "ambient entropy (rand, srand, std::random_device, time(), "
       "std::chrono::system_clock) inside src/sim, src/policy, src/exp, "
       "src/fault, src/redundancy, the streaming readers under src/trace, "
       "and tools/ + bench/"},
      {kLocaleFloat,
       "locale-sensitive float formatting/parsing outside util/ (stream "
       "precision manipulators, printf float conversions, stod/strtod, "
       "locale installs)"},
      {kHotPathCounter,
       "string-keyed CounterRegistry access (bump(\"...\")/value(\"...\")) "
       "inside the request-path subsystems src/sim, src/policy, "
       "src/redundancy, src/fault — interned Handles are the sanctioned "
       "path"},
      {kFloatFoldOrder,
       "float accumulation in a nondeterministic fold order: += over a "
       "range-for on an unordered container, std::accumulate over an "
       "unordered range, or += onto a captured float in a thread-pool "
       "file, outside the sanctioned fleet_sim/stats merge helpers"},
  };
  return kRules;
}

bool LintOptions::selected(std::string_view rule) const {
  if (select.empty()) return true;
  return std::find(select.begin(), select.end(), rule) != select.end();
}

Scrubbed scrub(std::string_view source) {
  Scrubbed out;
  out.code.reserve(source.size());
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  int line = 1;
  int comment_line = 1;       // line a comment started on
  std::string comment_text;   // accumulated comment body
  std::string raw_delim;      // raw string closing delimiter: )delim"

  auto flush_comment = [&] {
    for (const std::string& rule : parse_allows(comment_text)) {
      out.allows[comment_line].push_back(rule);
    }
    comment_text.clear();
  };

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment_line = line;
          out.code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          comment_line = line;
          out.code += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   source[i - 1])) &&
                               source[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          std::size_t open = i + 2;
          std::string delim;
          while (open < source.size() && source[open] != '(') {
            delim.push_back(source[open++]);
          }
          raw_delim = ")" + delim + "\"";
          state = State::kRaw;
          out.code += "  ";
          for (std::size_t k = i + 2; k <= open && k < source.size(); ++k) {
            out.code += ' ';
          }
          i = open;  // consumed through '('
        } else if (c == '"') {
          state = State::kString;
          out.code += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out.code += ' ';
        } else {
          out.code += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          flush_comment();
          state = State::kCode;
          out.code += '\n';
        } else {
          comment_text += c;
          out.code += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          out.code += "  ";
          ++i;
        } else {
          comment_text += c;
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out.code += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.code += ' ';
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.code += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.code += ' ';
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRaw:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out.code += ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
    }
    if (c == '\n') ++line;
  }
  if (state == State::kLine || state == State::kBlock) flush_comment();
  return out;
}

std::vector<std::pair<int, std::string>> string_literals(
    std::string_view source) {
  std::vector<std::pair<int, std::string>> out;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  int line = 1;
  int literal_line = 1;
  std::string literal;
  std::string raw_delim;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   source[i - 1])) &&
                               source[i - 1] != '_'))) {
          std::size_t open = i + 2;
          std::string delim;
          while (open < source.size() && source[open] != '(') {
            delim.push_back(source[open++]);
          }
          raw_delim = ")" + delim + "\"";
          state = State::kRaw;
          literal_line = line;
          literal.clear();
          i = open;
        } else if (c == '"') {
          state = State::kString;
          literal_line = line;
          literal.clear();
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') state = State::kCode;
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          // Keep escaped quotes as plain quotes so "key": patterns in
          // ordinary literals match; drop other escapes.
          if (next == '"') literal.push_back('"');
          ++i;
        } else if (c == '"') {
          out.emplace_back(literal_line, literal);
          state = State::kCode;
        } else {
          literal.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          out.emplace_back(literal_line, literal);
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          literal.push_back(c);
        }
        break;
    }
    if (c == '\n') ++line;
  }
  return out;
}

namespace {

// ---------------------------------------------------------- lint helpers

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.emplace_back(text.substr(start, end - start));
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

/// Does the raw source include any header that can emit report output?
bool output_adjacent(const std::vector<std::string>& raw_lines) {
  static const std::regex include_re(
      R"(^\s*#\s*include\s*[<"]([^">]+)[">])");
  static const std::string_view signals[] = {
      "csv.h",     "jsonl_writer.h", "report_io.h", "scenario_report.h",
      "ostream",   "fstream",        "sstream",     "iostream",
      "cstdio",    "stdio.h",
  };
  for (const std::string& line : raw_lines) {
    std::smatch m;
    if (!std::regex_search(line, m, include_re)) continue;
    const std::string header = m[1].str();
    for (const std::string_view s : signals) {
      if (header.find(s) != std::string::npos) return true;
    }
  }
  return false;
}

/// Does the raw source include `header` (substring match on the target)?
bool includes_header(const std::vector<std::string>& raw_lines,
                     std::string_view header) {
  static const std::regex include_re(
      R"(^\s*#\s*include\s*[<"]([^">]+)[">])");
  for (const std::string& line : raw_lines) {
    std::smatch m;
    if (!std::regex_search(line, m, include_re)) continue;
    if (m[1].str().find(header) != std::string::npos) return true;
  }
  return false;
}

/// Names declared (anywhere in the scrubbed text) with an unordered
/// container type. Lexical: find `unordered_map<`/`unordered_set<`, walk
/// to the matching `>`, take the next identifier.
std::vector<std::string> unordered_names(std::string_view code) {
  std::vector<std::string> names;
  for (const std::string_view kind : {"unordered_map", "unordered_set"}) {
    std::size_t at = code.find(kind);
    while (at != std::string_view::npos) {
      std::size_t i = at + kind.size();
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
      if (i < code.size() && code[i] == '<') {
        int depth = 0;
        for (; i < code.size(); ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>' && --depth == 0) break;
        }
        ++i;  // past the closing '>'
        while (i < code.size() &&
               (std::isspace(static_cast<unsigned char>(code[i])) ||
                code[i] == '&' || code[i] == '*')) {
          ++i;
        }
        std::string name;
        while (i < code.size() &&
               (std::isalnum(static_cast<unsigned char>(code[i])) ||
                code[i] == '_')) {
          name.push_back(code[i++]);
        }
        if (!name.empty()) names.push_back(name);
      }
      at = code.find(kind, at + kind.size());
    }
  }
  return names;
}

/// First declaration line (1-based) of every float-typed name: `double x`
/// / `float x` declarations plus `auto x = <literal with a dot>`.
std::unordered_map<std::string, int> float_decl_lines(
    const std::vector<std::string>& code_lines) {
  static const std::regex decl_re(R"(\b(?:double|float)\s+([A-Za-z_]\w*))");
  static const std::regex auto_re(
      R"(\bauto\s+([A-Za-z_]\w*)\s*=\s*-?\d+\.\d*)");
  std::unordered_map<std::string, int> decls;
  for (std::size_t l = 0; l < code_lines.size(); ++l) {
    for (const std::regex* re : {&decl_re, &auto_re}) {
      auto begin = std::sregex_iterator(code_lines[l].begin(),
                                        code_lines[l].end(), *re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        decls.emplace((*it)[1].str(), static_cast<int>(l + 1));
      }
    }
  }
  return decls;
}

/// A contiguous run of lines forming a loop or lambda body.
struct Region {
  std::size_t begin_line;  // 0-based, inclusive
  std::size_t end_line;    // 0-based, inclusive
};

/// Line starts of `code`, so offsets map back to 1-based lines.
std::vector<std::size_t> line_starts(std::string_view code) {
  std::vector<std::size_t> starts = {0};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::size_t line_of_offset(const std::vector<std::size_t>& starts,
                           std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<std::size_t>(it - starts.begin()) - 1;  // 0-based
}

/// The body region opened by the first `{` at or after `from` in `code`
/// (balanced-brace walk). If a `;` appears first, the body is the single
/// statement ending at that `;`.
Region body_region(std::string_view code,
                   const std::vector<std::size_t>& starts, std::size_t from) {
  std::size_t i = from;
  while (i < code.size() && code[i] != '{' && code[i] != ';') ++i;
  if (i >= code.size() || code[i] == ';') {
    const std::size_t line = line_of_offset(starts, std::min(i, code.size() - 1));
    return Region{line_of_offset(starts, from), line};
  }
  int depth = 0;
  std::size_t open = i;
  for (; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) break;
  }
  return Region{line_of_offset(starts, open),
                line_of_offset(starts, std::min(i, code.size() - 1))};
}

struct Pattern {
  std::regex re;
  std::string message;
};

const std::vector<Pattern>& entropy_patterns() {
  static const std::vector<Pattern> kPatterns = [] {
    std::vector<Pattern> p;
    p.push_back({std::regex(R"((^|[^\w])rand\s*\()"),
                 "call to rand() — nondeterministic across runs"});
    p.push_back({std::regex(R"(\bsrand\s*\()"),
                 "call to srand() — global RNG state poisons determinism"});
    p.push_back({std::regex(R"(\brandom_device\b)"),
                 "std::random_device draws ambient entropy"});
    p.push_back({std::regex(R"((^|[^\w.>])time\s*\()"),
                 "call to time() — wall clock leaks into the simulation"});
    p.push_back({std::regex(R"(\bsystem_clock\b)"),
                 "std::chrono::system_clock reads the wall clock"});
    return p;
  }();
  return kPatterns;
}

const std::vector<Pattern>& locale_patterns() {
  static const std::vector<Pattern> kPatterns = [] {
    std::vector<Pattern> p;
    p.push_back({std::regex(R"(\bsetlocale\s*\()"),
                 "setlocale() changes process-wide number formatting"});
    p.push_back({std::regex(R"(std::locale\s*[({])"),
                 "std::locale construction — named locales change float "
                 "formatting"});
    p.push_back({std::regex(R"(\.\s*precision\s*\()"),
                 "stream precision() implies locale-sensitive float "
                 "formatting"});
    p.push_back({std::regex(R"(\bsetprecision\s*\()"),
                 "std::setprecision implies locale-sensitive float "
                 "formatting"});
    p.push_back({std::regex(R"(std::(fixed|scientific|hexfloat|defaultfloat)\b)"),
                 "float-format manipulator writes through the stream's "
                 "locale"});
    p.push_back({std::regex(R"(\b(stod|stof|strtod|strtof)\s*\()"),
                 "locale-sensitive float parsing (stod/strtod family)"});
    return p;
  }();
  return kPatterns;
}

}  // namespace

bool suppressed(const Scrubbed& scrubbed, int line, std::string_view rule) {
  for (const int l : {line, line - 1}) {
    const auto it = scrubbed.allows.find(l);
    if (it == scrubbed.allows.end()) continue;
    for (const std::string& allowed : it->second) {
      if (allowed == rule || allowed == "*") return true;
    }
  }
  return false;
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view source,
                                 const LintOptions& options) {
  const std::string norm = normalized(path);
  const Scrubbed scrubbed = scrub(source);
  const std::vector<std::string> raw_lines = split_lines(source);
  const std::vector<std::string> code_lines = split_lines(scrubbed.code);

  std::vector<Finding> findings;
  const auto report = [&](int line, std::string_view rule,
                          std::string message, std::string_view hint) {
    const bool is_suppressed = suppressed(scrubbed, line, rule);
    if (is_suppressed && !options.keep_suppressed) return;
    findings.push_back(Finding{path, line, std::string(rule),
                               std::move(message), std::string(hint),
                               is_suppressed});
  };

  // ---- unordered-iteration -------------------------------------------
  if (options.selected(kUnorderedIteration) && output_adjacent(raw_lines)) {
    const std::vector<std::string> names = unordered_names(scrubbed.code);
    for (const std::string& name : names) {
      const std::regex range_for(R"(for\s*\([^;)]*:\s*)" + name + R"(\s*\))");
      const std::regex begin_call("\\b" + name + R"(\s*\.\s*c?begin\s*\()");
      for (std::size_t l = 0; l < code_lines.size(); ++l) {
        if (std::regex_search(code_lines[l], range_for) ||
            std::regex_search(code_lines[l], begin_call)) {
          report(static_cast<int>(l + 1), kUnorderedIteration,
                 "iteration over unordered container '" + name +
                     "' in an output-adjacent file — hash order is not "
                     "deterministic",
                 kUnorderedHint);
        }
      }
    }
  }

  // ---- banned-entropy -------------------------------------------------
  if (options.selected(kBannedEntropy) && entropy_scoped(norm)) {
    for (std::size_t l = 0; l < code_lines.size(); ++l) {
      for (const Pattern& p : entropy_patterns()) {
        if (std::regex_search(code_lines[l], p.re)) {
          report(static_cast<int>(l + 1), kBannedEntropy, p.message,
                 kEntropyHint);
        }
      }
    }
  }

  // ---- locale-float ---------------------------------------------------
  if (options.selected(kLocaleFloat) && locale_scoped(norm)) {
    static const std::regex printf_re(
        R"(\b(printf|fprintf|sprintf|snprintf|vsnprintf)\s*\()");
    static const std::regex float_conv_re(R"(%[-+ #0-9.*']*l?[aefgAEFG])");
    for (std::size_t l = 0; l < code_lines.size(); ++l) {
      const std::string& code_line = code_lines[l];
      for (const Pattern& p : locale_patterns()) {
        if (!std::regex_search(code_line, p.re)) continue;
        // imbue()/construction of the classic locale is the sanctioned
        // determinism *fix*, not a hazard.
        if (code_line.find("locale::classic") != std::string::npos) continue;
        report(static_cast<int>(l + 1), kLocaleFloat, p.message, kLocaleHint);
      }
      if (std::regex_search(code_line, printf_re) &&
          l < raw_lines.size() &&
          std::regex_search(raw_lines[l], float_conv_re)) {
        report(static_cast<int>(l + 1), kLocaleFloat,
               "printf-family float conversion formats through the C "
               "locale of the moment",
               kLocaleHint);
      }
      static const std::regex imbue_re(R"(\.\s*imbue\s*\()");
      if (std::regex_search(code_line, imbue_re) &&
          code_line.find("locale::classic") == std::string::npos) {
        report(static_cast<int>(l + 1), kLocaleFloat,
               "imbue() with a non-classic locale changes emitted bytes",
               kLocaleHint);
      }
    }
  }

  // ---- hot-path-counter ----------------------------------------------
  // String-keyed access shows as `bump(` / `value(` in the scrubbed text
  // whose raw counterpart opens with a string literal. The scrubbed match
  // guards against comment/string mentions; the raw match supplies the
  // quote that scrubbing blanks out.
  if (options.selected(kHotPathCounter) && hot_path_scoped(norm)) {
    static const std::regex call_re(R"(\b(bump|value)\s*\()");
    static const std::regex string_arg_re(R"(\b(bump|value)\s*\(\s*")");
    for (std::size_t l = 0; l < code_lines.size(); ++l) {
      if (!std::regex_search(code_lines[l], call_re)) continue;
      if (l >= raw_lines.size() ||
          !std::regex_search(raw_lines[l], string_arg_re)) {
        continue;
      }
      report(static_cast<int>(l + 1), kHotPathCounter,
             "string-keyed counter access on the request path — hashes the "
             "name on every event",
             kHotPathHint);
    }
  }

  // ---- float-fold-order -----------------------------------------------
  if (options.selected(kFloatFoldOrder) && float_fold_scoped(norm)) {
    const std::vector<std::string> unordered = unordered_names(scrubbed.code);
    const std::unordered_map<std::string, int> floats =
        float_decl_lines(code_lines);
    const std::vector<std::size_t> starts = line_starts(scrubbed.code);
    static const std::regex add_assign_re(R"(([A-Za-z_]\w*)\s*\+=)");

    // Accumulation targets declared *before* a region (shared state) that
    // are `+=`'d inside it fold in the region's visit order.
    const auto flag_folds = [&](const Region& region, std::size_t decl_before,
                                const std::string& what) {
      for (std::size_t l = region.begin_line;
           l <= region.end_line && l < code_lines.size(); ++l) {
        auto begin = std::sregex_iterator(code_lines[l].begin(),
                                          code_lines[l].end(), add_assign_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
          const auto decl = floats.find((*it)[1].str());
          if (decl == floats.end()) continue;
          if (static_cast<std::size_t>(decl->second) > decl_before) continue;
          report(static_cast<int>(l + 1), kFloatFoldOrder,
                 "float accumulation into '" + decl->first + "' " + what,
                 kFloatFoldHint);
        }
      }
    };

    // (a) range-for over an unordered container.
    for (const std::string& name : unordered) {
      const std::regex range_for(R"(for\s*\([^;)]*:\s*)" + name +
                                 R"(\s*\))");
      auto begin = std::sregex_iterator(scrubbed.code.begin(),
                                        scrubbed.code.end(), range_for);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::size_t match_end =
            static_cast<std::size_t>(it->position()) + it->length();
        const Region body = body_region(scrubbed.code, starts, match_end);
        const std::size_t loop_line =
            line_of_offset(starts, static_cast<std::size_t>(it->position())) +
            1;
        flag_folds(body, loop_line,
                   "inside a range-for over unordered container '" + name +
                       "' — hash order decides the fold");
      }
    }

    // (b) std::accumulate over an unordered range.
    for (const std::string& name : unordered) {
      const std::regex acc_re(R"(\baccumulate\s*\(\s*)" + name + R"(\s*\.)");
      for (std::size_t l = 0; l < code_lines.size(); ++l) {
        if (std::regex_search(code_lines[l], acc_re)) {
          report(static_cast<int>(l + 1), kFloatFoldOrder,
                 "std::accumulate over unordered container '" + name +
                     "' — hash order decides the fold",
                 kFloatFoldHint);
        }
      }
    }

    // (c) capture-default lambdas in thread-pool files: a float declared
    // outside the lambda and += inside it folds in thread-completion
    // order.
    if (includes_header(raw_lines, "util/thread_pool.h")) {
      static const std::regex lambda_re(R"(\[\s*[&=][\w\s,&.*]*\])");
      auto begin = std::sregex_iterator(scrubbed.code.begin(),
                                        scrubbed.code.end(), lambda_re);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::size_t match_end =
            static_cast<std::size_t>(it->position()) + it->length();
        const Region body = body_region(scrubbed.code, starts, match_end);
        const std::size_t lambda_line =
            line_of_offset(starts, static_cast<std::size_t>(it->position())) +
            1;
        flag_folds(body, lambda_line,
                   "captured by a lambda in a thread-pool file — fold order "
                   "follows thread scheduling");
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.line == b.line && a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

std::vector<Finding> lint_file(const std::string& path,
                               const LintOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("prlint: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path, buffer.str(), options);
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  static const std::string_view exts[] = {".h", ".hpp", ".cc", ".cpp",
                                          ".cxx"};
  const auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return std::find(std::begin(exts), std::end(exts), ext) != std::end(exts);
  };
  std::vector<std::string> out;
  for (const std::string& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_source(entry.path())) {
          out.push_back(entry.path().generic_string());
        }
      }
    } else {
      out.push_back(path);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace detlint
