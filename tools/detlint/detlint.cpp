#include "detlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace detlint {

namespace {

// ---------------------------------------------------------------- rules

constexpr std::string_view kUnorderedIteration = "unordered-iteration";
constexpr std::string_view kBannedEntropy = "banned-entropy";
constexpr std::string_view kLocaleFloat = "locale-float";

constexpr std::string_view kUnorderedHint =
    "iterate a sorted view instead (std::map, or sort the keys into a "
    "vector) so emitted order cannot depend on hash salt or libstdc++ "
    "version";
constexpr std::string_view kEntropyHint =
    "derive randomness from the run's seed (util/rng.h) and time from the "
    "simulation clock; ambient entropy makes runs irreproducible";
constexpr std::string_view kLocaleHint =
    "format through pr::format_double (util/fmt.h) or imbue "
    "std::locale::classic(); default-locale formatting changes bytes when "
    "the host installs a global locale";

// ---------------------------------------------------------- path scoping

std::string normalized(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool in_dir(const std::string& path, std::string_view dir) {
  std::string inner;
  inner.reserve(dir.size() + 2);
  inner.push_back('/');
  inner.append(dir);
  inner.push_back('/');
  return path.find(inner) != std::string::npos ||
         path.compare(0, inner.size() - 1, inner, 1, inner.size() - 1) == 0;
}

/// The streaming-ingestion files under src/trace feed requests straight
/// into the deterministic run path, so they join the entropy scope. The
/// rest of src/trace parses ambient log formats (CLF timestamps need
/// <ctime>) and stays out.
bool streaming_trace(const std::string& path) {
  if (!in_dir(path, "trace")) return false;
  const std::size_t slash = path.find_last_of('/');
  const std::string_view base = std::string_view(path).substr(
      slash == std::string::npos ? 0 : slash + 1);
  return base.rfind("stream_", 0) == 0 ||
         base.rfind("request_source", 0) == 0 ||
         base.rfind("trace_reader", 0) == 0;
}

/// banned-entropy scope: the deterministic simulation core plus the
/// streaming trace readers.
bool entropy_scoped(const std::string& path) {
  return in_dir(path, "sim") || in_dir(path, "policy") ||
         in_dir(path, "exp") || in_dir(path, "fault") ||
         in_dir(path, "redundancy") || streaming_trace(path);
}

/// locale-float scope: everywhere except util/ (which owns the sanctioned
/// locale-independent formatting helpers).
bool locale_scoped(const std::string& path) { return !in_dir(path, "util"); }

// -------------------------------------------------------------- scrubber

/// Extract rule ids from a comment body containing `detlint:allow(...)`.
std::vector<std::string> parse_allows(std::string_view comment) {
  std::vector<std::string> out;
  const std::string_view marker = "detlint:allow(";
  std::size_t at = comment.find(marker);
  while (at != std::string_view::npos) {
    const std::size_t open = at + marker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) break;
    std::string id;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = i < close ? comment[i] : ',';
      if (c == ',' || c == ' ') {
        if (!id.empty()) out.push_back(id);
        id.clear();
      } else {
        id.push_back(c);
      }
    }
    at = comment.find(marker, close);
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kUnorderedIteration,
       "iteration over std::unordered_map/_set in a file that emits "
       "report/CSV/JSONL output"},
      {kBannedEntropy,
       "ambient entropy (rand, srand, std::random_device, time(), "
       "std::chrono::system_clock) inside src/sim, src/policy, src/exp, "
       "src/fault, or the streaming readers under src/trace"},
      {kLocaleFloat,
       "locale-sensitive float formatting/parsing outside util/ (stream "
       "precision manipulators, printf float conversions, stod/strtod, "
       "locale installs)"},
  };
  return kRules;
}

Scrubbed scrub(std::string_view source) {
  Scrubbed out;
  out.code.reserve(source.size());
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  int line = 1;
  int comment_line = 1;       // line a comment started on
  std::string comment_text;   // accumulated comment body
  std::string raw_delim;      // raw string closing delimiter: )delim"

  auto flush_comment = [&] {
    for (const std::string& rule : parse_allows(comment_text)) {
      out.allows[comment_line].push_back(rule);
    }
    comment_text.clear();
  };

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment_line = line;
          out.code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          comment_line = line;
          out.code += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   source[i - 1])) &&
                               source[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          std::size_t open = i + 2;
          std::string delim;
          while (open < source.size() && source[open] != '(') {
            delim.push_back(source[open++]);
          }
          raw_delim = ")" + delim + "\"";
          state = State::kRaw;
          out.code += "  ";
          for (std::size_t k = i + 2; k <= open && k < source.size(); ++k) {
            out.code += ' ';
          }
          i = open;  // consumed through '('
        } else if (c == '"') {
          state = State::kString;
          out.code += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out.code += ' ';
        } else {
          out.code += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          flush_comment();
          state = State::kCode;
          out.code += '\n';
        } else {
          comment_text += c;
          out.code += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          out.code += "  ";
          ++i;
        } else {
          comment_text += c;
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out.code += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out.code += ' ';
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.code += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.code += ' ';
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kRaw:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out.code += ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          out.code += c == '\n' ? '\n' : ' ';
        }
        break;
    }
    if (c == '\n') ++line;
  }
  if (state == State::kLine || state == State::kBlock) flush_comment();
  return out;
}

namespace {

// ---------------------------------------------------------- lint helpers

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.emplace_back(text.substr(start, end - start));
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

/// Does the raw source include any header that can emit report output?
bool output_adjacent(const std::vector<std::string>& raw_lines) {
  static const std::regex include_re(
      R"(^\s*#\s*include\s*[<"]([^">]+)[">])");
  static const std::string_view signals[] = {
      "csv.h",     "jsonl_writer.h", "report_io.h", "scenario_report.h",
      "ostream",   "fstream",        "sstream",     "iostream",
      "cstdio",    "stdio.h",
  };
  for (const std::string& line : raw_lines) {
    std::smatch m;
    if (!std::regex_search(line, m, include_re)) continue;
    const std::string header = m[1].str();
    for (const std::string_view s : signals) {
      if (header.find(s) != std::string::npos) return true;
    }
  }
  return false;
}

/// Names declared (anywhere in the scrubbed text) with an unordered
/// container type. Lexical: find `unordered_map<`/`unordered_set<`, walk
/// to the matching `>`, take the next identifier.
std::vector<std::string> unordered_names(std::string_view code) {
  std::vector<std::string> names;
  for (const std::string_view kind : {"unordered_map", "unordered_set"}) {
    std::size_t at = code.find(kind);
    while (at != std::string_view::npos) {
      std::size_t i = at + kind.size();
      while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
      if (i < code.size() && code[i] == '<') {
        int depth = 0;
        for (; i < code.size(); ++i) {
          if (code[i] == '<') ++depth;
          if (code[i] == '>' && --depth == 0) break;
        }
        ++i;  // past the closing '>'
        while (i < code.size() &&
               (std::isspace(static_cast<unsigned char>(code[i])) ||
                code[i] == '&' || code[i] == '*')) {
          ++i;
        }
        std::string name;
        while (i < code.size() &&
               (std::isalnum(static_cast<unsigned char>(code[i])) ||
                code[i] == '_')) {
          name.push_back(code[i++]);
        }
        if (!name.empty()) names.push_back(name);
      }
      at = code.find(kind, at + kind.size());
    }
  }
  return names;
}

struct Pattern {
  std::regex re;
  std::string message;
};

const std::vector<Pattern>& entropy_patterns() {
  static const std::vector<Pattern> kPatterns = [] {
    std::vector<Pattern> p;
    p.push_back({std::regex(R"((^|[^\w])rand\s*\()"),
                 "call to rand() — nondeterministic across runs"});
    p.push_back({std::regex(R"(\bsrand\s*\()"),
                 "call to srand() — global RNG state poisons determinism"});
    p.push_back({std::regex(R"(\brandom_device\b)"),
                 "std::random_device draws ambient entropy"});
    p.push_back({std::regex(R"((^|[^\w.>])time\s*\()"),
                 "call to time() — wall clock leaks into the simulation"});
    p.push_back({std::regex(R"(\bsystem_clock\b)"),
                 "std::chrono::system_clock reads the wall clock"});
    return p;
  }();
  return kPatterns;
}

const std::vector<Pattern>& locale_patterns() {
  static const std::vector<Pattern> kPatterns = [] {
    std::vector<Pattern> p;
    p.push_back({std::regex(R"(\bsetlocale\s*\()"),
                 "setlocale() changes process-wide number formatting"});
    p.push_back({std::regex(R"(std::locale\s*[({])"),
                 "std::locale construction — named locales change float "
                 "formatting"});
    p.push_back({std::regex(R"(\.\s*precision\s*\()"),
                 "stream precision() implies locale-sensitive float "
                 "formatting"});
    p.push_back({std::regex(R"(\bsetprecision\s*\()"),
                 "std::setprecision implies locale-sensitive float "
                 "formatting"});
    p.push_back({std::regex(R"(std::(fixed|scientific|hexfloat|defaultfloat)\b)"),
                 "float-format manipulator writes through the stream's "
                 "locale"});
    p.push_back({std::regex(R"(\b(stod|stof|strtod|strtof)\s*\()"),
                 "locale-sensitive float parsing (stod/strtod family)"});
    return p;
  }();
  return kPatterns;
}

bool suppressed(const Scrubbed& scrubbed, int line, std::string_view rule) {
  for (const int l : {line, line - 1}) {
    const auto it = scrubbed.allows.find(l);
    if (it == scrubbed.allows.end()) continue;
    for (const std::string& allowed : it->second) {
      if (allowed == rule || allowed == "*") return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view source) {
  const std::string norm = normalized(path);
  const Scrubbed scrubbed = scrub(source);
  const std::vector<std::string> raw_lines = split_lines(source);
  const std::vector<std::string> code_lines = split_lines(scrubbed.code);

  std::vector<Finding> findings;
  const auto report = [&](int line, std::string_view rule,
                          std::string message, std::string_view hint) {
    if (suppressed(scrubbed, line, rule)) return;
    findings.push_back(Finding{path, line, std::string(rule),
                               std::move(message), std::string(hint)});
  };

  // ---- unordered-iteration -------------------------------------------
  if (output_adjacent(raw_lines)) {
    const std::vector<std::string> names = unordered_names(scrubbed.code);
    for (const std::string& name : names) {
      const std::regex range_for(R"(for\s*\([^;)]*:\s*)" + name + R"(\s*\))");
      const std::regex begin_call("\\b" + name + R"(\s*\.\s*c?begin\s*\()");
      for (std::size_t l = 0; l < code_lines.size(); ++l) {
        if (std::regex_search(code_lines[l], range_for) ||
            std::regex_search(code_lines[l], begin_call)) {
          report(static_cast<int>(l + 1), kUnorderedIteration,
                 "iteration over unordered container '" + name +
                     "' in an output-adjacent file — hash order is not "
                     "deterministic",
                 kUnorderedHint);
        }
      }
    }
  }

  // ---- banned-entropy -------------------------------------------------
  if (entropy_scoped(norm)) {
    for (std::size_t l = 0; l < code_lines.size(); ++l) {
      for (const Pattern& p : entropy_patterns()) {
        if (std::regex_search(code_lines[l], p.re)) {
          report(static_cast<int>(l + 1), kBannedEntropy, p.message,
                 kEntropyHint);
        }
      }
    }
  }

  // ---- locale-float ---------------------------------------------------
  if (locale_scoped(norm)) {
    static const std::regex printf_re(
        R"(\b(printf|fprintf|sprintf|snprintf|vsnprintf)\s*\()");
    static const std::regex float_conv_re(R"(%[-+ #0-9.*']*l?[aefgAEFG])");
    for (std::size_t l = 0; l < code_lines.size(); ++l) {
      const std::string& code_line = code_lines[l];
      for (const Pattern& p : locale_patterns()) {
        if (!std::regex_search(code_line, p.re)) continue;
        // imbue()/construction of the classic locale is the sanctioned
        // determinism *fix*, not a hazard.
        if (code_line.find("locale::classic") != std::string::npos) continue;
        report(static_cast<int>(l + 1), kLocaleFloat, p.message, kLocaleHint);
      }
      if (std::regex_search(code_line, printf_re) &&
          l < raw_lines.size() &&
          std::regex_search(raw_lines[l], float_conv_re)) {
        report(static_cast<int>(l + 1), kLocaleFloat,
               "printf-family float conversion formats through the C "
               "locale of the moment",
               kLocaleHint);
      }
      static const std::regex imbue_re(R"(\.\s*imbue\s*\()");
      if (std::regex_search(code_line, imbue_re) &&
          code_line.find("locale::classic") == std::string::npos) {
        report(static_cast<int>(l + 1), kLocaleFloat,
               "imbue() with a non-classic locale changes emitted bytes",
               kLocaleHint);
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("detlint: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path, buffer.str());
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  static const std::string_view exts[] = {".h", ".hpp", ".cc", ".cpp",
                                          ".cxx"};
  const auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return std::find(std::begin(exts), std::end(exts), ext) != std::end(exts);
  };
  std::vector<std::string> out;
  for (const std::string& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_source(entry.path())) {
          out.push_back(entry.path().generic_string());
        }
      }
    } else {
      out.push_back(path);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace detlint
