// prlint.h — whole-program passes of the prlint analyzer.
//
// detlint.h holds the per-file lexical rules; this header holds the two
// passes that need to see the program as a whole:
//
//   layer-dag     the architecture is a DAG of layers declared in
//                 tools/detlint/layers.ini (bottom layer first). A file
//                 may #include its own layer or any layer below it;
//                 an upward include, an include into a directory absent
//                 from the declaration, or a file-level #include cycle is
//                 a finding. The include graph is extracted here, from
//                 the sources themselves — no compiler, no dependencies.
//   schema-drift  the CSV columns emitted by exp/scenario_report.cpp and
//                 the JSONL keys emitted by obs/jsonl_writer.cpp must
//                 each appear in their documentation table
//                 (EXPERIMENTS.md and docs/OBSERVABILITY.md). Golden
//                 tests catch a drifted schema *after* a run; this
//                 rejects the undocumented column at lint time.
//
// Both passes honor `// detlint:allow(<rule>)` markers on the offending
// line or the line above, exactly like the per-file rules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "detlint.h"

namespace prlint {

using detlint::Finding;
using detlint::RuleInfo;

/// The whole-program rule catalogue (appended to detlint::rules() by the
/// CLI's --list-rules).
const std::vector<RuleInfo>& rules();

/// One source file held in memory; `path` may be virtual (fixtures).
struct SourceFile {
  std::string path;
  std::string source;
};

/// Read every path into a SourceFile. Throws std::runtime_error on I/O.
std::vector<SourceFile> load_sources(const std::vector<std::string>& paths);

// ----------------------------------------------------------- layer DAG

/// Parsed layers.ini: named layers bottom-to-top, each owning one or
/// more top-level directories under src/.
struct LayerConfig {
  struct Layer {
    std::string name;
    std::vector<std::string> dirs;
  };
  std::vector<Layer> layers;

  /// Rank of `dir` (0 = bottom), or -1 when the directory is undeclared.
  [[nodiscard]] int rank_of(std::string_view dir) const;
  /// Layer name for a rank (valid ranks only).
  [[nodiscard]] const std::string& name_of(int rank) const;
  /// Every declared directory, in declaration order.
  [[nodiscard]] std::vector<std::string> declared_dirs() const;
};

/// Parse layers.ini text. Grammar (INI-lite, same spirit as scenario
/// files): `#`/`;` comments, a single `[layers]` section, then one
/// `name = dir[, dir...]` line per layer, bottom layer first. Throws
/// std::runtime_error with `path:line:` context on malformed input or a
/// directory declared twice.
LayerConfig parse_layers(std::string_view text, const std::string& path);

/// Load and parse a layers.ini file.
LayerConfig load_layers(const std::string& path);

/// One `#include "..."` of a repo-local header.
struct IncludeEdge {
  std::string from;     // src-relative id of the including file
  std::string from_path;  // path as given (for reporting)
  int line = 0;         // 1-based line of the #include
  std::string to;       // include target as written, e.g. "sim/array_sim.h"
};

/// The quoted-include graph over a set of sources. Angle-bracket system
/// includes are ignored; so are same-directory includes written without a
/// path (they cannot cross a layer).
struct IncludeGraph {
  std::vector<std::string> files;  // src-relative ids, sorted
  std::vector<IncludeEdge> edges;
};

IncludeGraph extract_includes(const std::vector<SourceFile>& files);

/// Graphviz DOT of the directory-level include graph (edge weights =
/// number of file-level includes), layered as clusters when a config is
/// given. Stable output: nodes and edges are emitted sorted.
std::string to_dot(const IncludeGraph& graph, const LayerConfig* layers);

/// The layer-dag pass: upward includes, undeclared directories, and
/// file-level include cycles.
std::vector<Finding> check_layers(const std::vector<SourceFile>& files,
                                  const LayerConfig& layers);

// --------------------------------------------------------- schema drift

/// The schema-drift pass. Emitters are recognized by basename
/// (scenario_report.cpp → csv_doc, jsonl_writer.cpp → jsonl_doc); pass
/// empty doc text to skip a side. CSV columns are any comma-separated
/// [a-z0-9_] string literal in the emitter; JSONL keys are `"key":`
/// patterns (plus `"ev":"name"` event names) in its literals. A token is
/// documented when it appears as a whole word in the doc text.
struct SchemaDocs {
  std::string csv_doc_path;    // e.g. EXPERIMENTS.md
  std::string csv_doc;
  std::string jsonl_doc_path;  // e.g. docs/OBSERVABILITY.md
  std::string jsonl_doc;
};

std::vector<Finding> check_schema(const std::vector<SourceFile>& files,
                                  const SchemaDocs& docs);

}  // namespace prlint
