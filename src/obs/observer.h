// observer.h — the simulator's instrumentation spine. Every interesting
// moment in a run (a request completing, a disk changing speed, an epoch
// boundary, a file migration) is announced to an optional SimObserver;
// when none is attached the simulator pays a single null-pointer test per
// emission point (verified by bench/obs_overhead).
//
// Ordering contract (all events carry the simulated time they occurred):
//   * Events are emitted in non-decreasing time order, matching the
//     simulator's deterministic event order — same seed, same stream.
//   * Within one instant: epoch-boundary work precedes arrivals at that
//     instant, so any migrations fired by Policy::on_epoch come first,
//     then the EpochEndEvent that closes the epoch, then request events.
//   * For one request: spin-up transition/state-change events precede its
//     RequestCompleteEvent; Policy::after_serve side effects (cache fills,
//     copies) come after it.
//   * Injected fault events (DiskFailEvent / DiskRecoverEvent) follow any
//     epoch work at their instant and precede DPM events and request
//     events at the same instant. A request's RequestDegradedEvent(s)
//     precede its RequestCompleteEvent (redirected before slowed); a lost
//     request emits only RequestDegradedEvent — no completion.
//   * Rebuild steps (RebuildProgress/Complete, and the DiskRecoverEvent a
//     completion triggers) fall between fault events and DPM events at
//     one instant: epoch work → fault events → rebuild steps → DPM idle
//     checks. A StripeReconstructEvent precedes the degraded request's
//     RequestDegradedEvent(kReconstructed).
#pragma once

#include <cstdint>
#include <vector>

#include "disk/disk.h"
#include "trace/request.h"
#include "util/units.h"

namespace pr {

/// Why a speed transition was initiated.
enum class TransitionCause : std::uint8_t {
  /// DPM idleness-threshold spin-down (Fig. 6's "conserve energy when
  /// idle for H seconds").
  kDpmIdle = 0,
  /// Promotion of a low-speed disk to serve arriving I/O (spin-up-to-serve
  /// or DRPM-style backlog promotion).
  kSpinUpToServe = 1,
  /// Explicit Policy request_transition() (zone reconfiguration).
  kPolicy = 2,
  /// A spun-down disk woken to carry rebuild I/O (source reads or the
  /// reconstructed writes) — the reliability-vs-energy tension made
  /// visible in the transition stream.
  kRebuild = 3,
};

[[nodiscard]] constexpr const char* to_string(TransitionCause c) {
  switch (c) {
    case TransitionCause::kDpmIdle: return "dpm_idle";
    case TransitionCause::kSpinUpToServe: return "spin_up_to_serve";
    case TransitionCause::kPolicy: return "policy";
    case TransitionCause::kRebuild: return "rebuild";
  }
  return "?";
}

/// Coarse per-disk power state derived from the commanded speed. Distinct
/// from SpeedTransitionEvent so downstream consumers that only care about
/// state occupancy (reliability interval analyses) need not model the
/// mechanics.
enum class DiskPowerState : std::uint8_t { kLowPower = 0, kActive = 1 };

[[nodiscard]] constexpr const char* to_string(DiskPowerState s) {
  return s == DiskPowerState::kLowPower ? "low_power" : "active";
}

[[nodiscard]] constexpr DiskPowerState power_state(DiskSpeed s) {
  return s == DiskSpeed::kHigh ? DiskPowerState::kActive
                               : DiskPowerState::kLowPower;
}

/// Fired once, after Policy::initialize() placed every file and chose the
/// per-disk starting speeds, before the first arrival is replayed.
struct RunStartEvent {
  std::size_t disk_count = 0;
  std::size_t file_count = 0;
  Seconds epoch{};
  /// Speed each disk starts the run in (index = disk id).
  std::vector<DiskSpeed> initial_speeds;
};

/// Fired once per served user request, after its completion time is known
/// and before Policy::after_serve runs.
struct RequestCompleteEvent {
  Seconds arrival{};
  Seconds completion{};
  FileId file = kInvalidFile;
  /// Primary serving disk (first chunk's disk for striped requests).
  DiskId disk = 0;
  Bytes bytes = 0;
  /// Seconds of already-queued work at the serving disk(s) on arrival —
  /// the simulator's queue-depth proxy (FCFS backlog, max across chunks).
  Seconds backlog{};
  /// Busy-time the request added across its serving disk(s).
  Seconds service_time{};
  /// Disk-ledger energy delta across the operation. Includes the idle
  /// energy lazily accounted since each disk's previous activity, so the
  /// sum over all events plus the final-idle tail equals total energy.
  Joules energy{};
  /// Number of per-disk chunks (1 unless the policy stripes).
  std::uint32_t stripe_chunks = 1;

  [[nodiscard]] Seconds response_time() const { return completion - arrival; }
};

/// Fired whenever a disk actually changes commanded speed (no-op
/// transitions to the current speed are not reported).
struct SpeedTransitionEvent {
  /// When the transition was requested (it begins after queued work).
  Seconds time{};
  /// When the disk is back in service at the new speed.
  Seconds finish{};
  DiskId disk = 0;
  DiskSpeed from = DiskSpeed::kHigh;
  DiskSpeed to = DiskSpeed::kHigh;
  TransitionCause cause = TransitionCause::kPolicy;
  /// Disk-ledger energy delta across the transition operation: the lump
  /// transition energy plus idle lazily accounted since the disk's
  /// previous activity. For kSpinUpToServe this delta is *also* inside
  /// the enclosing request's RequestCompleteEvent::energy — the
  /// conservation identity (see RunEndEvent) sums transition energies
  /// over non-serve causes only. Not serialized to JSONL (schema v1 is
  /// frozen byte-for-byte).
  Joules energy{};
};

/// Fired alongside SpeedTransitionEvent with the derived power state.
struct DiskStateChangeEvent {
  Seconds time{};
  DiskId disk = 0;
  DiskPowerState from = DiskPowerState::kActive;
  DiskPowerState to = DiskPowerState::kActive;
};

/// Fired at each epoch boundary, after Policy::on_epoch ran and before the
/// per-epoch access counts reset.
struct EpochEndEvent {
  Seconds time{};
  /// 0-based epoch number (epoch k covers (k·P, (k+1)·P]).
  std::uint64_t index = 0;
  /// User requests that arrived within the closing epoch.
  std::uint64_t requests = 0;
};

/// Fired for every ArrayContext::migrate that moved a file.
struct MigrationEvent {
  Seconds time{};
  FileId file = kInvalidFile;
  DiskId from = 0;
  DiskId to = 0;
  Bytes bytes = 0;
  /// Ledger energy delta across the migration's two internal serves
  /// (incl. idle lazily accounted on both disks). Not serialized to JSONL.
  Joules energy{};
};

/// Fired for every ArrayContext::background_copy (MAID cache fills,
/// replica creation) — internal I/O that is otherwise invisible to
/// observers, which the energy-conservation identity needs. Off by
/// default in JsonlTraceWriter (schema v1 is frozen).
struct BackgroundCopyEvent {
  Seconds time{};
  DiskId from = 0;
  DiskId to = 0;
  Bytes bytes = 0;
  /// Ledger energy delta across the copy's internal serves.
  Joules energy{};
};

/// How an injected fault degrades a disk.
enum class FaultMode : std::uint8_t { kFailStop = 0, kSlowdown = 1 };

[[nodiscard]] constexpr const char* to_string(FaultMode m) {
  return m == FaultMode::kFailStop ? "fail_stop" : "slowdown";
}

/// Fired when an injected fault takes effect on a disk: kFailStop removes
/// it from the legal route targets, kSlowdown inflates its service by
/// `factor` (a factor of 1 announces a return to nominal speed).
struct DiskFailEvent {
  Seconds time{};
  DiskId disk = 0;
  FaultMode mode = FaultMode::kFailStop;
  /// Service inflation multiplier (kSlowdown only; 1.0 for kFailStop).
  double factor = 1.0;
};

/// Fired when a failed disk returns to service.
struct DiskRecoverEvent {
  Seconds time{};
  DiskId disk = 0;
  /// How long the disk was failed.
  Seconds downtime{};
};

/// What happened to a request whose routed disk was degraded.
enum class DegradedOutcome : std::uint8_t {
  /// Served by an alternate disk the policy named (replica, MAID cache).
  kRedirected = 0,
  /// Served by a slowed disk (service inflated by the slowdown factor).
  kSlowed = 1,
  /// No live copy — the request was recorded as lost, not served.
  kLost = 2,
  /// Rebuilt from parity: served by costed reads on the surviving stripe
  /// units (see StripeReconstructEvent for the fan-out).
  kReconstructed = 3,
};

[[nodiscard]] constexpr const char* to_string(DegradedOutcome o) {
  switch (o) {
    case DegradedOutcome::kRedirected: return "redirected";
    case DegradedOutcome::kSlowed: return "slowed";
    case DegradedOutcome::kLost: return "lost";
    case DegradedOutcome::kReconstructed: return "reconstructed";
  }
  return "?";
}

/// Fired at a request's arrival instant when faults perturbed its service.
/// Precedes the request's RequestCompleteEvent; a kLost request emits only
/// this (no completion, and it is excluded from response-time stats and
/// the served-request count).
struct RequestDegradedEvent {
  Seconds time{};  ///< the request's arrival
  FileId file = kInvalidFile;
  /// Disk the policy's route()/stripe() chose before the fault check.
  DiskId intended = 0;
  /// Disk that actually served it (== intended for kSlowed; for kLost no
  /// disk served it and this echoes `intended`).
  DiskId served_by = 0;
  DegradedOutcome outcome = DegradedOutcome::kLost;
  /// Slowdown factor applied (kSlowed only; 1.0 otherwise).
  double slowdown = 1.0;
};

/// Fired when a parity rebuild of a failed disk begins (at the failure
/// instant — the scheme knows immediately how much must be reconstructed).
struct RebuildStartEvent {
  Seconds time{};
  DiskId disk = 0;
  /// Bytes placed on the failed disk that the rebuild must reconstruct.
  Bytes bytes = 0;
};

/// Fired after each rebuild step's I/O (source reads + the reconstructed
/// write) was issued. Progress is cumulative.
struct RebuildProgressEvent {
  Seconds time{};
  DiskId disk = 0;
  Bytes done = 0;
  Bytes total = 0;
  /// Ledger energy delta across the step's internal serves and rebuild
  /// wake-ups — this is the rebuild's slice of the conservation identity
  /// (see RunEndEvent).
  Joules energy{};
};

/// Fired when a rebuild finishes; a DiskRecoverEvent for the same disk at
/// the same instant follows (the rebuilt disk returns to service through
/// the normal fault machinery, so its measured downtime is the rebuild
/// duration plus any pre-rebuild lag).
struct RebuildCompleteEvent {
  Seconds time{};
  DiskId disk = 0;
  Bytes bytes = 0;
  /// Failure-to-completion duration (the observed repair time — an
  /// *output* feeding the MTTDL agreement check, not an input).
  Seconds duration{};
};

/// Fired at a degraded request's arrival instant when parity reconstructs
/// the failed unit: `sources` disks each served a costed read of `bytes`.
/// Precedes the request's RequestDegradedEvent(kReconstructed).
struct StripeReconstructEvent {
  Seconds time{};
  FileId file = kInvalidFile;
  /// The failed disk whose data was reconstructed.
  DiskId failed = 0;
  /// Number of surviving stripe units read (g − 1 when all survive).
  std::uint32_t sources = 0;
  /// Bytes reconstructed (read from *each* source).
  Bytes bytes = 0;
};

/// Fired at each epoch boundary of a control-enabled run
/// (SimConfig::control.enabled), after the ControlLoop folded the closing
/// epoch's window and the simulator actuated its decision — so the event
/// reports both the observed window and what was done about it. Follows
/// the boundary's EpochEndEvent; never fires when control is disabled.
/// Plain scalars only: obs sits below the control layer and does not see
/// its types.
struct ControlUpdateEvent {
  Seconds time{};
  /// 0-based index of the epoch that just closed.
  std::uint64_t epoch_index = 0;
  /// User requests served inside the closed epoch.
  std::uint64_t requests = 0;
  /// Requests shed by the admission window inside the closed epoch.
  std::uint64_t shed = 0;
  /// Mean response time over the epoch's served requests, seconds.
  double mean_rt_s = 0.0;
  /// Worst FCFS backlog seen at any dispatch inside the epoch, seconds.
  double max_backlog_s = 0.0;
  /// Ledger energy spent across the epoch, joules (all disks).
  double energy_j = 0.0;
  /// Idleness-threshold multiplier the latency controller requested
  /// (1 = hold; per-disk clamping happens at actuation).
  double h_scale = 1.0;
  /// Hot-zone resize the policy actually applied (post-guardrail).
  int hot_delta = 0;
  /// Epoch-length multiplier the backlog controller requested (1 = hold).
  double epoch_scale = 1.0;
  /// Epoch length in force after actuation, seconds.
  double epoch_len_s = 0.0;
};

/// Fired once after the trailing events drained and every ledger closed.
///
/// Conservation identity (pinned by tests/test_observer.cpp): with Σ over
/// the run's events,
///   Σ RequestCompleteEvent::energy
///   + Σ SpeedTransitionEvent::energy  (cause != kSpinUpToServe
///                                      and cause != kRebuild)
///   + Σ MigrationEvent::energy + Σ BackgroundCopyEvent::energy
///   + Σ RebuildProgressEvent::energy
///   + final_idle_energy
///   == total_energy == Σ per-disk ledger energy
/// (equal up to floating-point accumulation error; kRebuild transition
/// deltas are inside their step's RebuildProgressEvent::energy, exactly
/// as kSpinUpToServe deltas are inside their request's event).
struct RunEndEvent {
  Seconds horizon{};
  std::uint64_t user_requests = 0;
  Joules total_energy{};
  /// Idle energy accrued after each disk's last activity, accounted when
  /// the ledgers close at the horizon. Not serialized to JSONL.
  Joules final_idle_energy{};
};

/// Hook interface. All callbacks default to no-ops so observers override
/// only what they consume. Observers must not mutate simulation state —
/// the hooks are read-only by contract (they receive value snapshots).
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  virtual void on_run_start(const RunStartEvent& event) { (void)event; }
  virtual void on_request_complete(const RequestCompleteEvent& event) {
    (void)event;
  }
  virtual void on_speed_transition(const SpeedTransitionEvent& event) {
    (void)event;
  }
  virtual void on_disk_state_change(const DiskStateChangeEvent& event) {
    (void)event;
  }
  virtual void on_epoch_end(const EpochEndEvent& event) { (void)event; }
  virtual void on_migration(const MigrationEvent& event) { (void)event; }
  virtual void on_background_copy(const BackgroundCopyEvent& event) {
    (void)event;
  }
  virtual void on_disk_fail(const DiskFailEvent& event) { (void)event; }
  virtual void on_disk_recover(const DiskRecoverEvent& event) { (void)event; }
  virtual void on_request_degraded(const RequestDegradedEvent& event) {
    (void)event;
  }
  virtual void on_rebuild_start(const RebuildStartEvent& event) {
    (void)event;
  }
  virtual void on_rebuild_progress(const RebuildProgressEvent& event) {
    (void)event;
  }
  virtual void on_rebuild_complete(const RebuildCompleteEvent& event) {
    (void)event;
  }
  virtual void on_stripe_reconstruct(const StripeReconstructEvent& event) {
    (void)event;
  }
  virtual void on_control_update(const ControlUpdateEvent& event) {
    (void)event;
  }
  virtual void on_run_end(const RunEndEvent& event) { (void)event; }
};

/// Fan-out to several observers in registration order (SimulationSession
/// uses this when more than one observer is attached).
class ObserverList final : public SimObserver {
 public:
  ObserverList() = default;

  void add(SimObserver& observer) { observers_.push_back(&observer); }
  [[nodiscard]] bool empty() const { return observers_.empty(); }
  [[nodiscard]] std::size_t size() const { return observers_.size(); }
  /// The attached observer when exactly one is present (lets callers skip
  /// the fan-out indirection), nullptr otherwise.
  [[nodiscard]] SimObserver* sole() const {
    return observers_.size() == 1 ? observers_.front() : nullptr;
  }

  void on_run_start(const RunStartEvent& event) override {
    for (auto* o : observers_) o->on_run_start(event);
  }
  void on_request_complete(const RequestCompleteEvent& event) override {
    for (auto* o : observers_) o->on_request_complete(event);
  }
  void on_speed_transition(const SpeedTransitionEvent& event) override {
    for (auto* o : observers_) o->on_speed_transition(event);
  }
  void on_disk_state_change(const DiskStateChangeEvent& event) override {
    for (auto* o : observers_) o->on_disk_state_change(event);
  }
  void on_epoch_end(const EpochEndEvent& event) override {
    for (auto* o : observers_) o->on_epoch_end(event);
  }
  void on_migration(const MigrationEvent& event) override {
    for (auto* o : observers_) o->on_migration(event);
  }
  void on_background_copy(const BackgroundCopyEvent& event) override {
    for (auto* o : observers_) o->on_background_copy(event);
  }
  void on_disk_fail(const DiskFailEvent& event) override {
    for (auto* o : observers_) o->on_disk_fail(event);
  }
  void on_disk_recover(const DiskRecoverEvent& event) override {
    for (auto* o : observers_) o->on_disk_recover(event);
  }
  void on_request_degraded(const RequestDegradedEvent& event) override {
    for (auto* o : observers_) o->on_request_degraded(event);
  }
  void on_rebuild_start(const RebuildStartEvent& event) override {
    for (auto* o : observers_) o->on_rebuild_start(event);
  }
  void on_rebuild_progress(const RebuildProgressEvent& event) override {
    for (auto* o : observers_) o->on_rebuild_progress(event);
  }
  void on_rebuild_complete(const RebuildCompleteEvent& event) override {
    for (auto* o : observers_) o->on_rebuild_complete(event);
  }
  void on_stripe_reconstruct(const StripeReconstructEvent& event) override {
    for (auto* o : observers_) o->on_stripe_reconstruct(event);
  }
  void on_control_update(const ControlUpdateEvent& event) override {
    for (auto* o : observers_) o->on_control_update(event);
  }
  void on_run_end(const RunEndEvent& event) override {
    for (auto* o : observers_) o->on_run_end(event);
  }

 private:
  std::vector<SimObserver*> observers_;
};

}  // namespace pr
