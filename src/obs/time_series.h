// time_series.h — windowed per-disk telemetry. Aggregate end-of-run
// numbers hide every time-resolved behaviour the policies exhibit (READ's
// adaptive-H doubling, PDC migration churn, MAID cache-disk thrashing);
// this observer buckets activity into fixed windows (default 60 s) so
// those phenomena become visible and plottable.
//
// Attribution semantics (documented, deliberately simple):
//   * Request/migration quantities land in the window of the event time
//     (the arrival instant), even when service spills past the boundary.
//   * `energy` is the disk-ledger energy delta across each operation —
//     busy energy plus the idle energy lazily accounted since the disk's
//     previous activity — so the per-window series sums to the run total
//     minus only the post-final-activity idle tail.
//   * `time_at_high` integrates the commanded speed signal exactly across
//     window boundaries (from DiskStateChangeEvents).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/observer.h"

namespace pr {

/// Accumulators for one disk within one window.
struct WindowSample {
  std::uint64_t requests = 0;
  Bytes bytes = 0;
  /// Busy time the window's requests added on this disk.
  Seconds busy{0.0};
  /// Ledger energy delta attributed at event times (see header comment).
  Joules energy{0.0};
  /// Worst FCFS backlog observed at an arrival in this window (queue-depth
  /// proxy, seconds of queued work).
  Seconds max_backlog{0.0};
  std::uint64_t transitions_up = 0;
  std::uint64_t transitions_down = 0;
  /// Seconds of this window the disk's commanded speed was high.
  Seconds time_at_high{0.0};
  std::uint64_t migrations_in = 0;
  std::uint64_t migrations_out = 0;
  /// Requests perturbed by injected faults, attributed to the *intended*
  /// disk's arrival window (always 0 without a FaultPlan): redirected or
  /// slowed serves, and requests lost outright.
  std::uint64_t degraded_requests = 0;
  std::uint64_t lost_requests = 0;

  /// Approximate utilization: busy seconds attributed here over the
  /// window length (can exceed 1 when long services pile into the
  /// arrival window).
  [[nodiscard]] double utilization(Seconds window) const {
    return window.value() > 0.0 ? busy / window : 0.0;
  }
  /// Fraction of the window spent at high speed — the "temperature band"
  /// signal (§3.2: operating temperature follows speed).
  [[nodiscard]] double high_speed_fraction(Seconds window) const {
    return window.value() > 0.0 ? time_at_high / window : 0.0;
  }
};

class TimeSeriesRecorder final : public SimObserver {
 public:
  /// `window` must be positive (throws std::invalid_argument otherwise).
  explicit TimeSeriesRecorder(Seconds window = Seconds{60.0});

  void on_run_start(const RunStartEvent& event) override;
  void on_request_complete(const RequestCompleteEvent& event) override;
  void on_speed_transition(const SpeedTransitionEvent& event) override;
  void on_epoch_end(const EpochEndEvent& event) override;
  void on_migration(const MigrationEvent& event) override;
  void on_request_degraded(const RequestDegradedEvent& event) override;
  void on_run_end(const RunEndEvent& event) override;

  [[nodiscard]] Seconds window_length() const { return window_; }
  [[nodiscard]] std::size_t disk_count() const { return disk_count_; }
  /// Number of materialized windows (last event / horizon rounded up).
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }
  /// Start time of window `w`.
  [[nodiscard]] Seconds window_start(std::size_t w) const {
    return Seconds{static_cast<double>(w) * window_.value()};
  }
  [[nodiscard]] const WindowSample& at(std::size_t w, DiskId disk) const;
  /// Sum of a window's samples across all disks.
  [[nodiscard]] WindowSample array_total(std::size_t w) const;

  /// Epoch boundaries seen, as (time, user requests in the epoch).
  [[nodiscard]] const std::vector<std::pair<Seconds, std::uint64_t>>&
  epoch_marks() const {
    return epoch_marks_;
  }

  /// Long-form CSV (one row per window × disk) with a header row.
  void write_csv(std::ostream& out) const;

 private:
  WindowSample& sample(std::size_t w, DiskId disk);
  [[nodiscard]] std::size_t window_of(Seconds t) const;
  /// Extend the windows_ vector so `w` is addressable.
  void ensure_window(std::size_t w);
  /// Integrate the commanded-speed signal of `disk` up to `t`.
  void account_speed_until(DiskId disk, Seconds t);

  Seconds window_{60.0};
  std::size_t disk_count_ = 0;
  /// windows_[w][disk]
  std::vector<std::vector<WindowSample>> windows_;
  std::vector<DiskSpeed> current_speed_;
  std::vector<Seconds> speed_since_;
  std::vector<std::pair<Seconds, std::uint64_t>> epoch_marks_;
};

}  // namespace pr
