// jsonl_writer.h — streams simulation events to a JSON Lines file/stream,
// one self-describing object per line, in emission order. Because the
// simulator's event order is deterministic, two same-seed runs produce
// byte-identical output (numbers are printed at full precision with a
// fixed format; no wall-clock or locale state leaks in) — verified by
// tests/test_observer.cpp.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>

#include "obs/observer.h"

namespace pr {

/// Which event kinds are written (all by default). Request lines dominate
/// file size on big traces; disable them to keep only the control-plane
/// events (transitions, epochs, migrations).
struct JsonlOptions {
  bool requests = true;
  bool transitions = true;
  bool state_changes = true;
  bool epochs = true;
  bool migrations = true;
  /// Fault-injection lines (disk_fail/disk_recover/request_degraded).
  /// On by default: they only fire when a FaultPlan is attached, so
  /// fault-free traces are unchanged.
  bool faults = true;
  /// Background-copy lines. Off by default: these fire in existing
  /// MAID/replication runs, and the v1 trace schema is frozen
  /// byte-for-byte — opt in to see cache-fill/replica traffic.
  bool copies = false;
  /// Redundancy-layer lines (rebuild_start/rebuild_progress/
  /// rebuild_complete/stripe_reconstruct). On by default: they only fire
  /// when a parity RedundancyScheme is configured and faults strike, so
  /// every pre-redundancy trace is unchanged (v1 schema safe).
  bool rebuilds = true;
  /// Control-loop lines (one per epoch boundary of a control-enabled
  /// run). On by default: they only fire when SimConfig::control.enabled
  /// is set, so every control-free trace is unchanged (v1 schema safe).
  bool control = true;
};

class JsonlTraceWriter final : public SimObserver {
 public:
  /// Write to a caller-owned stream (kept open; flushed at run end).
  explicit JsonlTraceWriter(std::ostream& out, JsonlOptions options = {});
  /// Open `path` for writing (throws std::runtime_error on failure).
  explicit JsonlTraceWriter(const std::string& path, JsonlOptions options = {});

  void on_run_start(const RunStartEvent& event) override;
  void on_request_complete(const RequestCompleteEvent& event) override;
  void on_speed_transition(const SpeedTransitionEvent& event) override;
  void on_disk_state_change(const DiskStateChangeEvent& event) override;
  void on_epoch_end(const EpochEndEvent& event) override;
  void on_migration(const MigrationEvent& event) override;
  void on_background_copy(const BackgroundCopyEvent& event) override;
  void on_disk_fail(const DiskFailEvent& event) override;
  void on_disk_recover(const DiskRecoverEvent& event) override;
  void on_request_degraded(const RequestDegradedEvent& event) override;
  void on_rebuild_start(const RebuildStartEvent& event) override;
  void on_rebuild_progress(const RebuildProgressEvent& event) override;
  void on_rebuild_complete(const RebuildCompleteEvent& event) override;
  void on_stripe_reconstruct(const StripeReconstructEvent& event) override;
  void on_control_update(const ControlUpdateEvent& event) override;
  void on_run_end(const RunEndEvent& event) override;

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream& line();
  /// Pin the classic "C" locale so host-installed global locales cannot
  /// add grouping separators to the integer fields.
  void imbue_classic();

  std::ofstream owned_;
  std::ostream* out_;
  JsonlOptions options_;
  std::uint64_t lines_ = 0;
};

}  // namespace pr
