// counter_registry.h — named monotonic counters with interned handles.
// The simulator's hot paths bump counters through pre-interned handles
// (one vector add, no string hashing per event); policies keep the
// string-keyed convenience API. A sorted snapshot feeds
// SimResult::counters and thereby SystemReport / report_io.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/contracts.h"

namespace pr {

class CounterRegistry {
 public:
  /// Stable dense index of a counter within this registry.
  using Handle = std::size_t;

  CounterRegistry() = default;

  /// Find-or-create the counter named `name` (created at zero). Handles
  /// stay valid for the registry's lifetime.
  Handle intern(std::string_view name);

  /// O(1) bump through a pre-interned handle.
  void add(Handle handle, std::uint64_t by = 1) {
    PR_PRECONDITION(handle < values_.size(),
                    "CounterRegistry::add: handle was never interned here");
    values_[handle] += by;
  }

  /// Convenience bump by name (interns on first use).
  void add(std::string_view name, std::uint64_t by = 1) {
    values_[intern(name)] += by;
  }

  [[nodiscard]] std::uint64_t value(Handle handle) const {
    PR_PRECONDITION(handle < values_.size(),
                    "CounterRegistry::value: handle was never interned here");
    return values_.at(handle);
  }
  /// Current value by name; 0 for a counter never interned.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const {
    return index_.find(name) != index_.end();
  }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::string& name(Handle handle) const {
    PR_PRECONDITION(handle < names_.size(),
                    "CounterRegistry::name: handle was never interned here");
    return names_.at(handle);
  }

  /// Name-sorted copy of every counter (zero-valued ones included, so a
  /// registered-but-never-hit counter is still visible in reports).
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

 private:
  std::vector<std::uint64_t> values_;
  std::vector<std::string> names_;
  std::map<std::string, Handle, std::less<>> index_;
};

}  // namespace pr
