#include "obs/counter_registry.h"

namespace pr {

CounterRegistry::Handle CounterRegistry::intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const Handle handle = values_.size();
  values_.push_back(0);
  names_.emplace_back(name);
  index_.emplace(names_.back(), handle);
  return handle;
}

std::uint64_t CounterRegistry::value(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0 : values_[it->second];
}

std::map<std::string, std::uint64_t> CounterRegistry::snapshot() const {
  std::map<std::string, std::uint64_t> out;
  for (Handle h = 0; h < values_.size(); ++h) {
    out.emplace(names_[h], values_[h]);
  }
  return out;
}

}  // namespace pr
