#include "obs/jsonl_writer.h"

#include <locale>
#include <ostream>
#include <stdexcept>

#include "util/fmt.h"

namespace pr {

JsonlTraceWriter::JsonlTraceWriter(std::ostream& out, JsonlOptions options)
    : out_(&out), options_(options) {
  imbue_classic();
}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path,
                                   JsonlOptions options)
    : owned_(path, std::ios::binary), out_(&owned_), options_(options) {
  if (!owned_) {
    throw std::runtime_error("JsonlTraceWriter: cannot open " + path);
  }
  imbue_classic();
}

void JsonlTraceWriter::imbue_classic() {
  // Byte determinism: floats are formatted via util/fmt.h below, and the
  // classic locale keeps integer output free of grouping separators no
  // matter what std::locale::global(...) the host installed.
  out_->imbue(std::locale::classic());
}

std::ostream& JsonlTraceWriter::line() {
  ++lines_;
  return *out_;
}

void JsonlTraceWriter::on_run_start(const RunStartEvent& event) {
  auto& out = line();
  out << R"({"ev":"run_start","disks":)" << event.disk_count << R"(,"files":)"
      << event.file_count << R"(,"epoch_s":)" << format_double(event.epoch.value(), 17)
      << R"(,"initial_speeds":[)";
  for (std::size_t d = 0; d < event.initial_speeds.size(); ++d) {
    if (d > 0) out << ',';
    out << '"' << to_string(event.initial_speeds[d]) << '"';
  }
  out << "]}\n";
}

void JsonlTraceWriter::on_request_complete(const RequestCompleteEvent& event) {
  if (!options_.requests) return;
  line() << R"({"ev":"request","t":)" << format_double(event.arrival.value(), 17)
         << R"(,"completion":)" << format_double(event.completion.value(), 17) << R"(,"file":)"
         << event.file << R"(,"disk":)" << event.disk << R"(,"bytes":)"
         << event.bytes << R"(,"rt_s":)" << format_double(event.response_time().value(), 17)
         << R"(,"backlog_s":)" << format_double(event.backlog.value(), 17) << R"(,"service_s":)"
         << format_double(event.service_time.value(), 17) << R"(,"energy_j":)"
         << format_double(event.energy.value(), 17) << R"(,"chunks":)" << event.stripe_chunks
         << "}\n";
}

void JsonlTraceWriter::on_speed_transition(const SpeedTransitionEvent& event) {
  if (!options_.transitions) return;
  line() << R"({"ev":"transition","t":)" << format_double(event.time.value(), 17)
         << R"(,"finish":)" << format_double(event.finish.value(), 17) << R"(,"disk":)"
         << event.disk << R"(,"from":")" << to_string(event.from)
         << R"(","to":")" << to_string(event.to) << R"(","cause":")"
         << to_string(event.cause) << "\"}\n";
}

void JsonlTraceWriter::on_disk_state_change(const DiskStateChangeEvent& event) {
  if (!options_.state_changes) return;
  line() << R"({"ev":"disk_state","t":)" << format_double(event.time.value(), 17)
         << R"(,"disk":)" << event.disk << R"(,"from":")"
         << to_string(event.from) << R"(","to":")" << to_string(event.to)
         << "\"}\n";
}

void JsonlTraceWriter::on_epoch_end(const EpochEndEvent& event) {
  if (!options_.epochs) return;
  line() << R"({"ev":"epoch_end","t":)" << format_double(event.time.value(), 17)
         << R"(,"index":)" << event.index << R"(,"requests":)"
         << event.requests << "}\n";
}

void JsonlTraceWriter::on_migration(const MigrationEvent& event) {
  if (!options_.migrations) return;
  line() << R"({"ev":"migration","t":)" << format_double(event.time.value(), 17) << R"(,"file":)"
         << event.file << R"(,"from":)" << event.from << R"(,"to":)"
         << event.to << R"(,"bytes":)" << event.bytes << "}\n";
}

void JsonlTraceWriter::on_background_copy(const BackgroundCopyEvent& event) {
  if (!options_.copies) return;
  line() << R"({"ev":"copy","t":)" << format_double(event.time.value(), 17)
         << R"(,"from":)" << event.from << R"(,"to":)" << event.to
         << R"(,"bytes":)" << event.bytes << R"(,"energy_j":)"
         << format_double(event.energy.value(), 17) << "}\n";
}

void JsonlTraceWriter::on_disk_fail(const DiskFailEvent& event) {
  if (!options_.faults) return;
  line() << R"({"ev":"disk_fail","t":)" << format_double(event.time.value(), 17)
         << R"(,"disk":)" << event.disk << R"(,"mode":")"
         << to_string(event.mode) << R"(","factor":)"
         << format_double(event.factor, 17) << "}\n";
}

void JsonlTraceWriter::on_disk_recover(const DiskRecoverEvent& event) {
  if (!options_.faults) return;
  line() << R"({"ev":"disk_recover","t":)" << format_double(event.time.value(), 17)
         << R"(,"disk":)" << event.disk << R"(,"down_s":)"
         << format_double(event.downtime.value(), 17) << "}\n";
}

void JsonlTraceWriter::on_request_degraded(const RequestDegradedEvent& event) {
  if (!options_.faults) return;
  auto& out = line();
  out << R"({"ev":"request_degraded","t":)" << format_double(event.time.value(), 17)
      << R"(,"file":)" << event.file << R"(,"intended":)" << event.intended
      << R"(,"served_by":)";
  // A lost request was served by nobody; -1 keeps the field numeric.
  if (event.outcome == DegradedOutcome::kLost) {
    out << "-1";
  } else {
    out << event.served_by;
  }
  out << R"(,"outcome":")" << to_string(event.outcome) << R"(","factor":)"
      << format_double(event.slowdown, 17) << "}\n";
}

void JsonlTraceWriter::on_rebuild_start(const RebuildStartEvent& event) {
  if (!options_.rebuilds) return;
  line() << R"({"ev":"rebuild_start","t":)"
         << format_double(event.time.value(), 17) << R"(,"disk":)"
         << event.disk << R"(,"bytes":)" << event.bytes << "}\n";
}

void JsonlTraceWriter::on_rebuild_progress(const RebuildProgressEvent& event) {
  if (!options_.rebuilds) return;
  line() << R"({"ev":"rebuild_progress","t":)"
         << format_double(event.time.value(), 17) << R"(,"disk":)"
         << event.disk << R"(,"done":)" << event.done << R"(,"total":)"
         << event.total << R"(,"energy_j":)"
         << format_double(event.energy.value(), 17) << "}\n";
}

void JsonlTraceWriter::on_rebuild_complete(const RebuildCompleteEvent& event) {
  if (!options_.rebuilds) return;
  line() << R"({"ev":"rebuild_complete","t":)"
         << format_double(event.time.value(), 17) << R"(,"disk":)"
         << event.disk << R"(,"bytes":)" << event.bytes << R"(,"duration_s":)"
         << format_double(event.duration.value(), 17) << "}\n";
}

void JsonlTraceWriter::on_stripe_reconstruct(
    const StripeReconstructEvent& event) {
  if (!options_.rebuilds) return;
  line() << R"({"ev":"stripe_reconstruct","t":)"
         << format_double(event.time.value(), 17) << R"(,"file":)"
         << event.file << R"(,"failed":)" << event.failed << R"(,"sources":)"
         << event.sources << R"(,"bytes":)" << event.bytes << "}\n";
}

void JsonlTraceWriter::on_control_update(const ControlUpdateEvent& event) {
  if (!options_.control) return;
  line() << R"({"ev":"control","t":)" << format_double(event.time.value(), 17)
         << R"(,"epoch":)" << event.epoch_index << R"(,"requests":)"
         << event.requests << R"(,"shed":)" << event.shed
         << R"(,"mean_rt_s":)" << format_double(event.mean_rt_s, 17)
         << R"(,"backlog_s":)" << format_double(event.max_backlog_s, 17)
         << R"(,"energy_j":)" << format_double(event.energy_j, 17)
         << R"(,"h_scale":)" << format_double(event.h_scale, 17)
         << R"(,"hot_delta":)" << event.hot_delta << R"(,"epoch_scale":)"
         << format_double(event.epoch_scale, 17) << R"(,"epoch_len_s":)"
         << format_double(event.epoch_len_s, 17) << "}\n";
}

void JsonlTraceWriter::on_run_end(const RunEndEvent& event) {
  line() << R"({"ev":"run_end","horizon_s":)" << format_double(event.horizon.value(), 17)
         << R"(,"requests":)" << event.user_requests << R"(,"energy_j":)"
         << format_double(event.total_energy.value(), 17) << "}\n";
  out_->flush();
}

}  // namespace pr
