#include "obs/jsonl_writer.h"

#include <ostream>
#include <stdexcept>

namespace pr {

JsonlTraceWriter::JsonlTraceWriter(std::ostream& out, JsonlOptions options)
    : out_(&out), options_(options) {
  out_->precision(17);
}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path,
                                   JsonlOptions options)
    : owned_(path, std::ios::binary), out_(&owned_), options_(options) {
  if (!owned_) {
    throw std::runtime_error("JsonlTraceWriter: cannot open " + path);
  }
  out_->precision(17);
}

std::ostream& JsonlTraceWriter::line() {
  ++lines_;
  return *out_;
}

void JsonlTraceWriter::on_run_start(const RunStartEvent& event) {
  auto& out = line();
  out << R"({"ev":"run_start","disks":)" << event.disk_count << R"(,"files":)"
      << event.file_count << R"(,"epoch_s":)" << event.epoch.value()
      << R"(,"initial_speeds":[)";
  for (std::size_t d = 0; d < event.initial_speeds.size(); ++d) {
    if (d > 0) out << ',';
    out << '"' << to_string(event.initial_speeds[d]) << '"';
  }
  out << "]}\n";
}

void JsonlTraceWriter::on_request_complete(const RequestCompleteEvent& event) {
  if (!options_.requests) return;
  line() << R"({"ev":"request","t":)" << event.arrival.value()
         << R"(,"completion":)" << event.completion.value() << R"(,"file":)"
         << event.file << R"(,"disk":)" << event.disk << R"(,"bytes":)"
         << event.bytes << R"(,"rt_s":)" << event.response_time().value()
         << R"(,"backlog_s":)" << event.backlog.value() << R"(,"service_s":)"
         << event.service_time.value() << R"(,"energy_j":)"
         << event.energy.value() << R"(,"chunks":)" << event.stripe_chunks
         << "}\n";
}

void JsonlTraceWriter::on_speed_transition(const SpeedTransitionEvent& event) {
  if (!options_.transitions) return;
  line() << R"({"ev":"transition","t":)" << event.time.value()
         << R"(,"finish":)" << event.finish.value() << R"(,"disk":)"
         << event.disk << R"(,"from":")" << to_string(event.from)
         << R"(","to":")" << to_string(event.to) << R"(","cause":")"
         << to_string(event.cause) << "\"}\n";
}

void JsonlTraceWriter::on_disk_state_change(const DiskStateChangeEvent& event) {
  if (!options_.state_changes) return;
  line() << R"({"ev":"disk_state","t":)" << event.time.value()
         << R"(,"disk":)" << event.disk << R"(,"from":")"
         << to_string(event.from) << R"(","to":")" << to_string(event.to)
         << "\"}\n";
}

void JsonlTraceWriter::on_epoch_end(const EpochEndEvent& event) {
  if (!options_.epochs) return;
  line() << R"({"ev":"epoch_end","t":)" << event.time.value()
         << R"(,"index":)" << event.index << R"(,"requests":)"
         << event.requests << "}\n";
}

void JsonlTraceWriter::on_migration(const MigrationEvent& event) {
  if (!options_.migrations) return;
  line() << R"({"ev":"migration","t":)" << event.time.value() << R"(,"file":)"
         << event.file << R"(,"from":)" << event.from << R"(,"to":)"
         << event.to << R"(,"bytes":)" << event.bytes << "}\n";
}

void JsonlTraceWriter::on_run_end(const RunEndEvent& event) {
  line() << R"({"ev":"run_end","horizon_s":)" << event.horizon.value()
         << R"(,"requests":)" << event.user_requests << R"(,"energy_j":)"
         << event.total_energy.value() << "}\n";
  out_->flush();
}

}  // namespace pr
