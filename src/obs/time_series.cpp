#include "obs/time_series.h"

#include <algorithm>
#include <cmath>
#include <locale>
#include <ostream>
#include <stdexcept>

#include "util/fmt.h"

namespace pr {

TimeSeriesRecorder::TimeSeriesRecorder(Seconds window) : window_(window) {
  if (!(window.value() > 0.0)) {
    throw std::invalid_argument("TimeSeriesRecorder: window must be > 0");
  }
}

std::size_t TimeSeriesRecorder::window_of(Seconds t) const {
  const double w = std::floor(t.value() / window_.value());
  return w <= 0.0 ? 0 : static_cast<std::size_t>(w);
}

void TimeSeriesRecorder::ensure_window(std::size_t w) {
  if (w >= windows_.size()) {
    windows_.resize(w + 1, std::vector<WindowSample>(disk_count_));
  }
}

WindowSample& TimeSeriesRecorder::sample(std::size_t w, DiskId disk) {
  ensure_window(w);
  return windows_[w].at(disk);
}

const WindowSample& TimeSeriesRecorder::at(std::size_t w, DiskId disk) const {
  return windows_.at(w).at(disk);
}

WindowSample TimeSeriesRecorder::array_total(std::size_t w) const {
  WindowSample total;
  for (const WindowSample& s : windows_.at(w)) {
    total.requests += s.requests;
    total.bytes += s.bytes;
    total.busy += s.busy;
    total.energy += s.energy;
    total.max_backlog = std::max(total.max_backlog, s.max_backlog);
    total.transitions_up += s.transitions_up;
    total.transitions_down += s.transitions_down;
    total.time_at_high += s.time_at_high;
    total.migrations_in += s.migrations_in;
    total.migrations_out += s.migrations_out;
    total.degraded_requests += s.degraded_requests;
    total.lost_requests += s.lost_requests;
  }
  return total;
}

void TimeSeriesRecorder::on_run_start(const RunStartEvent& event) {
  disk_count_ = event.disk_count;
  windows_.clear();
  epoch_marks_.clear();
  current_speed_ = event.initial_speeds;
  current_speed_.resize(disk_count_, DiskSpeed::kHigh);
  speed_since_.assign(disk_count_, Seconds{0.0});
}

void TimeSeriesRecorder::account_speed_until(DiskId disk, Seconds t) {
  Seconds from = speed_since_[disk];
  if (t <= from) return;
  if (current_speed_[disk] == DiskSpeed::kHigh) {
    // Split [from, t) across the windows it spans.
    std::size_t w = window_of(from);
    while (from < t) {
      const Seconds boundary{static_cast<double>(w + 1) * window_.value()};
      const Seconds upto = std::min(boundary, t);
      sample(w, disk).time_at_high += upto - from;
      from = upto;
      ++w;
    }
  }
  speed_since_[disk] = t;
}

void TimeSeriesRecorder::on_request_complete(const RequestCompleteEvent& event) {
  WindowSample& s = sample(window_of(event.arrival), event.disk);
  ++s.requests;
  s.bytes += event.bytes;
  s.busy += event.service_time;
  s.energy += event.energy;
  s.max_backlog = std::max(s.max_backlog, event.backlog);
}

void TimeSeriesRecorder::on_speed_transition(const SpeedTransitionEvent& event) {
  WindowSample& s = sample(window_of(event.time), event.disk);
  if (event.to == DiskSpeed::kHigh) {
    ++s.transitions_up;
  } else {
    ++s.transitions_down;
  }
  if (event.disk < current_speed_.size()) {
    account_speed_until(event.disk, event.time);
    current_speed_[event.disk] = event.to;
  }
}

void TimeSeriesRecorder::on_epoch_end(const EpochEndEvent& event) {
  epoch_marks_.emplace_back(event.time, event.requests);
}

void TimeSeriesRecorder::on_migration(const MigrationEvent& event) {
  const std::size_t w = window_of(event.time);
  ++sample(w, event.from).migrations_out;
  ++sample(w, event.to).migrations_in;
}

void TimeSeriesRecorder::on_request_degraded(
    const RequestDegradedEvent& event) {
  if (event.intended >= disk_count_) return;
  WindowSample& s = sample(window_of(event.time), event.intended);
  if (event.outcome == DegradedOutcome::kLost) {
    ++s.lost_requests;
  } else {
    ++s.degraded_requests;
  }
}

void TimeSeriesRecorder::on_run_end(const RunEndEvent& event) {
  for (DiskId d = 0; d < current_speed_.size(); ++d) {
    account_speed_until(d, event.horizon);
  }
  // Materialize every window up to the horizon even if quiet.
  if (event.horizon.value() > 0.0) ensure_window(window_of(event.horizon));
}

void TimeSeriesRecorder::write_csv(std::ostream& out) const {
  out << "window,start_s,disk,requests,bytes,busy_s,utilization,energy_j,"
         "max_backlog_s,transitions_up,transitions_down,high_speed_fraction,"
         "migrations_in,migrations_out,degraded,lost\n";
  // Floats go through the locale-independent formatter; the classic
  // locale keeps the integer fields free of grouping separators.
  out.imbue(std::locale::classic());
  const auto full = [](double v) { return format_double(v, 17); };
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    for (DiskId d = 0; d < windows_[w].size(); ++d) {
      const WindowSample& s = windows_[w][d];
      out << w << ',' << full(window_start(w).value()) << ',' << d << ','
          << s.requests << ',' << s.bytes << ',' << full(s.busy.value())
          << ',' << full(s.utilization(window_)) << ','
          << full(s.energy.value()) << ',' << full(s.max_backlog.value())
          << ',' << s.transitions_up << ',' << s.transitions_down << ','
          << full(s.high_speed_fraction(window_)) << ',' << s.migrations_in
          << ',' << s.migrations_out << ',' << s.degraded_requests << ','
          << s.lost_requests << '\n';
    }
  }
}

}  // namespace pr
