#include "policy/maid_policy.h"

#include <algorithm>
#include <stdexcept>

namespace pr {

MaidPolicy::MaidPolicy(MaidConfig config) : config_(config) {
  if (!(config_.idleness_threshold > Seconds{0.0})) {
    throw std::invalid_argument("MaidPolicy: H must be > 0");
  }
  if (!(config_.cache_capacity_fraction > 0.0) ||
      config_.cache_capacity_fraction > 1.0) {
    throw std::invalid_argument(
        "MaidPolicy: cache_capacity_fraction outside (0, 1]");
  }
}

void MaidPolicy::initialize(ArrayContext& ctx) {
  h_hit_ = ctx.counters().intern("maid.cache_hit");
  h_miss_ = ctx.counters().intern("maid.cache_miss");
  h_fill_ = ctx.counters().intern("maid.cache_fill");
  h_evict_ = ctx.counters().intern("maid.cache_evict");
  const std::size_t n = ctx.disk_count();
  cache_disks_ = config_.cache_disks != 0 ? config_.cache_disks
                                          : std::max<std::size_t>(1, n / 4);
  if (cache_disks_ >= n) {
    throw std::invalid_argument(
        "MaidPolicy: need at least one data disk (cache_disks < disk_count)");
  }
  cache_budget_ = static_cast<Bytes>(
      config_.cache_capacity_fraction *
      static_cast<double>(cache_disks_ *
                          ctx.config().disk_params.capacity));

  for (DiskId d = 0; d < n; ++d) {
    DpmConfig dpm;
    if (is_cache_disk(d)) {
      ctx.set_initial_speed(d, DiskSpeed::kHigh);  // always-on workhorses
    } else {
      ctx.set_initial_speed(d, DiskSpeed::kLow);   // resting until a miss
      dpm.spin_down_when_idle = true;
      dpm.idleness_threshold = config_.idleness_threshold;
      dpm.spin_up_to_serve = true;
    }
    ctx.set_dpm(d, dpm);
  }

  // Permanent copies round-robin over the data disks (size order, like the
  // other policies' initial layouts).
  const auto order = ctx.files().ids_by_size_ascending();
  const std::size_t data_disks = n - cache_disks_;
  for (std::size_t i = 0; i < order.size(); ++i) {
    ctx.place(order[i],
              static_cast<DiskId>(cache_disks_ + i % data_disks));
  }
}

DiskId MaidPolicy::route(ArrayContext& ctx, const Request& req) {
  const auto it = cache_index_.find(req.file);
  if (it != cache_index_.end()) {
    // Hit: refresh LRU position, serve from the caching disk.
    lru_.splice(lru_.begin(), lru_, it->second);
    ctx.bump(h_hit_);
    last_was_hit_ = true;
    return it->second->disk;
  }
  ctx.bump(h_miss_);
  last_was_hit_ = false;
  return ctx.location(req.file);
}

void MaidPolicy::after_serve(ArrayContext& ctx, const Request& req,
                             DiskId served) {
  if (last_was_hit_) return;
  // Miss path: copy the file onto a cache disk so later accesses hit.
  admit(ctx, req.file, req.size, served);
}

DegradedAction MaidPolicy::CacheScheme::degraded_read(
    ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
    DiskId& redirect, std::vector<StripeChunk>& reads) {
  (void)bytes;
  (void)reads;
  // route() already chose: a failed cache disk on a hit, or the failed
  // home disk on a miss. Fall back to whichever copy is still live.
  DiskId alt = kInvalidDisk;
  const auto it = owner_->cache_index_.find(file);
  if (it != owner_->cache_index_.end() && it->second->disk != failed &&
      !ctx.disk_failed(it->second->disk)) {
    alt = it->second->disk;
  } else {
    const DiskId home = ctx.location(file);
    if (home != failed && !ctx.disk_failed(home)) alt = home;
  }
  if (alt == kInvalidDisk) return DegradedAction::kLost;
  // The serve comes from an existing copy — suppress the after_serve
  // re-admission a miss would trigger. The handle is interned here, on
  // the first degraded read, not in initialize(): eager interning would
  // add a zero counter to fault-free reports.
  owner_->last_was_hit_ = true;
  if (!owner_->h_degraded_interned_) {
    owner_->h_degraded_ = ctx.counters().intern("maid.degraded_read");
    owner_->h_degraded_interned_ = true;
  }
  ctx.bump(owner_->h_degraded_);
  redirect = alt;
  return DegradedAction::kRedirect;
}

void MaidPolicy::admit(ArrayContext& ctx, FileId file, Bytes bytes,
                       DiskId home) {
  if (bytes > cache_budget_) return;  // larger than the whole cache
  while (cache_used_ + bytes > cache_budget_) evict_lru(ctx);

  const auto target =
      static_cast<DiskId>(next_cache_disk_ % cache_disks_);
  ++next_cache_disk_;
  ctx.background_copy(home, target, bytes);
  ctx.bump(h_fill_);

  lru_.push_front(CacheEntry{file, target, bytes});
  cache_index_[file] = lru_.begin();
  cache_used_ += bytes;
}

void MaidPolicy::evict_lru(ArrayContext& ctx) {
  if (lru_.empty()) {
    throw std::logic_error("MaidPolicy: eviction from empty cache");
  }
  const CacheEntry victim = lru_.back();
  lru_.pop_back();
  cache_index_.erase(victim.file);
  cache_used_ -= victim.bytes;
  ctx.bump(h_evict_);
}

}  // namespace pr
