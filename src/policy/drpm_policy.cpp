#include "policy/drpm_policy.h"

#include <stdexcept>

namespace pr {

DrpmPolicy::DrpmPolicy(DrpmConfig config) : config_(config) {
  if (!(config_.idleness_threshold > Seconds{0.0})) {
    throw std::invalid_argument("DrpmPolicy: H must be > 0");
  }
  if (config_.promotion_backlog < Seconds{0.0}) {
    throw std::invalid_argument("DrpmPolicy: negative promotion backlog");
  }
}

void DrpmPolicy::initialize(ArrayContext& ctx) {
  for (DiskId d = 0; d < ctx.disk_count(); ++d) {
    ctx.set_initial_speed(d, DiskSpeed::kHigh);
    DpmConfig dpm;
    dpm.spin_down_when_idle = true;
    dpm.idleness_threshold = config_.idleness_threshold;
    dpm.spin_up_to_serve = config_.aggressive;
    dpm.spin_up_backlog = config_.promotion_backlog;
    ctx.set_dpm(d, dpm);
  }
  const auto order = ctx.files().ids_by_size_ascending();
  for (std::size_t i = 0; i < order.size(); ++i) {
    ctx.place(order[i], static_cast<DiskId>(i % ctx.disk_count()));
  }
}

DiskId DrpmPolicy::route(ArrayContext& ctx, const Request& req) {
  return ctx.location(req.file);
}

}  // namespace pr
