#include "policy/replication.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pr {

ReplicatedReadPolicy::ReplicatedReadPolicy(ReplicationConfig config)
    : config_(config), base_(config.read) {
  if (config_.replicas < 2) {
    throw std::invalid_argument(
        "ReplicatedReadPolicy: replicas must be >= 2 (primary + copies)");
  }
  if (config_.top_files == 0) {
    throw std::invalid_argument("ReplicatedReadPolicy: top_files == 0");
  }
}

std::vector<DiskId> ReplicatedReadPolicy::replica_targets(
    const ArrayContext& ctx, FileId f) const {
  // Copies go to hot-zone disks other than the primary, chosen by a
  // deterministic stride from the file id so replicas spread evenly.
  const std::size_t hot = base_.zoning().hot_disks;
  const DiskId primary = ctx.location(f);
  std::vector<DiskId> targets;
  if (hot <= 1) return targets;
  const std::size_t wanted = std::min(config_.replicas - 1, hot - 1);
  std::size_t cursor = f % hot;
  while (targets.size() < wanted) {
    const auto candidate = static_cast<DiskId>(cursor % hot);
    ++cursor;
    if (candidate == primary) continue;
    if (std::find(targets.begin(), targets.end(), candidate) !=
        targets.end()) {
      continue;
    }
    targets.push_back(candidate);
  }
  return targets;
}

void ReplicatedReadPolicy::build_replicas(
    ArrayContext& ctx, const std::vector<FileId>& hottest) {
  std::unordered_map<FileId, std::vector<DiskId>> next;
  for (FileId f : hottest) {
    const auto targets = replica_targets(ctx, f);
    if (targets.empty()) continue;
    const auto prior = replicas_.find(f);
    for (DiskId target : targets) {
      const bool already =
          prior != replicas_.end() &&
          std::find(prior->second.begin(), prior->second.end(), target) !=
              prior->second.end();
      if (!already) {
        // New copy: background read on the primary + write on the target.
        ctx.background_copy(ctx.location(f), target,
                            ctx.files().by_id(f).size);
        ctx.bump(h_copy_);
      }
    }
    next.emplace(f, targets);
  }
  replicas_ = std::move(next);
}

void ReplicatedReadPolicy::initialize(ArrayContext& ctx) {
  base_.initialize(ctx);
  h_copy_ = ctx.counters().intern("replication.copy");
  h_offloaded_ = ctx.counters().intern("replication.offloaded_read");
  // Initial replica set from the file set's intended rates. Only the
  // top_files prefix matters; the (rate desc, id asc) comparator matches
  // what stable_sort over an iota produced, so partial_sort yields the
  // identical prefix.
  std::vector<FileId> ids(ctx.files().size());
  std::iota(ids.begin(), ids.end(), FileId{0});
  const std::size_t top = std::min<std::size_t>(config_.top_files, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + top, ids.end(),
                    [&](FileId a, FileId b) {
                      const double ra = ctx.files().by_id(a).access_rate;
                      const double rb = ctx.files().by_id(b).access_rate;
                      if (ra != rb) return ra > rb;
                      return a < b;
                    });
  ids.resize(top);
  build_replicas(ctx, ids);
}

DiskId ReplicatedReadPolicy::route(ArrayContext& ctx, const Request& req) {
  const auto it = replicas_.find(req.file);
  const DiskId primary = ctx.location(req.file);
  if (it == replicas_.end()) return primary;
  // Pick the copy whose disk frees up first (join-shortest-workload).
  DiskId best = primary;
  Seconds best_ready = ctx.disk(primary).ready_time();
  for (DiskId d : it->second) {
    const Seconds ready = ctx.disk(d).ready_time();
    if (ready < best_ready) {
      best = d;
      best_ready = ready;
    }
  }
  if (best != primary) ctx.bump(h_offloaded_);
  return best;
}

void ReplicatedReadPolicy::after_serve(ArrayContext& ctx, const Request& req,
                                       DiskId d) {
  base_.after_serve(ctx, req, d);
}

DegradedAction ReplicatedReadPolicy::ReplicaScheme::degraded_read(
    ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
    DiskId& redirect, std::vector<StripeChunk>& reads) {
  (void)bytes;
  (void)reads;
  // Consider every copy — the primary plus replicas — skipping failed
  // disks; among the live ones pick the earliest-ready (the same
  // join-shortest-workload rule route() uses, lowest id on ties).
  DiskId best = kInvalidDisk;
  Seconds best_ready = kNeverTime;
  const auto consider = [&](DiskId d) {
    if (d == failed || ctx.disk_failed(d)) return;
    const Seconds ready = ctx.disk(d).ready_time();
    if (best == kInvalidDisk || ready < best_ready ||
        (ready == best_ready && d < best)) {
      best = d;
      best_ready = ready;
    }
  };
  consider(ctx.location(file));
  const auto it = owner_->replicas_.find(file);
  if (it != owner_->replicas_.end()) {
    for (const DiskId d : it->second) consider(d);
  }
  if (best == kInvalidDisk) return DegradedAction::kLost;
  // The handle is interned here, on the first degraded read, not in
  // initialize(): eager interning would add a zero-valued counter to
  // every fault-free report and break their byte-identity.
  if (!owner_->h_degraded_interned_) {
    owner_->h_degraded_ =
        ctx.counters().intern("replication.degraded_read");
    owner_->h_degraded_interned_ = true;
  }
  ctx.bump(owner_->h_degraded_);
  redirect = best;
  return DegradedAction::kRedirect;
}

void ReplicatedReadPolicy::on_epoch(ArrayContext& ctx, Seconds now) {
  // Base READ re-ranks and migrates first; replica sets are then rebuilt
  // against the post-migration placement.
  const auto& counts = ctx.epoch_access_counts();
  base_.on_epoch(ctx, now);
  if (ctx.epoch_requests() == 0) return;
  // Bounded selection of the top_files prefix, same order as the former
  // full stable_sort (count desc, id asc).
  std::vector<FileId> ids(counts.size());
  std::iota(ids.begin(), ids.end(), FileId{0});
  const std::size_t top = std::min<std::size_t>(config_.top_files, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + top, ids.end(),
                    [&](FileId a, FileId b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  ids.resize(top);
  build_replicas(ctx, ids);
}

bool ReplicatedReadPolicy::allow_spin_down(ArrayContext& ctx, DiskId d,
                                           Seconds now) {
  return base_.allow_spin_down(ctx, d, now);
}

}  // namespace pr
