#include "policy/striped_read_policy.h"

#include <stdexcept>

namespace pr {

StripedReadPolicy::StripedReadPolicy(StripedReadConfig config)
    : config_(config), base_(config.read) {
  if (config_.stripe_unit == 0) {
    throw std::invalid_argument("StripedReadPolicy: zero stripe unit");
  }
}

void StripedReadPolicy::initialize(ArrayContext& ctx) {
  base_.initialize(ctx);
  striped_file_.assign(ctx.files().size(), 0);
  for (FileId f = 0; f < ctx.files().size(); ++f) {
    if (ctx.files().by_id(f).size > config_.stripe_unit) {
      striped_file_[f] = 1;
      ++striped_count_;
    }
  }
}

DiskId StripedReadPolicy::route(ArrayContext& ctx, const Request& req) {
  return base_.route(ctx, req);
}

std::vector<StripeChunk> StripedReadPolicy::stripe(ArrayContext& ctx,
                                                   const Request& req) {
  if (!striped_file_[req.file]) {
    // Small file: plain READ service on its placed disk.
    return {StripeChunk{base_.route(ctx, req), req.size}};
  }
  // Large file: units round-robin over the hot zone, starting at a
  // deterministic per-file offset so concurrent large transfers spread.
  const auto hot = static_cast<std::size_t>(base_.zoning().hot_disks);
  const auto start = static_cast<DiskId>(req.file % hot);
  return StripedStaticPolicy::chunks_for(req.size, config_.stripe_unit,
                                         start, hot);
}

void StripedReadPolicy::on_epoch(ArrayContext& ctx, Seconds now) {
  base_.on_epoch(ctx, now);
  // Pin striped files' nominal placement inside the hot zone: their data
  // lives across the hot disks, so a base-READ migration of the nominal
  // home to the cold zone would misrepresent where the I/O lands. Move
  // any such file's home back (bookkeeping only when already hot).
  for (FileId f = 0; f < striped_file_.size(); ++f) {
    if (!striped_file_[f]) continue;
    if (!base_.is_hot_disk(ctx.location(f))) {
      ctx.migrate(f, static_cast<DiskId>(f % base_.zoning().hot_disks));
    }
  }
}

bool StripedReadPolicy::allow_spin_down(ArrayContext& ctx, DiskId d,
                                        Seconds now) {
  return base_.allow_spin_down(ctx, d, now);
}

}  // namespace pr
