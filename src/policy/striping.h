// striping.h — RAID-0 striping extension (paper §6 future work: "we
// intend to enable the READ scheme to cooperate with the RAID
// architecture, where files are usually striped across disks... For the
// web server environment, files are usually very small, and thus striping
// is not crucial. However, for large files such as video clips, audio
// segments, and office documents, striping is needed").
//
// StripedStaticPolicy stripes every file across the whole array in
// fixed-size stripe units (default 512 KB, the paper's figure for "a
// normal striping block size") with all disks at high speed — the
// conventional RAID-0 performance layout the paper's §6 contrasts with.
// Files at or below one stripe unit land on a single disk (round-robin by
// first unit), so on a pure web workload this degenerates to Static —
// exactly the paper's point.
#pragma once

#include "redundancy/scheme.h"
#include "sim/array_sim.h"

namespace pr {

struct StripingConfig {
  /// Stripe unit (paper §4: "a normal stripping block size 512 KB").
  Bytes stripe_unit = 512 * kKiB;
};

class StripedStaticPolicy final : public Policy {
 public:
  explicit StripedStaticPolicy(StripingConfig config = {});

  [[nodiscard]] std::string name() const override { return "RAID0-Static"; }
  [[nodiscard]] bool striped() const override { return true; }

  void initialize(ArrayContext& ctx) override;
  DiskId route(ArrayContext& ctx, const Request& req) override;
  std::vector<StripeChunk> stripe(ArrayContext& ctx,
                                  const Request& req) override;
  /// RAID-0's honest answer on the redundancy seam: nothing protects the
  /// stripes, so a degraded chunk loses the whole request — byte-identical
  /// to the pre-seam behavior, but now stated as a scheme instance rather
  /// than hard-coded in the simulator. Configure SimConfig::redundancy
  /// with a parity kind to protect the stripes instead.
  [[nodiscard]] RedundancyScheme* redundancy() override { return &scheme_; }

  /// Chunk decomposition used by stripe(); exposed for tests. `start`
  /// is the disk holding the file's first stripe unit.
  [[nodiscard]] static std::vector<StripeChunk> chunks_for(
      Bytes size, Bytes unit, DiskId start, std::size_t disk_count);

 private:
  class Raid0Scheme final : public RedundancyScheme {
   public:
    [[nodiscard]] std::string name() const override { return "raid0"; }
    [[nodiscard]] DegradedAction degraded_read(
        ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
        DiskId& redirect, std::vector<StripeChunk>& reads) override {
      (void)ctx;
      (void)file;
      (void)bytes;
      (void)failed;
      (void)redirect;
      (void)reads;
      return DegradedAction::kLost;
    }
  };

  StripingConfig config_;
  Raid0Scheme scheme_;
};

}  // namespace pr
