#include "policy/online_read_policy.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "control/control_loop.h"
#include "policy/zoning.h"

namespace pr {

OnlineReadPolicy::OnlineReadPolicy(OnlineReadConfig config)
    : ReadPolicy(config.read), online_(config),
      estimator_(config.read.theta_b) {
  if (online_.decay_shift >= 64) {
    throw std::invalid_argument("OnlineReadPolicy: decay_shift >= 64");
  }
}

void OnlineReadPolicy::initialize(ArrayContext& ctx) {
  ReadPolicy::initialize(ctx);
  counts_.assign(ctx.files().size(), 0);
  served_ = 0;
  bar_ = 0;
  online_promotions_ = 0;
  warmed_ = false;
  h_promotions_ = ctx.counters().intern("online.promotions");
  h_demotions_ = ctx.counters().intern("online.demotions");
}

void OnlineReadPolicy::after_serve(ArrayContext& ctx, const Request& req,
                                   DiskId d) {
  (void)d;
  ++served_;
  const std::uint64_t count = ++counts_[req.file];
  if (warmed_ && !hot_file_[req.file] &&
      count > bar_ + online_.promote_margin) {
    // Promote now: the migration's background I/O lands before the
    // simulator arms this request's idle checks, the same window MAID
    // uses for cache fills — deterministic in both schedulers.
    ctx.migrate(req.file, next_hot_disk());
    hot_file_[req.file] = 1;
    ++online_promotions_;
    ctx.bump(h_promotions_);
  }
}

void OnlineReadPolicy::on_epoch(ArrayContext& ctx, Seconds now) {
  epoch_migrations_ = 0;
  if (served_ > 0) {
    std::size_t cut = 0;
    const RebalanceCounts moved = rebalance(ctx, counts_, &cut);
    if (moved.demotions > 0) ctx.bump(h_demotions_, moved.demotions);
    const std::uint64_t weakest = cut > 0 ? counts_[rank_scratch_[cut - 1]] : 0;
    if (online_.decay_shift > 0) {
      for (auto& c : counts_) c >>= online_.decay_shift;
    }
    // The bar is the decayed count of the weakest member of the new top-k:
    // a cold file beating it (plus margin) mid-epoch would have made the
    // cut, so it is promoted without waiting for the boundary. The bar
    // decays by *ceiling* shift while the counts decay by floor shift:
    // floor collapses up to 2^decay_shift distinct pre-decay counts into
    // one value, so a floor-decayed bar could tie with a file that was
    // strictly below the cut and over-promote it after a single serve.
    // a < b implies (a >> s) < ceil(b >> s), so the ceiling bar keeps the
    // boundary ranking authoritative between epochs.
    const std::uint32_t s = online_.decay_shift;
    bar_ = s > 0 ? (weakest >> s) +
                       ((weakest & ((std::uint64_t{1} << s) - 1)) != 0 ? 1 : 0)
                 : weakest;
    warmed_ = true;
  }
  adapt_thresholds(ctx, now);
}

int OnlineReadPolicy::on_control(ArrayContext& ctx,
                                 const ControlDecision& decision,
                                 Seconds now) {
  (void)now;
  if (!warmed_ || decision.hot_delta == 0) return 0;
  estimate_ = estimator_.estimate(counts_);

  const std::size_t cur = zoning_.hot_disks;
  std::size_t target =
      decision.hot_delta > 0
          ? cur + static_cast<std::size_t>(decision.hot_delta)
          : cur - std::min<std::size_t>(
                      cur, static_cast<std::size_t>(-decision.hot_delta));
  if (decision.hot_delta > 0) {
    // Growth guardrail: re-run the Eq. 4/5 zoning split under the online
    // θ̂ over the decayed counts. The controller may not widen the hot
    // zone past what the observed skew justifies (and an all-zero window
    // justifies nothing).
    if (estimate_.active_files == 0) return 0;
    load_scratch_.assign(counts_.begin(), counts_.end());
    std::sort(load_scratch_.begin(), load_scratch_.end(),
              std::greater<>());
    const ZoningDecision justified =
        compute_zoning(load_scratch_, ctx.disk_count(), estimate_.theta);
    if (cur >= justified.hot_disks) return 0;
    target = std::min(target, justified.hot_disks);
  }
  return resize_hot_zone(ctx, target);
}

}  // namespace pr
