#include "policy/online_read_policy.h"

#include <stdexcept>

namespace pr {

OnlineReadPolicy::OnlineReadPolicy(OnlineReadConfig config)
    : ReadPolicy(config.read), online_(config) {
  if (online_.decay_shift >= 64) {
    throw std::invalid_argument("OnlineReadPolicy: decay_shift >= 64");
  }
}

void OnlineReadPolicy::initialize(ArrayContext& ctx) {
  ReadPolicy::initialize(ctx);
  counts_.assign(ctx.files().size(), 0);
  served_ = 0;
  bar_ = 0;
  online_promotions_ = 0;
  warmed_ = false;
  h_promotions_ = ctx.counters().intern("online.promotions");
  h_demotions_ = ctx.counters().intern("online.demotions");
}

void OnlineReadPolicy::after_serve(ArrayContext& ctx, const Request& req,
                                   DiskId d) {
  (void)d;
  ++served_;
  const std::uint64_t count = ++counts_[req.file];
  if (warmed_ && !hot_file_[req.file] &&
      count > bar_ + online_.promote_margin) {
    // Promote now: the migration's background I/O lands before the
    // simulator arms this request's idle checks, the same window MAID
    // uses for cache fills — deterministic in both schedulers.
    ctx.migrate(req.file, next_hot_disk());
    hot_file_[req.file] = 1;
    ++online_promotions_;
    ctx.bump(h_promotions_);
  }
}

void OnlineReadPolicy::on_epoch(ArrayContext& ctx, Seconds now) {
  epoch_migrations_ = 0;
  if (served_ > 0) {
    std::size_t cut = 0;
    const RebalanceCounts moved = rebalance(ctx, counts_, &cut);
    if (moved.demotions > 0) ctx.bump(h_demotions_, moved.demotions);
    if (online_.decay_shift > 0) {
      for (auto& c : counts_) c >>= online_.decay_shift;
    }
    // The bar is the decayed count of the weakest member of the new top-k:
    // a cold file beating it (plus margin) mid-epoch would have made the
    // cut, so it is promoted without waiting for the boundary.
    bar_ = cut > 0 ? counts_[rank_scratch_[cut - 1]] : 0;
    warmed_ = true;
  }
  adapt_thresholds(ctx, now);
}

}  // namespace pr
