// maid_policy.h — MAID: Massive Array of Idle Disks (Colarelli & Grunwald,
// SC'02 — the paper's [4]), in the 2-speed-disk variant the paper evaluates
// ("when utilizing multi-speed disks, MAID and PDC become hybrid
// techniques", §2).
//
// A front set of *cache disks* always runs at high speed; the remaining
// *data disks* hold the permanent copies and rest at low speed. A request
// that hits the cache is served by the caching disk; a miss is served by
// the data disk (spun up to high to serve) and the file is then copied to
// a cache disk (LRU replacement under a byte-capacity budget). Idle data
// disks spin back down after the idleness threshold.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "redundancy/scheme.h"
#include "sim/array_sim.h"

namespace pr {

struct MaidConfig {
  /// Number of cache disks; 0 means max(1, disk_count/4) (the MAID paper's
  /// "small number of always-on drives").
  std::size_t cache_disks = 0;
  /// Idleness threshold for data-disk spin-down. The paper leaves the
  /// thresholds unspecified; this default is calibrated on the WC98-like
  /// day so MAID's most-cycled data disk lands in the ~80 transitions/day
  /// regime that reproduces the paper's reported READ-over-MAID
  /// reliability margin (see EXPERIMENTS.md).
  Seconds idleness_threshold{15.0};
  /// Cache byte budget as a fraction of the cache disks' raw capacity.
  double cache_capacity_fraction = 1.0;
};

class MaidPolicy final : public Policy {
 public:
  explicit MaidPolicy(MaidConfig config = {});

  [[nodiscard]] std::string name() const override { return "MAID"; }

  void initialize(ArrayContext& ctx) override;
  DiskId route(ArrayContext& ctx, const Request& req) override;
  void after_serve(ArrayContext& ctx, const Request& req, DiskId d) override;
  /// The cache copies exposed through the redundancy seam: a degraded
  /// read redirects to a cached copy on a live cache disk, else to the
  /// home disk when the cache copy's disk failed; lost when both the home
  /// disk and any cache copy are down.
  [[nodiscard]] RedundancyScheme* redundancy() override { return &scheme_; }

  [[nodiscard]] std::size_t cache_disk_count() const { return cache_disks_; }
  [[nodiscard]] bool is_cache_disk(DiskId d) const { return d < cache_disks_; }
  [[nodiscard]] bool is_cached(FileId f) const {
    return cache_index_.contains(f);
  }

 private:
  struct CacheEntry {
    FileId file = kInvalidFile;
    DiskId disk = kInvalidDisk;
    Bytes bytes = 0;
  };

  /// Copy-based scheme over the cache index (see redundancy()).
  class CacheScheme final : public RedundancyScheme {
   public:
    explicit CacheScheme(MaidPolicy& owner) : owner_(&owner) {}
    [[nodiscard]] std::string name() const override { return "maid-cache"; }
    [[nodiscard]] DegradedAction degraded_read(
        ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
        DiskId& redirect, std::vector<StripeChunk>& reads) override;

   private:
    MaidPolicy* owner_;
  };

  void admit(ArrayContext& ctx, FileId file, Bytes bytes, DiskId home);
  void evict_lru(ArrayContext& ctx);

  MaidConfig config_;
  CacheScheme scheme_{*this};
  std::size_t cache_disks_ = 0;
  Bytes cache_budget_ = 0;
  Bytes cache_used_ = 0;
  std::size_t next_cache_disk_ = 0;  // round-robin fill target

  // LRU: most recent at front. The index maps file -> list node.
  std::list<CacheEntry> lru_;
  std::unordered_map<FileId, std::list<CacheEntry>::iterator> cache_index_;

  bool last_was_hit_ = false;

  // Counter handles interned in initialize(); route()/after_serve() run
  // once per request, so they must not pay a string-keyed map lookup.
  CounterRegistry::Handle h_hit_ = 0;
  CounterRegistry::Handle h_miss_ = 0;
  CounterRegistry::Handle h_fill_ = 0;
  CounterRegistry::Handle h_evict_ = 0;
  // Interned lazily on the first degraded read — interning in
  // initialize() would add a zero-valued counter to every fault-free
  // report and break their byte-identity.
  CounterRegistry::Handle h_degraded_ = 0;
  bool h_degraded_interned_ = false;
};

}  // namespace pr
