#include "policy/pdc_policy.h"

#include <algorithm>
#include <stdexcept>

#include "disk/service_model.h"

namespace pr {

PdcPolicy::PdcPolicy(PdcConfig config) : config_(config) {
  if (!(config_.idleness_threshold > Seconds{0.0})) {
    throw std::invalid_argument("PdcPolicy: H must be > 0");
  }
  if (!(config_.load_budget > 0.0) || config_.load_budget > 1.0) {
    throw std::invalid_argument("PdcPolicy: load_budget outside (0, 1]");
  }
  if (!(config_.concentration_fraction > 0.0) ||
      config_.concentration_fraction > 1.0) {
    throw std::invalid_argument(
        "PdcPolicy: concentration_fraction outside (0, 1]");
  }
}

void PdcPolicy::initialize(ArrayContext& ctx) {
  for (DiskId d = 0; d < ctx.disk_count(); ++d) {
    ctx.set_initial_speed(d, DiskSpeed::kHigh);
    DpmConfig dpm;
    dpm.spin_down_when_idle = true;
    dpm.idleness_threshold = config_.idleness_threshold;
    dpm.spin_up_to_serve = true;
    ctx.set_dpm(d, dpm);
  }
  // Initial layout: round-robin in size order (popularity unknown until
  // the first epoch's observations; PDC's own paper starts from a
  // conventional striped/spread layout).
  const auto order = ctx.files().ids_by_size_ascending();
  for (std::size_t i = 0; i < order.size(); ++i) {
    ctx.place(order[i], static_cast<DiskId>(i % ctx.disk_count()));
  }
}

DiskId PdcPolicy::route(ArrayContext& ctx, const Request& req) {
  return ctx.location(req.file);
}

double PdcPolicy::load_fraction(const ArrayContext& ctx, Bytes bytes,
                                double count) const {
  const Seconds per_request =
      service_time(ctx.config().disk_params.high, bytes);
  return count * per_request.value() / ctx.config().epoch.value();
}

void PdcPolicy::on_epoch(ArrayContext& ctx, Seconds now) {
  (void)now;
  epoch_migrations_ = 0;
  if (ctx.epoch_requests() == 0) return;

  // Only the popular head — the ranked prefix covering
  // `concentration_fraction` of this epoch's accesses — ever migrates, so
  // a full sort over every file is wasted work. Gather the active files,
  // grow a selection prefix (nth_element, O(active) per round) until it
  // covers the head target, and sort just that prefix. The (count desc,
  // FileId asc) comparator matches the former stable_sort's total order,
  // so the migration sequence is byte-identical.
  const auto& counts = ctx.epoch_access_counts();
  const auto by_rank = [&](FileId a, FileId b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  };
  auto& order = rank_scratch_;
  order.clear();
  for (FileId f = 0; f < counts.size(); ++f) {
    if (counts[f] > 0) order.push_back(f);
  }

  const double head_target = config_.concentration_fraction *
                             static_cast<double>(ctx.epoch_requests());
  std::size_t head = std::min<std::size_t>(order.size(), 64);
  for (;;) {
    if (head < order.size()) {
      std::nth_element(order.begin(), order.begin() + head, order.end(),
                       by_rank);
    }
    double selected = 0.0;
    for (std::size_t i = 0; i < head; ++i) {
      selected += static_cast<double>(counts[order[i]]);
    }
    if (selected >= head_target || head == order.size()) break;
    head = std::min(order.size(), head * 2);
  }
  std::sort(order.begin(), order.begin() + head, by_rank);

  // Greedy concentration of the popular head only: fill disk 0 with the
  // most popular files up to the load budget, then disk 1, ... Filling
  // stops once the head covering `concentration_fraction` of this epoch's
  // accesses has been placed; everything beyond it — the unpopular tail
  // and files unreferenced this epoch — stays where it is. (The original
  // PDC migrates *popular* data to a subset of the disks so "the
  // remaining disks can be sent to low-power mode"; the remaining disks
  // still hold, and occasionally serve, the tail.)
  DiskId target = 0;
  double filled = 0.0;
  double covered = 0.0;
  const auto last = static_cast<DiskId>(ctx.disk_count() - 1);
  for (std::size_t i = 0; i < head; ++i) {
    const FileId f = order[i];
    if (covered >= head_target) break;  // popular head fully placed
    covered += static_cast<double>(counts[f]);
    const double contribution = load_fraction(
        ctx, ctx.files().by_id(f).size, static_cast<double>(counts[f]));
    if (filled + contribution > config_.load_budget && target < last) {
      ++target;
      filled = 0.0;
    }
    filled += contribution;
    if (ctx.location(f) != target) {
      ctx.migrate(f, target);
      ++epoch_migrations_;
    }
  }
}

}  // namespace pr
