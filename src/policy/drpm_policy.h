// drpm_policy.h — DRPM-style pure power-management baseline (Gurumurthi
// et al., ISCA'03 — the paper's [13]; §2's other mainstream family).
//
// No data placement intelligence at all: files are spread round-robin and
// never move. Energy saving comes purely from per-disk dynamic speed
// modulation — a disk drops to low speed after the idleness threshold,
// serves isolated requests at low speed, and is promoted back to high
// speed only when its backlog shows sustained load. This is the scheme
// family whose "frequent speed switching" §3.5 warns about: with no
// workload shaping, every disk sees the full popularity mix and cycles on
// its own, which is exactly what PRESS penalises.
//
// (The real DRPM has more than two speed levels; the paper's own
// simulator — and therefore this reproduction — uses the two-speed disks
// of §3.2, so DRPM here means "two-speed dynamic modulation".)
#pragma once

#include "sim/array_sim.h"

namespace pr {

struct DrpmConfig {
  /// Idle time before dropping to low speed.
  Seconds idleness_threshold{15.0};
  /// Backlog that promotes a low-speed disk back to high speed.
  Seconds promotion_backlog{0.050};
  /// Aggressive modulation: promote on *every* request that finds the
  /// disk at low speed (performance-first tuning). This is the
  /// "aggressively switch disk speed to save some amount of energy"
  /// behaviour §3.5 warns against; the default (false) serves isolated
  /// requests at low speed and promotes only under backlog.
  bool aggressive = false;
};

class DrpmPolicy final : public Policy {
 public:
  explicit DrpmPolicy(DrpmConfig config = {});

  [[nodiscard]] std::string name() const override {
    return config_.aggressive ? "DRPM-aggressive" : "DRPM";
  }

  void initialize(ArrayContext& ctx) override;
  DiskId route(ArrayContext& ctx, const Request& req) override;

 private:
  DrpmConfig config_;
};

}  // namespace pr
