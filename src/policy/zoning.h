// zoning.h — READ's hot/cold partition math (paper §4, Eq. 4–5).
//
// Given the Zipf-like skew parameter θ (Lee et al. [20]: the top x fraction
// of files captures x^θ of accesses):
//   * the popular file count is |Fp| = (1−θ)·m (Fig. 6 step 1 via Eq. 4's
//     ratio δ = (1−θ)/θ);
//   * the hot/cold disk split follows the load ratio
//     γ = (1−θ)·Σ_{f∈Fp} h_f / (θ·Σ_{f∈Fu} h_f)          (Eq. 5)
//     and HD = γ·n/(γ+1) (Fig. 6 step 3), with both zones kept non-empty.
#pragma once

#include <cstddef>
#include <vector>

namespace pr {

struct ZoningDecision {
  double theta = 1.0;
  double delta = 0.0;  // Eq. 4: |Fp| / |Fu|
  double gamma = 0.0;  // Eq. 5: hot/cold disk ratio
  std::size_t popular_files = 0;   // |Fp|
  std::size_t unpopular_files = 0; // |Fu|
  std::size_t hot_disks = 0;       // HD
  std::size_t cold_disks = 0;      // CD = n − HD
};

/// Eq. 4: δ = (1−θ)/θ.
[[nodiscard]] double eq4_delta(double theta);

/// |Fp| = (1−θ)·m rounded to nearest, clamped to [1, m−1] so both sets are
/// non-empty (degenerate m ≤ 1 yields everything popular).
[[nodiscard]] std::size_t popular_file_count(std::size_t file_count,
                                             double theta);

/// Eq. 5 with explicit load sums.
[[nodiscard]] double eq5_gamma(double theta, double popular_load,
                               double unpopular_load);

/// Full zoning decision. `loads_by_popularity` must be ordered most-popular
/// first (h_i = λ_i·s_i); θ ∈ (0, 1]. Throws std::invalid_argument on an
/// empty load vector, non-positive θ, or disk_count == 0.
[[nodiscard]] ZoningDecision compute_zoning(
    const std::vector<double>& loads_by_popularity, std::size_t disk_count,
    double theta);

/// θ estimated from per-file access weights (rates or counts, any positive
/// scale); mirrors estimate_theta() in trace_stats but for doubles.
[[nodiscard]] double estimate_theta_from_weights(
    const std::vector<double>& weights, double files_fraction = 0.2);

}  // namespace pr
