#include "policy/read_policy.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <stdexcept>

#include "trace/trace_stats.h"
#include "util/log.h"

namespace pr {

ReadPolicy::ReadPolicy(ReadConfig config) : config_(config) {
  if (config_.theta < 0.0 || config_.theta > 1.0) {
    throw std::invalid_argument("ReadPolicy: theta outside [0, 1]");
  }
  if (config_.max_transitions_per_day == 0) {
    throw std::invalid_argument("ReadPolicy: S must be >= 1");
  }
  if (!(config_.idleness_threshold > Seconds{0.0})) {
    throw std::invalid_argument("ReadPolicy: H must be > 0");
  }
}

DiskId ReadPolicy::next_hot_disk() {
  const auto d = static_cast<DiskId>(hot_cursor_ % zoning_.hot_disks);
  ++hot_cursor_;
  return d;
}

DiskId ReadPolicy::next_cold_disk() {
  if (zoning_.cold_disks == 0) return next_hot_disk();
  const auto d = static_cast<DiskId>(zoning_.hot_disks +
                                     cold_cursor_ % zoning_.cold_disks);
  ++cold_cursor_;
  return d;
}

void ReadPolicy::initialize(ArrayContext& ctx) {
  const FileSet& files = ctx.files();
  if (files.empty()) throw std::invalid_argument("ReadPolicy: no files");

  // θ: configured, or estimated from the file set's access weights
  // (Fig. 6 takes θ as an input; our estimator mirrors line 11's epoch
  // re-estimation so both paths use the same statistic).
  double theta = config_.theta;
  if (theta == 0.0) {
    std::vector<double> weights;
    weights.reserve(files.size());
    for (const auto& f : files.files()) weights.push_back(f.access_rate);
    theta = estimate_theta_from_weights(weights, config_.theta_b);
  }

  // Fig. 6 step 5: sort by size ascending — the initial popularity proxy.
  const std::vector<FileId> by_size = files.ids_by_size_ascending();

  // Steps 1-3: zoning from Eq. 4/5 with loads in (assumed) popularity
  // order.
  std::vector<double> loads;
  loads.reserve(by_size.size());
  for (FileId f : by_size) loads.push_back(files.by_id(f).load());
  zoning_ = compute_zoning(loads, ctx.disk_count(), theta);

  // Step 4: hot zone high speed, cold zone low speed; DPM per zone.
  for (DiskId d = 0; d < ctx.disk_count(); ++d) {
    const bool hot = is_hot_disk(d);
    ctx.set_initial_speed(d, hot ? DiskSpeed::kHigh : DiskSpeed::kLow);
    DpmConfig dpm;
    if (hot) {
      // Hot disks may rest when idle but must come back up to serve;
      // the veto below enforces the daily budget S.
      dpm.spin_down_when_idle = true;
      dpm.idleness_threshold = config_.idleness_threshold;
      dpm.spin_up_to_serve = true;
    } else {
      // Cold disks stay low and serve at low speed (no transitions).
      dpm.spin_down_when_idle = false;
      dpm.spin_up_to_serve = false;
    }
    ctx.set_dpm(d, dpm);
  }

  // Steps 6-7: round-robin placement, popular -> hot, unpopular -> cold.
  hot_file_.assign(files.size(), 0);
  for (std::size_t rank = 0; rank < by_size.size(); ++rank) {
    const FileId f = by_size[rank];
    const bool popular = rank < zoning_.popular_files;
    hot_file_[f] = popular ? 1 : 0;
    ctx.place(f, popular ? next_hot_disk() : next_cold_disk());
  }
}

DiskId ReadPolicy::route(ArrayContext& ctx, const Request& req) {
  return ctx.location(req.file);
}

ReadPolicy::RebalanceCounts ReadPolicy::rebalance(
    ArrayContext& ctx, const std::vector<std::uint64_t>& counts,
    std::size_t* popular_cut) {
  // Lines 10-11: re-rank by observed accesses, re-estimate θ. θ only
  // needs the counts multiset, so it is fed a view over the raw epoch
  // counters — no sorted copy is materialized.
  const double theta = estimate_theta(
      std::span<const std::uint64_t>(counts), config_.theta_b);
  const std::size_t popular = popular_file_count(counts.size(), theta);

  // Only the popular/unpopular boundary matters, so instead of a full
  // stable_sort over every file: an O(m) nth_element around the cutoff,
  // then a bounded sort of the popular prefix. The tail needs ordering
  // only among files currently in the hot zone (the demotion
  // candidates). The (count desc, FileId asc) comparator reproduces the
  // former stable_sort's total order exactly, so the migration set, the
  // round-robin targets and the observer event order are unchanged.
  const auto by_rank = [&](FileId a, FileId b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  };
  auto& order = rank_scratch_;
  order.resize(counts.size());
  std::iota(order.begin(), order.end(), FileId{0});
  const std::size_t cut = std::min(popular, order.size());
  if (cut < order.size()) {
    std::nth_element(order.begin(), order.begin() + cut, order.end(),
                     by_rank);
  }
  std::sort(order.begin(), order.begin() + cut, by_rank);
  if (popular_cut != nullptr) *popular_cut = cut;

  // Lines 12-19: migrate files whose category changed. Targets follow
  // the zone round-robin cursors; promotions (rank order over the
  // popular prefix) precede demotions (rank order over the hot tail),
  // exactly as the single full-order sweep did.
  RebalanceCounts moved;
  for (std::size_t rank = 0; rank < cut; ++rank) {
    const FileId f = order[rank];
    if (!hot_file_[f]) {
      ctx.migrate(f, next_hot_disk());
      hot_file_[f] = 1;
      ++epoch_migrations_;
      ++moved.promotions;
    }
  }
  auto& demote = demote_scratch_;
  demote.clear();
  for (std::size_t rank = cut; rank < order.size(); ++rank) {
    if (hot_file_[order[rank]]) demote.push_back(order[rank]);
  }
  std::sort(demote.begin(), demote.end(), by_rank);
  for (const FileId f : demote) {
    ctx.migrate(f, next_cold_disk());
    hot_file_[f] = 0;
    ++epoch_migrations_;
    ++moved.demotions;
  }
  return moved;
}

void ReadPolicy::adapt_thresholds(ArrayContext& ctx, Seconds now) {
  // Lines 20-24: adaptive threshold — half the budget spent => double H.
  if (!config_.adaptive_threshold) return;
  for (DiskId d = 0; d < ctx.disk_count(); ++d) {
    if (!ctx.dpm(d).spin_down_when_idle) continue;
    if (ctx.disk(d).transitions_today(now) * 2 >=
        config_.max_transitions_per_day) {
      const Seconds doubled = ctx.dpm(d).idleness_threshold * 2.0;
      ctx.set_idleness_threshold(d, doubled);
      PR_LOG(kDebug) << "READ: disk " << d << " H doubled to "
                     << doubled.value() << "s";
    }
  }
}

int ReadPolicy::resize_hot_zone(ArrayContext& ctx, std::size_t target) {
  const std::size_t disks = ctx.disk_count();
  const std::size_t cap = disks > 1 ? disks - 1 : 1;
  target = std::clamp<std::size_t>(target, 1, cap);
  const std::size_t cur = zoning_.hot_disks;
  if (target == cur) return 0;
  if (target > cur) {
    for (std::size_t d = cur; d < target; ++d) {
      DpmConfig dpm;
      dpm.spin_down_when_idle = true;
      dpm.idleness_threshold = config_.idleness_threshold;
      dpm.spin_up_to_serve = true;
      ctx.set_dpm(static_cast<DiskId>(d), dpm);
      ctx.request_transition(static_cast<DiskId>(d), DiskSpeed::kHigh);
    }
  } else {
    for (std::size_t d = target; d < cur; ++d) {
      DpmConfig dpm;
      dpm.spin_down_when_idle = false;
      dpm.spin_up_to_serve = false;
      ctx.set_dpm(static_cast<DiskId>(d), dpm);
      ctx.request_transition(static_cast<DiskId>(d), DiskSpeed::kLow);
    }
  }
  zoning_.hot_disks = target;
  zoning_.cold_disks = disks - target;
  // The round-robin cursors keep running — they are taken modulo the new
  // zone widths on the next placement.
  return static_cast<int>(target) - static_cast<int>(cur);
}

void ReadPolicy::on_epoch(ArrayContext& ctx, Seconds now) {
  epoch_migrations_ = 0;
  if (ctx.epoch_requests() > 0) {
    rebalance(ctx, ctx.epoch_access_counts());
  }
  adapt_thresholds(ctx, now);
}

bool ReadPolicy::allow_spin_down(ArrayContext& ctx, DiskId d, Seconds now) {
  // A spin-down commits the disk to a spin-up later; deny when the pair
  // would blow the daily budget S (§5.2's hard cap).
  return ctx.disk(d).transitions_today(now) + 2 <=
         config_.max_transitions_per_day;
}

}  // namespace pr
