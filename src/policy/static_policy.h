// static_policy.h — the no-energy-saving reference point: every disk runs
// at high speed for the whole simulation, files are spread round-robin (in
// size order, like the other policies' initial layouts, so comparisons
// isolate the *energy management* rather than the layout). This is the
// implicit baseline the paper's §5.2 invokes when noting that a READ array
// under heavy load "has no disk spin downs, and thus disks are always
// running at high speed".
#pragma once

#include "sim/array_sim.h"

namespace pr {

class StaticPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "Static"; }

  void initialize(ArrayContext& ctx) override {
    const auto order = ctx.files().ids_by_size_ascending();
    for (DiskId d = 0; d < ctx.disk_count(); ++d) {
      ctx.set_initial_speed(d, DiskSpeed::kHigh);
      ctx.set_dpm(d, DpmConfig{});  // no spin-downs, no spin-ups
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      ctx.place(order[i], static_cast<DiskId>(i % ctx.disk_count()));
    }
  }

  DiskId route(ArrayContext& ctx, const Request& req) override {
    return ctx.location(req.file);
  }
};

}  // namespace pr
