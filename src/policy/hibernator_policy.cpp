#include "policy/hibernator_policy.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pr {

HibernatorPolicy::HibernatorPolicy(HibernatorConfig config)
    : config_(config) {
  if (!(config_.response_target > Seconds{0.0})) {
    throw std::invalid_argument("HibernatorPolicy: response_target <= 0");
  }
  if (config_.park_load_fraction < 0.0 || config_.park_load_fraction > 1.0) {
    throw std::invalid_argument(
        "HibernatorPolicy: park_load_fraction outside [0, 1]");
  }
}

void HibernatorPolicy::initialize(ArrayContext& ctx) {
  disk_busy_estimate_.assign(ctx.disk_count(), 0.0);
  for (DiskId d = 0; d < ctx.disk_count(); ++d) {
    ctx.set_initial_speed(d, DiskSpeed::kHigh);
    // No per-request DPM at all: speed changes only at interval
    // boundaries (the whole point of coarse granularity).
    ctx.set_dpm(d, DpmConfig{});
  }
  const auto order = ctx.files().ids_by_size_ascending();
  for (std::size_t i = 0; i < order.size(); ++i) {
    ctx.place(order[i], static_cast<DiskId>(i % ctx.disk_count()));
  }
}

DiskId HibernatorPolicy::route(ArrayContext& ctx, const Request& req) {
  return ctx.location(req.file);
}

void HibernatorPolicy::after_serve(ArrayContext& ctx, const Request& req,
                                   DiskId d) {
  // The disk's ready time right after the serve is this request's
  // completion (nothing else has been scheduled yet).
  const double rt = (ctx.disk(d).ready_time() - req.arrival).value();
  rt_sum_ += rt;
  ++rt_count_;
  disk_busy_estimate_[d] += static_cast<double>(req.size);
}

void HibernatorPolicy::on_epoch(ArrayContext& ctx, Seconds now) {
  (void)now;
  const double mean_rt = rt_count_ > 0
                             ? rt_sum_ / static_cast<double>(rt_count_)
                             : 0.0;
  const double total_bytes = std::accumulate(
      disk_busy_estimate_.begin(), disk_busy_estimate_.end(), 0.0);

  const bool sla_ok = mean_rt <= config_.response_target.value();
  if (!sla_ok) ++sla_violations_;

  const double fair_share =
      total_bytes / static_cast<double>(ctx.disk_count());
  for (DiskId d = 0; d < ctx.disk_count(); ++d) {
    DiskSpeed target = DiskSpeed::kHigh;
    if (sla_ok && total_bytes > 0.0 &&
        disk_busy_estimate_[d] <
            config_.park_load_fraction * fair_share) {
      target = DiskSpeed::kLow;
    }
    if (ctx.disk(d).speed() != target) {
      ctx.request_transition(d, target);
    }
  }

  std::fill(disk_busy_estimate_.begin(), disk_busy_estimate_.end(), 0.0);
  rt_sum_ = 0.0;
  rt_count_ = 0;
}

}  // namespace pr
