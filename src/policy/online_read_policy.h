// online_read_policy.h — READ without the epoch oracle: the online
// variant for streaming ingestion (ISSUE 6; ROADMAP "Online serving path",
// in the spirit of Behzadnia et al.'s online energy-aware management).
//
// Batch READ re-ranks from per-epoch access counters that reset at every
// boundary — an aggregate view a live server only has in hindsight. The
// online variant instead maintains *cumulative, exponentially decayed*
// popularity counts updated per served request, and acts at two cadences:
//   * per request (after_serve): a cold file whose decayed count climbs
//     past the current promotion bar (the *ceiling*-decayed count of the
//     weakest member of the last boundary's top-k, plus a configurable
//     margin) is promoted to the hot zone immediately — no waiting for
//     the boundary. The ceiling matters: the counts themselves decay by
//     floor shift, so a floor-decayed bar could tie with a file that the
//     boundary ranking placed strictly below the cut;
//   * per epoch (on_epoch): the same O(k) nth_element re-ranking machinery
//     as batch READ (ReadPolicy::rebalance) runs over the decayed counts,
//     correcting drift, demoting cooled files, refreshing the promotion
//     bar, and applying the decay (counts >>= decay_shift).
// The first boundary doubles as warm-up: no online promotions fire until
// an initial ranking has established a bar.
//
// Diagnostics: "online.promotions" / "online.demotions" counters in
// SimResult::counters (interned handles, one vector add per bump).
#pragma once

#include "control/zipf_estimator.h"
#include "obs/counter_registry.h"
#include "policy/read_policy.h"

namespace pr {

struct OnlineReadConfig {
  ReadConfig read;
  /// Extra decayed-count headroom above the promotion bar a cold file must
  /// reach before an online promotion fires. 0 = promote on crossing.
  std::uint64_t promote_margin = 0;
  /// Right-shift applied to every cumulative count at each epoch boundary
  /// (exponential decay with half-life decay_shift epochs); 0 disables
  /// decay (pure cumulative counts).
  std::uint32_t decay_shift = 1;
};

class OnlineReadPolicy final : public ReadPolicy {
 public:
  explicit OnlineReadPolicy(OnlineReadConfig config = {});

  [[nodiscard]] std::string name() const override { return "READ-online"; }

  void initialize(ArrayContext& ctx) override;
  void after_serve(ArrayContext& ctx, const Request& req, DiskId d) override;
  void on_epoch(ArrayContext& ctx, Seconds now) override;

  /// Control actuation (ISSUE 10): the energy controller's hot-zone
  /// resize request, guarded by the online θ̂/α̂ Zipf estimate over the
  /// decayed counts. A grow is capped at the zone width the observed skew
  /// justifies (compute_zoning under θ̂) — a flat workload cannot talk the
  /// controller into spinning the whole array up; a shrink only bottoms
  /// out at one hot disk. Refuses everything before warm-up (no ranking
  /// yet) and returns the signed resize actually applied.
  int on_control(ArrayContext& ctx, const ControlDecision& decision,
                 Seconds now) override;

  /// Introspection for tests/benches.
  [[nodiscard]] std::uint64_t online_promotions() const {
    return online_promotions_;
  }
  [[nodiscard]] std::uint64_t promotion_bar() const { return bar_; }
  [[nodiscard]] bool warmed_up() const { return warmed_; }
  [[nodiscard]] const std::vector<std::uint64_t>& decayed_counts() const {
    return counts_;
  }
  /// Last on_control Zipf fit over the decayed counts (θ̂ by the
  /// b-fraction statistic, α̂ by log-log rank regression); default until
  /// the first control update.
  [[nodiscard]] const ZipfEstimate& zipf_estimate() const {
    return estimate_;
  }
  [[nodiscard]] double theta_hat() const { return estimate_.theta; }
  [[nodiscard]] double alpha_hat() const { return estimate_.alpha; }

 private:
  OnlineReadConfig online_;
  std::vector<std::uint64_t> counts_;  // cumulative, decayed per epoch
  std::uint64_t served_ = 0;
  std::uint64_t bar_ = 0;
  std::uint64_t online_promotions_ = 0;
  bool warmed_ = false;
  CounterRegistry::Handle h_promotions_ = 0;
  CounterRegistry::Handle h_demotions_ = 0;
  ZipfEstimator estimator_;
  ZipfEstimate estimate_;
  std::vector<double> load_scratch_;  // desc-sorted loads for the guardrail
};

}  // namespace pr
