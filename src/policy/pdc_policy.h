// pdc_policy.h — PDC: Popular Data Concentration (Pinheiro & Bianchini,
// ICS'04 — the paper's [23]), in the 2-speed-disk variant the paper
// evaluates.
//
// PDC periodically migrates data so that popularity decreases across the
// array: the most popular files are concentrated on the first disk up to a
// load budget, the next on the second disk, and so on; the tail lands on
// the last disks, which then idle long enough to spin down. All disks use
// idleness-threshold DPM and spin up to serve. There is no reliability
// safeguard of any kind — that is precisely the paper's criticism.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/array_sim.h"

namespace pr {

struct PdcConfig {
  /// Idleness threshold for spin-down. The paper leaves every policy's
  /// threshold unspecified; this default is calibrated on the WC98-like
  /// day so PDC's most-cycled disk lands in the ~100 transitions/day
  /// regime the paper charges PDC with (see EXPERIMENTS.md — the value is
  /// deliberately above the ~30 s energy break-even, yet PDC still wastes
  /// energy through tail-disk cycling, reproducing §5.2's observation).
  Seconds idleness_threshold{60.0};
  /// Per-disk load budget as a fraction of one disk's service capacity
  /// within an epoch: disk i takes popular files until its estimated
  /// utilization reaches this, then filling moves to disk i+1.
  double load_budget = 0.7;
  /// Fraction of the epoch's accesses that defines the "popular data"
  /// PDC concentrates. Only files inside this cumulative head migrate;
  /// the unpopular tail *stays where it is* — PDC's whole point is that
  /// the disks holding only unpopular data idle long enough to power
  /// down (and keep being woken by stray tail accesses, which is exactly
  /// the reliability damage the paper charges PDC with).
  double concentration_fraction = 0.8;
};

class PdcPolicy final : public Policy {
 public:
  explicit PdcPolicy(PdcConfig config = {});

  [[nodiscard]] std::string name() const override { return "PDC"; }

  void initialize(ArrayContext& ctx) override;
  DiskId route(ArrayContext& ctx, const Request& req) override;
  void on_epoch(ArrayContext& ctx, Seconds now) override;

  [[nodiscard]] std::uint64_t epoch_migrations() const {
    return epoch_migrations_;
  }

 private:
  /// Estimated utilization contribution of serving `count` accesses of a
  /// file of `bytes` within one epoch at high speed.
  [[nodiscard]] double load_fraction(const ArrayContext& ctx, Bytes bytes,
                                     double count) const;

  PdcConfig config_;
  std::uint64_t epoch_migrations_ = 0;
  /// Epoch-ranking scratch (active file ids), reused across epochs.
  std::vector<FileId> rank_scratch_;
};

}  // namespace pr
