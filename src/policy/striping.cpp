#include "policy/striping.h"

#include <stdexcept>

namespace pr {

StripedStaticPolicy::StripedStaticPolicy(StripingConfig config)
    : config_(config) {
  if (config_.stripe_unit == 0) {
    throw std::invalid_argument("StripedStaticPolicy: zero stripe unit");
  }
}

void StripedStaticPolicy::initialize(ArrayContext& ctx) {
  for (DiskId d = 0; d < ctx.disk_count(); ++d) {
    ctx.set_initial_speed(d, DiskSpeed::kHigh);
    ctx.set_dpm(d, DpmConfig{});
  }
  // "Placement" records the disk of the first stripe unit; the rest of
  // the file wraps round-robin from there.
  const auto order = ctx.files().ids_by_size_ascending();
  for (std::size_t i = 0; i < order.size(); ++i) {
    ctx.place(order[i], static_cast<DiskId>(i % ctx.disk_count()));
  }
}

DiskId StripedStaticPolicy::route(ArrayContext& ctx, const Request& req) {
  return ctx.location(req.file);
}

std::vector<StripeChunk> StripedStaticPolicy::chunks_for(
    Bytes size, Bytes unit, DiskId start, std::size_t disk_count) {
  std::vector<StripeChunk> chunks;
  if (size == 0) {
    chunks.push_back({start, 0});
    return chunks;
  }
  // Units round-robin from `start`; per-disk bytes are the sum of that
  // disk's units — each disk appears at most once in the result.
  const auto full_units = size / unit;
  const Bytes remainder = size % unit;
  const auto n = disk_count;
  chunks.reserve(std::min<std::size_t>(n, full_units + 1));
  for (std::size_t i = 0; i < n; ++i) {
    const auto disk = static_cast<DiskId>((start + i) % n);
    Bytes bytes = (full_units / n) * unit;
    const auto extra_units = full_units % n;
    if (i < extra_units) bytes += unit;
    if (i == extra_units && remainder > 0) bytes += remainder;
    if (bytes > 0) chunks.push_back({disk, bytes});
  }
  if (chunks.empty()) chunks.push_back({start, size});
  return chunks;
}

std::vector<StripeChunk> StripedStaticPolicy::stripe(ArrayContext& ctx,
                                                     const Request& req) {
  return chunks_for(req.size, config_.stripe_unit, ctx.location(req.file),
                    ctx.disk_count());
}

}  // namespace pr
