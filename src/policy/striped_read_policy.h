// striped_read_policy.h — READ + RAID striping (paper §6, the second
// future-work direction: "we intend to enable the READ scheme to
// cooperate with the RAID architecture ... For the web server
// environment, files are usually very small, and thus stripping is not
// crucial. However, for large files such as video clips, audio segments,
// and office documents, stripping is needed").
//
// Exactly that split: files at or below the stripe unit follow plain
// READ placement (whole-file, hot/cold zones, epoch migration, capped
// DPM); larger files are striped across the *hot zone* in stripe units —
// they are, by the paper's framing, media objects whose transfer time
// dominates and parallelism pays. Striped files never migrate (their
// home zone is the hot zone by construction) and their chunks are served
// at whatever speed the hot disks are in, respecting READ's budget
// machinery untouched.
#pragma once

#include <vector>

#include "policy/read_policy.h"
#include "policy/striping.h"

namespace pr {

struct StripedReadConfig {
  ReadConfig read{};
  /// Files strictly larger than this are striped (the paper's "normal
  /// stripping block size 512 KB").
  Bytes stripe_unit = 512 * kKiB;
};

class StripedReadPolicy final : public Policy {
 public:
  explicit StripedReadPolicy(StripedReadConfig config = {});

  [[nodiscard]] std::string name() const override { return "READ+RAID0"; }
  [[nodiscard]] bool striped() const override { return true; }

  void initialize(ArrayContext& ctx) override;
  DiskId route(ArrayContext& ctx, const Request& req) override;
  std::vector<StripeChunk> stripe(ArrayContext& ctx,
                                  const Request& req) override;
  void on_epoch(ArrayContext& ctx, Seconds now) override;
  bool allow_spin_down(ArrayContext& ctx, DiskId d, Seconds now) override;

  [[nodiscard]] bool is_striped_file(FileId f) const {
    return striped_file_.at(f) != 0;
  }
  [[nodiscard]] std::size_t striped_file_count() const {
    return striped_count_;
  }

 private:
  StripedReadConfig config_;
  ReadPolicy base_;
  std::vector<char> striped_file_;
  std::size_t striped_count_ = 0;
};

}  // namespace pr
