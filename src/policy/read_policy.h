// read_policy.h — READ: Reliability and Energy Aware Distribution
// (paper §4, Fig. 6). The paper's core contribution.
//
// Mechanics (Fig. 6, annotated with line numbers):
//   1-3   compute |Fp| (Eq. 4), γ (Eq. 5), and the hot/cold disk split;
//   4     hot zone runs high speed, cold zone low speed;
//   5-7   initial placement: files sorted by size ascending (popularity is
//         assumed inversely correlated with size), popular files round-
//         robin over the hot zone, unpopular over the cold zone;
//   8-19  every epoch P: track per-file accesses, re-rank, re-estimate θ,
//         re-categorise, and migrate files whose category changed;
//   20-24 adaptive idleness threshold: once a disk has spent half of its
//         daily speed-transition budget S, its threshold H doubles so
//         future spin-downs become rarer.
//
// On top of Fig. 6, §5.2 states the hard constraint explicitly — "READ
// constrains each disk's number of speed transitions so that it cannot be
// larger than S, which is set to 40" — which we enforce via the spin-down
// veto (a spin-down is denied when the day's remaining budget cannot also
// cover the spin-up that must follow it).
#pragma once

#include <cstdint>
#include <vector>

#include "policy/zoning.h"
#include "sim/array_sim.h"

namespace pr {

struct ReadConfig {
  /// Skew parameter θ ∈ (0, 1]; 0 means "estimate from the file set's
  /// access rates" (and re-estimated from observed counts each epoch,
  /// Fig. 6 line 11).
  double theta = 0.0;
  /// Daily speed-transition budget S per disk (§5.2: 40).
  std::uint64_t max_transitions_per_day = 40;
  /// Initial idleness threshold H for hot-zone DPM.
  Seconds idleness_threshold{10.0};
  /// Fraction-of-files point at which θ is measured (see trace_stats).
  double theta_b = 0.2;
  /// Fig. 6 lines 20-24: double H once half the daily budget is spent.
  /// Disabling this (ablation ABL2) leaves only the hard veto, so disks
  /// burn their full budget early in the day and then stop saving energy.
  bool adaptive_threshold = true;
};

class ReadPolicy : public Policy {
 public:
  explicit ReadPolicy(ReadConfig config = {});

  [[nodiscard]] std::string name() const override { return "READ"; }

  void initialize(ArrayContext& ctx) override;
  DiskId route(ArrayContext& ctx, const Request& req) override;
  void on_epoch(ArrayContext& ctx, Seconds now) override;
  bool allow_spin_down(ArrayContext& ctx, DiskId d, Seconds now) override;

  /// Introspection for tests/benches.
  [[nodiscard]] const ZoningDecision& zoning() const { return zoning_; }
  [[nodiscard]] bool is_hot_file(FileId f) const { return hot_file_.at(f); }
  [[nodiscard]] bool is_hot_disk(DiskId d) const { return d < zoning_.hot_disks; }
  [[nodiscard]] std::uint64_t epoch_migrations() const {
    return epoch_migrations_;
  }

 protected:
  /// How many files a rebalance pass promoted/demoted (diagnostics for
  /// the online variant's counters).
  struct RebalanceCounts {
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
  };

  /// Fig. 6 lines 10-19 over an arbitrary popularity-count vector: re-rank
  /// (O(m) nth_element around the popular cutoff, (count desc, id asc)
  /// total order), re-estimate θ, migrate category changes — promotions in
  /// rank order, then demotions in rank order. The batch policy feeds it
  /// the epoch counters; the online variant its cumulative decayed counts.
  /// After the call rank_scratch_ holds the full order and the popular
  /// prefix [0, cut) is sorted; returns the migration split.
  RebalanceCounts rebalance(ArrayContext& ctx,
                            const std::vector<std::uint64_t>& counts,
                            std::size_t* popular_cut = nullptr);

  /// Fig. 6 lines 20-24: double a disk's idleness threshold H once half
  /// its daily transition budget is spent. No-op when the adaptive knob is
  /// off.
  void adapt_thresholds(ArrayContext& ctx, Seconds now);

  /// Control actuation: resize the hot zone to `target` disks, clamped to
  /// [1, disk_count - 1] (a zone of every disk would leave no cold zone —
  /// single-disk arrays stay at 1). Disks entering the zone get the hot
  /// DPM profile (spin-down-when-idle at the configured initial H,
  /// spin-up-to-serve) and an immediate spin-up; disks leaving it get the
  /// cold profile and a spin-down. Files are NOT migrated here — the next
  /// rebalance pass re-places categories against the new zone widths.
  /// Returns the signed resize actually applied (0 = no change).
  int resize_hot_zone(ArrayContext& ctx, std::size_t target);

  [[nodiscard]] DiskId next_hot_disk();
  [[nodiscard]] DiskId next_cold_disk();

  ReadConfig config_;
  ZoningDecision zoning_;
  std::vector<char> hot_file_;  // file id -> in hot zone?
  // Round-robin cursors (Fig. 6 step 3's dh/dc).
  std::size_t hot_cursor_ = 0;
  std::size_t cold_cursor_ = 0;
  std::uint64_t epoch_migrations_ = 0;
  // Epoch-ranking scratch, reused across epochs so the per-boundary work
  // allocates nothing in steady state.
  std::vector<FileId> rank_scratch_;
  std::vector<FileId> demote_scratch_;
};

}  // namespace pr
