// hibernator_policy.h — Hibernator-style baseline (Zhu et al., SOSP'05 —
// the paper's [30]; the third §2 power-management scheme PRESS's Fig. 1
// names). Hibernator's signature ideas, adapted to the two-speed disks of
// this reproduction:
//
//   * **coarse-grained speed setting**: disk speeds are only changed at
//     long fixed intervals (Hibernator's "coarse-grained re-evaluation"),
//     never per-request — bounding transition counts by construction
//     (at most one per disk per interval);
//   * **performance guarantee**: the controller watches the observed mean
//     response time; if it exceeds the target, everything is promoted to
//     high speed for the next interval (Hibernator reshuffles tiers to
//     honour its latency SLA);
//   * otherwise the lowest-load disks are parked at low speed, most
//     heavily-loaded kept high, sized so the low set carries little load.
//
// No data migration: like DRPM it manages power only.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/array_sim.h"

namespace pr {

struct HibernatorConfig {
  // Re-evaluation happens at the simulator's epoch boundaries
  // (SimConfig::epoch) — Hibernator's "coarse-grained" interval.
  /// Mean-response-time target; exceeding it forces all-high next
  /// interval.
  Seconds response_target{0.020};
  /// A disk may be parked at low speed when its share of the observed
  /// load is below this fraction of a fair share (1/n).
  double park_load_fraction = 0.5;
};

class HibernatorPolicy final : public Policy {
 public:
  explicit HibernatorPolicy(HibernatorConfig config = {});

  [[nodiscard]] std::string name() const override { return "Hibernator"; }

  void initialize(ArrayContext& ctx) override;
  DiskId route(ArrayContext& ctx, const Request& req) override;
  void after_serve(ArrayContext& ctx, const Request& req, DiskId d) override;
  void on_epoch(ArrayContext& ctx, Seconds now) override;

  [[nodiscard]] std::uint64_t intervals_with_sla_violation() const {
    return sla_violations_;
  }

 private:
  HibernatorConfig config_;
  // Observed within the current interval:
  std::vector<double> disk_busy_estimate_;  // Σ service-time proxy per disk
  double rt_sum_ = 0.0;
  std::uint64_t rt_count_ = 0;
  std::uint64_t sla_violations_ = 0;
};

}  // namespace pr
