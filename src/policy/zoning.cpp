#include "policy/zoning.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "trace/trace_stats.h"

namespace pr {

double eq4_delta(double theta) {
  if (!(theta > 0.0)) throw std::invalid_argument("eq4_delta: theta <= 0");
  return (1.0 - theta) / theta;
}

std::size_t popular_file_count(std::size_t file_count, double theta) {
  if (file_count <= 1) return file_count;
  const double raw = (1.0 - theta) * static_cast<double>(file_count);
  auto n = static_cast<std::size_t>(std::llround(raw));
  return std::clamp<std::size_t>(n, 1, file_count - 1);
}

double eq5_gamma(double theta, double popular_load, double unpopular_load) {
  if (!(theta > 0.0)) throw std::invalid_argument("eq5_gamma: theta <= 0");
  const double numerator = (1.0 - theta) * popular_load;
  const double denominator = theta * unpopular_load;
  if (denominator <= 0.0) {
    // No measurable cold load: the array is effectively all hot; callers
    // clamp to keep one cold disk.
    return std::numeric_limits<double>::infinity();
  }
  return numerator / denominator;
}

ZoningDecision compute_zoning(const std::vector<double>& loads_by_popularity,
                              std::size_t disk_count, double theta) {
  if (loads_by_popularity.empty()) {
    throw std::invalid_argument("compute_zoning: no files");
  }
  if (disk_count == 0) {
    throw std::invalid_argument("compute_zoning: no disks");
  }
  if (!(theta > 0.0) || theta > 1.0) {
    throw std::invalid_argument("compute_zoning: theta outside (0, 1]");
  }

  ZoningDecision z;
  z.theta = theta;
  z.delta = eq4_delta(theta);
  z.popular_files = popular_file_count(loads_by_popularity.size(), theta);
  z.unpopular_files = loads_by_popularity.size() - z.popular_files;

  const double popular_load = std::accumulate(
      loads_by_popularity.begin(),
      loads_by_popularity.begin() + static_cast<std::ptrdiff_t>(z.popular_files),
      0.0);
  const double total_load = std::accumulate(loads_by_popularity.begin(),
                                            loads_by_popularity.end(), 0.0);
  z.gamma = eq5_gamma(theta, popular_load, total_load - popular_load);

  if (disk_count == 1) {
    z.hot_disks = 1;
    z.cold_disks = 0;
    return z;
  }
  double hd_raw;
  if (std::isinf(z.gamma)) {
    hd_raw = static_cast<double>(disk_count - 1);
  } else {
    hd_raw = z.gamma * static_cast<double>(disk_count) / (z.gamma + 1.0);
  }
  auto hd = static_cast<std::size_t>(std::llround(hd_raw));
  z.hot_disks = std::clamp<std::size_t>(hd, 1, disk_count - 1);
  z.cold_disks = disk_count - z.hot_disks;
  return z;
}

double estimate_theta_from_weights(const std::vector<double>& weights,
                                   double files_fraction) {
  std::vector<double> active;
  active.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      active.push_back(w);
      total += w;
    }
  }
  if (active.size() < 2 || total <= 0.0) return 1.0;
  std::sort(active.begin(), active.end(), std::greater<>());
  auto top_n = static_cast<std::size_t>(
      std::ceil(files_fraction * static_cast<double>(active.size())));
  top_n = std::clamp<std::size_t>(top_n, 1, active.size() - 1);
  double top = 0.0;
  for (std::size_t i = 0; i < top_n; ++i) top += active[i];
  return theta_from_skew(top / total,
                         static_cast<double>(top_n) /
                             static_cast<double>(active.size()));
}

}  // namespace pr
