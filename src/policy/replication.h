// replication.h — hot-file replication extension (paper §6 future work:
// "a high file redistribution cost may arise as the number of file
// migrations increases substantially. One possible solution is to use
// file replication").
//
// ReplicatedReadPolicy wraps READ: the hottest files get extra copies on
// other hot-zone disks (created as background copy I/O), and reads pick
// the least-loaded replica — cutting queueing on the hottest disk and
// cushioning the epoch-migration churn the paper worries about. Replica
// sets are rebuilt at each epoch from observed popularity.
#pragma once

#include <unordered_map>
#include <vector>

#include "policy/read_policy.h"
#include "redundancy/scheme.h"

namespace pr {

struct ReplicationConfig {
  /// Copies per replicated file, including the primary (≥ 2 to replicate).
  std::size_t replicas = 2;
  /// How many of the hottest files get replicas.
  std::size_t top_files = 64;
  ReadConfig read{};
};

class ReplicatedReadPolicy final : public Policy {
 public:
  explicit ReplicatedReadPolicy(ReplicationConfig config = {});

  [[nodiscard]] std::string name() const override { return "READ+replication"; }

  void initialize(ArrayContext& ctx) override;
  DiskId route(ArrayContext& ctx, const Request& req) override;
  void after_serve(ArrayContext& ctx, const Request& req, DiskId d) override;
  void on_epoch(ArrayContext& ctx, Seconds now) override;
  bool allow_spin_down(ArrayContext& ctx, DiskId d, Seconds now) override;
  /// The replica sets exposed through the redundancy seam: a degraded
  /// read redirects to a live copy (or the primary when a replica disk is
  /// the one that failed); lost when every copy is on a failed disk.
  [[nodiscard]] RedundancyScheme* redundancy() override { return &scheme_; }

  [[nodiscard]] std::size_t replicated_files() const {
    return replicas_.size();
  }
  [[nodiscard]] const ReadPolicy& base() const { return base_; }

 private:
  /// Copy-based scheme over the policy's replica map (see redundancy()).
  class ReplicaScheme final : public RedundancyScheme {
   public:
    explicit ReplicaScheme(ReplicatedReadPolicy& owner) : owner_(&owner) {}
    [[nodiscard]] std::string name() const override { return "replica-set"; }
    [[nodiscard]] DegradedAction degraded_read(
        ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
        DiskId& redirect, std::vector<StripeChunk>& reads) override;

   private:
    ReplicatedReadPolicy* owner_;
  };

  /// (Re)build replica sets for the given hottest files.
  void build_replicas(ArrayContext& ctx, const std::vector<FileId>& hottest);
  [[nodiscard]] std::vector<DiskId> replica_targets(const ArrayContext& ctx,
                                                    FileId f) const;

  ReplicationConfig config_;
  ReadPolicy base_;
  ReplicaScheme scheme_{*this};
  /// file -> extra replica locations (primary lives in the placement map).
  std::unordered_map<FileId, std::vector<DiskId>> replicas_;
  // Counter handles interned in initialize() (route() runs per request).
  CounterRegistry::Handle h_copy_ = 0;
  CounterRegistry::Handle h_offloaded_ = 0;
  // Interned lazily on the first degraded read — interning in
  // initialize() would add a zero-valued counter to every fault-free
  // report and break their byte-identity.
  CounterRegistry::Handle h_degraded_ = 0;
  bool h_degraded_interned_ = false;
};

}  // namespace pr
