// redundancy_config.h — configuration for the array's redundancy layer.
//
// Kept free of simulator dependencies so sim/array_sim.h can embed a
// RedundancyConfig in SimConfig (and FleetConfig::shard / scenario cells
// inherit it for free) while the scheme implementations in this directory
// include the simulator headers. The paper's baseline storage model is a
// RAID-style array; this knob selects which organization the simulator
// actually enforces when faults strike (degraded reads, rebuild I/O):
//
//   kNone        — no parity. Degraded requests fall back to whatever copy
//                  set the policy maintains (replicas, the MAID cache) or
//                  are lost. Today's behavior, byte-identical.
//   kRaid5       — rotated parity over fixed consecutive groups of
//                  `group` disks; a degraded read reconstructs from the
//                  g−1 surviving group members.
//   kDeclustered — parity groups of `group` disks drawn per stripe from
//                  the whole array, so reconstruction and rebuild load
//                  spread over every surviving disk instead of one group.
//
// Parity capacity overhead is not modelled in placement (files keep the
// policy's layout; parity is implicit) — the scheme models the *I/O and
// reliability* consequences: reconstruction reads costed as real disk
// I/O, rebuild traffic that competes with foreground requests and wakes
// spun-down disks, and data-loss events when a second failure overlaps.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace pr {

enum class RedundancyKind : std::uint8_t {
  kNone = 0,
  kRaid5 = 1,
  kDeclustered = 2,
};

[[nodiscard]] constexpr const char* to_string(RedundancyKind k) {
  switch (k) {
    case RedundancyKind::kNone: return "none";
    case RedundancyKind::kRaid5: return "raid5";
    case RedundancyKind::kDeclustered: return "declustered";
  }
  return "?";
}

struct RedundancyConfig {
  RedundancyKind kind = RedundancyKind::kNone;
  /// Parity-group size g (data + parity stripe units per group). 0 means
  /// the whole array forms one group.
  std::size_t group = 0;
  /// Run the rebuild engine: a fail-stop disk is reconstructed in the
  /// background and returns to service when the rebuild completes (the
  /// repair time becomes an *output* of the simulation). Off = degraded
  /// reads only; recovery happens only via explicit plan events.
  bool rebuild = true;
  /// Scheduled rebuild rate in MB/s — sets the pacing of rebuild steps.
  /// The actual I/O still queues FCFS behind foreground traffic, so an
  /// overloaded array rebuilds slower than the scheduled rate.
  double rebuild_mbps = 32.0;
  /// Bytes reconstructed per rebuild step (one read on each surviving
  /// source plus one write on the rebuilt disk per step).
  Bytes rebuild_chunk = 4 * kMiB;
};

}  // namespace pr
