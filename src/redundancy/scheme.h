// scheme.h — the redundancy seam.
//
// A RedundancyScheme answers one question for the simulator: when a
// request's disk is held down by an injected fail-stop fault, how is the
// data still served? Three answers exist, and they cover every protection
// mechanism in the codebase:
//
//   kRedirect    — a whole live copy exists somewhere (a replica set, the
//                  MAID cache). The request moves to that disk. This is
//                  what ReplicatedReadPolicy and MaidPolicy expose through
//                  Policy::redundancy(); the counters and events are
//                  byte-identical to the pre-seam degraded_route path.
//   kReconstruct — no whole copy, but parity does: the scheme names the
//                  surviving stripe-unit disks and the simulator issues a
//                  real read on each of them (costed I/O, spin-ups and
//                  all), completing when the slowest survivor finishes.
//                  RAID-5 and declustered parity live here.
//   kLost        — nothing can serve it (RAID-0, a second failure inside
//                  the parity group). The simulator records the request
//                  as lost exactly as it always has.
//
// Parity schemes additionally drive the RebuildScheduler (rebuild.h): they
// name the source disks for each rebuild step and decide which disk pairs
// constitute data loss when failures overlap.
//
// Resolution order in ArraySimulator: a parity scheme configured via
// SimConfig::redundancy wins; otherwise the policy's own scheme (replica /
// cache copies); otherwise degraded requests are lost.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "redundancy/redundancy_config.h"
#include "sim/array_sim.h"

namespace pr {

/// How a degraded read is satisfied (see file comment).
enum class DegradedAction : std::uint8_t {
  kLost = 0,
  kRedirect = 1,
  kReconstruct = 2,
};

class RedundancyScheme {
 public:
  virtual ~RedundancyScheme() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// `failed` holds `bytes` of `file` and is out of service. Decide the
  /// degraded action: fill `redirect` for kRedirect (a live disk with a
  /// whole copy), or `reads` for kReconstruct (one costed read per
  /// surviving stripe unit; reconstructing B bytes reads B from each of
  /// the g−1 survivors). `reads` arrives empty. The simulator validates
  /// the answer (live, in range) and books the counters/events itself.
  [[nodiscard]] virtual DegradedAction degraded_read(
      ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
      DiskId& redirect, std::vector<StripeChunk>& reads) = 0;

  /// True for parity organizations — enables the rebuild engine and the
  /// data-loss bookkeeping. Copy-based schemes (replicas, MAID) return
  /// false: their repair story is the policy's own copy management.
  [[nodiscard]] virtual bool parity() const { return false; }

  /// Source disks for rebuild step `step` of `failed` (parity schemes
  /// only). Append live disks to `sources`; already-failed members are
  /// simply skipped — the rebuild proceeds on whatever survives.
  virtual void rebuild_sources(const ArrayContext& ctx, DiskId failed,
                               std::uint64_t step,
                               std::vector<DiskId>& sources) const {
    (void)ctx;
    (void)failed;
    (void)step;
    (void)sources;
  }

  /// True when concurrent failures of `a` and `b` lose data under this
  /// layout (same RAID-5 group; any pair for declustered parity, where
  /// some stripe always spans both).
  [[nodiscard]] virtual bool loses_data(DiskId a, DiskId b) const {
    (void)a;
    (void)b;
    return false;
  }
};

/// RAID-5: rotated parity over fixed consecutive groups of `group` disks
/// (disks [k·g, (k+1)·g)). One failure per group is survivable — a
/// degraded read reconstructs from the g−1 surviving group members; a
/// second failure in the same group is data loss.
class Raid5Scheme final : public RedundancyScheme {
 public:
  Raid5Scheme(std::size_t disk_count, std::size_t group);

  [[nodiscard]] std::string name() const override { return "raid5"; }
  [[nodiscard]] DegradedAction degraded_read(
      ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
      DiskId& redirect, std::vector<StripeChunk>& reads) override;
  [[nodiscard]] bool parity() const override { return true; }
  void rebuild_sources(const ArrayContext& ctx, DiskId failed,
                       std::uint64_t step,
                       std::vector<DiskId>& sources) const override;
  [[nodiscard]] bool loses_data(DiskId a, DiskId b) const override {
    return a / group_ == b / group_;
  }

  [[nodiscard]] std::size_t group() const { return group_; }

 private:
  std::size_t disks_;
  std::size_t group_;
};

/// Declustered parity: each stripe's g−1 partner units are spread over
/// the whole array (partner j of disk d for stripe salt s is
/// (d + 1 + (s + j) mod (n−1)) mod n — distinct offsets, never d), so
/// degraded reads and rebuild I/O fan out across every surviving disk
/// instead of hammering one group. The price is vulnerability: any two
/// concurrent failures share some stripe, so every overlapping pair is
/// data loss (the classic declustering trade-off — faster rebuild,
/// larger loss exposure).
class DeclusteredScheme final : public RedundancyScheme {
 public:
  DeclusteredScheme(std::size_t disk_count, std::size_t group);

  [[nodiscard]] std::string name() const override { return "declustered"; }
  [[nodiscard]] DegradedAction degraded_read(
      ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
      DiskId& redirect, std::vector<StripeChunk>& reads) override;
  [[nodiscard]] bool parity() const override { return true; }
  void rebuild_sources(const ArrayContext& ctx, DiskId failed,
                       std::uint64_t step,
                       std::vector<DiskId>& sources) const override;
  [[nodiscard]] bool loses_data(DiskId a, DiskId b) const override {
    return a != b;
  }

  [[nodiscard]] std::size_t group() const { return group_; }

 private:
  /// Partner j for (disk, salt); see class comment.
  [[nodiscard]] DiskId partner(DiskId d, std::uint64_t salt,
                               std::size_t j) const;

  std::size_t disks_;
  std::size_t group_;
};

/// Throw std::invalid_argument unless `config` is satisfiable on
/// `disk_count` disks: group size in [2, disk_count] (0 = whole array,
/// needs disk_count ≥ 2), RAID-5 groups dividing the array evenly,
/// positive rebuild rate and chunk.
void validate_redundancy(const RedundancyConfig& config,
                         std::size_t disk_count);

/// Validate and build the configured parity scheme; nullptr for kNone.
[[nodiscard]] std::unique_ptr<RedundancyScheme> make_scheme(
    const RedundancyConfig& config, std::size_t disk_count);

}  // namespace pr
