// rebuild.h — the paced background rebuild engine.
//
// When a parity-protected disk fail-stops, the array must reconstruct its
// contents onto a spare before a second failure turns degradation into
// data loss. The scheduler here models that as a stream of fixed-size
// *steps*: every `chunk / (mbps·1e6)` seconds one step falls due, and the
// simulator turns it into real I/O — one read on each surviving stripe
// source plus one write on the rebuilt disk, queued FCFS behind whatever
// foreground traffic those disks carry, waking them (TransitionCause::
// kRebuild) if the energy policy had spun them down. That wake-up is the
// paper's reliability-vs-energy tension made concrete: the energy ledger
// and the DegradationAnalyzer windows both see it.
//
// The scheduler itself is pure bookkeeping (which disks are rebuilding,
// how far along, when the next step falls due) so it stays deterministic
// and trivially testable; all I/O, counters and events live in
// ArraySimulator. Several disks may rebuild concurrently (distinct
// groups, or a declustered layout that survived by luck); steps fall due
// earliest-first, ties broken by lowest disk id.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/array_sim.h"
#include "util/units.h"

namespace pr {

class RebuildScheduler {
 public:
  /// One due step, popped by the simulator and turned into I/O.
  struct Step {
    DiskId disk = kInvalidDisk;
    /// The instant the step falls due.
    Seconds time{0.0};
    /// Bytes this step reconstructs (the final step may be short).
    Bytes bytes = 0;
    /// Zero-based step index — parity schemes use it as the stripe salt
    /// for source rotation.
    std::uint64_t index = 0;
    /// Progress after this step.
    Bytes done = 0;
    Bytes total = 0;
    /// When the rebuild started (for duration reporting).
    Seconds started{0.0};
    /// True when this step finishes the rebuild.
    bool completes = false;
  };

  /// Set the pacing; must be called (with mbps > 0, chunk > 0) before
  /// start().
  void configure(double mbps, Bytes chunk);

  [[nodiscard]] bool active() const { return !rebuilding_.empty(); }
  [[nodiscard]] bool rebuilding(DiskId d) const;
  /// Due time of the earliest pending step, kNeverTime when idle — feeds
  /// the simulator's wake hint.
  [[nodiscard]] Seconds next_time() const;

  /// Begin rebuilding `disk` (`total` bytes) at `now`. A zero-byte
  /// rebuild schedules one immediately-completing step so the disk still
  /// goes through the full start → complete lifecycle. No-op if the disk
  /// is already rebuilding.
  void start(DiskId disk, Seconds now, Bytes total);

  /// Drop an in-flight rebuild (the disk recovered by other means).
  /// Returns true if one was actually in flight.
  bool abort(DiskId disk);

  /// Pop the earliest step due at or before `t` into `out`, advancing the
  /// rebuild's state (progress, next due time; completed rebuilds are
  /// removed). Returns false when nothing is due.
  bool pop_due(Seconds t, Step& out);

 private:
  struct InFlight {
    DiskId disk = kInvalidDisk;
    Bytes total = 0;
    Bytes done = 0;
    std::uint64_t steps = 0;
    Seconds next{0.0};
    Seconds started{0.0};
  };

  /// Index of the earliest-due rebuild (ties → lowest disk id), or
  /// rebuilding_.size() when idle.
  [[nodiscard]] std::size_t earliest() const;

  std::vector<InFlight> rebuilding_;
  double period_s_ = 0.0;
  Bytes chunk_ = 0;
};

}  // namespace pr
