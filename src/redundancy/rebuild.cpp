#include "redundancy/rebuild.h"

#include <algorithm>

#include "util/contracts.h"

namespace pr {

void RebuildScheduler::configure(double mbps, Bytes chunk) {
  PR_PRECONDITION(mbps > 0.0, "RebuildScheduler: mbps must be > 0");
  PR_PRECONDITION(chunk > 0, "RebuildScheduler: chunk must be > 0");
  period_s_ = static_cast<double>(chunk) / (mbps * 1e6);
  chunk_ = chunk;
}

bool RebuildScheduler::rebuilding(DiskId d) const {
  for (const InFlight& r : rebuilding_) {
    if (r.disk == d) return true;
  }
  return false;
}

std::size_t RebuildScheduler::earliest() const {
  std::size_t best = rebuilding_.size();
  for (std::size_t i = 0; i < rebuilding_.size(); ++i) {
    if (best == rebuilding_.size() || rebuilding_[i].next < rebuilding_[best].next ||
        (rebuilding_[i].next == rebuilding_[best].next &&
         rebuilding_[i].disk < rebuilding_[best].disk)) {
      best = i;
    }
  }
  return best;
}

Seconds RebuildScheduler::next_time() const {
  const std::size_t i = earliest();
  return i == rebuilding_.size() ? kNeverTime : rebuilding_[i].next;
}

void RebuildScheduler::start(DiskId disk, Seconds now, Bytes total) {
  PR_PRECONDITION(chunk_ > 0, "RebuildScheduler: start() before configure()");
  if (rebuilding(disk)) return;
  InFlight r;
  r.disk = disk;
  r.total = total;
  // The first chunk is due one period out (reconstruction takes time even
  // for the first stripe); an empty disk completes in one immediate step.
  r.next = total == 0 ? now : now + Seconds{period_s_};
  r.started = now;
  rebuilding_.push_back(r);
}

bool RebuildScheduler::abort(DiskId disk) {
  for (std::size_t i = 0; i < rebuilding_.size(); ++i) {
    if (rebuilding_[i].disk != disk) continue;
    rebuilding_.erase(rebuilding_.begin() +
                      static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

bool RebuildScheduler::pop_due(Seconds t, Step& out) {
  const std::size_t i = earliest();
  if (i == rebuilding_.size() || rebuilding_[i].next > t) return false;
  InFlight& r = rebuilding_[i];
  out.disk = r.disk;
  out.time = r.next;
  out.bytes = std::min<Bytes>(chunk_, r.total - r.done);
  out.index = r.steps;
  out.total = r.total;
  out.started = r.started;
  r.done += out.bytes;
  ++r.steps;
  out.done = r.done;
  out.completes = r.done >= r.total;
  if (out.completes) {
    rebuilding_.erase(rebuilding_.begin() + static_cast<std::ptrdiff_t>(i));
  } else {
    r.next = r.next + Seconds{period_s_};
  }
  return true;
}

}  // namespace pr
