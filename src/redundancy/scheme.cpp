#include "redundancy/scheme.h"

#include <stdexcept>
#include <string>

#include "util/contracts.h"

namespace pr {

namespace {

/// Resolve group = 0 ("whole array") to the disk count.
std::size_t resolve_group(std::size_t group, std::size_t disk_count) {
  return group == 0 ? disk_count : group;
}

}  // namespace

// --- RAID-5 ------------------------------------------------------------

Raid5Scheme::Raid5Scheme(std::size_t disk_count, std::size_t group)
    : disks_(disk_count), group_(resolve_group(group, disk_count)) {
  // validate_redundancy() guards the factory path; direct construction
  // must satisfy the same geometry, or degraded_read indexes past the
  // array (group stride) and divides by a degenerate group.
  PR_PRECONDITION(group_ >= 2 && group_ <= disks_,
                  "Raid5Scheme: group size must be in [2, disk_count]");
  PR_PRECONDITION(disks_ % group_ == 0,
                  "Raid5Scheme: group must divide the array evenly");
}

DegradedAction Raid5Scheme::degraded_read(ArrayContext& ctx, FileId file,
                                          Bytes bytes, DiskId failed,
                                          DiskId& redirect,
                                          std::vector<StripeChunk>& reads) {
  (void)file;
  (void)redirect;
  const std::size_t base = (failed / group_) * group_;
  for (std::size_t j = 0; j < group_; ++j) {
    const auto member = static_cast<DiskId>(base + j);
    if (member == failed) continue;
    // A second failure in the group means the stripe is unrecoverable.
    if (ctx.disk_failed(member)) return DegradedAction::kLost;
    reads.push_back(StripeChunk{member, bytes});
  }
  return reads.empty() ? DegradedAction::kLost : DegradedAction::kReconstruct;
}

void Raid5Scheme::rebuild_sources(const ArrayContext& ctx, DiskId failed,
                                  std::uint64_t step,
                                  std::vector<DiskId>& sources) const {
  (void)step;
  const std::size_t base = (failed / group_) * group_;
  for (std::size_t j = 0; j < group_; ++j) {
    const auto member = static_cast<DiskId>(base + j);
    if (member == failed || ctx.disk_failed(member)) continue;
    sources.push_back(member);
  }
}

// --- Declustered parity ------------------------------------------------

DeclusteredScheme::DeclusteredScheme(std::size_t disk_count, std::size_t group)
    : disks_(disk_count), group_(resolve_group(group, disk_count)) {
  // partner() rotates over disks_ - 1 survivors: a group wider than the
  // array or a single-disk array makes that modulus degenerate.
  PR_PRECONDITION(group_ >= 2 && group_ <= disks_,
                  "DeclusteredScheme: group size must be in [2, disk_count]");
}

DiskId DeclusteredScheme::partner(DiskId d, std::uint64_t salt,
                                  std::size_t j) const {
  const std::size_t offset = 1 + ((salt + j) % (disks_ - 1));
  return static_cast<DiskId>((d + offset) % disks_);
}

DegradedAction DeclusteredScheme::degraded_read(
    ArrayContext& ctx, FileId file, Bytes bytes, DiskId failed,
    DiskId& redirect, std::vector<StripeChunk>& reads) {
  (void)redirect;
  // The file id is the stripe salt: every file's parity partners are a
  // different rotation, which is exactly the load-spreading property.
  for (std::size_t j = 0; j + 1 < group_; ++j) {
    const DiskId p = partner(failed, file, j);
    if (ctx.disk_failed(p)) return DegradedAction::kLost;
    reads.push_back(StripeChunk{p, bytes});
  }
  return reads.empty() ? DegradedAction::kLost : DegradedAction::kReconstruct;
}

void DeclusteredScheme::rebuild_sources(const ArrayContext& ctx, DiskId failed,
                                        std::uint64_t step,
                                        std::vector<DiskId>& sources) const {
  // Successive steps rebuild successive stripes, so the read load rotates
  // over the surviving disks — the declustering win.
  for (std::size_t j = 0; j + 1 < group_; ++j) {
    const DiskId p = partner(failed, step, j);
    if (ctx.disk_failed(p)) continue;
    sources.push_back(p);
  }
}

// --- validation & factory ----------------------------------------------

void validate_redundancy(const RedundancyConfig& config,
                         std::size_t disk_count) {
  if (config.kind == RedundancyKind::kNone) return;
  const std::size_t g = resolve_group(config.group, disk_count);
  if (g < 2 || g > disk_count) {
    throw std::invalid_argument(
        "redundancy: group size must be in [2, disk_count], got " +
        std::to_string(g) + " over " + std::to_string(disk_count) + " disks");
  }
  if (config.kind == RedundancyKind::kRaid5 && disk_count % g != 0) {
    throw std::invalid_argument(
        "redundancy: raid5 group " + std::to_string(g) +
        " does not divide the array of " + std::to_string(disk_count));
  }
  if (config.rebuild) {
    if (!(config.rebuild_mbps > 0.0)) {
      throw std::invalid_argument("redundancy: rebuild_mbps must be > 0");
    }
    if (config.rebuild_chunk == 0) {
      throw std::invalid_argument("redundancy: rebuild_chunk must be > 0");
    }
  }
}

std::unique_ptr<RedundancyScheme> make_scheme(const RedundancyConfig& config,
                                              std::size_t disk_count) {
  validate_redundancy(config, disk_count);
  switch (config.kind) {
    case RedundancyKind::kNone:
      return nullptr;
    case RedundancyKind::kRaid5:
      return std::make_unique<Raid5Scheme>(disk_count, config.group);
    case RedundancyKind::kDeclustered:
      return std::make_unique<DeclusteredScheme>(disk_count, config.group);
  }
  return nullptr;
}

}  // namespace pr
