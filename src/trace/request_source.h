// request_source.h — the streaming half of the trace layer: a pull-based
// request iterator the simulator consumes one arrival at a time.
//
// Before this abstraction every entry path materialized a full
// std::vector<Request> — an oracle the paper's serving scenario doesn't
// have, and a memory wall for fleet-scale traces. A RequestSource inverts
// the flow: the simulator *pulls*, the source produces exactly one request
// per pull, and whatever buffering a source needs internally is bounded by
// its own configuration (see stream_reader.h). Backpressure is structural:
// nothing upstream of the simulator ever runs ahead of the pull.
//
// Implementations shipped by the library:
//   TraceSource            — adapter over a materialized Trace (borrowed or
//                            owned); the byte-identical bridge for every
//                            legacy vector-based call site.
//   CsvStreamSource /
//   JsonlStreamSource      — bounded-memory text readers over a file, pipe
//                            or inherited fd tail (stream_reader.h).
//   SyntheticSource        — wrapper over the src/workload/ generators that
//                            synthesises requests on demand instead of
//                            materializing the trace (workload/synthetic.h).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "trace/request.h"

namespace pr {

/// Pull-based request iterator. Arrivals must be produced in
/// non-decreasing time order (the simulator re-checks incrementally and
/// throws the same std::invalid_argument the materialized path always
/// did). A source is single-pass: once next() returns false it keeps
/// returning false.
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  RequestSource(const RequestSource&) = delete;
  RequestSource& operator=(const RequestSource&) = delete;

  /// Produce the next request into `out`. Returns false at end of stream
  /// (out is left untouched). Throws std::invalid_argument for malformed
  /// input (streaming readers report "<source>:<line>: message").
  bool next(Request& out) {
    if (!poll(out)) return false;
    ++produced_;
    return true;
  }

  /// Produce up to `max` requests into `out[0..max)`; returns how many
  /// were written (0 only at end of stream). The batch is the simulator's
  /// unit of pull at fleet scale: one virtual dispatch amortized over the
  /// whole batch instead of one per request. Identical request sequence
  /// to repeated next() calls — batching is a transport detail, never a
  /// reordering.
  std::size_t next_batch(Request* out, std::size_t max) {
    const std::size_t n = poll_batch(out, max);
    produced_ += n;
    return n;
  }

  /// Human-readable description of where requests come from ("trace[8000]",
  /// "csv:traces/day1.csv", "synthetic:wc98-light"). Used in logs and
  /// error messages.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// True when requests are produced incrementally (unbounded input is
  /// possible); false for adapters over fully materialized traces.
  [[nodiscard]] virtual bool streaming() const = 0;

  /// Requests handed out so far (diagnostics; also the 1-based line-item
  /// count streaming readers use in error messages).
  [[nodiscard]] std::uint64_t produced() const { return produced_; }

 protected:
  RequestSource() = default;

  /// Implementation hook for next(); same contract, minus the counting.
  virtual bool poll(Request& out) = 0;

  /// Implementation hook for next_batch(). The default drains poll();
  /// sources with resident storage override it with a bulk copy.
  virtual std::size_t poll_batch(Request* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && poll(out[n])) ++n;
    return n;
  }

 private:
  std::uint64_t produced_ = 0;
};

/// Adapter over a materialized Trace. Borrows by default (the trace must
/// outlive the source); the rvalue overload takes ownership (trace::open
/// uses it for the whole-file legacy formats). streaming() is false: the
/// input is finite and fully resident, so callers may still take the
/// up-front validation path.
class TraceSource final : public RequestSource {
 public:
  /// Borrow `trace` (caller keeps it alive).
  explicit TraceSource(const Trace& trace) : trace_(&trace) {}
  /// Own a materialized trace (legacy-format adapters).
  explicit TraceSource(Trace&& trace)
      : owned_(std::move(trace)), trace_(&owned_) {}

  [[nodiscard]] std::string describe() const override {
    return "trace[" + std::to_string(trace_->size()) + "]";
  }
  [[nodiscard]] bool streaming() const override { return false; }

  /// The adapted trace (tests and stats passes use this to avoid a drain).
  [[nodiscard]] const Trace& trace() const { return *trace_; }

 protected:
  bool poll(Request& out) override {
    if (cursor_ >= trace_->requests.size()) return false;
    out = trace_->requests[cursor_++];
    return true;
  }

  std::size_t poll_batch(Request* out, std::size_t max) override {
    const auto& requests = trace_->requests;
    const std::size_t n = std::min(max, requests.size() - cursor_);
    std::copy_n(requests.data() + cursor_, n, out);
    cursor_ += n;
    return n;
  }

 private:
  Trace owned_;
  const Trace* trace_;
  std::size_t cursor_ = 0;
};

}  // namespace pr
