// clf.h — Apache/NCSA Common Log Format reader. The paper's application
// domain is web/proxy/ftp serving (§4); WC98 aside, virtually every real
// web access log a user can bring is CLF or Combined Log Format:
//
//   host ident authuser [10/Oct/2000:13:55:36 -0700] "GET /a.html HTTP/1.0" 200 2326
//
// This module parses CLF/Combined lines into simulator requests: the URL
// becomes the file (densified ids), the response size the transfer size,
// and the timestamp the arrival (with the same deterministic in-second
// spreading as the WC98 reader). Malformed lines are counted and skipped
// rather than fatal — real logs are dirty.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "trace/request.h"

namespace pr {

struct ClfRecord {
  std::int64_t timestamp = 0;  // seconds since epoch (UTC)
  std::string url;
  std::string method;          // GET/POST/...
  int status = 0;
  Bytes bytes = 0;             // 0 when the log field is "-"

  friend bool operator==(const ClfRecord&, const ClfRecord&) = default;
};

/// Parse one CLF/Combined line. Returns false (leaving `out` untouched)
/// for lines that do not match the format.
[[nodiscard]] bool parse_clf_line(std::string_view line, ClfRecord& out);

/// Parse the CLF timestamp body "10/Oct/2000:13:55:36 -0700" to UTC
/// seconds since epoch. Returns false on malformed input.
[[nodiscard]] bool parse_clf_timestamp(std::string_view text,
                                       std::int64_t& out);

struct ClfParseStats {
  std::size_t lines = 0;
  std::size_t parsed = 0;
  std::size_t skipped = 0;  // malformed
};

/// Read an entire log stream.
[[nodiscard]] std::vector<ClfRecord> read_clf_records(
    std::istream& in, ClfParseStats* stats = nullptr);
[[nodiscard]] std::vector<ClfRecord> read_clf_records_file(
    const std::string& path, ClfParseStats* stats = nullptr);

struct ClfConvertOptions {
  /// Substitute for "-"/0 sizes.
  Bytes default_size = 4 * kKiB;
  /// Spread same-second arrivals uniformly within the second.
  bool spread_within_second = true;
  /// Shift arrivals so the trace starts at t = 0.
  bool rebase_to_zero = true;
  /// Drop non-2xx responses (errors transfer little and distort file
  /// sizes); 0 disables the filter.
  bool successful_only = true;
  /// Treat these methods as writes (kWrite) instead of reads.
  std::vector<std::string> write_methods{"PUT", "POST", "DELETE"};
};

/// Convert parsed records into a simulator trace; URL→dense file ids in
/// first-appearance order (map returned via `url_map` when non-null).
[[nodiscard]] Trace clf_to_trace(const std::vector<ClfRecord>& records,
                                 const ClfConvertOptions& options = {},
                                 std::vector<std::string>* url_map = nullptr);

}  // namespace pr
