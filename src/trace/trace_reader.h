// trace_reader.h — one front door for every trace format the repo can
// ingest. Callers say *what* they have ("csv:traces/day1.csv", "-",
// "access.log") and get back a RequestSource; the per-format readers
// (csv_trace.h, stream_reader.h, clf.h, wc98.h) become implementation
// details behind this registry instead of per-call-site dispatch in
// run_experiment and the benches.
//
// Spec grammar: `[format:]path` with format in {csv, jsonl, clf, wc98}.
// Without a prefix the format is inferred from the extension (.csv, .jsonl/
// .ndjson, .log → clf, .wc98). `-` is stdin (csv unless prefixed). A
// prefix is only treated as a format when it names a registered one, so
// bare paths containing ':' keep working.
//
// Line formats (csv, jsonl) open as bounded-memory streaming readers; the
// whole-file binary/log formats (wc98, clf) are inherently two-pass
// (densified file ids, in-second spreading) and open as TraceSource
// adapters over the byte-identical legacy loaders.
#pragma once

#include <memory>
#include <string>

#include "trace/request_source.h"
#include "trace/stream_reader.h"

namespace pr::trace {

/// A spec split into its resolved format name and path ("-" for stdin).
struct ResolvedSpec {
  std::string format;
  std::string path;
};

/// Resolve `[format:]path` against the registry. Throws
/// std::invalid_argument for unknown formats or uninferrable extensions.
[[nodiscard]] ResolvedSpec resolve_spec(const std::string& spec);

/// Open `spec` as a RequestSource. Streaming formats honour `options`;
/// whole-file formats load eagerly and adapt. Throws std::runtime_error
/// when the path cannot be opened, std::invalid_argument for bad specs.
[[nodiscard]] std::unique_ptr<RequestSource> open(
    const std::string& spec, StreamReaderOptions options = {});

/// Open and fully materialize `spec` (legacy call sites and the stats
/// pass). Byte-identical to the per-format readers this replaces.
[[nodiscard]] Trace open_trace(const std::string& spec,
                               StreamReaderOptions options = {});

/// Comma-separated registered format names, for help text and errors.
[[nodiscard]] const std::string& format_names();

}  // namespace pr::trace
