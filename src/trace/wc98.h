// wc98.h — reader/writer for the 1998 World Cup web-site access logs in
// their published binary format (Arlitt & Jin, "1998 World Cup Web Site
// Access Logs", reference [2] of the paper).
//
// The paper evaluates on one day of the WorldCup98 trace ("WorldCup98-05-09",
// 4,079 files, 1,480,081 requests, mean inter-arrival 58.4 ms). The raw logs
// are distributed as fixed 20-byte big-endian records:
//
//   struct record {            // all integers big-endian (network order)
//     uint32 timestamp;        // seconds since UNIX epoch
//     uint32 clientID;         // anonymised client id
//     uint32 objectID;         // unique id of the requested URL
//     uint32 size;             // response bytes (0xFFFFFFFF == unknown)
//     uint8  method;           // GET = 0, ...
//     uint8  status;           // HTTP status/protocol packed code
//     uint8  type;             // file type (HTML, IMAGE, ...)
//     uint8  server;           // region/server packed code
//   };
//
// We cannot ship the real trace offline, so this module gives downstream
// users a drop-in loader for the genuine files, and the rest of the repo
// uses a synthetic trace matched to the paper's reported statistics (see
// synthetic.h and DESIGN.md "Substitutions").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/request.h"

namespace pr {

/// One decoded log record, mirroring the published layout.
struct Wc98Record {
  std::uint32_t timestamp = 0;
  std::uint32_t client_id = 0;
  std::uint32_t object_id = 0;
  std::uint32_t size = 0;  // 0xFFFFFFFF means unknown
  std::uint8_t method = 0;
  std::uint8_t status = 0;
  std::uint8_t type = 0;
  std::uint8_t server = 0;

  friend bool operator==(const Wc98Record&, const Wc98Record&) = default;
};

constexpr std::uint32_t kWc98UnknownSize = 0xFFFFFFFFu;
constexpr std::size_t kWc98RecordBytes = 20;

/// Decode every record in `in`. Throws std::runtime_error on a truncated
/// final record.
[[nodiscard]] std::vector<Wc98Record> read_wc98_records(std::istream& in);
[[nodiscard]] std::vector<Wc98Record> read_wc98_records_file(
    const std::string& path);

/// Encode records in the on-disk format (used by round-trip tests and to
/// fabricate small fixture files).
void write_wc98_records(const std::vector<Wc98Record>& records,
                        std::ostream& out);

struct Wc98ConvertOptions {
  /// Records with unknown/zero size are given this many bytes (the policies
  /// need a positive transfer size); the WC98 analysis reports a mean
  /// response near this value.
  Bytes default_size = 4 * kKiB;
  /// The raw log has 1-second timestamp resolution, which would put
  /// thousands of arrivals at the same instant. When true, requests within
  /// one second are spread uniformly (deterministically, by in-second
  /// sequence) across that second, preserving per-second counts.
  bool spread_within_second = true;
  /// Shift arrivals so the trace starts at t = 0.
  bool rebase_to_zero = true;
};

/// Convert raw records into a simulator trace. Object ids are densified to
/// a compact [0, m) range in first-appearance order; the mapping is
/// returned via `object_id_map` when non-null (object_id_map[i] = raw id of
/// dense file i).
[[nodiscard]] Trace wc98_to_trace(const std::vector<Wc98Record>& records,
                                  const Wc98ConvertOptions& options = {},
                                  std::vector<std::uint32_t>* object_id_map =
                                      nullptr);

}  // namespace pr
