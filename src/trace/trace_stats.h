// trace_stats.h — workload characterisation. READ (§4) parameterises itself
// from workload statistics: the Zipf-like skew parameter θ (Lee et al. [20]:
// the fraction of accesses captured by the top x fraction of files is x^θ,
// θ = log(A/100)/log(B/100) when A% of accesses go to B% of files), file
// popularity ranking, and per-file loads. This module computes all of that
// from any Trace, so the same code path serves real WC98 input and the
// synthetic generator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/request.h"

namespace pr {

struct TraceStats {
  std::size_t request_count = 0;
  std::size_t file_count = 0;  // distinct files referenced
  Seconds duration{0};
  Seconds mean_interarrival{0};
  double mean_request_bytes = 0.0;
  Bytes total_bytes = 0;

  /// access_count[f] for every file id in [0, file_universe).
  std::vector<std::uint64_t> access_counts;
  /// Mean transfer size observed per file (0 for never-accessed ids).
  std::vector<double> mean_file_bytes;

  /// Skew parameter θ estimated at the configured B (top-fraction) point.
  double theta = 1.0;
  /// Fraction of accesses captured by the top `theta_b` fraction of files.
  double top_fraction_accesses = 0.0;
  /// The B used for the θ estimate (fraction of files, e.g. 0.2).
  double theta_b = 0.2;

  /// Zipf exponent fitted by least squares on log(rank) vs log(count)
  /// (0 when the trace has too few distinct counts to fit).
  double zipf_alpha = 0.0;
};

struct TraceStatsOptions {
  /// Top-fraction of files at which θ is measured (Lee et al. use the
  /// A%/B% formulation; B = 20% reproduces the classic 80/20 reading).
  double theta_b = 0.2;
  /// Number of top-ranked files used in the Zipf log-log fit (0 = all).
  std::size_t zipf_fit_ranks = 0;
};

/// Single-pass (plus sort over distinct files) trace characterisation.
[[nodiscard]] TraceStats compute_trace_stats(const Trace& trace,
                                             const TraceStatsOptions& options = {});

/// Incremental form of compute_trace_stats for streaming ingestion: feed
/// requests in arrival order with add(), then finalize(). Feeding every
/// request of a trace reproduces compute_trace_stats exactly (same
/// accumulation order, same derived statistics) — compute_trace_stats is
/// implemented on top of this class. Memory is O(file universe), not
/// O(requests), so a stats pass over an unbounded stream stays bounded by
/// the id space.
class TraceStatsAccumulator {
 public:
  explicit TraceStatsAccumulator(TraceStatsOptions options = {})
      : options_(options) {}

  /// Record one request (arrival order required for the duration fields).
  void add(const Request& r);

  /// Requests recorded so far.
  [[nodiscard]] std::size_t request_count() const { return request_count_; }
  /// Arrival of the most recent request (0 before the first add). The
  /// scenario engine uses this as the fault-plan horizon.
  [[nodiscard]] Seconds last_arrival() const { return last_; }
  /// Live per-file access counts (grows with the observed id space).
  [[nodiscard]] const std::vector<std::uint64_t>& access_counts() const {
    return access_counts_;
  }
  /// Live per-file mean transfer sizes (same indexing as access_counts()).
  [[nodiscard]] const std::vector<double>& mean_file_bytes() const {
    return mean_file_bytes_;
  }

  /// Derive the full TraceStats from everything added so far.
  [[nodiscard]] TraceStats finalize() const;

 private:
  TraceStatsOptions options_;
  std::size_t request_count_ = 0;
  Bytes total_bytes_ = 0;
  std::vector<std::uint64_t> access_counts_;
  std::vector<double> mean_file_bytes_;
  Seconds first_{0};
  Seconds last_{0};
  bool have_first_ = false;
};

/// θ from an A/B skew statement: A fraction of accesses to B fraction of
/// files; both in (0, 1). θ = log(A)/log(B). θ ∈ (0, 1] for A ≥ B.
[[nodiscard]] double theta_from_skew(double accesses_fraction,
                                     double files_fraction);

/// Inverse helper: fraction of accesses captured by top `files_fraction`
/// of files under skew θ (the Lee et al. cumulative law x^θ).
[[nodiscard]] double accesses_captured(double files_fraction, double theta);

/// θ estimated from raw access counts (need not be normalised, ordered or
/// zero-free — only the multiset of positive counts matters); returns 1.0
/// (uniform) for degenerate inputs. The span overload lets hot callers
/// (epoch re-ranking) pass a view over live counters without materializing
/// a copy; selection is O(n) via nth_element, not a full sort.
[[nodiscard]] double estimate_theta(std::span<const std::uint64_t> counts,
                                    double files_fraction = 0.2);
[[nodiscard]] double estimate_theta(const std::vector<std::uint64_t>& counts,
                                    double files_fraction = 0.2);

}  // namespace pr
