#include "trace/trace_stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

namespace pr {

double theta_from_skew(double accesses_fraction, double files_fraction) {
  if (!(accesses_fraction > 0.0) || accesses_fraction >= 1.0 ||
      !(files_fraction > 0.0) || files_fraction >= 1.0) {
    return 1.0;
  }
  const double theta = std::log(accesses_fraction) / std::log(files_fraction);
  return std::clamp(theta, 1e-6, 1.0);
}

double accesses_captured(double files_fraction, double theta) {
  files_fraction = std::clamp(files_fraction, 0.0, 1.0);
  if (files_fraction == 0.0) return 0.0;
  return std::pow(files_fraction, theta);
}

double estimate_theta(std::span<const std::uint64_t> counts,
                      double files_fraction) {
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  // Count only files that were actually accessed: the universe of files a
  // policy distributes is the referenced set.
  std::vector<std::uint64_t> active;
  active.reserve(counts.size());
  for (auto c : counts) {
    if (c > 0) active.push_back(c);
  }
  if (total == 0 || active.size() < 2) return 1.0;

  auto top_n = static_cast<std::size_t>(
      std::ceil(files_fraction * static_cast<double>(active.size())));
  top_n = std::clamp<std::size_t>(top_n, 1, active.size() - 1);

  // Only the sum of the top_n largest counts matters, and that sum is
  // invariant under how nth_element arranges ties — O(n) selection
  // replaces the former full descending sort.
  std::nth_element(active.begin(), active.begin() + top_n, active.end(),
                   std::greater<>());
  const std::uint64_t top_accesses = std::accumulate(
      active.begin(), active.begin() + top_n, std::uint64_t{0});

  const double a =
      static_cast<double>(top_accesses) / static_cast<double>(total);
  const double b =
      static_cast<double>(top_n) / static_cast<double>(active.size());
  return theta_from_skew(a, b);
}

double estimate_theta(const std::vector<std::uint64_t>& counts,
                      double files_fraction) {
  return estimate_theta(std::span<const std::uint64_t>(counts),
                        files_fraction);
}

void TraceStatsAccumulator::add(const Request& r) {
  ++request_count_;
  total_bytes_ += r.size;
  if (r.file != kInvalidFile) {
    if (r.file >= access_counts_.size()) {
      access_counts_.resize(r.file + std::size_t{1}, 0);
      mean_file_bytes_.resize(r.file + std::size_t{1}, 0.0);
    }
    ++access_counts_[r.file];
    // incremental mean per file
    const auto n = static_cast<double>(access_counts_[r.file]);
    mean_file_bytes_[r.file] +=
        (static_cast<double>(r.size) - mean_file_bytes_[r.file]) / n;
  }
  if (!have_first_) {
    first_ = r.arrival;
    have_first_ = true;
  }
  last_ = r.arrival;
}

TraceStats TraceStatsAccumulator::finalize() const {
  TraceStats stats;
  stats.theta_b = options_.theta_b;
  stats.request_count = request_count_;
  if (request_count_ == 0) return stats;

  stats.total_bytes = total_bytes_;
  stats.access_counts = access_counts_;
  stats.mean_file_bytes = mean_file_bytes_;
  stats.file_count = static_cast<std::size_t>(std::count_if(
      stats.access_counts.begin(), stats.access_counts.end(),
      [](std::uint64_t c) { return c > 0; }));

  stats.duration =
      request_count_ > 1 ? Seconds{last_ - first_} : Seconds{0};
  stats.mean_interarrival =
      request_count_ > 1
          ? Seconds{stats.duration.value() /
                    static_cast<double>(request_count_ - 1)}
          : Seconds{0};
  stats.mean_request_bytes = static_cast<double>(stats.total_bytes) /
                             static_cast<double>(request_count_);

  stats.theta = estimate_theta(stats.access_counts, options_.theta_b);

  // Fraction of accesses going to the top θ_b fraction of (active) files.
  {
    std::vector<std::uint64_t> active;
    active.reserve(stats.file_count);
    for (auto c : stats.access_counts) {
      if (c > 0) active.push_back(c);
    }
    std::sort(active.begin(), active.end(), std::greater<>());
    if (!active.empty()) {
      auto top_n = static_cast<std::size_t>(std::ceil(
          options_.theta_b * static_cast<double>(active.size())));
      top_n = std::clamp<std::size_t>(top_n, 1, active.size());
      std::uint64_t top = 0;
      for (std::size_t i = 0; i < top_n; ++i) top += active[i];
      stats.top_fraction_accesses =
          static_cast<double>(top) / static_cast<double>(request_count_);
    }
  }

  // Zipf exponent: least-squares slope of log(count) on log(rank).
  {
    std::vector<std::uint64_t> active;
    active.reserve(stats.file_count);
    for (auto c : stats.access_counts) {
      if (c > 0) active.push_back(c);
    }
    std::sort(active.begin(), active.end(), std::greater<>());
    std::size_t n = active.size();
    if (options_.zipf_fit_ranks > 0) {
      n = std::min(n, options_.zipf_fit_ranks);
    }
    if (n >= 3) {
      double sx = 0.0;
      double sy = 0.0;
      double sxx = 0.0;
      double sxy = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = std::log(static_cast<double>(i + 1));
        const double y = std::log(static_cast<double>(active[i]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
      }
      const auto dn = static_cast<double>(n);
      const double denom = dn * sxx - sx * sx;
      if (denom > 0.0) {
        stats.zipf_alpha = -(dn * sxy - sx * sy) / denom;
      }
    }
  }

  return stats;
}

TraceStats compute_trace_stats(const Trace& trace,
                               const TraceStatsOptions& options) {
  TraceStatsAccumulator acc(options);
  for (const auto& r : trace.requests) acc.add(r);
  return acc.finalize();
}

}  // namespace pr
