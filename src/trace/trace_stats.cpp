#include "trace/trace_stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

namespace pr {

double theta_from_skew(double accesses_fraction, double files_fraction) {
  if (!(accesses_fraction > 0.0) || accesses_fraction >= 1.0 ||
      !(files_fraction > 0.0) || files_fraction >= 1.0) {
    return 1.0;
  }
  const double theta = std::log(accesses_fraction) / std::log(files_fraction);
  return std::clamp(theta, 1e-6, 1.0);
}

double accesses_captured(double files_fraction, double theta) {
  files_fraction = std::clamp(files_fraction, 0.0, 1.0);
  if (files_fraction == 0.0) return 0.0;
  return std::pow(files_fraction, theta);
}

double estimate_theta(std::span<const std::uint64_t> counts,
                      double files_fraction) {
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  // Count only files that were actually accessed: the universe of files a
  // policy distributes is the referenced set.
  std::vector<std::uint64_t> active;
  active.reserve(counts.size());
  for (auto c : counts) {
    if (c > 0) active.push_back(c);
  }
  if (total == 0 || active.size() < 2) return 1.0;

  auto top_n = static_cast<std::size_t>(
      std::ceil(files_fraction * static_cast<double>(active.size())));
  top_n = std::clamp<std::size_t>(top_n, 1, active.size() - 1);

  // Only the sum of the top_n largest counts matters, and that sum is
  // invariant under how nth_element arranges ties — O(n) selection
  // replaces the former full descending sort.
  std::nth_element(active.begin(), active.begin() + top_n, active.end(),
                   std::greater<>());
  const std::uint64_t top_accesses = std::accumulate(
      active.begin(), active.begin() + top_n, std::uint64_t{0});

  const double a =
      static_cast<double>(top_accesses) / static_cast<double>(total);
  const double b =
      static_cast<double>(top_n) / static_cast<double>(active.size());
  return theta_from_skew(a, b);
}

double estimate_theta(const std::vector<std::uint64_t>& counts,
                      double files_fraction) {
  return estimate_theta(std::span<const std::uint64_t>(counts),
                        files_fraction);
}

TraceStats compute_trace_stats(const Trace& trace,
                               const TraceStatsOptions& options) {
  TraceStats stats;
  stats.theta_b = options.theta_b;
  stats.request_count = trace.size();
  if (trace.empty()) return stats;

  const std::size_t universe = trace.file_universe();
  stats.access_counts.assign(universe, 0);
  stats.mean_file_bytes.assign(universe, 0.0);

  for (const auto& r : trace.requests) {
    stats.total_bytes += r.size;
    if (r.file != kInvalidFile) {
      ++stats.access_counts[r.file];
      // incremental mean per file
      const auto n = static_cast<double>(stats.access_counts[r.file]);
      stats.mean_file_bytes[r.file] +=
          (static_cast<double>(r.size) - stats.mean_file_bytes[r.file]) / n;
    }
  }
  stats.file_count = static_cast<std::size_t>(std::count_if(
      stats.access_counts.begin(), stats.access_counts.end(),
      [](std::uint64_t c) { return c > 0; }));

  stats.duration = trace.duration();
  stats.mean_interarrival =
      trace.size() > 1
          ? Seconds{stats.duration.value() /
                    static_cast<double>(trace.size() - 1)}
          : Seconds{0};
  stats.mean_request_bytes = static_cast<double>(stats.total_bytes) /
                             static_cast<double>(trace.size());

  stats.theta = estimate_theta(stats.access_counts, options.theta_b);

  // Fraction of accesses going to the top θ_b fraction of (active) files.
  {
    std::vector<std::uint64_t> active;
    active.reserve(stats.file_count);
    for (auto c : stats.access_counts) {
      if (c > 0) active.push_back(c);
    }
    std::sort(active.begin(), active.end(), std::greater<>());
    if (!active.empty()) {
      auto top_n = static_cast<std::size_t>(std::ceil(
          options.theta_b * static_cast<double>(active.size())));
      top_n = std::clamp<std::size_t>(top_n, 1, active.size());
      std::uint64_t top = 0;
      for (std::size_t i = 0; i < top_n; ++i) top += active[i];
      stats.top_fraction_accesses =
          static_cast<double>(top) / static_cast<double>(trace.size());
    }
  }

  // Zipf exponent: least-squares slope of log(count) on log(rank).
  {
    std::vector<std::uint64_t> active;
    active.reserve(stats.file_count);
    for (auto c : stats.access_counts) {
      if (c > 0) active.push_back(c);
    }
    std::sort(active.begin(), active.end(), std::greater<>());
    std::size_t n = active.size();
    if (options.zipf_fit_ranks > 0) n = std::min(n, options.zipf_fit_ranks);
    if (n >= 3) {
      double sx = 0.0;
      double sy = 0.0;
      double sxx = 0.0;
      double sxy = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = std::log(static_cast<double>(i + 1));
        const double y = std::log(static_cast<double>(active[i]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
      }
      const auto dn = static_cast<double>(n);
      const double denom = dn * sxx - sx * sx;
      if (denom > 0.0) {
        stats.zipf_alpha = -(dn * sxy - sx * sy) / denom;
      }
    }
  }

  return stats;
}

}  // namespace pr
