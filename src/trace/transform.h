// transform.h — trace surgery utilities for working with real logs:
// cutting a day out of a multi-day trace, compressing/stretching load
// (the paper's light-vs-heavy axis applied to a *measured* trace rather
// than a synthetic one), truncating for smoke runs, and renumbering file
// ids after a cut. All pure functions; inputs are never mutated.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/request.h"

namespace pr {

/// Requests with arrival in [from, to), rebased so the window starts at 0.
[[nodiscard]] Trace time_window(const Trace& trace, Seconds from, Seconds to);

/// First `n` requests (the whole trace if n >= size).
[[nodiscard]] Trace head(const Trace& trace, std::size_t n);

/// Compress (factor > 1) or stretch (factor < 1) the arrival timeline:
/// arrivals are divided by `factor`, multiplying the request rate by it —
/// the paper's "heavy = 4x the rate" applied to an existing trace.
/// Throws std::invalid_argument for factor <= 0.
[[nodiscard]] Trace scale_rate(const Trace& trace, double factor);

/// Keep only every k-th request (k >= 1) — thinning that preserves the
/// popularity mix and time span while cutting volume; pairs with
/// scale_rate to shrink a trace without changing its rate.
[[nodiscard]] Trace sample_every(const Trace& trace, std::size_t k);

/// Renumber file ids densely in first-appearance order (after windowing
/// or sampling, ids can be sparse). Returns the id map via `old_ids`
/// (old_ids[new_id] = old id) when non-null.
[[nodiscard]] Trace densify_files(const Trace& trace,
                                  std::vector<FileId>* old_ids = nullptr);

/// Concatenate `days` copies of a (near-)day trace back to back, each
/// copy shifted by `period` (e.g. 86,400 s). Request order and per-copy
/// spacing are preserved exactly — used for multi-day budget studies.
[[nodiscard]] Trace repeat(const Trace& trace, std::size_t days,
                           Seconds period);

}  // namespace pr
