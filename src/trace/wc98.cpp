#include "trace/wc98.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace pr {

namespace {

std::uint32_t load_be32(const unsigned char* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

void store_be32(std::uint32_t v, unsigned char* p) {
  p[0] = static_cast<unsigned char>(v >> 24);
  p[1] = static_cast<unsigned char>(v >> 16);
  p[2] = static_cast<unsigned char>(v >> 8);
  p[3] = static_cast<unsigned char>(v);
}

}  // namespace

std::vector<Wc98Record> read_wc98_records(std::istream& in) {
  std::vector<Wc98Record> records;
  std::array<unsigned char, kWc98RecordBytes> buf{};
  for (;;) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const auto got = in.gcount();
    if (got == 0) break;
    if (got != static_cast<std::streamsize>(buf.size())) {
      throw std::runtime_error(
          "read_wc98_records: truncated record (got " + std::to_string(got) +
          " of " + std::to_string(kWc98RecordBytes) + " bytes)");
    }
    Wc98Record r;
    r.timestamp = load_be32(buf.data());
    r.client_id = load_be32(buf.data() + 4);
    r.object_id = load_be32(buf.data() + 8);
    r.size = load_be32(buf.data() + 12);
    r.method = buf[16];
    r.status = buf[17];
    r.type = buf[18];
    r.server = buf[19];
    records.push_back(r);
    if (!in) break;
  }
  return records;
}

std::vector<Wc98Record> read_wc98_records_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_wc98_records_file: cannot open " + path);
  }
  return read_wc98_records(in);
}

void write_wc98_records(const std::vector<Wc98Record>& records,
                        std::ostream& out) {
  std::array<unsigned char, kWc98RecordBytes> buf{};
  for (const auto& r : records) {
    store_be32(r.timestamp, buf.data());
    store_be32(r.client_id, buf.data() + 4);
    store_be32(r.object_id, buf.data() + 8);
    store_be32(r.size, buf.data() + 12);
    buf[16] = r.method;
    buf[17] = r.status;
    buf[18] = r.type;
    buf[19] = r.server;
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }
}

Trace wc98_to_trace(const std::vector<Wc98Record>& records,
                    const Wc98ConvertOptions& options,
                    std::vector<std::uint32_t>* object_id_map) {
  Trace trace;
  trace.requests.reserve(records.size());
  if (object_id_map) object_id_map->clear();

  // The published logs are time-ordered; tolerate minor disorder by a
  // stable sort on timestamp (sequence preserved within a second).
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return records[a].timestamp < records[b].timestamp;
                   });

  std::unordered_map<std::uint32_t, FileId> dense;
  dense.reserve(records.size() / 8 + 16);

  const std::uint32_t base =
      (options.rebase_to_zero && !order.empty())
          ? records[order.front()].timestamp
          : 0;

  // Pre-count per-second populations so in-second spreading is uniform.
  std::unordered_map<std::uint32_t, std::uint32_t> per_second_total;
  if (options.spread_within_second) {
    per_second_total.reserve(records.size() / 16 + 16);
    for (const auto& r : records) ++per_second_total[r.timestamp];
  }
  std::unordered_map<std::uint32_t, std::uint32_t> per_second_seen;

  for (std::size_t idx : order) {
    const auto& r = records[idx];
    Request req;

    double t = static_cast<double>(r.timestamp - base);
    if (options.spread_within_second) {
      const std::uint32_t total = per_second_total[r.timestamp];
      const std::uint32_t seq = per_second_seen[r.timestamp]++;
      // Deterministic uniform spread: k-th of N arrivals in the second
      // lands at (k + 0.5)/N into it, keeping ordering and counts intact.
      t += (static_cast<double>(seq) + 0.5) / static_cast<double>(total);
    }
    req.arrival = Seconds{t};

    auto [it, inserted] =
        dense.try_emplace(r.object_id, static_cast<FileId>(dense.size()));
    req.file = it->second;
    if (inserted && object_id_map) object_id_map->push_back(r.object_id);

    req.size = (r.size == kWc98UnknownSize || r.size == 0)
                   ? options.default_size
                   : static_cast<Bytes>(r.size);
    req.kind = RequestKind::kRead;  // web GET traffic
    trace.requests.push_back(req);
  }
  return trace;
}

}  // namespace pr
