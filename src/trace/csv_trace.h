// csv_trace.h — portable text trace format: one request per line,
// `time_s,file_id,bytes,op` with op in {R, W}. This is the interchange
// format for the examples and for importing externally prepared traces.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/request.h"
#include "trace/request_source.h"

namespace pr {

/// Write `trace` as CSV (with header) to `out`.
void write_csv_trace(const Trace& trace, std::ostream& out);
/// Drain `source` to CSV without materializing a Trace — the streaming
/// sibling (same header/row bytes as the Trace overload).
void write_csv_trace(RequestSource& source, std::ostream& out);
/// Write to a file; throws std::runtime_error on I/O failure.
void write_csv_trace_file(const Trace& trace, const std::string& path);

/// Parse a CSV trace. Requires the canonical header; rows must be sorted by
/// time (throws std::runtime_error otherwise, since the simulator assumes
/// ordered arrivals).
[[nodiscard]] Trace read_csv_trace(std::istream& in);
[[nodiscard]] Trace read_csv_trace_file(const std::string& path);

}  // namespace pr
