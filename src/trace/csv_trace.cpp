#include "trace/csv_trace.h"

#include <fstream>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/fmt.h"

namespace pr {

namespace {
constexpr const char* kHeader = "time_s,file_id,bytes,op";
}

void write_csv_trace(const Trace& trace, std::ostream& out) {
  out << kHeader << "\n";
  // Arrivals go through the locale-independent formatter (precision 9
  // matches the stream precision this replaced); the classic locale keeps
  // file ids and sizes free of grouping separators.
  out.imbue(std::locale::classic());
  for (const auto& r : trace.requests) {
    out << format_double(r.arrival.value(), 9) << ',' << r.file << ','
        << r.size << ',' << (r.kind == RequestKind::kRead ? 'R' : 'W')
        << '\n';
  }
}

void write_csv_trace(RequestSource& source, std::ostream& out) {
  out << kHeader << "\n";
  out.imbue(std::locale::classic());
  Request r;
  while (source.next(r)) {
    out << format_double(r.arrival.value(), 9) << ',' << r.file << ','
        << r.size << ',' << (r.kind == RequestKind::kRead ? 'R' : 'W')
        << '\n';
  }
}

void write_csv_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_csv_trace_file: cannot open " + path);
  write_csv_trace(trace, out);
  if (!out) throw std::runtime_error("write_csv_trace_file: write failed " + path);
}

Trace read_csv_trace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("read_csv_trace: empty input");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kHeader) {
    throw std::runtime_error("read_csv_trace: bad header '" + line +
                             "', expected '" + kHeader + "'");
  }
  Trace trace;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    const auto fields = split_csv_line(line);
    if (fields.size() != 4) {
      throw std::runtime_error("read_csv_trace: line " +
                               std::to_string(line_no) + ": expected 4 fields");
    }
    Request r;
    try {
      r.arrival = Seconds{parse_double(fields[0])};
      r.file = static_cast<FileId>(std::stoul(fields[1]));
      r.size = static_cast<Bytes>(std::stoull(fields[2]));
    } catch (const std::exception&) {
      throw std::runtime_error("read_csv_trace: line " +
                               std::to_string(line_no) + ": parse error");
    }
    if (fields[3] == "R") {
      r.kind = RequestKind::kRead;
    } else if (fields[3] == "W") {
      r.kind = RequestKind::kWrite;
    } else {
      throw std::runtime_error("read_csv_trace: line " +
                               std::to_string(line_no) + ": bad op '" +
                               fields[3] + "'");
    }
    if (!trace.requests.empty() && r.arrival < trace.requests.back().arrival) {
      throw std::runtime_error("read_csv_trace: line " +
                               std::to_string(line_no) +
                               ": arrivals not sorted");
    }
    trace.requests.push_back(r);
  }
  return trace;
}

Trace read_csv_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_csv_trace_file: cannot open " + path);
  return read_csv_trace(in);
}

}  // namespace pr
