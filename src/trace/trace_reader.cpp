#include "trace/trace_reader.h"

#include <algorithm>
#include <array>
#include <iostream>
#include <stdexcept>

#include "trace/clf.h"
#include "trace/csv_trace.h"
#include "trace/wc98.h"

namespace pr::trace {

namespace {

constexpr std::array<const char*, 4> kFormats = {"clf", "csv", "jsonl",
                                                 "wc98"};

bool known_format(std::string_view name) {
  return std::find(kFormats.begin(), kFormats.end(), name) != kFormats.end();
}

std::string infer_format(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    throw std::invalid_argument(
        "trace::open: cannot infer format of '" + path +
        "' (no extension); use an explicit '<format>:' prefix, formats: " +
        format_names());
  }
  const std::string ext = path.substr(dot + 1);
  if (ext == "csv") return "csv";
  if (ext == "jsonl" || ext == "ndjson") return "jsonl";
  if (ext == "log") return "clf";
  if (ext == "wc98") return "wc98";
  throw std::invalid_argument(
      "trace::open: unknown extension '." + ext + "' in '" + path +
      "'; use an explicit '<format>:' prefix, formats: " + format_names());
}

Trace drain(RequestSource& source) {
  Trace trace;
  Request r;
  while (source.next(r)) trace.requests.push_back(r);
  return trace;
}

}  // namespace

const std::string& format_names() {
  static const std::string names = [] {
    std::string joined;
    for (const char* f : kFormats) {
      if (!joined.empty()) joined += ", ";
      joined += f;
    }
    return joined;
  }();
  return names;
}

ResolvedSpec resolve_spec(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("trace::open: empty spec");
  }
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos && known_format(spec.substr(0, colon))) {
    const std::string path = spec.substr(colon + 1);
    if (path.empty()) {
      throw std::invalid_argument("trace::open: empty path in '" + spec +
                                  "'");
    }
    return {spec.substr(0, colon), path};
  }
  if (spec == "-") return {"csv", "-"};
  return {infer_format(spec), spec};
}

std::unique_ptr<RequestSource> open(const std::string& spec,
                                    StreamReaderOptions options) {
  const ResolvedSpec resolved = resolve_spec(spec);
  const bool from_stdin = resolved.path == "-";
  if (resolved.format == "csv") {
    if (from_stdin) {
      return std::make_unique<CsvStreamSource>(std::cin, "<stdin>", options);
    }
    return std::make_unique<CsvStreamSource>(resolved.path, options);
  }
  if (resolved.format == "jsonl") {
    if (from_stdin) {
      return std::make_unique<JsonlStreamSource>(std::cin, "<stdin>",
                                                 options);
    }
    return std::make_unique<JsonlStreamSource>(resolved.path, options);
  }
  if (resolved.format == "clf") {
    auto records = from_stdin ? read_clf_records(std::cin)
                              : read_clf_records_file(resolved.path);
    return std::make_unique<TraceSource>(clf_to_trace(records));
  }
  auto records = from_stdin ? read_wc98_records(std::cin)
                            : read_wc98_records_file(resolved.path);
  return std::make_unique<TraceSource>(wc98_to_trace(records));
}

Trace open_trace(const std::string& spec, StreamReaderOptions options) {
  const ResolvedSpec resolved = resolve_spec(spec);
  // The CSV path keeps using the whole-file reader so error text and
  // behaviour stay exactly what legacy call sites shipped with.
  if (resolved.format == "csv" && resolved.path != "-") {
    return read_csv_trace_file(resolved.path);
  }
  if (resolved.format == "csv") {
    return read_csv_trace(std::cin);
  }
  auto source = open(spec, options);
  return drain(*source);
}

}  // namespace pr::trace
