// request.h — the unit of work flowing through the simulator. The policies
// in this reproduction only ever see (arrival time, file id, size, kind),
// which is exactly the information the paper's trace-driven simulator uses:
// each request reads an entire file (§4, "each request accesses an entire
// file ... typical for Web, proxy, ftp, and email server workloads").
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace pr {

using FileId = std::uint32_t;
constexpr FileId kInvalidFile = ~FileId{0};

enum class RequestKind : std::uint8_t {
  kRead = 0,   // user read (the dominant web-trace operation)
  kWrite = 1,  // user write
};

struct Request {
  Seconds arrival{};
  FileId file = kInvalidFile;
  Bytes size = 0;  // full-file transfer size
  RequestKind kind = RequestKind::kRead;

  friend bool operator==(const Request&, const Request&) = default;
};

/// A trace is an arrival-time-ordered request sequence plus the universe of
/// files it references (file sizes are carried separately by the FileSet;
/// `size` here is the per-request transfer size, which for whole-file
/// workloads equals the file size).
struct Trace {
  std::vector<Request> requests;

  [[nodiscard]] bool empty() const { return requests.empty(); }
  [[nodiscard]] std::size_t size() const { return requests.size(); }

  /// Duration from first to last arrival (0 for traces of < 2 requests).
  [[nodiscard]] Seconds duration() const {
    if (requests.size() < 2) return Seconds{0};
    return requests.back().arrival - requests.front().arrival;
  }

  /// True if arrivals are non-decreasing (simulator precondition).
  [[nodiscard]] bool is_sorted() const {
    for (std::size_t i = 1; i < requests.size(); ++i) {
      if (requests[i].arrival < requests[i - 1].arrival) return false;
    }
    return true;
  }

  /// Highest referenced file id + 1 (0 for an empty trace).
  [[nodiscard]] std::size_t file_universe() const {
    std::size_t n = 0;
    for (const auto& r : requests) {
      if (r.file != kInvalidFile && r.file >= n) n = r.file + std::size_t{1};
    }
    return n;
  }
};

}  // namespace pr
