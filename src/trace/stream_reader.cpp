#include "trace/stream_reader.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <locale>
#include <ostream>
#include <stdexcept>

#include "util/contracts.h"
#include "util/csv.h"
#include "util/fmt.h"
#include "util/parse.h"

namespace pr {

namespace {

constexpr const char* kCsvHeader = "time_s,file_id,bytes,op";
/// Refill granularity; the effective chunk shrinks near the buffer bound.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Fast-path field scanners: the same accept-set as util/parse.h
/// (from_chars over the full token, finite doubles) minus the throwing
/// diagnostics — a false return routes the line to the slow path.
bool scan_double(std::string_view field, double& value) {
  const char* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(field.data(), last, value);
  return ec == std::errc{} && ptr == last && !field.empty() &&
         std::isfinite(value);
}

bool scan_u64(std::string_view field, std::uint64_t& value) {
  const char* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(field.data(), last, value);
  return ec == std::errc{} && ptr == last && !field.empty();
}

std::string_view trim_ws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

LineStreamSource::LineStreamSource(std::istream& in, std::string source,
                                   StreamReaderOptions options)
    : in_(&in), source_(std::move(source)), options_(options) {
  if (options_.buffer_bytes == 0) {
    throw std::invalid_argument("stream_reader: buffer_bytes == 0");
  }
}

LineStreamSource::LineStreamSource(const std::string& path,
                                   StreamReaderOptions options)
    : owned_(path, std::ios::binary), in_(&owned_), source_(path),
      options_(options) {
  if (!owned_) {
    throw std::runtime_error("stream_reader: cannot open " + path);
  }
  if (options_.buffer_bytes == 0) {
    throw std::invalid_argument("stream_reader: buffer_bytes == 0");
  }
}

void LineStreamSource::fail(const std::string& message) const {
  throw std::invalid_argument(source_ + ":" + std::to_string(line_no_) +
                              ": " + message);
}

void LineStreamSource::check_sorted(Seconds arrival) {
  if (have_last_ && arrival < last_arrival_) fail("arrivals not sorted");
  last_arrival_ = arrival;
  have_last_ = true;
}

void LineStreamSource::refill() {
  // Compact the delivered prefix in one move per refill (amortized O(1)
  // per byte) instead of erasing it per line.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    scan_from_ -= consumed_;
    consumed_ = 0;
  }
  const std::size_t room = options_.buffer_bytes - buffer_.size();
  const std::size_t chunk = std::min(room, kReadChunk);
  const std::size_t old = buffer_.size();
  buffer_.resize(old + chunk);
  in_->read(buffer_.data() + old,
            static_cast<std::streamsize>(chunk));
  const auto got = static_cast<std::size_t>(in_->gcount());
  buffer_.resize(old + got);
  if (in_->bad()) {
    throw std::runtime_error(source_ + ": read error");
  }
  if (got == 0) exhausted_ = true;
  // The bound is the reader's whole memory contract; a violation here
  // means the framing logic is broken, not that the input is bad.
  PR_INVARIANT(buffer_.size() <= options_.buffer_bytes,
               "stream reader buffered more bytes than the configured bound");
  high_water_ = std::max(high_water_, buffer_.size());
}

bool LineStreamSource::next_line(std::string_view& line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n', scan_from_);
    if (nl != std::string::npos) {
      line = std::string_view(buffer_).substr(consumed_, nl - consumed_);
      consumed_ = nl + 1;
      scan_from_ = consumed_;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      ++line_no_;
      return true;
    }
    scan_from_ = buffer_.size();
    if (exhausted_) {
      if (consumed_ >= buffer_.size()) return false;
      // Bytes after the final newline: a truncated/garbled tail must be
      // an error, not a silently dropped request.
      ++line_no_;
      fail("truncated line at end of stream (missing trailing newline)");
    }
    if (buffer_.size() - consumed_ >= options_.buffer_bytes) {
      ++line_no_;
      fail("line exceeds the " + std::to_string(options_.buffer_bytes) +
           "-byte buffer bound");
    }
    refill();
  }
}

bool LineStreamSource::poll(Request& out) {
  std::string_view line;
  while (next_line(line)) {
    if (parse_line(line, out)) return true;
  }
  return false;
}

// ------------------------------------------------------------------ CSV

CsvStreamSource::CsvStreamSource(std::istream& in, std::string source,
                                 StreamReaderOptions options)
    : LineStreamSource(in, std::move(source), options) {
  consume_header();
}

CsvStreamSource::CsvStreamSource(const std::string& path,
                                 StreamReaderOptions options)
    : LineStreamSource(path, options) {
  consume_header();
}

void CsvStreamSource::consume_header() {
  std::string_view line;
  if (!next_line(line)) {
    throw std::invalid_argument(describe() + ":1: empty input, expected '" +
                                std::string(kCsvHeader) + "' header");
  }
  if (line != kCsvHeader) {
    fail("bad header '" + std::string(line) + "', expected '" + kCsvHeader +
         "'");
  }
}

bool CsvStreamSource::parse_line(std::string_view line, Request& out) {
  if (line.empty()) return false;  // blank separator, same as the batch reader
  // Single-pass fast path for the machine-written row shape
  // `<number>,<digits>,<digits>,<R|W>` that csv_trace.h emits: three comma
  // cuts and in-place from_chars, zero allocations. The scanners accept
  // exactly what util/parse.h accepts (full token, finite, no sign/space
  // slack), so any line the fast path takes parses identically; anything
  // else — quoting, padding, malformed fields — falls through to the
  // historical split-and-throw path, which owns the exact error messages.
  const std::size_t c1 = line.find(',');
  const std::size_t c2 =
      c1 == std::string_view::npos ? c1 : line.find(',', c1 + 1);
  const std::size_t c3 =
      c2 == std::string_view::npos ? c2 : line.find(',', c2 + 1);
  if (c3 != std::string_view::npos &&
      line.find(',', c3 + 1) == std::string_view::npos &&
      line.find('"') == std::string_view::npos) {
    const std::string_view op = line.substr(c3 + 1);
    double arrival = 0.0;
    std::uint64_t file = 0;
    std::uint64_t bytes = 0;
    if ((op == "R" || op == "W") && scan_double(line.substr(0, c1), arrival) &&
        scan_u64(line.substr(c1 + 1, c2 - c1 - 1), file) &&
        scan_u64(line.substr(c2 + 1, c3 - c2 - 1), bytes) &&
        file < kInvalidFile) {
      Request r;
      r.arrival = Seconds{arrival};
      r.file = static_cast<FileId>(file);
      r.size = bytes;
      r.kind = op == "R" ? RequestKind::kRead : RequestKind::kWrite;
      check_sorted(r.arrival);
      out = r;
      return true;
    }
  }
  const auto fields = split_csv_line(line);
  if (fields.size() != 4) {
    fail("expected 4 fields (time_s,file_id,bytes,op), got " +
         std::to_string(fields.size()));
  }
  Request r;
  std::uint64_t file = 0;
  try {
    r.arrival = Seconds{pr::parse_double(fields[0], "time_s")};
    file = parse_u64(fields[1], "file_id");
    r.size = parse_u64(fields[2], "bytes");
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  }
  if (file >= kInvalidFile) fail("file_id out of range");
  r.file = static_cast<FileId>(file);
  if (fields[3] == "R") {
    r.kind = RequestKind::kRead;
  } else if (fields[3] == "W") {
    r.kind = RequestKind::kWrite;
  } else {
    fail("bad op '" + fields[3] + "', expected R or W");
  }
  check_sorted(r.arrival);
  out = r;
  return true;
}

// ---------------------------------------------------------------- JSONL

JsonlStreamSource::JsonlStreamSource(std::istream& in, std::string source,
                                     StreamReaderOptions options)
    : LineStreamSource(in, std::move(source), options) {}

JsonlStreamSource::JsonlStreamSource(const std::string& path,
                                     StreamReaderOptions options)
    : LineStreamSource(path, options) {}

bool JsonlStreamSource::parse_line(std::string_view line, Request& out) {
  std::string_view body = trim_ws(line);
  if (body.empty()) return false;
  if (body.front() != '{' || body.back() != '}') {
    fail("expected a JSON object");
  }
  body = trim_ws(body.substr(1, body.size() - 2));

  Request r;
  bool have_t = false;
  bool have_file = false;
  bool have_bytes = false;
  // The schema's values are numbers and one-character strings, so a flat
  // comma split is an exact tokenizer for well-formed lines (and malformed
  // ones fail the per-pair checks below).
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string_view::npos) comma = body.size();
    const std::string_view pair =
        trim_ws(body.substr(start, comma - start));
    start = comma + 1;
    if (pair.empty()) {
      if (body.empty()) break;
      fail("empty key/value pair");
    }
    const std::size_t colon = pair.find(':');
    if (colon == std::string_view::npos) fail("expected \"key\":value");
    std::string_view key = trim_ws(pair.substr(0, colon));
    const std::string_view value = trim_ws(pair.substr(colon + 1));
    if (key.size() < 2 || key.front() != '"' || key.back() != '"') {
      fail("expected a quoted key");
    }
    key = key.substr(1, key.size() - 2);
    try {
      if (key == "t") {
        r.arrival = Seconds{pr::parse_double(value, "t")};
        have_t = true;
      } else if (key == "file") {
        const std::uint64_t file = parse_u64(value, "file");
        if (file >= kInvalidFile) fail("file out of range");
        r.file = static_cast<FileId>(file);
        have_file = true;
      } else if (key == "bytes") {
        r.size = parse_u64(value, "bytes");
        have_bytes = true;
      } else if (key == "op") {
        if (value == "\"R\"") {
          r.kind = RequestKind::kRead;
        } else if (value == "\"W\"") {
          r.kind = RequestKind::kWrite;
        } else {
          fail("bad op " + std::string(value) +
               ", expected \"R\" or \"W\"");
        }
      } else {
        fail("unknown key '" + std::string(key) +
             "'; valid: t, file, bytes, op");
      }
    } catch (const std::invalid_argument& e) {
      // Wrap bare value-parse errors (util/parse.h) with file:line
      // context; fail() messages already carry it.
      const std::string prefix = describe() + ":";
      if (std::string_view(e.what()).rfind(prefix, 0) == 0) throw;
      fail(e.what());
    }
  }
  if (!have_t) fail("missing key \"t\"");
  if (!have_file) fail("missing key \"file\"");
  if (!have_bytes) fail("missing key \"bytes\"");
  check_sorted(r.arrival);
  out = r;
  return true;
}

void write_jsonl_trace(const Trace& trace, std::ostream& out) {
  out.imbue(std::locale::classic());
  for (const auto& r : trace.requests) {
    out << "{\"t\":" << format_double(r.arrival.value()) << ",\"file\":"
        << r.file << ",\"bytes\":" << r.size << ",\"op\":\""
        << (r.kind == RequestKind::kRead ? 'R' : 'W') << "\"}\n";
  }
}

void write_jsonl_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_jsonl_trace_file: cannot open " + path);
  }
  write_jsonl_trace(trace, out);
  if (!out) {
    throw std::runtime_error("write_jsonl_trace_file: write failed " + path);
  }
}

}  // namespace pr
