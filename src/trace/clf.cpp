#include "trace/clf.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace pr {

namespace {

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

bool to_int(std::string_view s, std::int64_t& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

/// Days since epoch for a Gregorian date (civil-days algorithm,
/// Howard Hinnant's days_from_civil).
std::int64_t days_from_civil(std::int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

}  // namespace

bool parse_clf_timestamp(std::string_view text, std::int64_t& out) {
  // "10/Oct/2000:13:55:36 -0700"
  if (text.size() < 26) return false;
  std::int64_t day = 0;
  std::int64_t year = 0;
  std::int64_t hour = 0;
  std::int64_t minute = 0;
  std::int64_t second = 0;
  if (text[2] != '/' || text[6] != '/' || text[11] != ':' ||
      text[14] != ':' || text[17] != ':' || text[20] != ' ') {
    return false;
  }
  if (!to_int(text.substr(0, 2), day)) return false;
  const std::string_view month_name = text.substr(3, 3);
  const auto it = std::find(kMonths.begin(), kMonths.end(), month_name);
  if (it == kMonths.end()) return false;
  const auto month = static_cast<unsigned>(it - kMonths.begin() + 1);
  if (!to_int(text.substr(7, 4), year)) return false;
  if (!to_int(text.substr(12, 2), hour)) return false;
  if (!to_int(text.substr(15, 2), minute)) return false;
  if (!to_int(text.substr(18, 2), second)) return false;

  const char sign = text[21];
  std::int64_t off_hour = 0;
  std::int64_t off_min = 0;
  if ((sign != '+' && sign != '-') || !to_int(text.substr(22, 2), off_hour) ||
      !to_int(text.substr(24, 2), off_min)) {
    return false;
  }
  if (day < 1 || day > 31 || hour > 23 || minute > 59 || second > 60) {
    return false;
  }

  const std::int64_t days =
      days_from_civil(year, month, static_cast<unsigned>(day));
  std::int64_t utc = days * 86'400 + hour * 3'600 + minute * 60 + second;
  const std::int64_t offset = off_hour * 3'600 + off_min * 60;
  utc += sign == '+' ? -offset : offset;  // local = UTC + offset
  out = utc;
  return true;
}

bool parse_clf_line(std::string_view line, ClfRecord& out) {
  // host ident authuser [timestamp] "request" status bytes [extras...]
  const std::size_t ts_open = line.find('[');
  if (ts_open == std::string_view::npos) return false;
  const std::size_t ts_close = line.find(']', ts_open);
  if (ts_close == std::string_view::npos) return false;

  ClfRecord record;
  if (!parse_clf_timestamp(
          line.substr(ts_open + 1, ts_close - ts_open - 1),
          record.timestamp)) {
    return false;
  }

  const std::size_t req_open = line.find('"', ts_close);
  if (req_open == std::string_view::npos) return false;
  const std::size_t req_close = line.find('"', req_open + 1);
  if (req_close == std::string_view::npos) return false;
  const std::string_view request =
      line.substr(req_open + 1, req_close - req_open - 1);

  // request = METHOD SP URL [SP PROTOCOL]
  const std::size_t sp1 = request.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  record.method = std::string(request.substr(0, sp1));
  const std::size_t sp2 = request.find(' ', sp1 + 1);
  const std::string_view url =
      sp2 == std::string_view::npos
          ? request.substr(sp1 + 1)
          : request.substr(sp1 + 1, sp2 - sp1 - 1);
  if (url.empty()) return false;
  record.url = std::string(url);

  // status and bytes follow the closing quote.
  std::istringstream tail{std::string(line.substr(req_close + 1))};
  std::string status_text;
  std::string bytes_text;
  if (!(tail >> status_text >> bytes_text)) return false;
  std::int64_t status = 0;
  if (!to_int(status_text, status) || status < 100 || status > 599) {
    return false;
  }
  record.status = static_cast<int>(status);
  if (bytes_text == "-") {
    record.bytes = 0;
  } else {
    std::int64_t bytes = 0;
    if (!to_int(bytes_text, bytes) || bytes < 0) return false;
    record.bytes = static_cast<Bytes>(bytes);
  }

  out = std::move(record);
  return true;
}

std::vector<ClfRecord> read_clf_records(std::istream& in,
                                        ClfParseStats* stats) {
  std::vector<ClfRecord> records;
  ClfParseStats local;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++local.lines;
    ClfRecord record;
    if (parse_clf_line(line, record)) {
      ++local.parsed;
      records.push_back(std::move(record));
    } else {
      ++local.skipped;
    }
  }
  if (stats) *stats = local;
  return records;
}

std::vector<ClfRecord> read_clf_records_file(const std::string& path,
                                             ClfParseStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_clf_records_file: cannot open " + path);
  }
  return read_clf_records(in, stats);
}

Trace clf_to_trace(const std::vector<ClfRecord>& records,
                   const ClfConvertOptions& options,
                   std::vector<std::string>* url_map) {
  if (url_map) url_map->clear();

  // Filter + stable order by timestamp.
  std::vector<const ClfRecord*> kept;
  kept.reserve(records.size());
  for (const auto& r : records) {
    if (options.successful_only && (r.status < 200 || r.status >= 300)) {
      continue;
    }
    kept.push_back(&r);
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const ClfRecord* a, const ClfRecord* b) {
                     return a->timestamp < b->timestamp;
                   });

  std::unordered_map<std::int64_t, std::uint32_t> per_second_total;
  std::unordered_map<std::int64_t, std::uint32_t> per_second_seen;
  if (options.spread_within_second) {
    for (const auto* r : kept) ++per_second_total[r->timestamp];
  }

  const std::int64_t base =
      (options.rebase_to_zero && !kept.empty()) ? kept.front()->timestamp : 0;

  std::unordered_map<std::string, FileId> dense;
  Trace trace;
  trace.requests.reserve(kept.size());
  for (const auto* r : kept) {
    Request req;
    double t = static_cast<double>(r->timestamp - base);
    if (options.spread_within_second) {
      const std::uint32_t total = per_second_total[r->timestamp];
      const std::uint32_t seq = per_second_seen[r->timestamp]++;
      t += (static_cast<double>(seq) + 0.5) / static_cast<double>(total);
    }
    req.arrival = Seconds{t};

    auto [it, inserted] =
        dense.try_emplace(r->url, static_cast<FileId>(dense.size()));
    req.file = it->second;
    if (inserted && url_map) url_map->push_back(r->url);

    req.size = r->bytes > 0 ? r->bytes : options.default_size;
    const bool is_write =
        std::find(options.write_methods.begin(), options.write_methods.end(),
                  r->method) != options.write_methods.end();
    req.kind = is_write ? RequestKind::kWrite : RequestKind::kRead;
    trace.requests.push_back(std::move(req));
  }
  return trace;
}

}  // namespace pr
