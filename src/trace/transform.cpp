#include "trace/transform.h"

#include <stdexcept>
#include <unordered_map>

namespace pr {

Trace time_window(const Trace& trace, Seconds from, Seconds to) {
  if (to < from) {
    throw std::invalid_argument("time_window: inverted window");
  }
  Trace out;
  for (const auto& r : trace.requests) {
    if (r.arrival < from || r.arrival >= to) continue;
    Request shifted = r;
    shifted.arrival = r.arrival - from;
    out.requests.push_back(shifted);
  }
  return out;
}

Trace head(const Trace& trace, std::size_t n) {
  Trace out;
  const std::size_t keep = std::min(n, trace.size());
  out.requests.assign(trace.requests.begin(),
                      trace.requests.begin() + static_cast<std::ptrdiff_t>(keep));
  return out;
}

Trace scale_rate(const Trace& trace, double factor) {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("scale_rate: factor <= 0");
  }
  Trace out;
  out.requests.reserve(trace.size());
  for (const auto& r : trace.requests) {
    Request scaled = r;
    scaled.arrival = Seconds{r.arrival.value() / factor};
    out.requests.push_back(scaled);
  }
  return out;
}

Trace sample_every(const Trace& trace, std::size_t k) {
  if (k == 0) throw std::invalid_argument("sample_every: k == 0");
  Trace out;
  out.requests.reserve(trace.size() / k + 1);
  for (std::size_t i = 0; i < trace.size(); i += k) {
    out.requests.push_back(trace.requests[i]);
  }
  return out;
}

Trace densify_files(const Trace& trace, std::vector<FileId>* old_ids) {
  if (old_ids) old_ids->clear();
  std::unordered_map<FileId, FileId> dense;
  dense.reserve(trace.size() / 8 + 16);
  Trace out;
  out.requests.reserve(trace.size());
  for (const auto& r : trace.requests) {
    Request mapped = r;
    auto [it, inserted] =
        dense.try_emplace(r.file, static_cast<FileId>(dense.size()));
    mapped.file = it->second;
    if (inserted && old_ids) old_ids->push_back(r.file);
    out.requests.push_back(mapped);
  }
  return out;
}

Trace repeat(const Trace& trace, std::size_t days, Seconds period) {
  if (days == 0) throw std::invalid_argument("repeat: zero days");
  if (!trace.empty() && trace.requests.back().arrival >= period) {
    throw std::invalid_argument(
        "repeat: trace longer than the repetition period");
  }
  Trace out;
  out.requests.reserve(trace.size() * days);
  for (std::size_t day = 0; day < days; ++day) {
    const Seconds shift = period * static_cast<double>(day);
    for (const auto& r : trace.requests) {
      Request shifted = r;
      shifted.arrival = r.arrival + shift;
      out.requests.push_back(shifted);
    }
  }
  return out;
}

}  // namespace pr
