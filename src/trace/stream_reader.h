// stream_reader.h — bounded-memory streaming trace readers: RequestSource
// implementations that parse text formats (CSV, JSONL) line by line from a
// file, pipe or inherited fd (/dev/fd/N, or '-' = stdin via the istream
// constructor) without ever materializing the trace.
//
// Memory contract: a reader holds at most `StreamReaderOptions::buffer_bytes`
// of undelivered input — one refill chunk's worth of pending lines. A line
// longer than the buffer is a hard error (it cannot be scanned within the
// bound), and a contracts check (util/contracts.h) asserts the bound is
// never exceeded. Because RequestSource is pull-based, this bound is also
// the backpressure story: nothing is read from the underlying stream until
// the simulator asks for the next request and the pending lines run out.
//
// Error contract: malformed input throws std::invalid_argument with
// "<source>:<line>: message" context — the same style as the scenario
// parser (src/exp/scenario.cpp) — including garbled fields, unsorted
// arrivals, and a truncated trailing line (bytes after the final newline at
// end of stream are rejected, never silently dropped).
//
// Formats:
//   CSV   — the interchange format of csv_trace.h: header
//           `time_s,file_id,bytes,op`, rows `<seconds>,<id>,<bytes>,<R|W>`.
//   JSONL — one object per line, {"t":<seconds>,"file":<id>,
//           "bytes":<n>,"op":"R"|"W"} ("op" optional, default "R"); keys in
//           any order. write_jsonl_trace emits it at full precision
//           (format_double 17), so a JSONL round trip is byte-exact in the
//           arrival doubles — unlike CSV's historical precision-9 rows.
#pragma once

#include <cstddef>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/request.h"
#include "trace/request_source.h"

namespace pr {

struct StreamReaderOptions {
  /// Upper bound on buffered undelivered input, in bytes. Also the
  /// longest admissible line.
  std::size_t buffer_bytes = 1 << 20;
};

/// Shared line-framing machinery: chunked reads into a bounded buffer,
/// newline scanning, CR stripping, line accounting and the truncated-tail
/// check. Subclasses implement parse_line() for their format.
class LineStreamSource : public RequestSource {
 public:
  [[nodiscard]] std::string describe() const override { return source_; }
  [[nodiscard]] bool streaming() const override { return true; }

  /// High-water mark of buffered undelivered bytes — always <= the
  /// configured bound (tests assert this on multi-GB synthetic pipes).
  [[nodiscard]] std::size_t buffer_high_water() const { return high_water_; }
  [[nodiscard]] const StreamReaderOptions& options() const { return options_; }

 protected:
  /// Read from a caller-owned stream (pipe, stdin, string stream). `source`
  /// names it in errors.
  LineStreamSource(std::istream& in, std::string source,
                   StreamReaderOptions options);
  /// Open `path` (binary). Throws std::runtime_error when it cannot be
  /// opened.
  LineStreamSource(const std::string& path, StreamReaderOptions options);

  bool poll(Request& out) override;

  /// Parse one complete line (CR/LF already stripped) into `out`. Return
  /// false to skip the line (blank separators). Throw via fail() for
  /// malformed content.
  virtual bool parse_line(std::string_view line, Request& out) = 0;

  /// Frame the next complete line as a view into the internal buffer
  /// (valid until the next next_line() call). Returns false at a clean
  /// end of stream. Subclass constructors use this to consume headers.
  bool next_line(std::string_view& line);

  /// Throw std::invalid_argument("<source>:<line>: message").
  [[noreturn]] void fail(const std::string& message) const;

  /// 1-based number of the line most recently returned by next_line().
  [[nodiscard]] std::size_t line_number() const { return line_no_; }

  /// Enforce non-decreasing arrivals with a file:line diagnostic.
  void check_sorted(Seconds arrival);

 private:
  void refill();

  std::ifstream owned_;
  std::istream* in_;
  std::string source_;
  StreamReaderOptions options_;
  std::string buffer_;  // undelivered tail <= options_.buffer_bytes
  /// Delivered prefix of buffer_ (compacted away in one move at the next
  /// refill, so line consumption is O(line), not O(buffer)).
  std::size_t consumed_ = 0;
  std::size_t scan_from_ = 0;  // no '\n' in [consumed_, scan_from_)
  std::size_t high_water_ = 0;
  std::size_t line_no_ = 0;
  bool exhausted_ = false;
  bool have_last_ = false;
  Seconds last_arrival_{0.0};
};

/// Streaming reader for the csv_trace.h interchange format. The header is
/// consumed (and validated) at construction, so a malformed file fails at
/// open time, not mid-simulation.
class CsvStreamSource final : public LineStreamSource {
 public:
  CsvStreamSource(std::istream& in, std::string source,
                  StreamReaderOptions options = {});
  explicit CsvStreamSource(const std::string& path,
                           StreamReaderOptions options = {});

 protected:
  bool parse_line(std::string_view line, Request& out) override;

 private:
  void consume_header();
};

/// Streaming reader for the JSONL ingestion schema documented above.
class JsonlStreamSource final : public LineStreamSource {
 public:
  JsonlStreamSource(std::istream& in, std::string source,
                    StreamReaderOptions options = {});
  explicit JsonlStreamSource(const std::string& path,
                             StreamReaderOptions options = {});

 protected:
  bool parse_line(std::string_view line, Request& out) override;
};

/// Write `trace` in the JSONL ingestion schema, arrivals at full precision
/// (17 significant digits round-trip every finite double, so reading the
/// output back reproduces the trace bit-exactly).
void write_jsonl_trace(const Trace& trace, std::ostream& out);
void write_jsonl_trace_file(const Trace& trace, const std::string& path);

}  // namespace pr
