// synthetic.h — WC98-like synthetic workload generator.
//
// The paper evaluates on one day of the WorldCup98 trace: 4,079 files,
// 1,480,081 requests, mean inter-arrival 58.4 ms (§5.1). The raw trace is
// not redistributable offline, so this generator synthesises a request
// stream matched to those first-order statistics (see DESIGN.md
// "Substitutions"):
//   * Poisson arrivals at the paper's mean rate, with optional diurnal
//     modulation (web traffic is strongly diurnal);
//   * Zipf(α) popularity over m files (α defaults to 0.8, typical for web
//     server traces [6][11]);
//   * web-like file sizes (bounded log-normal), with popularity inversely
//     correlated to size — the assumption READ's initial placement relies
//     on (Fig. 6 step 5);
//   * whole-file read requests.
// Everything is deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/request.h"
#include "trace/request_source.h"
#include "util/rng.h"
#include "workload/fileset.h"
#include "workload/zipf.h"

namespace pr {

struct SyntheticWorkloadConfig {
  /// Number of distinct files (paper: 4,079).
  std::size_t file_count = 4079;
  /// Number of requests (paper: 1,480,081). Scale down for unit tests.
  std::size_t request_count = 1'480'081;
  /// Mean inter-arrival time (paper: 58.4 ms). The paper's "heavy
  /// workload" condition is modelled by dividing this (see load_factor).
  Seconds mean_interarrival{58.4e-3};
  /// Arrival-rate multiplier: 1.0 = the paper's light/base load; 4.0 =
  /// heavy (4× the request rate over the same number of requests).
  double load_factor = 1.0;
  /// Zipf popularity exponent α ∈ [0, 1] (paper §4).
  double zipf_alpha = 0.8;
  /// Log-normal body of the size distribution (of the underlying normal).
  /// Defaults give a median ≈ 5 KiB and mean ≈ 15 KiB, typical of 1998 web
  /// objects and of the paper's remark that web files are far smaller than
  /// a 512 KB stripe unit.
  double size_log_mu = 8.5;     // exp(8.5) ≈ 4.9 KiB
  double size_log_sigma = 1.5;
  Bytes min_file_bytes = 64;
  Bytes max_file_bytes = 2 * kMiB;
  /// Strength of the size/popularity anti-correlation in [0, 1]:
  /// 1 = smallest file is most popular (exact inverse ordering),
  /// 0 = no correlation. Implemented as a partial shuffle.
  double size_popularity_anticorrelation = 0.8;
  /// Optional diurnal modulation depth in [0, 1): the instantaneous
  /// arrival rate swings ±depth around the mean over a 24 h period.
  double diurnal_depth = 0.0;
  /// Temporal locality in [0, 1): with this probability a request repeats
  /// one of the most recently accessed files instead of drawing a fresh
  /// Zipf sample. Real web traffic is strongly bursty per object (flash
  /// popularity); 0 disables (pure i.i.d. Zipf, the paper's §4 model).
  double burstiness = 0.0;
  /// Size of the recent-file window burstiness draws from.
  std::size_t burst_window = 16;
  /// RNG seed; every stream derived deterministically from it.
  std::uint64_t seed = 42;
};

struct SyntheticWorkload {
  FileSet files;  // ground-truth sizes and intended rates
  Trace trace;
};

/// Generate the file universe only (sizes + intended access rates).
[[nodiscard]] FileSet generate_fileset(const SyntheticWorkloadConfig& config);

/// Generate file universe and request trace.
[[nodiscard]] SyntheticWorkload generate_workload(
    const SyntheticWorkloadConfig& config);

/// RequestSource over the synthetic model: requests are synthesised one at
/// a time on pull, never materialized. Draining it yields exactly the
/// trace generate_workload(config) builds (generate_workload is
/// implemented on top of this class), so streaming and batch runs of the
/// same config are byte-identical. The file universe is still generated
/// eagerly at construction — it is O(file_count), not O(request_count).
class SyntheticSource final : public RequestSource {
 public:
  explicit SyntheticSource(const SyntheticWorkloadConfig& config);

  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] bool streaming() const override { return true; }

  /// Ground-truth file universe (sizes + intended access rates).
  [[nodiscard]] const FileSet& files() const { return files_; }
  [[nodiscard]] const SyntheticWorkloadConfig& config() const {
    return config_;
  }

 protected:
  bool poll(Request& out) override;

 private:
  SyntheticWorkloadConfig config_;
  FileSet files_;
  Rng rng_;
  ZipfDistribution zipf_;
  double base_mean_;
  std::vector<FileId> recent_;  // temporal-locality ring buffer
  std::size_t recent_cursor_ = 0;
  double t_ = 0.0;
  std::size_t emitted_ = 0;
};

/// The paper's two evaluation conditions (§5.2): base/light and heavy.
[[nodiscard]] SyntheticWorkloadConfig worldcup98_light_config(
    std::uint64_t seed = 42);
[[nodiscard]] SyntheticWorkloadConfig worldcup98_heavy_config(
    std::uint64_t seed = 42);

/// The other whole-file server workloads §4 names. Same model, different
/// knobs (documented in synthetic.cpp): a forward proxy (huge cold file
/// population, bursty), an ftp mirror (few large files, mild skew), and
/// an email server (small messages, weak skew, write-heavy days modelled
/// as reads of freshly-appended files).
[[nodiscard]] SyntheticWorkloadConfig proxy_server_config(
    std::uint64_t seed = 42);
[[nodiscard]] SyntheticWorkloadConfig ftp_mirror_config(
    std::uint64_t seed = 42);
[[nodiscard]] SyntheticWorkloadConfig email_server_config(
    std::uint64_t seed = 42);

}  // namespace pr
