// fileset.h — the file universe a policy distributes across the array.
// Mirrors the paper's model (§4): F = {f_1..f_m}, f_i = (s_i, λ_i) with
// size s_i and access rate λ_i; the load of a file is h_i = λ_i · s_i
// (service time proportional to size for whole-file sequential reads).
#pragma once

#include <cstddef>
#include <vector>

#include "trace/request.h"
#include "trace/trace_stats.h"

namespace pr {

struct FileInfo {
  FileId id = kInvalidFile;
  Bytes size = 0;
  /// Access rate λ (requests/second) — from generator intent or measured.
  double access_rate = 0.0;

  /// Paper's load metric h_i = λ_i · s_i (rate × size; proportional to the
  /// bandwidth the file demands).
  [[nodiscard]] double load() const {
    return access_rate * static_cast<double>(size);
  }
};

class FileSet {
 public:
  FileSet() = default;
  explicit FileSet(std::vector<FileInfo> files);

  [[nodiscard]] std::size_t size() const { return files_.size(); }
  [[nodiscard]] bool empty() const { return files_.empty(); }
  [[nodiscard]] const FileInfo& operator[](std::size_t i) const {
    return files_[i];
  }
  [[nodiscard]] const FileInfo& by_id(FileId id) const;
  [[nodiscard]] const std::vector<FileInfo>& files() const { return files_; }

  /// Total load Σ h_i.
  [[nodiscard]] double total_load() const;
  /// Total bytes Σ s_i.
  [[nodiscard]] Bytes total_bytes() const;

  /// Ids ordered by non-decreasing size (READ's initial-placement order,
  /// Fig. 6 step 5: popularity assumed inversely correlated with size).
  [[nodiscard]] std::vector<FileId> ids_by_size_ascending() const;
  /// Ids ordered by non-increasing access rate (true popularity order).
  [[nodiscard]] std::vector<FileId> ids_by_rate_descending() const;

  /// Build from measured trace statistics: file sizes are the per-file mean
  /// transfer sizes, rates are access_count / duration. Files never
  /// accessed get rate 0 and `default_size`.
  [[nodiscard]] static FileSet from_trace_stats(const TraceStats& stats,
                                                Bytes default_size = 4 * kKiB);

 private:
  std::vector<FileInfo> files_;  // indexed by dense FileId
};

}  // namespace pr
