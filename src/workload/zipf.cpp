#include "workload/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pr {

double ZipfDistribution::harmonic(std::size_t n, double alpha) {
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    h += std::pow(static_cast<double>(i), -alpha);
  }
  return h;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
    : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n == 0");
  if (alpha < 0.0) throw std::invalid_argument("ZipfDistribution: alpha < 0");
  cdf_.resize(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cum += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = cum;
  }
  norm_ = cum;
  for (auto& c : cdf_) c /= norm_;
  cdf_.back() = 1.0;  // guard against fp residue
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfDistribution::pmf(std::size_t i) const {
  if (i >= cdf_.size()) return 0.0;
  return std::pow(static_cast<double>(i + 1), -alpha_) / norm_;
}

double ZipfDistribution::cumulative(std::size_t k) const {
  if (k == 0) return 0.0;
  if (k >= cdf_.size()) return 1.0;
  return cdf_[k - 1];
}

}  // namespace pr
