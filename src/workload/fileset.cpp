#include "workload/fileset.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pr {

FileSet::FileSet(std::vector<FileInfo> files) : files_(std::move(files)) {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].id != static_cast<FileId>(i)) {
      throw std::invalid_argument(
          "FileSet: files must be densely indexed by id");
    }
  }
}

const FileInfo& FileSet::by_id(FileId id) const {
  if (id >= files_.size()) throw std::out_of_range("FileSet::by_id");
  return files_[id];
}

double FileSet::total_load() const {
  double sum = 0.0;
  for (const auto& f : files_) sum += f.load();
  return sum;
}

Bytes FileSet::total_bytes() const {
  Bytes sum = 0;
  for (const auto& f : files_) sum += f.size;
  return sum;
}

std::vector<FileId> FileSet::ids_by_size_ascending() const {
  std::vector<FileId> ids(files_.size());
  std::iota(ids.begin(), ids.end(), FileId{0});
  std::stable_sort(ids.begin(), ids.end(), [&](FileId a, FileId b) {
    return files_[a].size < files_[b].size;
  });
  return ids;
}

std::vector<FileId> FileSet::ids_by_rate_descending() const {
  std::vector<FileId> ids(files_.size());
  std::iota(ids.begin(), ids.end(), FileId{0});
  std::stable_sort(ids.begin(), ids.end(), [&](FileId a, FileId b) {
    return files_[a].access_rate > files_[b].access_rate;
  });
  return ids;
}

FileSet FileSet::from_trace_stats(const TraceStats& stats,
                                  Bytes default_size) {
  std::vector<FileInfo> files;
  files.reserve(stats.access_counts.size());
  const double duration =
      stats.duration.value() > 0.0 ? stats.duration.value() : 1.0;
  for (std::size_t i = 0; i < stats.access_counts.size(); ++i) {
    FileInfo f;
    f.id = static_cast<FileId>(i);
    const double mean_bytes = stats.mean_file_bytes[i];
    f.size = mean_bytes > 0.0 ? static_cast<Bytes>(mean_bytes) : default_size;
    if (f.size == 0) f.size = 1;
    f.access_rate =
        static_cast<double>(stats.access_counts[i]) / duration;
    files.push_back(f);
  }
  return FileSet(std::move(files));
}

}  // namespace pr
