#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "workload/zipf.h"

namespace pr {

namespace {

void validate(const SyntheticWorkloadConfig& c) {
  if (c.file_count == 0) {
    throw std::invalid_argument("synthetic: file_count == 0");
  }
  if (!(c.mean_interarrival.value() > 0.0)) {
    throw std::invalid_argument("synthetic: mean_interarrival <= 0");
  }
  if (!(c.load_factor > 0.0)) {
    throw std::invalid_argument("synthetic: load_factor <= 0");
  }
  if (c.zipf_alpha < 0.0) {
    throw std::invalid_argument("synthetic: zipf_alpha < 0");
  }
  if (c.min_file_bytes == 0 || c.max_file_bytes < c.min_file_bytes) {
    throw std::invalid_argument("synthetic: bad size bounds");
  }
  if (c.diurnal_depth < 0.0 || c.diurnal_depth >= 1.0) {
    throw std::invalid_argument("synthetic: diurnal_depth outside [0,1)");
  }
  if (c.burstiness < 0.0 || c.burstiness >= 1.0) {
    throw std::invalid_argument("synthetic: burstiness outside [0,1)");
  }
  if (c.burstiness > 0.0 && c.burst_window == 0) {
    throw std::invalid_argument("synthetic: burst_window == 0");
  }
}

/// Sizes sorted ascending, then partially de-sorted so that popularity
/// rank -> size keeps roughly the requested anti-correlation.
std::vector<Bytes> make_sizes_for_ranks(const SyntheticWorkloadConfig& c,
                                        Rng& rng) {
  std::vector<Bytes> sizes(c.file_count);
  for (auto& s : sizes) {
    const double raw = rng.lognormal(c.size_log_mu, c.size_log_sigma);
    const auto clamped = std::clamp(
        raw, static_cast<double>(c.min_file_bytes),
        static_cast<double>(c.max_file_bytes));
    s = static_cast<Bytes>(clamped);
  }
  // rank 0 (most popular) gets the smallest size...
  std::sort(sizes.begin(), sizes.end());
  // ...then weaken the correlation by swapping each position with a
  // random partner with probability (1 - strength).
  const double noise = 1.0 - c.size_popularity_anticorrelation;
  if (noise > 0.0) {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (rng.uniform() < noise) {
        const std::size_t j = rng.uniform_index(sizes.size());
        std::swap(sizes[i], sizes[j]);
      }
    }
  }
  return sizes;
}

}  // namespace

FileSet generate_fileset(const SyntheticWorkloadConfig& config) {
  validate(config);
  Rng rng(config.seed);
  const auto sizes = make_sizes_for_ranks(config, rng);

  const double rate_total =
      config.load_factor / config.mean_interarrival.value();
  ZipfDistribution zipf(config.file_count, config.zipf_alpha);

  std::vector<FileInfo> files(config.file_count);
  for (std::size_t rank = 0; rank < config.file_count; ++rank) {
    // Popularity rank r maps directly to file id r: the *id* ordering
    // carries no meaning to the policies, which consult sizes/rates.
    FileInfo f;
    f.id = static_cast<FileId>(rank);
    f.size = sizes[rank];
    f.access_rate = rate_total * zipf.pmf(rank);
    files[rank] = f;
  }
  return FileSet(std::move(files));
}

SyntheticSource::SyntheticSource(const SyntheticWorkloadConfig& config)
    : config_(config),
      files_(generate_fileset(config)),  // validates config
      rng_(config.seed ^ 0xD1F7C0DEULL),  // independent arrival stream
      zipf_(config.file_count, config.zipf_alpha),
      base_mean_(config.mean_interarrival.value() / config.load_factor) {
  recent_.reserve(config_.burst_window);
}

std::string SyntheticSource::describe() const {
  return "synthetic[" + std::to_string(config_.request_count) + "]";
}

bool SyntheticSource::poll(Request& out) {
  if (emitted_ >= config_.request_count) return false;
  ++emitted_;

  double mean = base_mean_;
  if (config_.diurnal_depth > 0.0) {
    // Rate modulation lambda(t) = base * (1 + depth*sin(2πt/86400));
    // inter-arrival mean is its reciprocal at the current time (thinning
    // would be exact; this local approximation is fine at depth < 1 and
    // keeps generation single-pass).
    const double phase = 2.0 * std::numbers::pi * t_ / 86'400.0;
    mean = base_mean_ / (1.0 + config_.diurnal_depth * std::sin(phase));
  }
  t_ += rng_.exponential(mean);

  Request r;
  r.arrival = Seconds{t_};
  if (config_.burstiness > 0.0 && !recent_.empty() &&
      rng_.bernoulli(config_.burstiness)) {
    r.file = recent_[rng_.uniform_index(recent_.size())];
  } else {
    r.file = static_cast<FileId>(zipf_.sample(rng_));
  }
  if (config_.burstiness > 0.0) {
    if (recent_.size() < config_.burst_window) {
      recent_.push_back(r.file);
    } else {
      recent_[recent_cursor_] = r.file;
      recent_cursor_ = (recent_cursor_ + 1) % config_.burst_window;
    }
  }
  r.size = files_[r.file].size;
  r.kind = RequestKind::kRead;
  out = r;
  return true;
}

SyntheticWorkload generate_workload(const SyntheticWorkloadConfig& config) {
  SyntheticSource source(config);
  SyntheticWorkload w;
  w.files = source.files();
  w.trace.requests.reserve(config.request_count);
  Request r;
  while (source.next(r)) w.trace.requests.push_back(r);
  return w;
}

SyntheticWorkloadConfig worldcup98_light_config(std::uint64_t seed) {
  SyntheticWorkloadConfig c;
  c.seed = seed;
  // Defaults already encode the paper's reported statistics; the real WC98
  // logs are strongly diurnal (the tournament's match schedule), which is
  // what gives idleness-threshold DPM its quiet windows.
  c.diurnal_depth = 0.6;
  return c;
}

SyntheticWorkloadConfig worldcup98_heavy_config(std::uint64_t seed) {
  SyntheticWorkloadConfig c = worldcup98_light_config(seed);
  c.load_factor = 4.0;  // 4× the request rate = paper's "heavy" condition
  return c;
}

SyntheticWorkloadConfig proxy_server_config(std::uint64_t seed) {
  // Forward proxy: an order of magnitude more distinct objects with a
  // long cold tail, strong temporal locality (flash crowds), mild mean
  // rate. Classic proxy-trace characteristics ([6][11]).
  SyntheticWorkloadConfig c;
  c.seed = seed;
  c.file_count = 40'000;
  c.request_count = 1'000'000;
  c.mean_interarrival = Seconds{0.086};  // ~1 day
  c.zipf_alpha = 0.7;
  c.size_log_mu = 8.8;
  c.size_log_sigma = 1.8;  // heavier size tail than origin servers
  c.max_file_bytes = 8 * kMiB;
  c.diurnal_depth = 0.6;
  c.burstiness = 0.35;
  return c;
}

SyntheticWorkloadConfig ftp_mirror_config(std::uint64_t seed) {
  // FTP mirror: few, large files (distribution tarballs/ISOs), mild
  // popularity skew, low request rate — transfer time dominates.
  SyntheticWorkloadConfig c;
  c.seed = seed;
  c.file_count = 800;
  c.request_count = 40'000;
  c.mean_interarrival = Seconds{2.16};  // ~1 day
  c.zipf_alpha = 0.5;
  c.size_log_mu = 14.5;  // median ≈ 2 MiB
  c.size_log_sigma = 1.6;
  c.min_file_bytes = 64 * kKiB;
  c.max_file_bytes = 256 * kMiB;
  c.size_popularity_anticorrelation = 0.3;  // big ISOs are popular too
  c.diurnal_depth = 0.4;
  return c;
}

SyntheticWorkloadConfig email_server_config(std::uint64_t seed) {
  // Email server: many small message files, weak skew (everyone reads
  // their own mail), strong diurnality (office hours), high burstiness
  // (mailbox scans touch runs of messages).
  SyntheticWorkloadConfig c;
  c.seed = seed;
  c.file_count = 100'000;
  c.request_count = 600'000;
  c.mean_interarrival = Seconds{0.144};  // ~1 day
  c.zipf_alpha = 0.3;
  c.size_log_mu = 8.9;  // median ≈ 7 KiB
  c.size_log_sigma = 1.0;
  c.max_file_bytes = 512 * kKiB;
  c.size_popularity_anticorrelation = 0.1;
  c.diurnal_depth = 0.8;
  c.burstiness = 0.5;
  return c;
}

}  // namespace pr
