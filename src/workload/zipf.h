// zipf.h — Zipf(α) rank sampling. The paper (§4, citing [6][11][20])
// models web request popularity as Zipf-like: P(rank i) ∝ 1/i^α with
// α ∈ [0, 1]. We provide both an exact inverse-CDF sampler (O(log n) per
// sample via binary search over precomputed cumulative weights — ideal for
// the trace generator where n ≈ 4k) and the closed-form distribution
// helpers policies/tests need.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace pr {

class ZipfDistribution {
 public:
  /// n ≥ 1 ranks, exponent alpha ≥ 0 (0 = uniform). Throws
  /// std::invalid_argument for n == 0 or negative alpha.
  ZipfDistribution(std::size_t n, double alpha);

  /// Sample a rank in [0, n), rank 0 most popular.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Probability of rank i (0-based).
  [[nodiscard]] double pmf(std::size_t i) const;

  /// Fraction of probability mass on ranks [0, k).
  [[nodiscard]] double cumulative(std::size_t k) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// Generalised harmonic number H_{n,alpha} = Σ_{i=1..n} i^-alpha.
  [[nodiscard]] static double harmonic(std::size_t n, double alpha);

 private:
  double alpha_;
  double norm_;  // H_{n,alpha}
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace pr
