// fault_state.h — the live per-disk fault flags the ArraySimulation seam
// consults before dispatch. The simulator owns one FaultState, applies
// FaultPlan events to it in time order, and checks failed()/slowdown()
// when routing; redundancy schemes (redundancy/scheme.h) see it through
// ArrayContext::disk_failed() / disk_slowdown() to pick live copies or
// surviving stripe units.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"

namespace pr {

class FaultState {
 public:
  /// What applying one plan event did (drives counters and observer
  /// emissions — a no-op apply must stay invisible).
  struct ApplyResult {
    /// False when the event was idempotently ignored (fail on a failed
    /// disk, recover on a live one, slowdown to the current factor).
    bool changed = false;
    /// For an applied kRecover: how long the disk was down.
    Seconds downtime{0.0};
  };

  void resize(std::size_t disk_count) {
    failed_.assign(disk_count, 0);
    fail_since_.assign(disk_count, Seconds{0.0});
    slowdown_.assign(disk_count, 1.0);
  }

  [[nodiscard]] std::size_t disk_count() const { return failed_.size(); }

  [[nodiscard]] bool failed(DiskId d) const {
    return d < failed_.size() && failed_[d] != 0;
  }
  /// Service inflation multiplier currently in force (1 = nominal).
  [[nodiscard]] double slowdown(DiskId d) const {
    return d < slowdown_.size() ? slowdown_[d] : 1.0;
  }
  [[nodiscard]] std::size_t failed_count() const {
    std::size_t n = 0;
    for (const std::uint8_t f : failed_) n += f;
    return n;
  }

  ApplyResult apply(const FaultEvent& e) {
    ApplyResult r;
    if (e.disk >= failed_.size()) return r;
    switch (e.kind) {
      case FaultKind::kFail:
        if (failed_[e.disk] != 0) return r;
        failed_[e.disk] = 1;
        fail_since_[e.disk] = e.time;
        r.changed = true;
        break;
      case FaultKind::kRecover:
        if (failed_[e.disk] == 0) return r;
        failed_[e.disk] = 0;
        slowdown_[e.disk] = 1.0;
        r.downtime = e.time - fail_since_[e.disk];
        r.changed = true;
        break;
      case FaultKind::kSlowdown:
        if (slowdown_[e.disk] == e.factor) return r;
        slowdown_[e.disk] = e.factor;
        r.changed = true;
        break;
    }
    return r;
  }

 private:
  std::vector<std::uint8_t> failed_;
  std::vector<Seconds> fail_since_;
  std::vector<double> slowdown_;
};

}  // namespace pr
