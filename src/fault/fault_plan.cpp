#include "fault/fault_plan.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace pr {

namespace {

void check_event(const FaultEvent& e) {
  if (!(e.time >= Seconds{0.0})) {
    throw std::invalid_argument("FaultPlan: event time must be >= 0");
  }
  if (e.kind == FaultKind::kSlowdown && !(e.factor >= 1.0)) {
    throw std::invalid_argument("FaultPlan: slowdown factor must be >= 1");
  }
}

bool event_order(const FaultEvent& a, const FaultEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.disk != b.disk) return a.disk < b.disk;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

}  // namespace

FaultPlan FaultPlan::from_events(std::vector<FaultEvent> events) {
  for (const FaultEvent& e : events) check_event(e);
  std::stable_sort(events.begin(), events.end(), event_order);
  FaultPlan plan;
  plan.events_ = std::move(events);
  return plan;
}

FaultPlan FaultPlan::from_hazard(const FaultHazard& hazard,
                                 std::size_t disk_count) {
  if (!(hazard.afr >= 0.0) || !(hazard.rate_scale >= 0.0)) {
    throw std::invalid_argument("FaultPlan::from_hazard: negative rate");
  }
  if (!(hazard.mttr > Seconds{0.0})) {
    throw std::invalid_argument("FaultPlan::from_hazard: mttr must be > 0");
  }
  std::vector<FaultEvent> events;
  const double rate = hazard.afr * hazard.rate_scale;  // failures/disk-year
  if (rate > 0.0 && hazard.horizon > Seconds{0.0}) {
    const double mean_tbf = kSecondsPerYear.value() / rate;
    for (DiskId d = 0; d < disk_count; ++d) {
      // Per-disk stream keyed on (seed, disk) only: SplitMix64 inside
      // Rng::reseed decorrelates the additive offsets.
      Rng rng(hazard.seed +
              0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(d) + 1));
      double t = rng.exponential(mean_tbf);
      while (t < hazard.horizon.value()) {
        events.push_back({Seconds{t}, d, FaultKind::kFail, 1.0});
        const double up = t + hazard.mttr.value();
        if (!(up < hazard.horizon.value())) break;  // down through the end
        events.push_back({Seconds{up}, d, FaultKind::kRecover, 1.0});
        t = up + rng.exponential(mean_tbf);
      }
    }
  }
  return from_events(std::move(events));
}

void FaultPlan::validate(std::size_t disk_count) const {
  for (const FaultEvent& e : events_) {
    if (e.disk >= disk_count) {
      throw std::invalid_argument("FaultPlan: event targets disk " +
                                  std::to_string(e.disk) + " but only " +
                                  std::to_string(disk_count) + " exist");
    }
  }
}

}  // namespace pr
