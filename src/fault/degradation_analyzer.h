// degradation_analyzer.h — a SimObserver that distills a faulted run into
// the reliability metrics the fault sweep reports: how long the array ran
// degraded, how fast faults healed, how many requests were lost,
// redirected, slowed, or parity-reconstructed — and, per disk, how many
// requests each failure actually degraded. Attach it next to the usual
// recorders (it is read-only like every observer) and call merge_into()
// after the run to fold the time-derived and per-disk metrics into
// SimResult::counters — the aggregate event *counts* are already interned
// by the simulator itself, so merge_into() adds only what the counter
// registry cannot see (durations, per-disk splits).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/observer.h"
#include "sim/metrics.h"

namespace pr {

class DegradationAnalyzer final : public SimObserver {
 public:
  void on_run_start(const RunStartEvent& event) override;
  void on_disk_fail(const DiskFailEvent& event) override;
  void on_disk_recover(const DiskRecoverEvent& event) override;
  void on_request_degraded(const RequestDegradedEvent& event) override;
  void on_rebuild_start(const RebuildStartEvent& event) override;
  void on_rebuild_complete(const RebuildCompleteEvent& event) override;
  void on_run_end(const RunEndEvent& event) override;

  /// Fail-stop faults observed (slowdown announcements excluded).
  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  /// Failures still open when the run ended.
  [[nodiscard]] std::uint64_t unrecovered() const {
    return failures_ - recoveries_;
  }
  [[nodiscard]] std::uint64_t lost_requests() const { return lost_; }
  [[nodiscard]] std::uint64_t redirected_requests() const {
    return redirected_;
  }
  [[nodiscard]] std::uint64_t slowed_requests() const { return slowed_; }
  /// Requests served by parity reconstruction (DegradedOutcome::
  /// kReconstructed).
  [[nodiscard]] std::uint64_t reconstructed_requests() const {
    return reconstructed_;
  }
  /// Degraded requests (any outcome) keyed by the disk the policy
  /// *intended* to serve them — which failure hurt how much. Sized by the
  /// run's disk count after on_run_start.
  [[nodiscard]] const std::vector<std::uint64_t>& degraded_by_disk() const {
    return degraded_by_disk_;
  }
  /// Sum of per-disk down intervals (disk-seconds; overlapping failures
  /// count once per disk). Open failures are charged through the horizon.
  [[nodiscard]] Seconds total_downtime() const { return downtime_; }
  /// Wall-clock union of intervals with >= 1 disk failed — the paper-facing
  /// "degradation window". Open at run end => closed at the horizon.
  [[nodiscard]] Seconds degraded_window() const { return degraded_window_; }
  [[nodiscard]] Seconds mean_recovery_time() const {
    return recoveries_ == 0 ? Seconds{0.0}
                            : Seconds{recovery_sum_.value() /
                                      static_cast<double>(recoveries_)};
  }
  [[nodiscard]] Seconds max_recovery_time() const { return recovery_max_; }
  /// Rebuild-engine observations (zero on runs without parity rebuild).
  [[nodiscard]] std::uint64_t rebuilds_started() const {
    return rebuilds_started_;
  }
  [[nodiscard]] std::uint64_t rebuilds_completed() const {
    return rebuilds_completed_;
  }
  [[nodiscard]] Bytes rebuilt_bytes() const { return rebuilt_bytes_; }
  [[nodiscard]] Seconds mean_rebuild_time() const {
    return rebuilds_completed_ == 0
               ? Seconds{0.0}
               : Seconds{rebuild_sum_.value() /
                         static_cast<double>(rebuilds_completed_)};
  }
  [[nodiscard]] Seconds max_rebuild_time() const { return rebuild_max_; }

  /// Add the metrics the registry cannot see to result.counters:
  /// durations in milliseconds, rounded (fault.downtime_ms,
  /// fault.degraded_window_ms, fault.mean_recovery_ms,
  /// fault.max_recovery_ms; redundancy.mean_rebuild_ms /
  /// redundancy.max_rebuild_ms when a rebuild completed) and the per-disk
  /// degraded-request split (fault.disk<N>.degraded_requests, emitted
  /// only for disks with a nonzero count so fault reports keep their
  /// historical counter sets when no request was degraded). Aggregate
  /// event counts are not re-added — the simulator already interned them
  /// (sim.faults_injected etc.).
  void merge_into(SimResult& result) const;

 private:
  std::uint64_t failures_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t redirected_ = 0;
  std::uint64_t slowed_ = 0;
  std::uint64_t reconstructed_ = 0;
  std::uint64_t rebuilds_started_ = 0;
  std::uint64_t rebuilds_completed_ = 0;
  Bytes rebuilt_bytes_ = 0;
  Seconds rebuild_sum_{0.0};
  Seconds rebuild_max_{0.0};
  Seconds downtime_{0.0};
  Seconds recovery_sum_{0.0};
  Seconds recovery_max_{0.0};
  // Union-of-intervals tracking: failed_now_ counts currently-failed disks;
  // the window opens on 0 -> 1 and closes on 1 -> 0 (or at the horizon).
  std::uint64_t failed_now_ = 0;
  Seconds window_open_{0.0};
  Seconds degraded_window_{0.0};
  // Per-disk open-failure start (kNeverTime = live), so failures still open
  // at the horizon charge exact downtime from each disk's own fail instant.
  std::vector<Seconds> fail_since_;
  // Degraded requests keyed by RequestDegradedEvent::intended.
  std::vector<std::uint64_t> degraded_by_disk_;
};

}  // namespace pr
