// fault_plan.h — deterministic fault schedules for the 2-speed array.
//
// The paper's PRESS model *predicts* failures from ESRRA telemetry; this
// subsystem lets the simulator *experience* them, closing the
// prediction-vs-observation loop (ROADMAP "fault injection measured
// through observers"). A FaultPlan is an immutable, time-sorted list of
// DiskFail / DiskRecover / DiskSlowdown events, built either from an
// explicit event list or generated from a seeded per-disk exponential
// hazard — every sample flows from the seed through pr::Rng, so the same
// (seed, rates, horizon) always yields the same plan (detlint-clean, no
// ambient entropy).
//
// Fault semantics (enforced by the ArraySimulation seam, src/sim/):
//   * kFail is fail-stop on the routing plane: the disk stops being a
//     legal serve target until a kRecover. Its DPM timers and energy
//     ledger keep running untouched — a failed disk still draws power, so
//     the energy-conservation contract is unaffected.
//   * kRecover restores the disk (and clears any slowdown).
//   * kSlowdown(factor) inflates service: each request served by the disk
//     pays an extra internal transfer of (factor − 1) × bytes. factor 1
//     restores nominal service.
// Events are idempotent: failing a failed disk or recovering a live one
// is a no-op (no observer emission, no counter bump).
#pragma once

#include <cstdint>
#include <vector>

#include "disk/disk.h"
#include "util/units.h"

namespace pr {

enum class FaultKind : std::uint8_t { kFail = 0, kRecover = 1, kSlowdown = 2 };

[[nodiscard]] constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kFail: return "fail";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kSlowdown: return "slowdown";
  }
  return "?";
}

struct FaultEvent {
  Seconds time{};
  DiskId disk = 0;
  FaultKind kind = FaultKind::kFail;
  /// Service inflation multiplier for kSlowdown (≥ 1; 1 restores nominal
  /// service). Ignored for kFail / kRecover.
  double factor = 1.0;
};

/// Seeded per-disk hazard for FaultPlan::from_hazard. The AFR is read as
/// an exponential hazard rate in failures per disk-year — the same
/// annualized unit PRESS emits — so a sweep can dial injected rates
/// against predicted ones directly (press/afr_agreement.h scores the
/// match).
struct FaultHazard {
  std::uint64_t seed = 1;
  /// Per-disk annual failure rate at rate_scale = 1.
  double afr = 0.08;
  /// Multiplier on `afr` (the fault_sweep.ini sweep axis). 0 disables
  /// generation (an empty plan).
  double rate_scale = 1.0;
  /// Deterministic repair time: each kFail is paired with a kRecover
  /// `mttr` later when that still falls inside the horizon.
  Seconds mttr{3600.0};
  /// Generation horizon; no event is scheduled at or past it.
  Seconds horizon{0.0};
};

class FaultPlan {
 public:
  /// The empty plan: attaching it to a run is byte-identical to running
  /// with no plan at all (a golden test pins this).
  FaultPlan() = default;

  /// Build from an explicit list; events are stably ordered by
  /// (time, disk, kind). Throws std::invalid_argument for negative times
  /// or slowdown factors below 1.
  [[nodiscard]] static FaultPlan from_events(std::vector<FaultEvent> events);

  /// Generate fail/recover pairs from independent per-disk exponential
  /// hazards. Deterministic: disk d's stream is seeded from
  /// (hazard.seed, d) only, so plans for different disk counts share a
  /// prefix. Throws std::invalid_argument for negative rates or a
  /// non-positive mttr.
  [[nodiscard]] static FaultPlan from_hazard(const FaultHazard& hazard,
                                             std::size_t disk_count);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Check every event targets a disk below `disk_count`. Throws
  /// std::invalid_argument otherwise (run_simulation calls this before
  /// the run starts).
  void validate(std::size_t disk_count) const;

 private:
  std::vector<FaultEvent> events_;  // sorted by (time, disk, kind)
};

}  // namespace pr
