#include "fault/degradation_analyzer.h"

#include <cmath>
#include <string>

namespace pr {

void DegradationAnalyzer::on_run_start(const RunStartEvent& event) {
  fail_since_.assign(event.disk_count, kNeverTime);
  degraded_by_disk_.assign(event.disk_count, 0);
}

void DegradationAnalyzer::on_disk_fail(const DiskFailEvent& event) {
  if (event.mode != FaultMode::kFailStop) return;
  ++failures_;
  if (event.disk < fail_since_.size()) fail_since_[event.disk] = event.time;
  if (failed_now_ == 0) window_open_ = event.time;
  ++failed_now_;
}

void DegradationAnalyzer::on_disk_recover(const DiskRecoverEvent& event) {
  ++recoveries_;
  downtime_ += event.downtime;
  recovery_sum_ += event.downtime;
  if (event.downtime > recovery_max_) recovery_max_ = event.downtime;
  if (event.disk < fail_since_.size()) fail_since_[event.disk] = kNeverTime;
  if (failed_now_ > 0) {
    --failed_now_;
    if (failed_now_ == 0) degraded_window_ += event.time - window_open_;
  }
}

void DegradationAnalyzer::on_request_degraded(
    const RequestDegradedEvent& event) {
  switch (event.outcome) {
    case DegradedOutcome::kRedirected: ++redirected_; break;
    case DegradedOutcome::kSlowed: ++slowed_; break;
    case DegradedOutcome::kLost: ++lost_; break;
    case DegradedOutcome::kReconstructed: ++reconstructed_; break;
  }
  if (event.intended < degraded_by_disk_.size()) {
    ++degraded_by_disk_[event.intended];
  }
}

void DegradationAnalyzer::on_rebuild_start(const RebuildStartEvent& event) {
  (void)event;
  ++rebuilds_started_;
}

void DegradationAnalyzer::on_rebuild_complete(
    const RebuildCompleteEvent& event) {
  ++rebuilds_completed_;
  rebuilt_bytes_ += event.bytes;
  rebuild_sum_ += event.duration;
  if (event.duration > rebuild_max_) rebuild_max_ = event.duration;
}

void DegradationAnalyzer::on_run_end(const RunEndEvent& event) {
  if (failed_now_ > 0) {
    // Failures still open are charged through the horizon from each disk's
    // own fail instant; the window union closes at the horizon too.
    degraded_window_ += event.horizon - window_open_;
    for (const Seconds since : fail_since_) {
      if (since < kNeverTime) downtime_ += event.horizon - since;
    }
    failed_now_ = 0;
  }
}

void DegradationAnalyzer::merge_into(SimResult& result) const {
  const auto ms = [](Seconds s) {
    return static_cast<std::uint64_t>(std::llround(s.value() * 1e3));
  };
  result.counters["fault.downtime_ms"] += ms(downtime_);
  result.counters["fault.degraded_window_ms"] += ms(degraded_window_);
  result.counters["fault.mean_recovery_ms"] += ms(mean_recovery_time());
  result.counters["fault.max_recovery_ms"] += ms(max_recovery_time());
  // Per-disk split only where a failure actually degraded traffic, so runs
  // predating this metric keep their exact historical counter sets.
  for (std::size_t d = 0; d < degraded_by_disk_.size(); ++d) {
    if (degraded_by_disk_[d] == 0) continue;
    result.counters["fault.disk" + std::to_string(d) +
                    ".degraded_requests"] += degraded_by_disk_[d];
  }
  if (rebuilds_completed_ > 0) {
    result.counters["redundancy.mean_rebuild_ms"] += ms(mean_rebuild_time());
    result.counters["redundancy.max_rebuild_ms"] += ms(max_rebuild_time());
  }
}

}  // namespace pr
