// scenario_report.h — machine-readable export of scenario sweeps, the
// grid-level sibling of core/report_io.h: one CSV row / JSON object per
// cell, in the engine's deterministic cell order, so identical scenarios
// serialize byte-identically regardless of thread count.
#pragma once

#include <iosfwd>
#include <string>

#include "exp/scenario_engine.h"

namespace pr {

/// The fixed CSV column schema (also asserted by the scenario-smoke,
/// fault-smoke and rebuild-smoke CI jobs): axes first, then the headline
/// metrics. With `with_faults` the fault-sweep columns (injected rate,
/// degradation windows, recovery times, lost/degraded counts,
/// PRESS-vs-injected agreement) are appended; with `with_redundancy` the
/// redundancy columns (reconstructions, data-loss events, rebuild
/// progress, MTTDL agreement) follow after those; with `with_control`
/// the control columns (update/shed counts, knob actuations) come last —
/// strictly append-only, so fault-free scenarios keep the narrow schema
/// byte-for-byte.
[[nodiscard]] std::string scenario_csv_header(bool with_faults = false,
                                              bool with_redundancy = false,
                                              bool with_control = false);

/// One row per cell, schema above (widened when result.faulted), full
/// double precision.
void write_scenario_csv(const ScenarioResult& result, std::ostream& out);
void write_scenario_csv_file(const ScenarioResult& result,
                             const std::string& path);

/// JSON object {scenario, cells: [...]}; with `include_reports` each cell
/// embeds the full per-disk SystemReport (core/report_io.h), otherwise
/// just the headline metrics.
void write_scenario_json(const ScenarioResult& result, std::ostream& out,
                         bool include_reports = false);
void write_scenario_json_file(const ScenarioResult& result,
                              const std::string& path,
                              bool include_reports = false);
[[nodiscard]] std::string to_json(const ScenarioResult& result,
                                  bool include_reports = false);

}  // namespace pr
