// scenario_engine.h — expands a ScenarioSpec into concrete cells
// (policy × workload × load × seed × epoch × disks) and fans them across
// the thread pool. This generalizes core/experiment.h's run_sweep (fixed
// policy × workload × disks grid) into arbitrary declarative axes: each
// (workload, load, seed) variant is generated once and shared by every
// policy/epoch/disk cell, and results come back in *spec order* —
// policy-major, then workload, load, seed, epoch, disks — regardless of
// thread count, so serialized output is byte-identical for threads = 1
// and threads = N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.h"
#include "exp/scenario.h"

namespace pr {

/// One completed grid point. The axis fields echo the spec values that
/// produced the cell (trace workloads report load = 1 and seed = 0: the
/// axes do not apply to a fixed trace).
struct ScenarioCell {
  std::string policy;    ///< policy display label
  std::string workload;  ///< workload name
  double load = 1.0;
  std::uint64_t seed = 0;
  double epoch_s = 0.0;
  std::size_t disks = 0;
  SystemReport report;
};

struct ScenarioResult {
  std::string scenario;
  std::vector<ScenarioCell> cells;  ///< spec order (policy-major)
};

/// Validate `spec`, generate its workload variants, run every cell through
/// the ThreadPool and return deterministically ordered results. Throws
/// std::invalid_argument for spec problems and propagates workload/trace
/// I/O errors.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

}  // namespace pr
