// scenario_engine.h — expands a ScenarioSpec into concrete cells
// (policy × workload × load × seed × epoch × disks × fault rate scale)
// and fans them across the thread pool. This generalizes core/experiment.h's run_sweep (fixed
// policy × workload × disks grid) into arbitrary declarative axes: each
// (workload, load, seed) variant is generated once and shared by every
// policy/epoch/disk cell, and results come back in *spec order* —
// policy-major, then workload, load, seed, epoch, disks — regardless of
// thread count, so serialized output is byte-identical for threads = 1
// and threads = N.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"
#include "exp/scenario.h"

namespace pr {

/// Fault-axis results for one cell of a `[fault]`-enabled scenario
/// (DegradationAnalyzer metrics plus the PRESS-vs-injected agreement
/// scores from press/afr_agreement.h). Durations are plain seconds so
/// the report layer can print them without unit plumbing.
struct ScenarioFaultCell {
  double rate_scale = 0.0;     ///< swept multiplier on the base AFR
  double injected_afr = 0.0;   ///< afr × rate_scale (fraction/year)
  std::uint64_t failures = 0;  ///< fail-stop faults that struck
  std::uint64_t lost_requests = 0;
  std::uint64_t degraded_requests = 0;  ///< redirected + slowed
  double downtime_s = 0.0;              ///< per-disk down intervals, summed
  double degraded_window_s = 0.0;       ///< wall-clock union, >= 1 disk down
  double mean_recovery_s = 0.0;
  double observed_afr = 0.0;  ///< failures per disk-year of exposure
  double press_over_injected = 0.0;
  double press_over_observed = 0.0;
};

/// Redundancy-layer results for one cell of a `[redundancy]`-enabled
/// scenario: what parity actually bought (reconstructed reads, data-loss
/// events, rebuild completions) plus the closed-form loop closure
/// (press/mttdl_agreement.h). Rates are per *protection domain* year — a
/// RAID-5 group or, for declustered parity, the whole array — so the
/// prediction and the observation live in the same unit regardless of
/// group size.
struct ScenarioRedundancyCell {
  std::string scheme;  ///< "raid5" | "declustered"
  std::uint64_t reconstructed_requests = 0;
  std::uint64_t data_loss_events = 0;
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  double mean_rebuild_s = 0.0;
  double predicted_mttdl_hours = 0.0;  ///< closed form, per domain
  double predicted_losses_per_year = 0.0;  ///< per domain-year
  double observed_losses_per_year = 0.0;   ///< per domain-year
  double observed_over_predicted = 0.0;    ///< 0 when prediction is 0-rate
};

/// Control-loop results for one cell of a `[control]`-enabled scenario:
/// what the feedback controllers actually did (the simulator's control.*
/// counters, verbatim).
struct ScenarioControlCell {
  std::uint64_t updates = 0;        ///< epoch windows folded
  std::uint64_t shed_requests = 0;  ///< dropped by the admission window
  std::uint64_t h_scaled = 0;       ///< boundaries that rescaled DPM H
  std::uint64_t hot_grows = 0;      ///< hot-zone disks added
  std::uint64_t hot_shrinks = 0;    ///< hot-zone disks removed
  std::uint64_t epoch_scaled = 0;   ///< boundaries that resized the epoch
};

/// One completed grid point. The axis fields echo the spec values that
/// produced the cell (trace workloads report load = 1 and seed = 0: the
/// axes do not apply to a fixed trace).
struct ScenarioCell {
  std::string policy;    ///< policy display label
  std::string workload;  ///< workload name
  double load = 1.0;
  std::uint64_t seed = 0;
  double epoch_s = 0.0;
  std::size_t disks = 0;
  SystemReport report;
  /// Present iff the spec had a `[fault]` section (rate_scale 0 cells
  /// included — their plan is empty and the metrics are all zero).
  std::optional<ScenarioFaultCell> fault;
  /// Present iff the spec had a `[redundancy]` section. All-zero (beyond
  /// the prediction) without a `[fault]` section: parity only acts when
  /// failures strike.
  std::optional<ScenarioRedundancyCell> redundancy;
  /// Present iff the spec had a `[control]` section.
  std::optional<ScenarioControlCell> control;
};

struct ScenarioResult {
  std::string scenario;
  /// True when the spec had a `[fault]` section; the report layer widens
  /// the CSV schema with the fault columns exactly in this case.
  bool faulted = false;
  /// True when the spec had a `[redundancy]` section; the report layer
  /// appends the redundancy columns exactly in this case.
  bool redundant = false;
  /// True when the spec had a `[control]` section; the report layer
  /// appends the control columns exactly in this case.
  bool controlled = false;
  std::vector<ScenarioCell> cells;  ///< spec order (policy-major)
};

/// Validate `spec`, generate its workload variants, run every cell through
/// the ThreadPool and return deterministically ordered results. Throws
/// std::invalid_argument for spec problems and propagates workload/trace
/// I/O errors.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

}  // namespace pr
