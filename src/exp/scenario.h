// scenario.h — declarative experiment scenarios: what the paper's Fig. 7
// grid looks like as *data*. A ScenarioSpec names the sweep axes (disks,
// epoch, workload load, seeds), the workloads (synthetic presets with
// overrides, or a CSV trace) and the policies (registry names plus
// per-policy ParamMap knobs); the engine (scenario_engine.h) expands it
// into cells and fans them across the thread pool.
//
// Specs can be built in code (the migrated benches do) or parsed from a
// small INI-lite text format (`run_experiment --config scenarios/x.ini`;
// grammar documented in EXPERIMENTS.md "Scenario files"):
//
//   [scenario]
//   name = fig7_overall
//   threads = 0                 # 0 = hardware concurrency
//   seeds = 42                  # comma list = sweep axis
//
//   [system]
//   disks = 6,8,10,12,14,16     # comma list = sweep axis
//   epoch = 3600                # seconds; comma list = sweep axis
//   positioned = false          # seek-curve positional I/O
//
//   [workload light]            # repeatable; name defaults to "default"
//   kind = synthetic            # "trace" (+ path) or "source" (+ spec)
//   preset = wc98-light         # wc98-light|wc98-heavy|proxy|ftp|email
//   requests = 80000            # overrides of the preset
//   files = 1000
//   load = 1.0                  # comma list = sweep axis
//
//   [source replay]             # sugar for [workload replay] kind=source:
//   spec = jsonl:day66.jl       # trace::open spec ([format:]path)
//   buffer = 1048576            # stream buffer bound in bytes (optional)
//
//   [policy read]               # repeatable; registry names or aliases
//   label = READ                # display label (default: name as written)
//   cap = 40                    # any knob from policies::param_names()
//
//   [fault]                     # optional; presence enables injection
//   seed = 7                    # plan-generation seed
//   afr = 0.08                  # injected AFR at rate_scale = 1
//   rate_scale = 0,400,1600     # comma list = sweep axis (0 = no faults)
//   mttr = 900                  # repair time, seconds
//   kill_disk = 3               # deterministic fail-stop events merged
//   kill_at = 1800              # into every cell's plan (paired lists;
//                               # no planned recovery — the rebuild engine
//                               # or the horizon ends them)
//
//   [redundancy]                # optional; parity protection + rebuild
//   scheme = raid5              # raid5 | declustered
//   group = 4                   # stripe width (0 = whole array)
//   rebuild = true              # background rebuild engine on/off
//   rebuild_mbps = 32           # rebuild bandwidth per step stream
//   rebuild_chunk = 4194304     # bytes per rebuild step
//
//   [fleet]                     # optional; every cell becomes a fleet
//   shards = 125                # independent arrays of [system] disks each
//   threads = 1                 # workers per fleet cell (0 = hardware)
//
//   [control]                   # optional; adaptive feedback control
//   target_rt_ms = 30           # latency controller target (0 = off)
//   gain = 0.5                  # proportional gain on relative error
//   hysteresis = 0.25           # relative dead band around each target
//   persistence = 2             # same-direction epochs before acting
//   max_step = 2.0              # per-boundary H scale cap
//   h_min = 1                   # idleness-threshold clamp, seconds
//   h_max = 3600
//   energy_budget_w = 90        # hot-zone controller budget (0 = off)
//   adapt_epoch = true          # epoch-length controller on/off
//   epoch_min = 60              # epoch-length clamp, seconds
//   epoch_max = 14400
//   admit_window = 0.5          # admission (shed) window, seconds (0 = off)
//
// Comments start with '#' or ';' (whole line, or after whitespace).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "control/control_config.h"
#include "redundancy/redundancy_config.h"
#include "util/param_map.h"
#include "workload/synthetic.h"

namespace pr {

struct ScenarioWorkload {
  std::string name = "default";
  /// "synthetic" (preset + overrides), "trace" (materialize the file at
  /// `path` up front) or "source" (stream `path` as a trace::open spec
  /// through a bounded buffer, re-opened per cell; stdin is rejected
  /// because cells are re-runs).
  std::string kind = "synthetic";
  /// Synthetic preset: wc98-light | wc98-heavy | proxy | ftp | email.
  std::string preset = "wc98-light";
  /// kind == "trace"/"source": a trace::open spec, `[format:]path`.
  std::string path;
  /// kind == "source": stream buffer bound in bytes (absent = reader
  /// default).
  std::optional<std::size_t> buffer;
  // Preset overrides (absent = preset default).
  std::optional<std::size_t> files;
  std::optional<std::size_t> requests;
  std::optional<double> zipf_alpha;
  std::optional<double> burstiness;
  std::optional<double> diurnal_depth;
  /// Arrival-rate multipliers; a sweep axis. Empty = preset default.
  std::vector<double> loads;
};

struct ScenarioPolicy {
  std::string name;   ///< registry name (aliases accepted)
  std::string label;  ///< display label; empty = `name` as written
  ParamMap params;    ///< knobs; validated against policies::param_names()
};

/// Fault-injection knobs (`[fault]` section): a seeded per-disk
/// exponential hazard (fault/fault_plan.h) swept over rate_scale. The
/// section's presence enables injection; rate_scale 0 cells run the
/// byte-identical fault-free path.
struct ScenarioFault {
  bool enabled = false;
  /// Base seed for plan generation (mixed with the cell's workload seed,
  /// rate-scale index and disk count, so every cell gets its own plan).
  std::uint64_t seed = 1;
  /// Per-disk annual failure rate at rate_scale = 1.
  double afr = 0.08;
  /// Multipliers on `afr`; a sweep axis.
  std::vector<double> rate_scales = {1.0};
  /// Deterministic repair time (seconds).
  double mttr_s = 3600.0;
  /// Scripted fail-stop events merged into every cell's plan on top of
  /// the hazard draw: kill_disks[i] fails at kill_at_s[i] (paired lists).
  /// No planned recovery is scripted — with [redundancy] rebuild on, the
  /// rebuild engine recovers the disk when reconstruction finishes, which
  /// is exactly the rebuild-smoke CI shape.
  std::vector<std::size_t> kill_disks;
  std::vector<double> kill_at_s;
};

/// Parity-protection knobs (`[redundancy]` section): a config-owned
/// RedundancyScheme (redundancy/redundancy_config.h) for every cell,
/// composing with [fault] (degraded reads reconstruct instead of losing
/// requests; overlapping in-group failures count data-loss events) and
/// with [fleet] (each shard carries its own scheme + rebuild state). The
/// engine also scores the observed data-loss rate against the closed-form
/// MTTDL prediction (press/mttdl_agreement.h).
struct ScenarioRedundancy {
  bool enabled = false;
  /// "raid5" | "declustered" (redundancy/redundancy_config.h kinds).
  std::string scheme = "raid5";
  /// Stripe width / protection-group size (0 = whole array).
  std::size_t group = 0;
  /// Run the background rebuild engine after a failure.
  bool rebuild = true;
  /// Rebuild bandwidth per stream (MB/s) and step granularity (bytes).
  double rebuild_mbps = 32.0;
  std::size_t rebuild_chunk = 4u * 1024u * 1024u;
};

/// Fleet-mode knobs (`[fleet]` section): every cell becomes `shards`
/// independent arrays of [system] `disks` disks each, simulated with
/// sim/fleet_sim.h and reported as one merged result (cell `disks` column
/// = total fleet disks). Synthetic workloads only — each shard derives its
/// own stream from the cell's workload config via fleet_shard_seed.
/// Composes with [fault]: each shard gets an independent hazard plan.
struct ScenarioFleet {
  bool enabled = false;
  std::uint32_t shards = 1;
  /// Worker threads *inside* each fleet cell (1 = inline). Cells already
  /// fan across the scenario pool; raise this only for few-cell fleet
  /// scenarios. Never affects result bytes.
  unsigned threads = 1;
};

/// Feedback-control knobs (`[control]` section): every cell runs with
/// SimConfig::control enabled — the latency / energy / epoch controllers
/// of control/control_loop.h close the loop between epochs, and the
/// admission window sheds requests whose backlog exceeds it. Composes
/// with [fault] and [redundancy]; not with [fleet] (shards share no
/// controller — rejected by validation). The cell's `epoch_s` value
/// seeds the adaptive epoch length.
struct ScenarioControl {
  bool enabled = false;
  /// The knobs, minus `enabled` (the section's presence sets it per
  /// cell). Defaults are control_config.h's: every controller off until
  /// its target is configured.
  ControlConfig config;
};

struct ScenarioSpec {
  std::string name = "scenario";
  /// Worker threads for the sweep (0 = hardware concurrency). Never
  /// affects results — cell ordering is deterministic by construction.
  unsigned threads = 0;
  /// Workload seeds; a sweep axis (trace workloads ignore it).
  std::vector<std::uint64_t> seeds = {42};
  /// Array sizes; a sweep axis.
  std::vector<std::size_t> disks = {8};
  /// Epoch lengths P in seconds; a sweep axis.
  std::vector<double> epochs = {3600.0};
  /// Seek-curve positional I/O for every cell.
  bool positioned = false;
  std::vector<ScenarioWorkload> workloads;
  std::vector<ScenarioPolicy> policies;
  ScenarioFault fault;
  ScenarioFleet fleet;
  ScenarioRedundancy redundancy;
  ScenarioControl control;
};

/// Parse the INI-lite text above. Throws std::invalid_argument with
/// "<source>:<line>: ..." context for malformed input, unknown
/// sections/keys, unknown policies or presets.
[[nodiscard]] ScenarioSpec parse_scenario(std::string_view text,
                                          std::string_view source = "scenario");

/// Load and parse a scenario file (source = path in error messages).
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

/// Cross-field validation (non-empty policies/axes, registry names,
/// presets, positive values). parse_scenario runs this; code-built specs
/// get it from the engine.
void validate_scenario(const ScenarioSpec& spec);

/// Map the [redundancy] scheme name to its RedundancyKind. Throws
/// std::invalid_argument for unknown names (listing the valid ones).
[[nodiscard]] RedundancyKind scenario_redundancy_kind(
    const ScenarioRedundancy& redundancy);

/// Known synthetic preset names (wc98-light, wc98-heavy, proxy, ftp,
/// email).
[[nodiscard]] std::vector<std::string> workload_presets();

/// Resolve a preset name to its SyntheticWorkloadConfig at `seed`.
/// Throws std::invalid_argument for unknown presets, listing valid ones.
[[nodiscard]] SyntheticWorkloadConfig preset_workload_config(
    std::string_view preset, std::uint64_t seed);

}  // namespace pr
