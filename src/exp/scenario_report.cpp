#include "exp/scenario_report.h"

#include <fstream>
#include <locale>
#include <sstream>
#include <stdexcept>

#include "core/report_io.h"
#include "util/csv.h"
#include "util/fmt.h"

namespace pr {

namespace {

/// Full-precision decimal text (CsvWriter's default formatting rounds to
/// 6 significant digits; metric comparisons need all of them). Routed
/// through the locale-independent util formatter so a host application's
/// global locale can never change the CSV bytes.
std::string full(double v) { return format_double(v, 17); }

}  // namespace

std::string scenario_csv_header(bool with_faults, bool with_redundancy,
                                bool with_control) {
  std::string header =
      "scenario,policy,workload,load,seed,epoch_s,disks,array_afr,"
      "energy_j,mean_rt_ms,p95_rt_ms,total_transitions,"
      "max_transitions_per_day,migrations,migration_mb";
  if (with_faults) {
    header +=
        ",fault_rate_scale,fault_injected_afr,fault_failures,fault_lost,"
        "fault_degraded,fault_downtime_s,fault_degraded_window_s,"
        "fault_mean_recovery_s,fault_observed_afr,press_over_injected,"
        "press_over_observed";
  }
  if (with_redundancy) {
    header +=
        ",redundancy_scheme,reconstructed,data_loss_events,rebuilds_started,"
        "rebuilds_completed,mean_rebuild_s,mttdl_hours,"
        "predicted_losses_per_year,observed_losses_per_year,"
        "loss_over_predicted";
  }
  if (with_control) {
    header +=
        ",control_updates,control_shed,control_h_scaled,control_hot_grows,"
        "control_hot_shrinks,control_epoch_scaled";
  }
  return header;
}

void write_scenario_csv(const ScenarioResult& result, std::ostream& out) {
  out << scenario_csv_header(result.faulted, result.redundant,
                             result.controlled)
      << "\n";
  CsvWriter writer(out);
  for (const ScenarioCell& c : result.cells) {
    const SimResult& sim = c.report.sim;
    std::vector<std::string> fields = {
        result.scenario,
        c.policy,
        c.workload,
        full(c.load),
        std::to_string(c.seed),
        full(c.epoch_s),
        std::to_string(c.disks),
        full(c.report.array_afr),
        full(sim.energy_joules()),
        full(sim.mean_response_time_s() * 1e3),
        full(sim.response_time_sample.quantile(0.95) * 1e3),
        std::to_string(sim.total_transitions),
        full(sim.max_transitions_per_day),
        std::to_string(sim.migrations),
        full(static_cast<double>(sim.migration_bytes) / 1e6)};
    if (result.faulted) {
      // value_or keeps the schema fixed even if a cell somehow lacks the
      // fault payload (all-zero metrics, same as a rate_scale-0 cell).
      const ScenarioFaultCell f = c.fault.value_or(ScenarioFaultCell{});
      fields.insert(fields.end(),
                    {full(f.rate_scale), full(f.injected_afr),
                     std::to_string(f.failures), std::to_string(f.lost_requests),
                     std::to_string(f.degraded_requests), full(f.downtime_s),
                     full(f.degraded_window_s), full(f.mean_recovery_s),
                     full(f.observed_afr), full(f.press_over_injected),
                     full(f.press_over_observed)});
    }
    if (result.redundant) {
      const ScenarioRedundancyCell r =
          c.redundancy.value_or(ScenarioRedundancyCell{});
      fields.insert(fields.end(),
                    {r.scheme, std::to_string(r.reconstructed_requests),
                     std::to_string(r.data_loss_events),
                     std::to_string(r.rebuilds_started),
                     std::to_string(r.rebuilds_completed),
                     full(r.mean_rebuild_s), full(r.predicted_mttdl_hours),
                     full(r.predicted_losses_per_year),
                     full(r.observed_losses_per_year),
                     full(r.observed_over_predicted)});
    }
    if (result.controlled) {
      const ScenarioControlCell k = c.control.value_or(ScenarioControlCell{});
      fields.insert(fields.end(),
                    {std::to_string(k.updates), std::to_string(k.shed_requests),
                     std::to_string(k.h_scaled), std::to_string(k.hot_grows),
                     std::to_string(k.hot_shrinks),
                     std::to_string(k.epoch_scaled)});
    }
    writer.write_row(fields);
  }
}

void write_scenario_csv_file(const ScenarioResult& result,
                             const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_scenario_csv_file: cannot open " + path);
  }
  write_scenario_csv(result, out);
  if (!out) {
    throw std::runtime_error("write_scenario_csv_file: write failed " + path);
  }
}

void write_scenario_json(const ScenarioResult& result, std::ostream& out,
                         bool include_reports) {
  // Floats are pre-formatted by full(); the classic locale keeps the
  // integer fields free of grouping separators under any global locale.
  out.imbue(std::locale::classic());
  out << "{\"scenario\":\"" << json_escape(result.scenario)
      << "\",\"cells\":[";
  bool first = true;
  for (const ScenarioCell& c : result.cells) {
    if (!first) out << ",";
    first = false;
    const SimResult& sim = c.report.sim;
    out << "{\"policy\":\"" << json_escape(c.policy) << "\",\"workload\":\""
        << json_escape(c.workload) << "\",\"load\":" << full(c.load)
        << ",\"seed\":" << c.seed << ",\"epoch_s\":" << full(c.epoch_s)
        << ",\"disks\":" << c.disks
        << ",\"array_afr\":" << full(c.report.array_afr)
        << ",\"energy_joules\":" << full(sim.energy_joules())
        << ",\"mean_response_time_s\":" << full(sim.mean_response_time_s())
        << ",\"total_transitions\":" << sim.total_transitions
        << ",\"max_transitions_per_day\":" << full(sim.max_transitions_per_day)
        << ",\"migrations\":" << sim.migrations;
    if (c.fault) {
      const ScenarioFaultCell& f = *c.fault;
      out << ",\"fault\":{\"rate_scale\":" << full(f.rate_scale)
          << ",\"injected_afr\":" << full(f.injected_afr)
          << ",\"failures\":" << f.failures << ",\"lost\":" << f.lost_requests
          << ",\"degraded\":" << f.degraded_requests
          << ",\"downtime_s\":" << full(f.downtime_s)
          << ",\"degraded_window_s\":" << full(f.degraded_window_s)
          << ",\"mean_recovery_s\":" << full(f.mean_recovery_s)
          << ",\"observed_afr\":" << full(f.observed_afr)
          << ",\"press_over_injected\":" << full(f.press_over_injected)
          << ",\"press_over_observed\":" << full(f.press_over_observed) << "}";
    }
    if (c.redundancy) {
      const ScenarioRedundancyCell& r = *c.redundancy;
      out << ",\"redundancy\":{\"scheme\":\"" << json_escape(r.scheme)
          << "\",\"reconstructed\":" << r.reconstructed_requests
          << ",\"data_loss_events\":" << r.data_loss_events
          << ",\"rebuilds_started\":" << r.rebuilds_started
          << ",\"rebuilds_completed\":" << r.rebuilds_completed
          << ",\"mean_rebuild_s\":" << full(r.mean_rebuild_s)
          << ",\"mttdl_hours\":" << full(r.predicted_mttdl_hours)
          << ",\"predicted_losses_per_year\":"
          << full(r.predicted_losses_per_year)
          << ",\"observed_losses_per_year\":"
          << full(r.observed_losses_per_year)
          << ",\"loss_over_predicted\":" << full(r.observed_over_predicted)
          << "}";
    }
    if (c.control) {
      const ScenarioControlCell& k = *c.control;
      out << ",\"control\":{\"updates\":" << k.updates
          << ",\"shed\":" << k.shed_requests << ",\"h_scaled\":" << k.h_scaled
          << ",\"hot_grows\":" << k.hot_grows
          << ",\"hot_shrinks\":" << k.hot_shrinks
          << ",\"epoch_scaled\":" << k.epoch_scaled << "}";
    }
    if (include_reports) {
      // pr::to_json emits a complete JSON object (plus a trailing
      // newline, stripped here) — splice it in verbatim.
      std::string report = pr::to_json(c.report);
      while (!report.empty() && report.back() == '\n') report.pop_back();
      out << ",\"report\":" << report;
    }
    out << "}";
  }
  out << "]}\n";
}

void write_scenario_json_file(const ScenarioResult& result,
                              const std::string& path, bool include_reports) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_scenario_json_file: cannot open " + path);
  }
  write_scenario_json(result, out, include_reports);
  if (!out) {
    throw std::runtime_error("write_scenario_json_file: write failed " + path);
  }
}

std::string to_json(const ScenarioResult& result, bool include_reports) {
  std::ostringstream out;
  write_scenario_json(result, out, include_reports);
  return out.str();
}

}  // namespace pr
