#include "exp/scenario_engine.h"

#include <cmath>
#include <memory>
#include <utility>

#include "core/registry.h"
#include "core/session.h"
#include "disk/geometry.h"
#include "fault/degradation_analyzer.h"
#include "fault/fault_plan.h"
#include "press/afr_agreement.h"
#include "press/mttdl_agreement.h"
#include "sim/fleet_sim.h"
#include "trace/stream_reader.h"
#include "trace/trace_reader.h"
#include "trace/trace_stats.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace pr {

namespace {

/// One generated (workload, load, seed) variant, shared by every
/// policy/epoch/disks cell that references it.
struct WorkloadVariant {
  std::size_t workload_idx = 0;
  double load = 1.0;
  std::uint64_t seed = 0;
  FileSet files;
  /// Materialized requests; empty for kind == "source" (cells re-open the
  /// stream instead).
  Trace trace;
  /// Last arrival (fault-plan horizon) — measured during the stats pass
  /// for streaming workloads, so it is valid even when `trace` is empty.
  Seconds horizon{0.0};
  /// Fleet mode only: the resolved synthetic config (files/trace stay
  /// empty — every shard synthesizes its own stream from this template).
  SyntheticWorkloadConfig synth;
};

StreamReaderOptions stream_options(const ScenarioWorkload& w) {
  StreamReaderOptions options;
  if (w.buffer) options.buffer_bytes = *w.buffer;
  return options;
}

struct VariantKey {
  std::size_t workload_idx;
  double load;       // 0 = preset default (resolved during generation)
  bool has_load;
  std::uint64_t seed;
};

/// SplitMix64 finalizer — the same mixer pr::Rng uses for seeding, inlined
/// here to derive one independent plan seed per (base seed, workload seed,
/// rate-scale index, disk count) cell without any ambient entropy.
constexpr std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t mix_plan_seed(std::uint64_t base,
                                      std::uint64_t workload_seed,
                                      std::uint64_t scale_idx,
                                      std::uint64_t disks) {
  std::uint64_t s = splitmix(base);
  s = splitmix(s ^ workload_seed);
  s = splitmix(s ^ (scale_idx << 32 | disks));
  return s;
}

RedundancyConfig scenario_redundancy_config(const ScenarioSpec& spec) {
  RedundancyConfig config;
  config.kind = scenario_redundancy_kind(spec.redundancy);
  config.group = spec.redundancy.group;
  config.rebuild = spec.redundancy.rebuild;
  config.rebuild_mbps = spec.redundancy.rebuild_mbps;
  config.rebuild_chunk = static_cast<Bytes>(spec.redundancy.rebuild_chunk);
  return config;
}

/// Merge the scripted kill_disk/kill_at fail-stop events into a hazard
/// plan (from_events re-sorts, so ordering vs the drawn events is exact).
FaultPlan with_kills(FaultPlan plan, const ScenarioFault& fault) {
  if (fault.kill_disks.empty()) return plan;
  std::vector<FaultEvent> events = plan.events();
  for (std::size_t i = 0; i < fault.kill_disks.size(); ++i) {
    FaultEvent e;
    e.time = Seconds{fault.kill_at_s[i]};
    e.disk = static_cast<DiskId>(fault.kill_disks[i]);
    e.kind = FaultKind::kFail;
    events.push_back(e);
  }
  return FaultPlan::from_events(std::move(events));
}

std::uint64_t counter_of(const SimResult& sim, const char* name) {
  const auto it = sim.counters.find(name);
  return it == sim.counters.end() ? 0 : it->second;
}

/// Fold the run's redundancy counters plus the MTTDL loop closure into a
/// ScenarioRedundancyCell. `arrays` × `horizon` is the per-array exposure
/// (fleet cells pass shards / the shard horizon); rates are normalized per
/// protection domain — each RAID-5 group, or the whole array under
/// declustered parity where any two overlapping failures collide.
ScenarioRedundancyCell score_redundancy_cell(const ScenarioSpec& spec,
                                             const SimResult& sim,
                                             double injected_afr,
                                             std::size_t array_disks,
                                             std::size_t arrays,
                                             Seconds horizon) {
  ScenarioRedundancyCell r;
  r.scheme = spec.redundancy.scheme;
  r.reconstructed_requests = counter_of(sim, "sim.requests_reconstructed");
  r.data_loss_events = counter_of(sim, "redundancy.data_loss_events");
  r.rebuilds_started = counter_of(sim, "redundancy.rebuilds_started");
  r.rebuilds_completed = counter_of(sim, "redundancy.rebuilds_completed");
  r.mean_rebuild_s =
      static_cast<double>(counter_of(sim, "redundancy.mean_rebuild_ms")) / 1e3;

  const RedundancyKind kind = scenario_redundancy_kind(spec.redundancy);
  const std::size_t group =
      spec.redundancy.group == 0 ? array_disks : spec.redundancy.group;
  MttdlInputs inputs;
  inputs.mttr = Seconds{spec.fault.mttr_s};
  inputs.disk_afr = injected_afr;
  std::size_t domains_per_array = 1;
  if (kind == RedundancyKind::kRaid5) {
    inputs.disks = group;
    domains_per_array = array_disks / group;
  } else {
    inputs.disks = array_disks;  // declustered: one whole-array domain
  }
  const MttdlAgreement agreement = score_mttdl_agreement(
      RaidLevel::kRaid5, inputs, r.data_loss_events,
      arrays * domains_per_array, horizon);
  r.predicted_mttdl_hours = agreement.predicted_mttdl_hours;
  r.predicted_losses_per_year = agreement.predicted_losses_per_year;
  r.observed_losses_per_year = agreement.observed_losses_per_year;
  r.observed_over_predicted = agreement.observed_over_predicted;
  return r;
}

/// One `[fleet]` cell: shards × [system]-disks arrays merged into a single
/// scored report (sim/fleet_sim.h). Composes with [fault] by giving every
/// shard an independent hazard plan derived from the cell's plan seed, and
/// a private DegradationAnalyzer whose metrics fold in shard order.
void run_fleet_cell(const ScenarioSpec& spec, const WorkloadVariant& variant,
                    const PolicyFactory& factory, double epoch_s,
                    std::size_t disks, std::size_t scale_idx,
                    ScenarioCell& cell) {
  SystemConfig config;
  config.sim.disk_count = disks;
  config.sim.epoch = Seconds{epoch_s};
  if (spec.positioned) config.sim.seek_curve = cheetah_seek_curve();
  if (spec.redundancy.enabled) {
    config.sim.redundancy = scenario_redundancy_config(spec);
  }

  FleetConfig fleet;
  fleet.shard = config.sim;
  fleet.shards = spec.fleet.shards;
  fleet.threads = spec.fleet.threads;
  fleet.workload = variant.synth;
  fleet.base_seed = variant.seed;
  fleet.policy = factory;
  cell.disks =
      fleet_disk_count(fleet.shards, static_cast<std::uint32_t>(disks));

  std::vector<std::unique_ptr<DegradationAnalyzer>> analyzers;
  std::function<FaultPlan(std::uint32_t)> make_plan;
  double rate_scale = 0.0;
  Seconds shard_horizon{0.0};
  if (spec.fault.enabled) {
    rate_scale = spec.fault.rate_scales[scale_idx];
    // Hazard plans need a horizon before any shard synthesizes a request;
    // use the expected arrival span of the widest shard (shard 0 carries
    // any remainder request).
    const SyntheticWorkloadConfig shard0 = fleet_shard_workload(fleet, 0);
    shard_horizon = Seconds{shard0.mean_interarrival.value() /
                            shard0.load_factor *
                            static_cast<double>(shard0.request_count)};
    const std::uint64_t cell_seed =
        mix_plan_seed(spec.fault.seed, variant.seed, scale_idx, disks);
    const double afr = spec.fault.afr;
    const Seconds mttr{spec.fault.mttr_s};
    const ScenarioFault fault_spec = spec.fault;
    make_plan = [=](std::uint32_t shard) {
      FaultHazard hazard;
      hazard.seed = fleet_shard_seed(cell_seed, shard);
      hazard.afr = afr;
      hazard.rate_scale = rate_scale;
      hazard.mttr = mttr;
      hazard.horizon = shard_horizon;
      // Scripted kills strike every shard identically (each shard is an
      // independent array experiencing the same operator script).
      return with_kills(FaultPlan::from_hazard(hazard, disks), fault_spec);
    };
    fleet.shard_faults = make_plan;
    analyzers.resize(fleet.shards);
    for (auto& a : analyzers) a = std::make_unique<DegradationAnalyzer>();
    fleet.shard_observer = [&analyzers](std::uint32_t shard) {
      // ObserverList forwards to the caller-owned analyzer, which outlives
      // the shard run so its metrics can fold after the fleet completes.
      auto list = std::make_unique<ObserverList>();
      list->add(*analyzers[shard]);
      return list;
    };
  }

  FleetResult run = run_fleet(fleet);
  cell.report = score(PressModel{config.press}, std::move(run.merged));

  if (spec.fault.enabled) {
    ScenarioFaultCell fault;
    fault.rate_scale = rate_scale;
    fault.injected_afr = spec.fault.afr * rate_scale;
    Seconds downtime{0.0};
    Seconds degraded_window{0.0};
    Seconds recovery_sum{0.0};
    Seconds recovery_max{0.0};
    Seconds rebuild_sum{0.0};
    Seconds rebuild_max{0.0};
    std::uint64_t recoveries = 0;
    std::uint64_t rebuilds_completed = 0;
    bool any_faults = false;
    for (std::uint32_t s = 0; s < fleet.shards; ++s) {
      const DegradationAnalyzer& a = *analyzers[s];
      fault.failures += a.failures();
      fault.lost_requests += a.lost_requests();
      fault.degraded_requests += a.redirected_requests() + a.slowed_requests();
      downtime += a.total_downtime();
      // Shards are independent arrays, so the fleet "window" is the sum of
      // per-array degraded windows (a wall-clock union across rooms would
      // be meaningless).
      degraded_window += a.degraded_window();
      recoveries += a.recoveries();
      recovery_sum += Seconds{a.mean_recovery_time().value() *
                              static_cast<double>(a.recoveries())};
      recovery_max = std::max(recovery_max, a.max_recovery_time());
      rebuilds_completed += a.rebuilds_completed();
      rebuild_sum += Seconds{a.mean_rebuild_time().value() *
                             static_cast<double>(a.rebuilds_completed())};
      rebuild_max = std::max(rebuild_max, a.max_rebuild_time());
      if (!any_faults && !make_plan(s).empty()) any_faults = true;
    }
    fault.downtime_s = downtime.value();
    fault.degraded_window_s = degraded_window.value();
    const Seconds mean_recovery =
        recoveries == 0
            ? Seconds{0.0}
            : Seconds{recovery_sum.value() / static_cast<double>(recoveries)};
    fault.mean_recovery_s = mean_recovery.value();
    // Same counter names and ms rounding DegradationAnalyzer::merge_into
    // uses, written once with the fleet-level aggregates; rate-scale-0
    // cells (all plans empty) stay byte-identical to fault-free runs.
    if (any_faults) {
      const auto ms = [](Seconds t) {
        return static_cast<std::uint64_t>(std::llround(t.value() * 1e3));
      };
      auto& counters = cell.report.sim.counters;
      counters["fault.downtime_ms"] += ms(downtime);
      counters["fault.degraded_window_ms"] += ms(degraded_window);
      counters["fault.mean_recovery_ms"] += ms(mean_recovery);
      counters["fault.max_recovery_ms"] += ms(recovery_max);
      if (rebuilds_completed > 0) {
        const Seconds mean_rebuild{rebuild_sum.value() /
                                   static_cast<double>(rebuilds_completed)};
        counters["redundancy.mean_rebuild_ms"] += ms(mean_rebuild);
        counters["redundancy.max_rebuild_ms"] += ms(rebuild_max);
      }
    }
    const AfrAgreement agreement = score_afr_agreement(
        cell.report.array_afr, fault.injected_afr, fault.failures,
        cell.disks, shard_horizon);
    fault.observed_afr = agreement.observed_afr;
    fault.press_over_injected = agreement.predicted_over_injected;
    fault.press_over_observed = agreement.predicted_over_observed;
    cell.fault = fault;
  }
  if (spec.redundancy.enabled) {
    cell.redundancy =
        score_redundancy_cell(spec, cell.report.sim, spec.fault.afr * rate_scale,
                              disks, fleet.shards, shard_horizon);
  }
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  validate_scenario(spec);

  // Default workload when the spec names none: the paper's light day.
  std::vector<ScenarioWorkload> workloads = spec.workloads;
  if (workloads.empty()) workloads.push_back(ScenarioWorkload{});

  // ---- expand the (workload, load, seed) axis -----------------------
  std::vector<VariantKey> variant_keys;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const ScenarioWorkload& w = workloads[wi];
    if (w.kind == "trace" || w.kind == "source") {
      // A fixed trace has no load/seed degrees of freedom.
      variant_keys.push_back({wi, 1.0, false, 0});
      continue;
    }
    if (w.loads.empty()) {
      for (const std::uint64_t seed : spec.seeds) {
        variant_keys.push_back({wi, 0.0, false, seed});
      }
    } else {
      for (const double load : w.loads) {
        for (const std::uint64_t seed : spec.seeds) {
          variant_keys.push_back({wi, load, true, seed});
        }
      }
    }
  }

  ThreadPool pool(spec.threads);

  // ---- generate every variant (indexed writes keep this deterministic
  // regardless of completion order) -----------------------------------
  std::vector<WorkloadVariant> variants(variant_keys.size());
  pool.parallel_for(variant_keys.size(), [&](std::size_t i) {
    const VariantKey& key = variant_keys[i];
    const ScenarioWorkload& w = workloads[key.workload_idx];
    WorkloadVariant v;
    v.workload_idx = key.workload_idx;
    v.seed = key.seed;
    if (w.kind == "trace") {
      v.trace = trace::open_trace(w.path);
      v.files = FileSet::from_trace_stats(compute_trace_stats(v.trace));
      v.load = 1.0;
      v.horizon = v.trace.empty() ? Seconds{0.0}
                                  : v.trace.requests.back().arrival;
    } else if (w.kind == "source") {
      // Streaming stats pass: measure the file universe and the fault
      // horizon without ever materializing the trace.
      auto probe = trace::open(w.path, stream_options(w));
      TraceStatsAccumulator stats;
      Request r;
      while (probe->next(r)) stats.add(r);
      v.files = FileSet::from_trace_stats(stats.finalize());
      v.load = 1.0;
      v.horizon = stats.last_arrival();
    } else {
      SyntheticWorkloadConfig config = preset_workload_config(w.preset, key.seed);
      if (w.files) config.file_count = *w.files;
      if (w.requests) config.request_count = *w.requests;
      if (w.zipf_alpha) config.zipf_alpha = *w.zipf_alpha;
      if (w.burstiness) config.burstiness = *w.burstiness;
      if (w.diurnal_depth) config.diurnal_depth = *w.diurnal_depth;
      if (key.has_load) config.load_factor = key.load;
      v.load = config.load_factor;
      if (spec.fleet.enabled) {
        // Fleet cells never materialize the fleet-total trace; shards
        // synthesize their slices on pull inside run_fleet.
        v.synth = config;
      } else {
        auto workload = generate_workload(config);
        v.files = std::move(workload.files);
        v.trace = std::move(workload.trace);
        v.horizon = v.trace.empty() ? Seconds{0.0}
                                    : v.trace.requests.back().arrival;
      }
    }
    variants[i] = std::move(v);
  });

  // ---- resolve policy factories once (validates names + params before
  // any simulation time is spent) --------------------------------------
  std::vector<PolicyFactory> factories;
  factories.reserve(spec.policies.size());
  for (const ScenarioPolicy& p : spec.policies) {
    factories.push_back(policies::make(p.name, p.params));
  }

  // ---- enumerate cells in spec order: policy-major, then workload/
  // load/seed (variant order), then epoch, then disks, then fault rate
  // scale (a degenerate single-pass axis when no [fault] section) -------
  const std::size_t scale_count =
      spec.fault.enabled ? spec.fault.rate_scales.size() : 1;
  struct CellSpec {
    std::size_t policy_idx;
    std::size_t variant_idx;
    double epoch_s;
    std::size_t disks;
    std::size_t scale_idx;
  };
  std::vector<CellSpec> cell_specs;
  cell_specs.reserve(spec.policies.size() * variants.size() *
                     spec.epochs.size() * spec.disks.size() * scale_count);
  for (std::size_t pi = 0; pi < spec.policies.size(); ++pi) {
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      for (const double epoch_s : spec.epochs) {
        for (const std::size_t disks : spec.disks) {
          for (std::size_t si = 0; si < scale_count; ++si) {
            cell_specs.push_back({pi, vi, epoch_s, disks, si});
          }
        }
      }
    }
  }

  ScenarioResult result;
  result.scenario = spec.name;
  result.faulted = spec.fault.enabled;
  result.redundant = spec.redundancy.enabled;
  result.controlled = spec.control.enabled;
  result.cells.resize(cell_specs.size());
  pool.parallel_for(cell_specs.size(), [&](std::size_t i) {
    const CellSpec& cs = cell_specs[i];
    const WorkloadVariant& variant = variants[cs.variant_idx];
    const ScenarioWorkload& workload_spec = workloads[variant.workload_idx];
    const ScenarioPolicy& policy_spec = spec.policies[cs.policy_idx];
    const bool streamed = workload_spec.kind == "source";

    SystemConfig config;
    config.sim.disk_count = cs.disks;
    config.sim.epoch = Seconds{cs.epoch_s};
    if (spec.positioned) config.sim.seek_curve = cheetah_seek_curve();
    if (spec.redundancy.enabled) {
      config.sim.redundancy = scenario_redundancy_config(spec);
    }
    if (spec.control.enabled) {
      config.sim.control = spec.control.config;
      config.sim.control.enabled = true;
    }

    auto policy = factories[cs.policy_idx]();
    ScenarioCell cell;
    cell.policy =
        policy_spec.label.empty() ? policy_spec.name : policy_spec.label;
    cell.workload = workloads[variant.workload_idx].name;
    cell.load = variant.load;
    cell.seed = variant.seed;
    cell.epoch_s = cs.epoch_s;
    cell.disks = cs.disks;
    if (spec.fleet.enabled) {
      run_fleet_cell(spec, variant, factories[cs.policy_idx], cs.epoch_s,
                     cs.disks, cs.scale_idx, cell);
      result.cells[i] = std::move(cell);
      return;
    }
    // Streaming workloads re-open the source for each cell; sources are
    // single-pass, so a shared one could not serve the whole grid.
    std::unique_ptr<RequestSource> cell_source;
    SimulationSession session(config);
    if (streamed) {
      cell_source = trace::open(workload_spec.path,
                                stream_options(workload_spec));
      session.with_source(variant.files, *cell_source);
    } else {
      session.with_workload(variant.files, variant.trace);
    }
    if (!spec.fault.enabled) {
      cell.report = session.with_policy(*policy).run();
    } else {
      // Each cell gets its own deterministic hazard plan over the trace's
      // arrival span; a 0 rate scale yields the empty plan, which is
      // byte-identical to the fault-free path.
      const double rate_scale = spec.fault.rate_scales[cs.scale_idx];
      const Seconds horizon = variant.horizon;
      FaultHazard hazard;
      hazard.seed = mix_plan_seed(spec.fault.seed, variant.seed,
                                  cs.scale_idx, cs.disks);
      hazard.afr = spec.fault.afr;
      hazard.rate_scale = rate_scale;
      hazard.mttr = Seconds{spec.fault.mttr_s};
      hazard.horizon = horizon;
      const FaultPlan plan =
          with_kills(FaultPlan::from_hazard(hazard, cs.disks), spec.fault);

      DegradationAnalyzer analyzer;
      cell.report = session.with_policy(std::move(policy))
                        .with_observer(analyzer)
                        .with_faults(plan)
                        .run();
      // Only a non-empty plan adds the fault.* duration counters —
      // rate-scale-0 cells must stay byte-identical to fault-free runs
      // (the same rule the simulator applies to its fault counters).
      if (!plan.empty()) analyzer.merge_into(cell.report.sim);

      ScenarioFaultCell fault;
      fault.rate_scale = rate_scale;
      fault.injected_afr = spec.fault.afr * rate_scale;
      fault.failures = analyzer.failures();
      fault.lost_requests = analyzer.lost_requests();
      fault.degraded_requests =
          analyzer.redirected_requests() + analyzer.slowed_requests();
      fault.downtime_s = analyzer.total_downtime().value();
      fault.degraded_window_s = analyzer.degraded_window().value();
      fault.mean_recovery_s = analyzer.mean_recovery_time().value();
      const AfrAgreement agreement =
          score_afr_agreement(cell.report.array_afr, fault.injected_afr,
                              fault.failures, cs.disks, horizon);
      fault.observed_afr = agreement.observed_afr;
      fault.press_over_injected = agreement.predicted_over_injected;
      fault.press_over_observed = agreement.predicted_over_observed;
      cell.fault = fault;
    }
    if (spec.redundancy.enabled) {
      const double injected_afr =
          spec.fault.enabled
              ? spec.fault.afr * spec.fault.rate_scales[cs.scale_idx]
              : 0.0;
      cell.redundancy = score_redundancy_cell(
          spec, cell.report.sim, injected_afr, cs.disks, 1, variant.horizon);
    }
    if (spec.control.enabled) {
      ScenarioControlCell control;
      control.updates = counter_of(cell.report.sim, "control.updates");
      control.shed_requests =
          counter_of(cell.report.sim, "control.shed_requests");
      control.h_scaled = counter_of(cell.report.sim, "control.h_scaled");
      control.hot_grows = counter_of(cell.report.sim, "control.hot_grows");
      control.hot_shrinks =
          counter_of(cell.report.sim, "control.hot_shrinks");
      control.epoch_scaled =
          counter_of(cell.report.sim, "control.epoch_scaled");
      cell.control = control;
    }
    result.cells[i] = std::move(cell);
  });
#if PR_CONTRACTS_ENABLED
  // Every cell slot must have been filled by exactly the worker that owns
  // its index — an empty policy label means a task died without writing.
  for (const ScenarioCell& c : result.cells) {
    PR_INVARIANT(!c.policy.empty(),
                 "run_scenario: cell left unfilled by its worker");
  }
#endif
  return result;
}

}  // namespace pr
