#include "exp/scenario_engine.h"

#include <utility>

#include "core/registry.h"
#include "disk/geometry.h"
#include "trace/csv_trace.h"
#include "trace/trace_stats.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace pr {

namespace {

/// One generated (workload, load, seed) variant, shared by every
/// policy/epoch/disks cell that references it.
struct WorkloadVariant {
  std::size_t workload_idx = 0;
  double load = 1.0;
  std::uint64_t seed = 0;
  FileSet files;
  Trace trace;
};

struct VariantKey {
  std::size_t workload_idx;
  double load;       // 0 = preset default (resolved during generation)
  bool has_load;
  std::uint64_t seed;
};

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  validate_scenario(spec);

  // Default workload when the spec names none: the paper's light day.
  std::vector<ScenarioWorkload> workloads = spec.workloads;
  if (workloads.empty()) workloads.push_back(ScenarioWorkload{});

  // ---- expand the (workload, load, seed) axis -----------------------
  std::vector<VariantKey> variant_keys;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const ScenarioWorkload& w = workloads[wi];
    if (w.kind == "trace") {
      // A fixed trace has no load/seed degrees of freedom.
      variant_keys.push_back({wi, 1.0, false, 0});
      continue;
    }
    if (w.loads.empty()) {
      for (const std::uint64_t seed : spec.seeds) {
        variant_keys.push_back({wi, 0.0, false, seed});
      }
    } else {
      for (const double load : w.loads) {
        for (const std::uint64_t seed : spec.seeds) {
          variant_keys.push_back({wi, load, true, seed});
        }
      }
    }
  }

  ThreadPool pool(spec.threads);

  // ---- generate every variant (indexed writes keep this deterministic
  // regardless of completion order) -----------------------------------
  std::vector<WorkloadVariant> variants(variant_keys.size());
  pool.parallel_for(variant_keys.size(), [&](std::size_t i) {
    const VariantKey& key = variant_keys[i];
    const ScenarioWorkload& w = workloads[key.workload_idx];
    WorkloadVariant v;
    v.workload_idx = key.workload_idx;
    v.seed = key.seed;
    if (w.kind == "trace") {
      v.trace = read_csv_trace_file(w.path);
      v.files = FileSet::from_trace_stats(compute_trace_stats(v.trace));
      v.load = 1.0;
    } else {
      SyntheticWorkloadConfig config = preset_workload_config(w.preset, key.seed);
      if (w.files) config.file_count = *w.files;
      if (w.requests) config.request_count = *w.requests;
      if (w.zipf_alpha) config.zipf_alpha = *w.zipf_alpha;
      if (w.burstiness) config.burstiness = *w.burstiness;
      if (w.diurnal_depth) config.diurnal_depth = *w.diurnal_depth;
      if (key.has_load) config.load_factor = key.load;
      v.load = config.load_factor;
      auto workload = generate_workload(config);
      v.files = std::move(workload.files);
      v.trace = std::move(workload.trace);
    }
    variants[i] = std::move(v);
  });

  // ---- resolve policy factories once (validates names + params before
  // any simulation time is spent) --------------------------------------
  std::vector<PolicyFactory> factories;
  factories.reserve(spec.policies.size());
  for (const ScenarioPolicy& p : spec.policies) {
    factories.push_back(policies::make(p.name, p.params));
  }

  // ---- enumerate cells in spec order: policy-major, then workload/
  // load/seed (variant order), then epoch, then disks ------------------
  struct CellSpec {
    std::size_t policy_idx;
    std::size_t variant_idx;
    double epoch_s;
    std::size_t disks;
  };
  std::vector<CellSpec> cell_specs;
  cell_specs.reserve(spec.policies.size() * variants.size() *
                     spec.epochs.size() * spec.disks.size());
  for (std::size_t pi = 0; pi < spec.policies.size(); ++pi) {
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      for (const double epoch_s : spec.epochs) {
        for (const std::size_t disks : spec.disks) {
          cell_specs.push_back({pi, vi, epoch_s, disks});
        }
      }
    }
  }

  ScenarioResult result;
  result.scenario = spec.name;
  result.cells.resize(cell_specs.size());
  pool.parallel_for(cell_specs.size(), [&](std::size_t i) {
    const CellSpec& cs = cell_specs[i];
    const WorkloadVariant& variant = variants[cs.variant_idx];
    const ScenarioPolicy& policy_spec = spec.policies[cs.policy_idx];

    SystemConfig config;
    config.sim.disk_count = cs.disks;
    config.sim.epoch = Seconds{cs.epoch_s};
    if (spec.positioned) config.sim.seek_curve = cheetah_seek_curve();

    auto policy = factories[cs.policy_idx]();
    ScenarioCell cell;
    cell.policy =
        policy_spec.label.empty() ? policy_spec.name : policy_spec.label;
    cell.workload = workloads[variant.workload_idx].name;
    cell.load = variant.load;
    cell.seed = variant.seed;
    cell.epoch_s = cs.epoch_s;
    cell.disks = cs.disks;
    cell.report = evaluate(config, variant.files, variant.trace, *policy);
    result.cells[i] = std::move(cell);
  });
#if PR_CONTRACTS_ENABLED
  // Every cell slot must have been filled by exactly the worker that owns
  // its index — an empty policy label means a task died without writing.
  for (const ScenarioCell& c : result.cells) {
    PR_INVARIANT(!c.policy.empty(),
                 "run_scenario: cell left unfilled by its worker");
  }
#endif
  return result;
}

}  // namespace pr
