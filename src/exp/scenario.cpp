#include "exp/scenario.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "control/control_loop.h"
#include "core/registry.h"
#include "redundancy/scheme.h"
#include "sim/fleet_sim.h"
#include "trace/trace_reader.h"
#include "util/parse.h"

namespace pr {

namespace {

[[noreturn]] void fail_at(std::string_view source, std::size_t line,
                          const std::string& message) {
  std::ostringstream out;
  out << source << ":" << line << ": " << message;
  throw std::invalid_argument(out.str());
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strip comments: a whole-line '#'/';' or one introduced by whitespace
/// ("disks = 8   # six to sixteen").
std::string_view strip_comment(std::string_view s) {
  if (!s.empty() && (s.front() == '#' || s.front() == ';')) return {};
  for (std::size_t i = 1; i < s.size(); ++i) {
    if ((s[i] == '#' || s[i] == ';') &&
        (s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return s.substr(0, i);
    }
  }
  return s;
}

std::vector<std::string> split_list(std::string_view value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t comma = value.find(',', start);
    if (comma == std::string_view::npos) comma = value.size();
    const std::string_view item = trim(value.substr(start, comma - start));
    out.emplace_back(item);
    start = comma + 1;
  }
  return out;
}

struct LineContext {
  std::string_view source;
  std::size_t line = 0;
};

std::vector<double> parse_double_list(std::string_view value,
                                      std::string_view key,
                                      const LineContext& at) {
  std::vector<double> out;
  for (const std::string& item : split_list(value)) {
    if (item.empty()) fail_at(at.source, at.line, "empty item in list");
    out.push_back(parse_double(item, key));
  }
  return out;
}

std::vector<std::uint64_t> parse_u64_list(std::string_view value,
                                          std::string_view key,
                                          const LineContext& at) {
  std::vector<std::uint64_t> out;
  for (const std::string& item : split_list(value)) {
    if (item.empty()) fail_at(at.source, at.line, "empty item in list");
    out.push_back(parse_u64(item, key));
  }
  return out;
}

std::vector<std::size_t> parse_size_list(std::string_view value,
                                         std::string_view key,
                                         const LineContext& at) {
  std::vector<std::size_t> out;
  for (const std::string& item : split_list(value)) {
    if (item.empty()) fail_at(at.source, at.line, "empty item in list");
    out.push_back(parse_size(item, key));
  }
  return out;
}

enum class Section {
  kNone,
  kScenario,
  kSystem,
  kWorkload,
  kPolicy,
  kFault,
  kFleet,
  kRedundancy,
  kControl
};

}  // namespace

ScenarioSpec parse_scenario(std::string_view text, std::string_view source) {
  ScenarioSpec spec;
  Section section = Section::kNone;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    ++line_no;
    const LineContext at{source, line_no};
    std::string_view line = trim(strip_comment(trim(text.substr(pos, eol - pos))));
    pos = eol + 1;
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail_at(source, line_no, "unterminated section header");
      const std::string_view header = trim(line.substr(1, line.size() - 2));
      const std::size_t space = header.find_first_of(" \t");
      const std::string_view kind =
          space == std::string_view::npos ? header : header.substr(0, space);
      const std::string_view arg =
          space == std::string_view::npos ? std::string_view{}
                                          : trim(header.substr(space + 1));
      if (kind == "scenario") {
        if (!arg.empty()) fail_at(source, line_no, "[scenario] takes no name");
        section = Section::kScenario;
      } else if (kind == "system") {
        if (!arg.empty()) fail_at(source, line_no, "[system] takes no name");
        section = Section::kSystem;
      } else if (kind == "workload") {
        ScenarioWorkload w;
        if (!arg.empty()) w.name = std::string(arg);
        spec.workloads.push_back(std::move(w));
        section = Section::kWorkload;
      } else if (kind == "source") {
        // Sugar for a streaming workload: [source x] ≡ [workload x] with
        // kind = source.
        ScenarioWorkload w;
        w.kind = "source";
        if (!arg.empty()) w.name = std::string(arg);
        spec.workloads.push_back(std::move(w));
        section = Section::kWorkload;
      } else if (kind == "policy") {
        if (arg.empty()) {
          fail_at(source, line_no, "[policy] needs a registry name, e.g. [policy read]");
        }
        ScenarioPolicy p;
        p.name = std::string(arg);
        p.label = p.name;
        spec.policies.push_back(std::move(p));
        section = Section::kPolicy;
      } else if (kind == "fault") {
        if (!arg.empty()) fail_at(source, line_no, "[fault] takes no name");
        spec.fault.enabled = true;
        section = Section::kFault;
      } else if (kind == "fleet") {
        if (!arg.empty()) fail_at(source, line_no, "[fleet] takes no name");
        spec.fleet.enabled = true;
        section = Section::kFleet;
      } else if (kind == "redundancy") {
        if (!arg.empty()) {
          fail_at(source, line_no, "[redundancy] takes no name");
        }
        spec.redundancy.enabled = true;
        section = Section::kRedundancy;
      } else if (kind == "control") {
        if (!arg.empty()) fail_at(source, line_no, "[control] takes no name");
        spec.control.enabled = true;
        section = Section::kControl;
      } else {
        fail_at(source, line_no,
                "unknown section [" + std::string(kind) +
                    "]; expected scenario, system, workload, source, policy, "
                    "fault, fleet, redundancy or control");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail_at(source, line_no, "expected 'key = value'");
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty()) fail_at(source, line_no, "empty key");
    if (value.empty()) fail_at(source, line_no, "empty value for '" + key + "'");

    try {
      switch (section) {
      case Section::kNone:
        fail_at(source, line_no, "'" + key + "' before any [section]");
      case Section::kScenario:
        if (key == "name") {
          spec.name = value;
        } else if (key == "threads") {
          spec.threads = static_cast<unsigned>(parse_u64(value, key));
        } else if (key == "seeds" || key == "seed") {
          spec.seeds = parse_u64_list(value, key, at);
        } else {
          fail_at(source, line_no,
                  "unknown key '" + key + "' in [scenario]; valid: name, threads, seeds");
        }
        break;
      case Section::kSystem:
        if (key == "disks") {
          spec.disks = parse_size_list(value, key, at);
        } else if (key == "epoch") {
          spec.epochs = parse_double_list(value, key, at);
        } else if (key == "positioned") {
          spec.positioned = parse_bool(value, key);
        } else {
          fail_at(source, line_no,
                  "unknown key '" + key + "' in [system]; valid: disks, epoch, positioned");
        }
        break;
      case Section::kWorkload: {
        ScenarioWorkload& w = spec.workloads.back();
        if (key == "kind") {
          w.kind = value;
        } else if (key == "preset") {
          w.preset = value;
        } else if (key == "path" || key == "trace" || key == "spec") {
          w.path = value;
        } else if (key == "buffer") {
          w.buffer = parse_size(value, key);
        } else if (key == "files") {
          w.files = parse_size(value, key);
        } else if (key == "requests") {
          w.requests = parse_size(value, key);
        } else if (key == "zipf_alpha") {
          w.zipf_alpha = parse_double(value, key);
        } else if (key == "burstiness") {
          w.burstiness = parse_double(value, key);
        } else if (key == "diurnal_depth") {
          w.diurnal_depth = parse_double(value, key);
        } else if (key == "load") {
          w.loads = parse_double_list(value, key, at);
        } else {
          fail_at(source, line_no,
                  "unknown key '" + key +
                      "' in [workload]; valid: kind, preset, path, spec, "
                      "buffer, files, requests, zipf_alpha, burstiness, "
                      "diurnal_depth, load");
        }
        break;
      }
      case Section::kPolicy: {
        ScenarioPolicy& p = spec.policies.back();
        if (key == "label") {
          p.label = value;
        } else {
          // Every other key is a policy knob; the registry validates the
          // key set (and parses values) in validate_scenario below.
          p.params.set(key, value);
        }
        break;
      }
      case Section::kFault:
        if (key == "seed") {
          spec.fault.seed = parse_u64(value, key);
        } else if (key == "afr") {
          spec.fault.afr = parse_double(value, key);
        } else if (key == "rate_scale") {
          spec.fault.rate_scales = parse_double_list(value, key, at);
        } else if (key == "mttr") {
          spec.fault.mttr_s = parse_double(value, key);
        } else if (key == "kill_disk") {
          spec.fault.kill_disks = parse_size_list(value, key, at);
        } else if (key == "kill_at") {
          spec.fault.kill_at_s = parse_double_list(value, key, at);
        } else {
          fail_at(source, line_no,
                  "unknown key '" + key +
                      "' in [fault]; valid: seed, afr, rate_scale, mttr, "
                      "kill_disk, kill_at");
        }
        break;
      case Section::kFleet:
        if (key == "shards") {
          const std::uint64_t shards = parse_u64(value, key);
          if (shards == 0 || shards > 0xFFFFFFFFULL) {
            fail_at(source, line_no, "shards must be in [1, 2^32)");
          }
          spec.fleet.shards = static_cast<std::uint32_t>(shards);
        } else if (key == "threads") {
          spec.fleet.threads = static_cast<unsigned>(parse_u64(value, key));
        } else {
          fail_at(source, line_no,
                  "unknown key '" + key +
                      "' in [fleet]; valid: shards, threads");
        }
        break;
      case Section::kRedundancy:
        if (key == "scheme") {
          spec.redundancy.scheme = value;
        } else if (key == "group") {
          spec.redundancy.group = parse_size(value, key);
        } else if (key == "rebuild") {
          spec.redundancy.rebuild = parse_bool(value, key);
        } else if (key == "rebuild_mbps") {
          spec.redundancy.rebuild_mbps = parse_double(value, key);
        } else if (key == "rebuild_chunk") {
          spec.redundancy.rebuild_chunk = parse_size(value, key);
        } else {
          fail_at(source, line_no,
                  "unknown key '" + key +
                      "' in [redundancy]; valid: scheme, group, rebuild, "
                      "rebuild_mbps, rebuild_chunk");
        }
        break;
      case Section::kControl: {
        ControlConfig& c = spec.control.config;
        if (key == "target_rt_ms") {
          c.target_rt_ms = parse_double(value, key);
        } else if (key == "gain") {
          c.gain = parse_double(value, key);
        } else if (key == "hysteresis") {
          c.hysteresis = parse_double(value, key);
        } else if (key == "persistence") {
          c.persistence = static_cast<std::uint32_t>(parse_u64(value, key));
        } else if (key == "max_step") {
          c.max_step = parse_double(value, key);
        } else if (key == "h_min") {
          c.h_min_s = parse_double(value, key);
        } else if (key == "h_max") {
          c.h_max_s = parse_double(value, key);
        } else if (key == "energy_budget_w") {
          c.energy_budget_w = parse_double(value, key);
        } else if (key == "adapt_epoch") {
          c.adapt_epoch = parse_bool(value, key);
        } else if (key == "epoch_min") {
          c.epoch_min_s = parse_double(value, key);
        } else if (key == "epoch_max") {
          c.epoch_max_s = parse_double(value, key);
        } else if (key == "admit_window") {
          c.admit_window_s = parse_double(value, key);
        } else {
          fail_at(source, line_no,
                  "unknown key '" + key +
                      "' in [control]; valid: target_rt_ms, gain, "
                      "hysteresis, persistence, max_step, h_min, h_max, "
                      "energy_budget_w, adapt_epoch, epoch_min, epoch_max, "
                      "admit_window");
        }
        break;
      }
      }
    } catch (const std::invalid_argument& e) {
      // Add "<source>:<line>" context to bare value-parse errors
      // (util/parse.h); fail_at messages already carry it.
      std::string prefix(source);
      prefix += ':';
      if (std::string_view(e.what()).rfind(prefix, 0) == 0) throw;
      fail_at(source, line_no, e.what());
    }
  }
  try {
    validate_scenario(spec);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(source) + ": " + e.what());
  }
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_scenario_file: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario(buffer.str(), path);
}

void validate_scenario(const ScenarioSpec& spec) {
  if (spec.policies.empty()) {
    throw std::invalid_argument("scenario '" + spec.name + "': no [policy] sections");
  }
  if (spec.seeds.empty()) {
    throw std::invalid_argument("scenario '" + spec.name + "': empty seeds axis");
  }
  if (spec.disks.empty()) {
    throw std::invalid_argument("scenario '" + spec.name + "': empty disks axis");
  }
  if (spec.epochs.empty()) {
    throw std::invalid_argument("scenario '" + spec.name + "': empty epoch axis");
  }
  for (const std::size_t n : spec.disks) {
    if (n == 0) {
      throw std::invalid_argument("scenario '" + spec.name + "': disks must be > 0");
    }
  }
  for (const double e : spec.epochs) {
    if (!(e > 0.0)) {
      throw std::invalid_argument("scenario '" + spec.name + "': epoch must be > 0");
    }
  }
  for (const ScenarioPolicy& p : spec.policies) {
    // Throws with the registry's own message for unknown names/keys and
    // malformed values.
    (void)policies::make(p.name, p.params);
  }
  for (const ScenarioWorkload& w : spec.workloads) {
    if (w.kind == "synthetic") {
      (void)preset_workload_config(w.preset, 0);
    } else if (w.kind == "trace" || w.kind == "source") {
      if (w.path.empty()) {
        throw std::invalid_argument("workload '" + w.name + "': kind = " +
                                    w.kind + " needs spec = [format:]path");
      }
      trace::ResolvedSpec resolved;
      try {
        resolved = trace::resolve_spec(w.path);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("workload '" + w.name + "': " + e.what());
      }
      if (w.kind == "source" && resolved.path == "-") {
        // Cells re-open the source once per run; stdin is single-pass.
        throw std::invalid_argument("workload '" + w.name +
                                    "': kind = source cannot stream stdin");
      }
      if (w.buffer && *w.buffer == 0) {
        throw std::invalid_argument("workload '" + w.name +
                                    "': buffer must be > 0");
      }
    } else {
      throw std::invalid_argument("workload '" + w.name + "': unknown kind '" +
                                  w.kind + "'; valid: synthetic, trace, source");
    }
    for (const double l : w.loads) {
      if (!(l > 0.0)) {
        throw std::invalid_argument("workload '" + w.name + "': load must be > 0");
      }
    }
  }
  if (spec.fleet.enabled) {
    if (spec.fleet.shards == 0) {
      throw std::invalid_argument("scenario '" + spec.name +
                                  "': fleet shards must be > 0");
    }
    for (const ScenarioWorkload& w : spec.workloads) {
      if (w.kind != "synthetic") {
        throw std::invalid_argument(
            "scenario '" + spec.name + "': [fleet] needs synthetic " +
            "workloads (each shard derives its own stream); workload '" +
            w.name + "' is kind = " + w.kind);
      }
    }
    for (const std::size_t disks : spec.disks) {
      if (disks > 0xFFFFFFFFULL) {
        throw std::invalid_argument("scenario '" + spec.name +
                                    "': fleet disks exceed the 32-bit id "
                                    "space");
      }
      // Throws std::invalid_argument on geometry overflow.
      (void)fleet_disk_count(spec.fleet.shards,
                             static_cast<std::uint32_t>(disks));
    }
  }
  if (spec.fault.enabled) {
    if (!(spec.fault.afr >= 0.0)) {
      throw std::invalid_argument("scenario '" + spec.name +
                                  "': fault afr must be >= 0");
    }
    if (spec.fault.rate_scales.empty()) {
      throw std::invalid_argument("scenario '" + spec.name +
                                  "': empty fault rate_scale axis");
    }
    for (const double s : spec.fault.rate_scales) {
      if (!(s >= 0.0)) {
        throw std::invalid_argument("scenario '" + spec.name +
                                    "': fault rate_scale must be >= 0");
      }
    }
    if (!(spec.fault.mttr_s > 0.0)) {
      throw std::invalid_argument("scenario '" + spec.name +
                                  "': fault mttr must be > 0");
    }
    if (spec.fault.kill_disks.size() != spec.fault.kill_at_s.size()) {
      throw std::invalid_argument(
          "scenario '" + spec.name +
          "': kill_disk and kill_at must be paired lists of equal length");
    }
    for (const double t : spec.fault.kill_at_s) {
      if (!(t >= 0.0)) {
        throw std::invalid_argument("scenario '" + spec.name +
                                    "': kill_at must be >= 0");
      }
    }
    for (const std::size_t d : spec.fault.kill_disks) {
      for (const std::size_t disks : spec.disks) {
        if (d >= disks) {
          throw std::invalid_argument(
              "scenario '" + spec.name + "': kill_disk " + std::to_string(d) +
              " out of range for a " + std::to_string(disks) + "-disk array");
        }
      }
    }
  }
  if (spec.control.enabled) {
    if (spec.fleet.enabled) {
      // Scope cut, not an oversight: fleet shards are independent arrays
      // with no shared telemetry window, so one controller would couple
      // them; a per-shard loop is future work.
      throw std::invalid_argument("scenario '" + spec.name +
                                  "': [control] does not compose with "
                                  "[fleet]");
    }
    ControlConfig config = spec.control.config;
    config.enabled = true;
    try {
      // ControlLoop's constructor owns the knob validation; a bad
      // [control] section fails here, before any cell runs.
      (void)ControlLoop(config);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("scenario '" + spec.name +
                                  "': [control] " + e.what());
    }
  }
  if (spec.redundancy.enabled) {
    // scenario_redundancy_kind throws for unknown scheme names;
    // validate_redundancy checks the geometry against every disks-axis
    // value (raid5 wants disks divisible by group, etc.).
    const RedundancyKind kind = scenario_redundancy_kind(spec.redundancy);
    RedundancyConfig config;
    config.kind = kind;
    config.group = spec.redundancy.group;
    config.rebuild = spec.redundancy.rebuild;
    config.rebuild_mbps = spec.redundancy.rebuild_mbps;
    config.rebuild_chunk = static_cast<Bytes>(spec.redundancy.rebuild_chunk);
    for (const std::size_t disks : spec.disks) {
      try {
        validate_redundancy(config, disks);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("scenario '" + spec.name +
                                    "': [redundancy] " + e.what());
      }
    }
  }
}

RedundancyKind scenario_redundancy_kind(const ScenarioRedundancy& r) {
  if (r.scheme == "raid5") return RedundancyKind::kRaid5;
  if (r.scheme == "declustered") return RedundancyKind::kDeclustered;
  throw std::invalid_argument("unknown redundancy scheme '" + r.scheme +
                              "'; valid: raid5, declustered");
}

std::vector<std::string> workload_presets() {
  return {"wc98-light", "wc98-heavy", "proxy", "ftp", "email"};
}

SyntheticWorkloadConfig preset_workload_config(std::string_view preset,
                                               std::uint64_t seed) {
  if (preset == "wc98-light") return worldcup98_light_config(seed);
  if (preset == "wc98-heavy") return worldcup98_heavy_config(seed);
  if (preset == "proxy") return proxy_server_config(seed);
  if (preset == "ftp") return ftp_mirror_config(seed);
  if (preset == "email") return email_server_config(seed);
  std::string message = "unknown workload preset '";
  message += preset;
  message += "'; valid:";
  for (const std::string& name : workload_presets()) {
    message += ' ';
    message += name;
  }
  throw std::invalid_argument(message);
}

}  // namespace pr
