// event_queue.h — deterministic timed event queue for the discrete-event
// engine. A plain binary heap keyed on (time, sequence): the sequence
// number guarantees FIFO order among simultaneous events, so runs are
// bit-reproducible regardless of heap implementation details.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "util/units.h"

namespace pr {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Seconds time{};
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(Seconds time, Payload payload) {
    heap_.push(Event{time, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest event time (undefined when empty — check empty() first).
  [[nodiscard]] Seconds next_time() const { return heap_.top().time; }

  /// Remove and return the earliest event. The payload is moved out, not
  /// copied: top() is const-qualified only to protect the heap invariant,
  /// and the element is destroyed by the immediately following pop(), so
  /// casting away const to move from it is safe (the moved-from husk never
  /// participates in another comparison).
  Event pop() {
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pr
