// event_queue.h — deterministic timed event queue for the discrete-event
// engine. A plain binary heap keyed on (time, sequence): the sequence
// number guarantees FIFO order among simultaneous events, so runs are
// bit-reproducible regardless of heap implementation details.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "util/contracts.h"
#include "util/units.h"

namespace pr {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Seconds time{};
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(Seconds time, Payload payload) {
    PR_PRECONDITION(!(time < last_popped_time()),
                    "EventQueue::push: scheduling before an already-popped "
                    "instant breaks drain monotonicity");
    heap_.push(Event{time, next_seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest event time (undefined when empty — check empty() first).
  [[nodiscard]] Seconds next_time() const {
    PR_PRECONDITION(!empty(), "EventQueue::next_time: queue is empty");
    return heap_.top().time;
  }

  /// Remove and return the earliest event. The payload is moved out, not
  /// copied: top() is const-qualified only to protect the heap invariant,
  /// and the element is destroyed by the immediately following pop(), so
  /// casting away const to move from it is safe (the moved-from husk never
  /// participates in another comparison).
  Event pop() {
    PR_PRECONDITION(!empty(), "EventQueue::pop: queue is empty");
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    PR_INVARIANT(!(e.time < last_popped_time()),
                 "EventQueue::pop: event time went backwards");
#if PR_CONTRACTS_ENABLED
    last_popped_ = e.time;
#endif
    return e;
  }

 private:
  /// Time of the most recent pop; -inf before the first one. Tracked only
  /// while contracts are compiled in (Release layout is unchanged).
  [[nodiscard]] Seconds last_popped_time() const {
#if PR_CONTRACTS_ENABLED
    return last_popped_;
#else
    return Seconds{-std::numeric_limits<double>::infinity()};
#endif
  }

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
#if PR_CONTRACTS_ENABLED
  Seconds last_popped_{-std::numeric_limits<double>::infinity()};
#endif
};

}  // namespace pr
