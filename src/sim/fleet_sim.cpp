#include "sim/fleet_sim.h"

#include <algorithm>
#include <limits>
#include <locale>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/contracts.h"
#include "util/fmt.h"
#include "util/thread_pool.h"

namespace pr {

namespace {

/// Fold one shard's result into the fleet accumulator. Strictly
/// sequential in shard order — Welford merges and the reservoir fold are
/// order-sensitive, and shard order is the byte contract.
void fold_shard(SimResult& fleet, const SimResult& shard) {
  fleet.response_time.merge(shard.response_time);
  fleet.response_time_sample.merge(shard.response_time_sample);
  fleet.total_energy += shard.total_energy;
  fleet.horizon = std::max(fleet.horizon, shard.horizon);
  fleet.user_requests += shard.user_requests;
  fleet.migrations += shard.migrations;
  fleet.migration_bytes += shard.migration_bytes;
  fleet.total_transitions += shard.total_transitions;
  fleet.max_transitions_per_day =
      std::max(fleet.max_transitions_per_day, shard.max_transitions_per_day);
  fleet.ledgers.insert(fleet.ledgers.end(), shard.ledgers.begin(),
                       shard.ledgers.end());
  fleet.telemetry.insert(fleet.telemetry.end(), shard.telemetry.begin(),
                         shard.telemetry.end());
  for (const auto& [name, value] : shard.counters) {
    fleet.counters[name] += value;
  }
}

void validate_fleet(const FleetConfig& config) {
  if (config.shard.disk_count >
      std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("run_fleet: disks_per_shard exceeds DiskId");
  }
  // Throws on zero factors / DiskId overflow.
  (void)fleet_disk_count(config.shards,
                         static_cast<std::uint32_t>(config.shard.disk_count));
  if (!config.policy) {
    throw std::logic_error("run_fleet: no policy factory configured");
  }
}

SimResult run_shard(const FleetConfig& config, std::uint32_t shard,
                    const SyntheticWorkload* materialized) {
  auto policy = config.policy();
  FaultPlan plan;
  const FaultPlan* faults = nullptr;
  if (config.shard_faults) {
    plan = config.shard_faults(shard);
    faults = &plan;
  }
  std::unique_ptr<SimObserver> observer;
  if (config.shard_observer) observer = config.shard_observer(shard);
  if (materialized != nullptr) {
    return run_simulation(config.shard, materialized->files,
                          materialized->trace, *policy, observer.get(),
                          faults);
  }
  SyntheticSource source(fleet_shard_workload(config, shard));
  return run_simulation(config.shard, source.files(), source, *policy,
                        observer.get(), faults);
}

FleetResult merge_results(const FleetConfig& config,
                          std::vector<SimResult>&& results) {
  FleetResult fleet;
  fleet.shard_count = config.shards;
  fleet.disks_per_shard = static_cast<std::uint32_t>(config.shard.disk_count);
  fleet.shards = std::move(results);
  fleet.merged.policy_name = fleet.shards.front().policy_name;
  for (const SimResult& shard : fleet.shards) {
    fold_shard(fleet.merged, shard);
  }
  PR_INVARIANT(fleet.merged.ledgers.size() == fleet.fleet_disks(),
               "run_fleet: merged ledger count != fleet disk count");
  return fleet;
}

/// Fan shards across the pool (threads != 1) or run them inline
/// (threads == 1); indexed writes make completion order irrelevant.
std::vector<SimResult> for_each_shard(
    const FleetConfig& config,
    const std::function<SimResult(std::uint32_t)>& body) {
  std::vector<SimResult> results(config.shards);
  if (config.threads == 1) {
    for (std::uint32_t s = 0; s < config.shards; ++s) results[s] = body(s);
  } else {
    ThreadPool pool(config.threads);
    pool.parallel_for(config.shards, [&](std::size_t s) {
      results[s] = body(static_cast<std::uint32_t>(s));
    });
  }
  return results;
}

}  // namespace

std::uint32_t fleet_disk_count(std::uint32_t shards,
                               std::uint32_t disks_per_shard) {
  if (shards == 0 || disks_per_shard == 0) {
    throw std::invalid_argument("fleet_disk_count: zero shards or disks");
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(shards) * disks_per_shard;
  if (total >= kInvalidDisk) {
    throw std::invalid_argument(
        "fleet_disk_count: " + std::to_string(total) +
        " disks overflows the 32-bit DiskId space");
  }
  return static_cast<std::uint32_t>(total);
}

SyntheticWorkloadConfig fleet_shard_workload(const FleetConfig& config,
                                             std::uint32_t shard) {
  SyntheticWorkloadConfig wc = config.workload;
  const std::size_t base = config.workload.request_count / config.shards;
  const std::size_t extra =
      shard < config.workload.request_count % config.shards ? 1 : 0;
  wc.request_count = base + extra;
  wc.seed = fleet_shard_seed(config.base_seed, shard);
  return wc;
}

FleetWorkload materialize_fleet_workload(const FleetConfig& config) {
  validate_fleet(config);
  FleetWorkload workload;
  workload.shards.resize(config.shards);
  if (config.threads == 1) {
    for (std::uint32_t s = 0; s < config.shards; ++s) {
      workload.shards[s] = generate_workload(fleet_shard_workload(config, s));
    }
  } else {
    ThreadPool pool(config.threads);
    pool.parallel_for(config.shards, [&](std::size_t s) {
      workload.shards[s] = generate_workload(
          fleet_shard_workload(config, static_cast<std::uint32_t>(s)));
    });
  }
  return workload;
}

FleetResult run_fleet(const FleetConfig& config) {
  validate_fleet(config);
  return merge_results(
      config, for_each_shard(config, [&](std::uint32_t s) {
        return run_shard(config, s, nullptr);
      }));
}

FleetResult run_fleet(const FleetConfig& config,
                      const FleetWorkload& workload) {
  validate_fleet(config);
  if (workload.shards.size() != config.shards) {
    throw std::invalid_argument(
        "run_fleet: materialized workload has " +
        std::to_string(workload.shards.size()) + " shards, config wants " +
        std::to_string(config.shards));
  }
  return merge_results(
      config, for_each_shard(config, [&](std::uint32_t s) {
        return run_shard(config, s, &workload.shards[s]);
      }));
}

void FleetTimeSeries::write_csv(std::ostream& out) const {
  out << "window,start_s,disk,requests,bytes,busy_s,utilization,energy_j,"
         "max_backlog_s,transitions_up,transitions_down,high_speed_fraction,"
         "migrations_in,migrations_out,degraded,lost\n";
  out.imbue(std::locale::classic());
  const auto full = [](double v) { return format_double(v, 17); };
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const double start = static_cast<double>(w) * window.value();
    for (std::size_t d = 0; d < windows[w].size(); ++d) {
      const WindowSample& s = windows[w][d];
      out << w << ',' << full(start) << ',' << d << ',' << s.requests << ','
          << s.bytes << ',' << full(s.busy.value()) << ','
          << full(s.utilization(window)) << ',' << full(s.energy.value())
          << ',' << full(s.max_backlog.value()) << ',' << s.transitions_up
          << ',' << s.transitions_down << ','
          << full(s.high_speed_fraction(window)) << ',' << s.migrations_in
          << ',' << s.migrations_out << ',' << s.degraded_requests << ','
          << s.lost_requests << '\n';
    }
  }
}

FleetTimeSeries merge_time_series(
    const std::vector<const TimeSeriesRecorder*>& shards,
    std::uint32_t disks_per_shard) {
  if (shards.empty()) {
    throw std::invalid_argument("merge_time_series: no shards");
  }
  FleetTimeSeries fleet;
  fleet.window = shards.front()->window_length();
  fleet.disks = fleet_disk_count(static_cast<std::uint32_t>(shards.size()),
                                 disks_per_shard);
  std::size_t window_count = 0;
  for (const TimeSeriesRecorder* shard : shards) {
    if (shard->window_length().value() != fleet.window.value()) {
      throw std::invalid_argument(
          "merge_time_series: shards disagree on window length");
    }
    if (shard->disk_count() != disks_per_shard) {
      throw std::invalid_argument(
          "merge_time_series: shard disk count != disks_per_shard");
    }
    window_count = std::max(window_count, shard->window_count());
  }
  fleet.windows.assign(window_count,
                       std::vector<WindowSample>(fleet.disks));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const TimeSeriesRecorder& shard = *shards[s];
    for (std::size_t w = 0; w < shard.window_count(); ++w) {
      for (std::uint32_t d = 0; d < disks_per_shard; ++d) {
        fleet.windows[w][s * disks_per_shard + d] = shard.at(w, d);
      }
    }
  }
  return fleet;
}

}  // namespace pr
