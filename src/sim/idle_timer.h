// idle_timer.h — per-disk armed-deadline timers for DPM idle checks.
//
// The PR-1 scheduler pushed one EventQueue entry per touched disk per
// request and let the next access invalidate it via a generation check;
// sim.idle_checks_stale showed most of that heap traffic was dead on
// arrival. This structure holds exactly ONE live deadline per disk in an
// indexed binary min-heap keyed by DiskId: serving a disk re-arms its
// deadline *in place* (a sift within the heap, no allocation), and
// background I/O that previously relied on generation staleness disarms
// it explicitly. Heap traffic therefore scales with actual spin-down
// decisions, not with requests.
//
// Determinism: entries order by (deadline, seq). The caller passes a
// monotonically increasing sequence number on every arm — the same
// counter discipline as EventQueue's per-push sequence — so simultaneous
// deadlines fire in exactly the order the fallback event-queue path would
// fire its surviving (non-stale) events.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.h"
#include "util/units.h"

namespace pr {

class IdleTimerHeap {
 public:
  struct Deadline {
    std::uint32_t disk = 0;
    Seconds time{0.0};
  };

  /// Reset to `disks` slots, all disarmed.
  void resize(std::size_t disks) {
    pos_.assign(disks, kUnarmed);
    time_.assign(disks, Seconds{0.0});
    seq_.assign(disks, 0);
    heap_.clear();
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool armed(std::uint32_t disk) const {
    PR_PRECONDITION(disk < pos_.size(),
                    "IdleTimerHeap::armed: disk id out of range");
    return pos_[disk] != kUnarmed;
  }

  /// Earliest armed deadline (undefined when empty — check empty() first).
  [[nodiscard]] Seconds next_time() const {
    PR_PRECONDITION(!empty(), "IdleTimerHeap::next_time: no timer armed");
    return time_[heap_.front()];
  }

  /// Arm (or re-arm in place) the timer for `disk`. `seq` must come from a
  /// monotonically increasing counter; it breaks ties among equal
  /// deadlines FIFO, matching EventQueue's push-order semantics.
  void arm(std::uint32_t disk, Seconds deadline, std::uint64_t seq) {
    PR_PRECONDITION(disk < pos_.size(),
                    "IdleTimerHeap::arm: disk id out of range");
    time_[disk] = deadline;
    seq_[disk] = seq;
    if (pos_[disk] == kUnarmed) {
      pos_[disk] = heap_.size();
      heap_.push_back(disk);
      sift_up(pos_[disk]);
    } else {
      // In-place re-arm: the new deadline may sit on either side of the
      // old one (READ doubles H upward; a busier completion time can move
      // either way), so try both directions.
      const std::size_t i = sift_up(pos_[disk]);
      sift_down(i);
    }
  }

  /// Cancel the pending deadline for `disk` (no-op when not armed).
  void disarm(std::uint32_t disk) {
    PR_PRECONDITION(disk < pos_.size(),
                    "IdleTimerHeap::disarm: disk id out of range");
    const std::size_t i = pos_[disk];
    if (i == kUnarmed) return;
    pos_[disk] = kUnarmed;
    const std::uint32_t last = heap_.back();
    heap_.pop_back();
    if (last != disk) {
      heap_[i] = last;
      pos_[last] = i;
      sift_down(sift_up(i));
    }
  }

  /// Remove and return the earliest deadline.
  Deadline pop() {
    PR_PRECONDITION(!empty(), "IdleTimerHeap::pop: no timer armed");
    const std::uint32_t disk = heap_.front();
    const Deadline out{disk, time_[disk]};
    pos_[disk] = kUnarmed;
    const std::uint32_t last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      pos_[last] = 0;
      sift_down(0);
    }
    return out;
  }

 private:
  static constexpr std::size_t kUnarmed = ~std::size_t{0};

  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    if (time_[a] != time_[b]) return time_[a] < time_[b];
    return seq_[a] < seq_[b];
  }

  std::size_t sift_up(std::size_t i) {
    const std::uint32_t d = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(d, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = d;
    pos_[d] = i;
    return i;
  }

  void sift_down(std::size_t i) {
    const std::uint32_t d = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], d)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = d;
    pos_[d] = i;
  }

  std::vector<std::uint32_t> heap_;  // disk ids, heap-ordered
  std::vector<std::size_t> pos_;     // disk -> index in heap_, or kUnarmed
  std::vector<Seconds> time_;        // disk -> armed deadline
  std::vector<std::uint64_t> seq_;   // disk -> arm sequence (tie-break)
};

}  // namespace pr
