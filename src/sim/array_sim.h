// array_sim.h — the trace-driven disk-array simulator (paper §5.1: "an
// execution-driven simulator that models an array of 2-speed disks").
//
// Architecture: the simulator owns the *mechanisms* — FCFS disks, the
// file→disk placement table, dynamic power management (idleness-threshold
// spin-down, spin-up-to-serve), epoch bookkeeping, background migration
// I/O, and the energy/response-time ledgers. Energy-saving schemes (READ,
// MAID, PDC, ...) are Policy objects that own the *decisions*: where files
// live, which disk serves a request, what happens at epoch boundaries, and
// whether a proposed spin-down is allowed.
//
// Determinism: arrivals are replayed in trace order; deferred events
// (idle checks) live in an EventQueue with FIFO tie-breaking; policies
// receive callbacks at well-defined points only.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/control_config.h"
#include "disk/disk.h"
#include "disk/telemetry.h"
#include "fault/fault_plan.h"
#include "fault/fault_state.h"
#include "obs/counter_registry.h"
#include "obs/observer.h"
#include "redundancy/redundancy_config.h"
#include "sim/dpm.h"
#include "sim/event_queue.h"
#include "sim/idle_timer.h"
#include "sim/metrics.h"
#include "trace/request.h"
#include "trace/request_source.h"
#include "workload/fileset.h"

namespace pr {

constexpr DiskId kInvalidDisk = ~DiskId{0};

/// Backend for DPM idle-check scheduling. Both produce byte-identical
/// ledgers, transition streams and JSONL traces on same-seed runs (a
/// golden test enforces this); they differ only in internal churn:
///   kTimerHeap  — one armed deadline per disk in an indexed min-heap,
///                 re-armed in place on every service. Heap traffic scales
///                 with actual spin-down decisions; sim.idle_checks_stale
///                 is structurally 0. The default.
///   kEventQueue — the PR-1 push-per-service path (one queue entry per
///                 touched disk per request, invalidated by a generation
///                 check). Kept as the deterministic fallback/reference.
enum class IdleScheduler : std::uint8_t { kTimerHeap, kEventQueue };

struct SimConfig {
  TwoSpeedDiskParams disk_params;
  std::size_t disk_count = 8;
  /// Epoch length P for the policies' periodic redistribution (Fig. 6).
  Seconds epoch{3600.0};
  /// How per-disk operating temperature is attributed for PRESS.
  TemperatureAttribution temperature_attribution =
      TemperatureAttribution::kTimeWeighted;
  /// Initial speed for every disk (policies typically override per zone in
  /// initialize()).
  DiskSpeed initial_speed = DiskSpeed::kHigh;
  /// Optional DiskSim-style positional fidelity: when set, files are laid
  /// out contiguously per disk in placement order and every user request
  /// pays the real head-travel seek from this curve instead of the
  /// average seek (background migration I/O keeps average-cost seeks).
  std::optional<SeekCurve> seek_curve;
  /// DPM idle-check scheduling backend (see IdleScheduler).
  IdleScheduler idle_scheduler = IdleScheduler::kTimerHeap;
  /// Array-level redundancy organization (redundancy/redundancy_config.h).
  /// kNone (default) preserves today's behavior byte-for-byte: degraded
  /// requests fall back to the policy's own copy set or are lost. A parity
  /// kind adds reconstruction reads for degraded requests and a paced
  /// background rebuild of failed disks; it takes precedence over
  /// Policy::redundancy().
  RedundancyConfig redundancy;
  /// Feedback control (control/control_config.h). Disabled (default)
  /// preserves today's behavior byte-for-byte: fixed epoch length, fixed
  /// DPM thresholds, no admission window, no control.* counters. Enabled,
  /// the simulator folds one telemetry window per epoch into a
  /// ControlLoop and actuates its knob decisions between epochs.
  ControlConfig control;
};

class Policy;

/// The policy-facing view of the running simulation.
class ArrayContext {
 public:
  ArrayContext(const SimConfig& config, const FileSet& files);

  // --- observation ---------------------------------------------------
  [[nodiscard]] std::size_t disk_count() const { return disks_.size(); }
  [[nodiscard]] const Disk& disk(DiskId d) const { return disks_.at(d); }
  /// The array's hot state as contiguous per-field lanes (disk/disk_soa.h).
  /// Read-only view for policies and analytics that scan a single field
  /// across every disk (epoch re-ranking, fleet rollups) — the facade
  /// accessors above remain the mutation path.
  [[nodiscard]] const DiskArraySoA& hot_state() const { return *soa_; }
  [[nodiscard]] Seconds now() const { return now_; }
  [[nodiscard]] const FileSet& files() const { return *files_; }
  [[nodiscard]] const SimConfig& config() const { return *config_; }
  [[nodiscard]] DiskId location(FileId f) const { return placement_.at(f); }
  /// Cylinder of the file on its current disk (positional mode only;
  /// returns 0 otherwise).
  [[nodiscard]] Cylinder cylinder_of(FileId f) const {
    return f < file_cylinder_.size() ? file_cylinder_[f] : 0;
  }
  [[nodiscard]] bool positioned_io() const {
    return config_->seek_curve.has_value();
  }
  /// Requests per file within the current epoch (reset at each boundary).
  [[nodiscard]] const std::vector<std::uint64_t>& epoch_access_counts()
      const {
    return epoch_counts_;
  }
  [[nodiscard]] std::uint64_t epoch_requests() const {
    return epoch_requests_;
  }
  /// True when an injected fail-stop fault currently holds `d` out of
  /// service (always false when no FaultPlan is attached). Redundancy
  /// schemes use this to pick live copies / surviving stripe units.
  [[nodiscard]] bool disk_failed(DiskId d) const {
    return faults_on_ && fault_.failed(d);
  }
  /// Injected service-inflation factor currently in force on `d` (1 =
  /// nominal; always 1 when no FaultPlan is attached).
  [[nodiscard]] double disk_slowdown(DiskId d) const {
    return faults_on_ ? fault_.slowdown(d) : 1.0;
  }

  // --- placement & data movement --------------------------------------
  /// Initial placement (no I/O cost); each file must be placed exactly
  /// once before the run starts.
  void place(FileId f, DiskId d);
  /// Move a file: background read on its current disk + write on `to`;
  /// placement is updated. No-op if already there.
  void migrate(FileId f, DiskId to);
  /// Background copy traffic that does not change placement (MAID cache
  /// fills, replication): read on `from`, write on `to`.
  void background_copy(DiskId from, DiskId to, Bytes bytes);

  // --- speed & DPM -----------------------------------------------------
  /// Free, uncounted speed assignment; only valid during initialize()
  /// (see Disk::set_initial_speed).
  void set_initial_speed(DiskId d, DiskSpeed speed);
  /// Explicit speed change (zone reconfiguration); returns finish time.
  Seconds request_transition(DiskId d, DiskSpeed target);
  [[nodiscard]] const DpmConfig& dpm(DiskId d) const { return dpm_.at(d); }
  void set_dpm(DiskId d, const DpmConfig& config);
  /// Adjust only the idleness threshold (READ's adaptive doubling).
  void set_idleness_threshold(DiskId d, Seconds h);

  // --- diagnostics ------------------------------------------------------
  /// Bump a policy-defined counter (reported in SimResult::counters).
  /// Interns the name on first use — fine for cold paths; per-request
  /// counters should use the handle overload below.
  void bump(std::string_view counter, std::uint64_t by = 1);
  /// Hot-path bump through a handle pre-interned in initialize() (one
  /// vector add, no string hashing).
  void bump(CounterRegistry::Handle counter, std::uint64_t by = 1) {
    counters_.add(counter, by);
  }
  /// The run's counter registry — policies with hot counters intern a
  /// handle once in initialize() and bump through it.
  [[nodiscard]] CounterRegistry& counters() { return counters_; }

 private:
  friend class ArraySimulator;

  struct IdleCheck {
    DiskId disk = kInvalidDisk;
    std::uint64_t generation = 0;
  };

  /// (Re-)arm the idle-check deadline for `d` at completion + H. Timer
  /// mode re-arms the per-disk slot in place; queue mode pushes a new
  /// event stamped with the disk's activity generation.
  void schedule_idle_check(DiskId d, Seconds completion);
  /// Drop any pending idle check for `d`. Timer mode disarms the slot;
  /// queue mode is a no-op (the bumped activity generation already marks
  /// the pending event stale). Called for disks receiving background I/O
  /// (migrations, cache fills) that does not go through the per-request
  /// re-arm.
  void cancel_idle_check(DiskId d);
  /// Allocate a contiguous cylinder range for `f` on disk `d` and record
  /// its start cylinder (positional mode only).
  void assign_cylinders(FileId f, DiskId d);
  /// Announce an actual speed change (and the derived power-state change)
  /// to the attached observer; no-op when detached or from == to.
  /// `energy` is the ledger delta across the transition operation.
  void emit_transition(DiskId d, DiskSpeed from, DiskSpeed to, Seconds at,
                       Seconds finish, TransitionCause cause, Joules energy);

  const SimConfig* config_;
  const FileSet* files_;
  /// Shared hot-state lanes; declared before disks_ so the facades'
  /// pointers outlive them on destruction. unique_ptr keeps the lanes
  /// address-stable if the context itself is moved.
  std::unique_ptr<DiskArraySoA> soa_;
  std::vector<Disk> disks_;
  std::vector<DpmConfig> dpm_;
  std::vector<DiskId> placement_;
  std::vector<Cylinder> file_cylinder_;   // positional mode only
  std::vector<Cylinder> alloc_cursor_;    // per-disk next free cylinder
  std::vector<std::uint64_t> epoch_counts_;
  std::uint64_t epoch_requests_ = 0;
  Seconds now_{0.0};
  /// Fallback scheduler (IdleScheduler::kEventQueue): push-per-service
  /// events invalidated by generation staleness.
  EventQueue<IdleCheck> idle_events_;
  /// Default scheduler (IdleScheduler::kTimerHeap): one armed deadline
  /// per disk, re-armed in place.
  IdleTimerHeap idle_timer_;
  /// Arm-order counter for the timer heap's FIFO tie-breaking; advances
  /// exactly when the queue path's push sequence would, so simultaneous
  /// deadlines fire in the same cross-disk order in both modes.
  std::uint64_t idle_seq_ = 0;
  /// Batched-dispatch fast path: a lower bound on the time of the
  /// earliest pending deferred event (idle deadline, epoch boundary,
  /// fault instant). While an arrival stays strictly below the hint the
  /// simulator skips the drain machinery entirely — one comparison per
  /// request. Arming an idle check lowers it; the simulator recomputes it
  /// after every slow-path drain (cancellations only raise the true
  /// minimum, so a stale-low hint is conservative, never wrong).
  Seconds wake_hint_{0.0};
  bool use_timer_ = true;
  std::uint64_t migrations_ = 0;
  Bytes migration_bytes_ = 0;
  CounterRegistry counters_;
  /// Pre-interned handle for request_transition's hot-path bump.
  CounterRegistry::Handle h_policy_transitions_ = 0;
  /// Live per-disk fault flags; only consulted when a non-empty FaultPlan
  /// is attached (faults_on_), so fault-free runs stay byte-identical.
  FaultState fault_;
  bool faults_on_ = false;
  /// Attached observer (nullptr = detached; every emission point guards on
  /// this, which is the whole zero-cost story).
  SimObserver* observer_ = nullptr;
};

/// One piece of a striped request: `bytes` served by `disk`.
struct StripeChunk {
  DiskId disk = kInvalidDisk;
  Bytes bytes = 0;
};

/// The redundancy seam (redundancy/scheme.h): how degraded requests are
/// still served — a live copy, parity reconstruction, or lost.
class RedundancyScheme;

/// The control seam (control/control_loop.h): what the epoch-boundary
/// controllers decided. Forward-declared — only policies that implement
/// on_control need the full type.
struct ControlDecision;

/// An energy-saving scheme under evaluation.
class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Place every file, set initial speeds and DPM knobs.
  virtual void initialize(ArrayContext& ctx) = 0;

  /// Pick the disk that serves `req` (usually location(req.file); MAID
  /// may answer from a cache disk).
  virtual DiskId route(ArrayContext& ctx, const Request& req) = 0;

  /// Striping support (paper §6 future work / RAID-0 extension): when
  /// this returns true the simulator calls stripe() instead of route(),
  /// serves every chunk in parallel on its disk, and completes the
  /// request when the slowest chunk finishes.
  [[nodiscard]] virtual bool striped() const { return false; }

  /// Decompose `req` into per-disk chunks (non-empty, bytes summing to
  /// req.size). Only called when striped() is true.
  virtual std::vector<StripeChunk> stripe(ArrayContext& ctx,
                                          const Request& req) {
    return {StripeChunk{route(ctx, req), req.size}};
  }

  /// Called after `req` was served by `d` (completion already ledgered) —
  /// cache management, copy triggering, etc.
  virtual void after_serve(ArrayContext& ctx, const Request& req, DiskId d) {
    (void)ctx;
    (void)req;
    (void)d;
  }

  /// Epoch boundary (Fig. 6's "for each epoch P"): re-rank, migrate,
  /// adapt thresholds. `now` is the boundary instant.
  virtual void on_epoch(ArrayContext& ctx, Seconds now) {
    (void)ctx;
    (void)now;
  }

  /// Control-loop actuation seam: on a control-enabled run whose energy
  /// controller asked for a hot-zone resize (decision.hot_delta != 0),
  /// the simulator forwards the decision here at the epoch boundary,
  /// after on_epoch. The policy applies its own guardrails (e.g. the
  /// online θ̂ skew estimate bounding how many hot disks the workload
  /// justifies) and returns the signed resize it actually took — 0 means
  /// refused, or unsupported (the default for policies without a
  /// resizable hot zone). Never called when control is disabled.
  virtual int on_control(ArrayContext& ctx, const ControlDecision& decision,
                         Seconds now) {
    (void)ctx;
    (void)decision;
    (void)now;
    return 0;
  }

  /// Veto hook for DPM spin-downs (READ's transition cap).
  virtual bool allow_spin_down(ArrayContext& ctx, DiskId d, Seconds now) {
    (void)ctx;
    (void)d;
    (void)now;
    return true;
  }

  /// The redundancy scheme backing this policy's own copy set (replica
  /// sets, the MAID cache) — the simulator consults it when route() lands
  /// on a failed disk and SimConfig::redundancy is kNone (a configured
  /// parity scheme takes precedence). Return nullptr (the default) when
  /// the policy maintains no redundant copies: degraded requests are then
  /// recorded as lost (RequestDegradedEvent kLost, excluded from
  /// response-time stats). Only consulted while a FaultPlan with events
  /// is attached. The returned pointer must stay valid for the policy's
  /// lifetime (policies typically hold the scheme as a member).
  [[nodiscard]] virtual RedundancyScheme* redundancy() { return nullptr; }
};

/// Drive `policy` over the requests `source` produces, against an array
/// built from `config`. This is the primary entry point: the simulator
/// *pulls* one request at a time (bounded-memory ingestion, structural
/// backpressure) and validates incrementally — arrivals must be
/// non-decreasing and every file must be in `files`, or it throws the
/// same std::invalid_argument the materialized path always did
/// ("run_simulation: trace is not sorted" / "... references unknown
/// file"). std::logic_error on policy contract violations (unplaced file,
/// bad route target).
///
/// `observer` (optional) receives the hook stream described in
/// obs/observer.h; pass nullptr for the zero-overhead fast path. Use
/// ObserverList to attach several observers, or the SimulationSession
/// builder (core/session.h) for the high-level API.
/// `faults` (optional) attaches a fault-injection plan (fault/fault_plan.h):
/// its events are applied in time order interleaved with the usual event
/// stream (epoch work → fault events → rebuild steps → DPM/request events
/// at one instant). nullptr or an empty plan is the byte-identical
/// fault-free fast path. Throws std::invalid_argument if the plan targets
/// a disk outside the array, or if SimConfig::redundancy is unsatisfiable
/// on the array (see redundancy/scheme.h validate_redundancy).
[[nodiscard]] SimResult run_simulation(const SimConfig& config,
                                       const FileSet& files,
                                       RequestSource& source, Policy& policy,
                                       SimObserver* observer,
                                       const FaultPlan* faults);
[[nodiscard]] SimResult run_simulation(const SimConfig& config,
                                       const FileSet& files,
                                       RequestSource& source, Policy& policy,
                                       SimObserver* observer);
[[nodiscard]] SimResult run_simulation(const SimConfig& config,
                                       const FileSet& files,
                                       RequestSource& source, Policy& policy);

/// Materialized-trace adapters: validate `trace` up front (so contract
/// errors surface before the policy initializes, exactly as before the
/// streaming redesign) and replay it through a TraceSource. Byte-identical
/// to the historical vector path — the goldens pin this.
[[nodiscard]] SimResult run_simulation(const SimConfig& config,
                                       const FileSet& files,
                                       const Trace& trace, Policy& policy,
                                       SimObserver* observer,
                                       const FaultPlan* faults);
[[nodiscard]] SimResult run_simulation(const SimConfig& config,
                                       const FileSet& files,
                                       const Trace& trace, Policy& policy,
                                       SimObserver* observer);
[[nodiscard]] SimResult run_simulation(const SimConfig& config,
                                       const FileSet& files,
                                       const Trace& trace, Policy& policy);

}  // namespace pr
