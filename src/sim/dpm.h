// dpm.h — per-disk dynamic power management configuration. Every policy in
// the paper manages speed the same mechanical way — spin down after an
// idleness threshold, spin (back) up to serve — and differs only in which
// disks participate and how the threshold adapts (READ doubles it to cap
// transition counts, Fig. 6 lines 20-24). The simulator owns the
// mechanism; policies own these knobs.
#pragma once

#include "util/units.h"

namespace pr {

struct DpmConfig {
  /// Schedule an idle-check after each completion; if the disk stays idle
  /// for `idleness_threshold`, transition it to low speed (subject to the
  /// policy's allow_spin_down veto).
  bool spin_down_when_idle = false;
  /// The idleness threshold H. Policies may change it at any time (READ's
  /// adaptive doubling); in-flight idle checks use the value current when
  /// they fire.
  Seconds idleness_threshold{10.0};
  /// When a request arrives at a disk resting at low speed, transition to
  /// high speed first (the request waits out the transition). When false
  /// the disk serves at its current speed (READ's cold zone).
  bool spin_up_to_serve = false;
  /// DRPM-style load-driven promotion: when a request arrives at a
  /// low-speed disk whose backlog (time until the disk frees up) already
  /// exceeds this, spin up to high speed even if spin_up_to_serve is
  /// false. kNeverTime disables it. This models "dynamically modulate
  /// disk speed to control energy consumption" (paper §2 on DRPM [13]):
  /// isolated requests are served at low speed; sustained load promotes
  /// the disk.
  Seconds spin_up_backlog{kNeverTime};
};

}  // namespace pr
