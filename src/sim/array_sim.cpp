#include "sim/array_sim.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "control/control_loop.h"
#include "redundancy/rebuild.h"
#include "redundancy/scheme.h"
#include "util/contracts.h"
#include "util/log.h"

namespace pr {

ArrayContext::ArrayContext(const SimConfig& config, const FileSet& files)
    : config_(&config), files_(&files) {
  if (config.disk_count == 0) {
    throw std::invalid_argument("ArrayContext: disk_count == 0");
  }
  use_timer_ = config.idle_scheduler == IdleScheduler::kTimerHeap;
  if (use_timer_) idle_timer_.resize(config.disk_count);
  h_policy_transitions_ = counters_.intern("sim.policy_transitions");
  soa_ = std::make_unique<DiskArraySoA>(config.disk_count);
  disks_.reserve(config.disk_count);
  for (std::size_t i = 0; i < config.disk_count; ++i) {
    disks_.emplace_back(*soa_, static_cast<std::uint32_t>(i),
                        static_cast<DiskId>(i), config.disk_params,
                        config.initial_speed);
    if (config.seek_curve) disks_.back().set_seek_curve(*config.seek_curve);
  }
  dpm_.assign(config.disk_count, DpmConfig{});
  placement_.assign(files.size(), kInvalidDisk);
  epoch_counts_.assign(files.size(), 0);
  if (config.seek_curve) {
    file_cylinder_.assign(files.size(), 0);
    alloc_cursor_.assign(config.disk_count, 0);
  }
}

void ArrayContext::assign_cylinders(FileId f, DiskId d) {
  if (file_cylinder_.empty()) return;
  const auto& geometry = config_->seek_curve->geometry();
  const Bytes per_cylinder =
      std::max<Bytes>(1, config_->disk_params.capacity / geometry.cylinders);
  const Bytes size = files_->by_id(f).size;
  const auto span = static_cast<Cylinder>(
      std::max<Bytes>(1, (size + per_cylinder - 1) / per_cylinder));
  file_cylinder_[f] = alloc_cursor_[d] % geometry.cylinders;
  alloc_cursor_[d] = (alloc_cursor_[d] + span) % geometry.cylinders;
}

void ArrayContext::place(FileId f, DiskId d) {
  if (f >= placement_.size()) {
    throw std::invalid_argument("ArrayContext::place: unknown file");
  }
  if (d >= disks_.size()) {
    throw std::invalid_argument("ArrayContext::place: unknown disk");
  }
  placement_[f] = d;
  assign_cylinders(f, d);
}

void ArrayContext::migrate(FileId f, DiskId to) {
  if (f >= placement_.size() || to >= disks_.size()) {
    throw std::invalid_argument("ArrayContext::migrate: bad arguments");
  }
  const DiskId from = placement_[f];
  if (from == kInvalidDisk) {
    throw std::logic_error("ArrayContext::migrate: file never placed");
  }
  if (from == to) return;
  const Bytes bytes = files_->by_id(f).size;
  Joules energy_before{0.0};
  if (observer_ != nullptr) {
    energy_before = disks_[from].ledger().energy + disks_[to].ledger().energy;
  }
  disks_[from].serve(now_, bytes, /*internal=*/true);
  disks_[to].serve(now_, bytes, /*internal=*/true);
  cancel_idle_check(from);
  cancel_idle_check(to);
  placement_[f] = to;
  assign_cylinders(f, to);
  ++migrations_;
  migration_bytes_ += bytes;
  if (observer_ != nullptr) {
    const Joules energy =
        disks_[from].ledger().energy + disks_[to].ledger().energy -
        energy_before;
    observer_->on_migration(MigrationEvent{now_, f, from, to, bytes, energy});
  }
}

void ArrayContext::background_copy(DiskId from, DiskId to, Bytes bytes) {
  if (from >= disks_.size() || to >= disks_.size()) {
    throw std::invalid_argument("ArrayContext::background_copy: bad disk");
  }
  Joules energy_before{0.0};
  if (observer_ != nullptr) {
    energy_before = disks_[from].ledger().energy;
    if (from != to) energy_before += disks_[to].ledger().energy;
  }
  disks_[from].serve(now_, bytes, /*internal=*/true);
  if (from != to) disks_[to].serve(now_, bytes, /*internal=*/true);
  cancel_idle_check(from);
  if (from != to) cancel_idle_check(to);
  if (observer_ != nullptr) {
    Joules energy = disks_[from].ledger().energy - energy_before;
    if (from != to) energy += disks_[to].ledger().energy;
    observer_->on_background_copy(
        BackgroundCopyEvent{now_, from, to, bytes, energy});
  }
}

void ArrayContext::set_initial_speed(DiskId d, DiskSpeed speed) {
  if (d >= disks_.size()) {
    throw std::invalid_argument("ArrayContext::set_initial_speed: bad disk");
  }
  disks_[d].set_initial_speed(speed);
}

Seconds ArrayContext::request_transition(DiskId d, DiskSpeed target) {
  if (d >= disks_.size()) {
    throw std::invalid_argument("ArrayContext::request_transition: bad disk");
  }
  const DiskSpeed from = disks_[d].speed();
  const Joules energy_before =
      observer_ != nullptr ? disks_[d].ledger().energy : Joules{0.0};
  const Seconds finish = disks_[d].transition(now_, target);
  if (from != target) {
    counters_.add(h_policy_transitions_);
    emit_transition(d, from, target, now_, finish, TransitionCause::kPolicy,
                    disks_[d].ledger().energy - energy_before);
  }
  return finish;
}

void ArrayContext::emit_transition(DiskId d, DiskSpeed from, DiskSpeed to,
                                   Seconds at, Seconds finish,
                                   TransitionCause cause, Joules energy) {
  if (observer_ == nullptr || from == to) return;
  observer_->on_speed_transition(
      SpeedTransitionEvent{at, finish, d, from, to, cause, energy});
  observer_->on_disk_state_change(
      DiskStateChangeEvent{at, d, power_state(from), power_state(to)});
}

void ArrayContext::set_dpm(DiskId d, const DpmConfig& config) {
  if (d >= dpm_.size()) {
    throw std::invalid_argument("ArrayContext::set_dpm: bad disk");
  }
  dpm_[d] = config;
}

void ArrayContext::set_idleness_threshold(DiskId d, Seconds h) {
  if (d >= dpm_.size()) {
    throw std::invalid_argument("ArrayContext::set_idleness_threshold: bad disk");
  }
  dpm_[d].idleness_threshold = h;
}

void ArrayContext::bump(std::string_view counter, std::uint64_t by) {
  counters_.add(counter, by);
}

void ArrayContext::schedule_idle_check(DiskId d, Seconds completion) {
  if (!dpm_[d].spin_down_when_idle) return;
  const Seconds deadline = completion + dpm_[d].idleness_threshold;
  if (deadline < wake_hint_) wake_hint_ = deadline;
  if (use_timer_) {
    idle_timer_.arm(d, deadline, idle_seq_++);
  } else {
    idle_events_.push(deadline, IdleCheck{d, disks_[d].activity_generation()});
  }
}

void ArrayContext::cancel_idle_check(DiskId d) {
  if (use_timer_) idle_timer_.disarm(d);
  // Queue mode needs nothing: the serve that preceded every cancellation
  // bumped the disk's activity generation, so the pending event is stale.
}

/// Unit of request pull from the source (see RequestSource::next_batch).
/// Large enough to amortize the virtual dispatch, small enough that a
/// batch of Requests stays resident in L1.
constexpr std::size_t kRequestBatch = 256;

/// Internal driver; separated from the public function so the context can
/// stay a friend-only construct. Defined in this TU only — the header
/// forward-declares it solely for the friendship grant.
class ArraySimulator {
 public:
  ArraySimulator(const SimConfig& config, const FileSet& files,
                 RequestSource& source, Policy& policy, SimObserver* observer,
                 const FaultPlan* faults)
      : config_(config), files_(files), source_(source), policy_(policy),
        ctx_(config, files), faults_(faults), control_(config.control),
        epoch_len_(config.epoch),
        h_epochs_(ctx_.counters_.intern("sim.epochs")),
        h_idle_checks_(ctx_.counters_.intern("sim.idle_checks")),
        h_idle_stale_(ctx_.counters_.intern("sim.idle_checks_stale")),
        h_idle_deferred_(ctx_.counters_.intern("sim.idle_checks_deferred")),
        h_spin_downs_(ctx_.counters_.intern("sim.spin_downs")),
        h_spin_vetoed_(ctx_.counters_.intern("sim.spin_downs_vetoed")),
        h_spin_ups_(ctx_.counters_.intern("sim.spin_ups_to_serve")) {
    ctx_.observer_ = observer;
    // Fault counters are interned only when a non-empty plan is attached:
    // CounterRegistry snapshots include zero-valued registered counters,
    // so interning unconditionally would change fault-free reports.
    ctx_.faults_on_ = faults != nullptr && !faults->empty();
    if (ctx_.faults_on_) {
      ctx_.fault_.resize(config.disk_count);
      h_faults_ = ctx_.counters_.intern("sim.faults_injected");
      h_recovers_ = ctx_.counters_.intern("sim.fault_recoveries");
      h_slowdowns_ = ctx_.counters_.intern("sim.fault_slowdowns");
      h_lost_ = ctx_.counters_.intern("sim.requests_lost");
      h_redirected_ = ctx_.counters_.intern("sim.requests_degraded");
      h_slowed_ = ctx_.counters_.intern("sim.requests_slowed");
    }
    // Redundancy seam resolution: a parity scheme configured on the array
    // wins; otherwise the policy may expose its own copy set (replicas,
    // the MAID cache) as a scheme; otherwise degraded requests are lost.
    // The config scheme is built (and validated) even on fault-free runs
    // so a bad config errors deterministically; the parity machinery and
    // its counters arm only when the seam can actually fire — same
    // zero-valued-counter reasoning as the fault counters above.
    if (config.redundancy.kind != RedundancyKind::kNone) {
      owned_scheme_ = make_scheme(config.redundancy, config.disk_count);
    }
    scheme_ =
        owned_scheme_ != nullptr ? owned_scheme_.get() : policy_.redundancy();
    parity_on_ = ctx_.faults_on_ && scheme_ != nullptr && scheme_->parity();
    if (parity_on_) {
      h_reconstructed_ = ctx_.counters_.intern("sim.requests_reconstructed");
      h_data_loss_ = ctx_.counters_.intern("redundancy.data_loss_events");
      if (config.redundancy.rebuild) {
        rebuild_on_ = true;
        rebuild_.configure(config.redundancy.rebuild_mbps,
                           config.redundancy.rebuild_chunk);
        h_rebuild_steps_ = ctx_.counters_.intern("redundancy.rebuild_steps");
        h_rebuild_wakeups_ =
            ctx_.counters_.intern("redundancy.rebuild_wakeups");
        h_rebuilds_started_ =
            ctx_.counters_.intern("redundancy.rebuilds_started");
        h_rebuilds_completed_ =
            ctx_.counters_.intern("redundancy.rebuilds_completed");
        h_rebuilds_aborted_ =
            ctx_.counters_.intern("redundancy.rebuilds_aborted");
      }
    }
    // Control counters arm only with the subsystem enabled — the same
    // zero-valued-counter reasoning as the fault set above keeps every
    // control-free report byte-identical. (The ControlLoop member itself
    // is always constructed: a bad config errors deterministically even
    // before the first epoch fires.)
    control_on_ = config.control.enabled;
    if (control_on_) {
      shed_window_ = config.control.admit_window_s;
      h_ctl_updates_ = ctx_.counters_.intern("control.updates");
      h_ctl_shed_ = ctx_.counters_.intern("control.shed_requests");
      h_ctl_h_scaled_ = ctx_.counters_.intern("control.h_scaled");
      h_ctl_hot_grows_ = ctx_.counters_.intern("control.hot_grows");
      h_ctl_hot_shrinks_ = ctx_.counters_.intern("control.hot_shrinks");
      h_ctl_epoch_scaled_ = ctx_.counters_.intern("control.epoch_scaled");
    }
  }

  SimResult run() {
    policy_.initialize(ctx_);
    validate_placement();
    emit_run_start();
    arm_initial_idle_checks();

    next_epoch_ = epoch_len_;
    Seconds horizon{0.0};
    Seconds last_arrival{0.0};
    bool any_requests = false;
    SimObserver* const obs = ctx_.observer_;

    recompute_wake_hint();
    // Requests are pulled in batches (one virtual dispatch per batch, not
    // per request) and each batch is processed against the cached wake
    // hint: while arrivals stay strictly below the earliest pending
    // deferred event, the drain machinery is one comparison. Both are
    // transport/caching details — the per-request event interleaving is
    // unchanged, which the seed-layout and scheduler goldens pin.
    std::array<Request, kRequestBatch> batch;
    for (std::size_t filled = 0;
         (filled = source_.next_batch(batch.data(), batch.size())) > 0;) {
    for (std::size_t bi = 0; bi < filled; ++bi) {
      const Request& req = batch[bi];
      // Incremental input validation: a streaming source has no upfront
      // pass, so the materialized path's contract errors are re-raised
      // here, verbatim, the moment a violation arrives.
      if (any_requests && req.arrival < last_arrival) {
        throw std::invalid_argument("run_simulation: trace is not sorted");
      }
      if (req.file == kInvalidFile || req.file >= files_.size()) {
        throw std::invalid_argument(
            "run_simulation: trace references unknown file");
      }
      last_arrival = req.arrival;
      any_requests = true;

      if (!(req.arrival < ctx_.wake_hint_)) {
        advance_until(req.arrival);
        fire_epochs_until(req.arrival);
        recompute_wake_hint();
      }
      ctx_.now_ = req.arrival;

      // Per-epoch popularity tracking (Fig. 6 line 9, the "Access
      // Tracking Manager").
      ++ctx_.epoch_counts_[req.file];
      ++ctx_.epoch_requests_;

      if (obs != nullptr) pending_ = RequestCompleteEvent{};
      request_slowed_ = false;
      request_slowdown_ = 1.0;

      Seconds completion{0.0};
      DiskId primary = kInvalidDisk;
      std::uint32_t chunk_count = 1;
      bool lost = false;
      bool reconstructed = false;
      if (policy_.striped()) {
        const auto chunks = policy_.stripe(ctx_, req);
        if (chunks.empty()) {
          throw std::logic_error("striped policy produced no chunks");
        }
        primary = chunks.front().disk;
        // Admission precedes fault handling: a shed request consumes no
        // degraded-read planning and no service. The primary chunk's disk
        // stands in for the stripe's backlog.
        if (control_on_ && !admit(req, primary)) continue;
        if (ctx_.faults_on_) {
          // A striped request needs every chunk; each failed chunk disk
          // consults the redundancy seam. Without a scheme (or with
          // RAID-0) any failure loses the whole request, exactly as
          // before; parity replaces the failed chunk with costed reads on
          // its surviving stripe units. The plan is built first and only
          // booked (counters, events, serves) if every chunk survives.
          plan_serves_.clear();
          planned_degrades_.clear();
          for (const auto& chunk : chunks) {
            if (!ctx_.fault_.failed(chunk.disk)) {
              plan_serves_.push_back(chunk);
              continue;
            }
            scratch_reads_.clear();
            DiskId redirect = kInvalidDisk;
            const DegradedAction action =
                scheme_ == nullptr
                    ? DegradedAction::kLost
                    : scheme_->degraded_read(ctx_, req.file, chunk.bytes,
                                             chunk.disk, redirect,
                                             scratch_reads_);
            if (action == DegradedAction::kRedirect && redirect != kInvalidDisk &&
                redirect < ctx_.disks_.size() &&
                !ctx_.fault_.failed(redirect)) {
              plan_serves_.push_back(StripeChunk{redirect, chunk.bytes});
              planned_degrades_.push_back(PlannedDegrade{
                  DegradedOutcome::kRedirected, chunk.disk, redirect, 0,
                  chunk.bytes});
            } else if (action == DegradedAction::kReconstruct &&
                       !scratch_reads_.empty()) {
              PR_ASSERT(parity_on_,
                        "kReconstruct from a non-parity redundancy scheme");
              planned_degrades_.push_back(PlannedDegrade{
                  DegradedOutcome::kReconstructed, chunk.disk, chunk.disk,
                  static_cast<std::uint32_t>(scratch_reads_.size()),
                  chunk.bytes});
              plan_serves_.insert(plan_serves_.end(), scratch_reads_.begin(),
                                  scratch_reads_.end());
            } else {
              lost = true;
              break;
            }
          }
          if (!lost) {
            for (const auto& pd : planned_degrades_) {
              emit_planned_degrade(req.arrival, req.file, pd);
            }
            for (const auto& chunk : plan_serves_) {
              const Seconds done =
                  serve_on(chunk.disk, req.arrival, chunk.bytes, req.file);
              completion = std::max(completion, done);
            }
            chunk_count = static_cast<std::uint32_t>(plan_serves_.size());
          }
        } else {
          // All chunks start in parallel; the request completes when the
          // slowest disk finishes its piece.
          for (const auto& chunk : chunks) {
            const Seconds done = serve_on(chunk.disk, req.arrival, chunk.bytes, req.file);
            completion = std::max(completion, done);
          }
          chunk_count = static_cast<std::uint32_t>(chunks.size());
        }
      } else {
        primary = policy_.route(ctx_, req);
        if (control_on_ && !admit(req, primary)) continue;
        if (ctx_.faults_on_ && ctx_.fault_.failed(primary)) {
          scratch_reads_.clear();
          DiskId redirect = kInvalidDisk;
          const DegradedAction action =
              scheme_ == nullptr
                  ? DegradedAction::kLost
                  : scheme_->degraded_read(ctx_, req.file, req.size, primary,
                                           redirect, scratch_reads_);
          switch (action) {
            case DegradedAction::kLost:
              lost = true;
              break;
            case DegradedAction::kRedirect:
              if (redirect == kInvalidDisk ||
                  redirect >= ctx_.disks_.size() ||
                  ctx_.fault_.failed(redirect)) {
                lost = true;
              } else {
                ctx_.counters_.add(h_redirected_);
                if (obs != nullptr) {
                  obs->on_request_degraded(RequestDegradedEvent{
                      req.arrival, req.file, primary, redirect,
                      DegradedOutcome::kRedirected, 1.0});
                }
                primary = redirect;
              }
              break;
            case DegradedAction::kReconstruct:
              if (scratch_reads_.empty()) {
                lost = true;
              } else {
                completion =
                    reconstruct(req.arrival, req.file, primary, req.size);
                chunk_count =
                    static_cast<std::uint32_t>(scratch_reads_.size());
                reconstructed = true;
              }
              break;
          }
        }
        if (!lost && !reconstructed) {
          completion = serve_on(primary, req.arrival, req.size, req.file);
        }
      }
      if (lost) {
        // No live copy: the request is recorded, not served — no response
        // time sample, no completion event, no after_serve (the epoch
        // popularity bump above stands: demand existed even if unmet).
        ctx_.counters_.add(h_lost_);
        if (obs != nullptr) {
          obs->on_request_degraded(RequestDegradedEvent{
              req.arrival, req.file, primary, primary, DegradedOutcome::kLost,
              1.0});
        }
        touched_.clear();
        continue;
      }
      if (request_slowed_) {
        ctx_.counters_.add(h_slowed_);
        if (obs != nullptr) {
          obs->on_request_degraded(RequestDegradedEvent{
              req.arrival, req.file, primary, primary,
              DegradedOutcome::kSlowed, request_slowdown_});
        }
      }
      horizon = std::max(horizon, completion);

      const double rt = (completion - req.arrival).value();
      result_.response_time.add(rt);
      result_.response_time_sample.add(rt);
      ++result_.user_requests;
      if (control_on_) {
        // Per-epoch latency window for the control loop; arrival order,
        // so the fold is deterministic.
        ++ctl_epoch_served_;
        ctl_epoch_rt_sum_ += rt;
      }

      if (obs != nullptr) {
        pending_.arrival = req.arrival;
        pending_.completion = completion;
        pending_.file = req.file;
        pending_.disk = primary;
        pending_.bytes = req.size;
        pending_.stripe_chunks = chunk_count;
        obs->on_request_complete(pending_);
      }

      // after_serve may add background I/O (MAID cache fills); the idle
      // checks are armed afterwards so they see the final generation and
      // the disks' true ready times.
      policy_.after_serve(ctx_, req, primary);
      for (const DiskId d : touched_) {
        ctx_.schedule_idle_check(d, ctx_.disks_[d].ready_time());
      }
      touched_.clear();
    }
    }

    if (any_requests) {
      horizon = std::max(horizon, last_arrival);
    }
    // Trailing events inside the horizon still count (a final spin-down
    // whose idle window closed before the last completion, a fault that
    // strikes between the last arrival and the last completion).
    advance_until(horizon);

    finalize(horizon);
    return std::move(result_);
  }

 private:
  /// A striped request's degraded chunk, planned in the first pass and
  /// booked (counter + events) only if the whole request survives.
  struct PlannedDegrade {
    DegradedOutcome outcome = DegradedOutcome::kLost;
    DiskId intended = kInvalidDisk;
    DiskId served_by = kInvalidDisk;
    /// Reconstruction fan-out (kReconstructed only).
    std::uint32_t sources = 0;
    Bytes bytes = 0;
  };

  /// Serve `bytes` of `file` on disk `d` at `arrival`, applying
  /// spin-up-to-serve, and remember the disk for idle-check arming.
  /// Returns completion.
  Seconds serve_on(DiskId d, Seconds arrival, Bytes bytes, FileId file) {
    if (d >= ctx_.disks_.size()) {
      throw std::logic_error("policy routed to nonexistent disk");
    }
    Disk& disk = ctx_.disks_[d];
    SimObserver* const obs = ctx_.observer_;
    // Ledger snapshots so the request event carries exact per-operation
    // deltas (busy time, energy including spin-up + lazily accounted
    // idle). Only taken when an observer is attached.
    Seconds busy_before{0.0};
    Joules energy_before{0.0};
    if (obs != nullptr) {
      busy_before = disk.ledger().busy_time;
      energy_before = disk.ledger().energy;
      const Seconds queued = disk.ready_time() - arrival;
      if (queued > pending_.backlog) pending_.backlog = queued;
    }
    if (disk.speed() == DiskSpeed::kLow) {
      const bool promote_always = ctx_.dpm_[d].spin_up_to_serve;
      const Seconds backlog_limit = ctx_.dpm_[d].spin_up_backlog;
      const bool promote_on_load =
          backlog_limit < kNeverTime &&
          disk.ready_time() - arrival > backlog_limit;
      if (promote_always || promote_on_load) {
        const Joules spin_before =
            obs != nullptr ? disk.ledger().energy : Joules{0.0};
        const Seconds finish = disk.transition(arrival, DiskSpeed::kHigh);
        ctx_.counters_.add(h_spin_ups_);
        ctx_.emit_transition(d, DiskSpeed::kLow, DiskSpeed::kHigh, arrival,
                             finish, TransitionCause::kSpinUpToServe,
                             disk.ledger().energy - spin_before);
      }
    }
    Seconds completion =
        ctx_.positioned_io()
            ? disk.serve_positioned(arrival, bytes, ctx_.cylinder_of(file))
            : disk.serve(arrival, bytes);
    if (ctx_.faults_on_) {
      // Injected slowdown: the disk pays an extra internal transfer of
      // (factor − 1) × bytes right behind the request (average-cost seek
      // even in positional mode — degraded media, not head travel). The
      // chaser sits inside the observer snapshot, so the request's energy
      // and service-time deltas include it.
      const double factor = ctx_.fault_.slowdown(d);
      if (factor > 1.0) {
        const auto extra = static_cast<Bytes>(
            (factor - 1.0) * static_cast<double>(bytes));
        if (extra > 0) {
          completion = disk.serve(completion, extra, /*internal=*/true);
          request_slowed_ = true;
          request_slowdown_ = std::max(request_slowdown_, factor);
        }
      }
    }
    if (obs != nullptr) {
      pending_.service_time += disk.ledger().busy_time - busy_before;
      pending_.energy += disk.ledger().energy - energy_before;
    }
    touched_.push_back(d);
    return completion;
  }

  /// Serve a degraded single request by parity reconstruction: one costed
  /// read of `bytes` on each surviving stripe unit (scratch_reads_), all
  /// in parallel; the request completes when the slowest survivor
  /// finishes. Books the counter and the StripeReconstruct +
  /// RequestDegraded(kReconstructed) events before the serves so the
  /// degraded events precede any spin-up transitions, as for redirects.
  Seconds reconstruct(Seconds arrival, FileId file, DiskId failed,
                      Bytes bytes) {
    PR_ASSERT(parity_on_,
              "kReconstruct from a non-parity redundancy scheme");
    SimObserver* const obs = ctx_.observer_;
    ctx_.counters_.add(h_reconstructed_);
    if (obs != nullptr) {
      obs->on_stripe_reconstruct(StripeReconstructEvent{
          arrival, file, failed,
          static_cast<std::uint32_t>(scratch_reads_.size()), bytes});
      obs->on_request_degraded(RequestDegradedEvent{
          arrival, file, failed, failed, DegradedOutcome::kReconstructed,
          1.0});
    }
    Seconds completion{0.0};
    for (const StripeChunk& read : scratch_reads_) {
      completion = std::max(completion,
                            serve_on(read.disk, arrival, read.bytes, file));
    }
    return completion;
  }

  /// Book one surviving striped request's planned degraded chunk: the
  /// counters and events deferred from the planning pass.
  void emit_planned_degrade(Seconds arrival, FileId file,
                            const PlannedDegrade& pd) {
    SimObserver* const obs = ctx_.observer_;
    if (pd.outcome == DegradedOutcome::kRedirected) {
      ctx_.counters_.add(h_redirected_);
      if (obs != nullptr) {
        obs->on_request_degraded(RequestDegradedEvent{
            arrival, file, pd.intended, pd.served_by,
            DegradedOutcome::kRedirected, 1.0});
      }
      return;
    }
    ctx_.counters_.add(h_reconstructed_);
    if (obs != nullptr) {
      obs->on_stripe_reconstruct(StripeReconstructEvent{
          arrival, file, pd.intended, pd.sources, pd.bytes});
      obs->on_request_degraded(RequestDegradedEvent{
          arrival, file, pd.intended, pd.intended,
          DegradedOutcome::kReconstructed, 1.0});
    }
  }

  /// Parity bookkeeping at a fail-stop instant: count the failure as a
  /// data-loss event if it overlaps another failure the layout cannot
  /// survive (one event per new failure — the Markov model's absorbing
  /// transition), then start the paced background rebuild of everything
  /// placed on the disk.
  void on_parity_failure(Seconds at, DiskId disk) {
    for (DiskId other = 0; other < ctx_.disks_.size(); ++other) {
      if (other == disk || !ctx_.fault_.failed(other)) continue;
      if (scheme_->loses_data(disk, other)) {
        ctx_.counters_.add(h_data_loss_);
        break;
      }
    }
    if (!rebuild_on_ || rebuild_.rebuilding(disk)) return;
    Bytes total = 0;
    for (FileId f = 0; f < ctx_.placement_.size(); ++f) {
      if (ctx_.placement_[f] == disk) total += files_.by_id(f).size;
    }
    rebuild_.start(disk, at, total);
    ctx_.counters_.add(h_rebuilds_started_);
    if (ctx_.observer_ != nullptr) {
      ctx_.observer_->on_rebuild_start(RebuildStartEvent{at, disk, total});
    }
  }

  /// One internal rebuild serve on `d`: wake the disk if it is spun down
  /// (TransitionCause::kRebuild — the energy cost of staying protected),
  /// pay the transfer, and drop any pending idle check (the background-
  /// I/O precedent set by migrate/background_copy: no re-arm, the next
  /// foreground serve re-arms).
  void rebuild_io(DiskId d, Seconds at, Bytes bytes) {
    Disk& disk = ctx_.disks_[d];
    if (disk.speed() == DiskSpeed::kLow) {
      const Joules spin_before =
          ctx_.observer_ != nullptr ? disk.ledger().energy : Joules{0.0};
      const Seconds finish = disk.transition(at, DiskSpeed::kHigh);
      ctx_.counters_.add(h_rebuild_wakeups_);
      ctx_.emit_transition(d, DiskSpeed::kLow, DiskSpeed::kHigh, at, finish,
                           TransitionCause::kRebuild,
                           disk.ledger().energy - spin_before);
    }
    if (bytes > 0) disk.serve(at, bytes, /*internal=*/true);
    ctx_.cancel_idle_check(d);
  }

  /// Turn one due rebuild step into I/O: a read on each surviving stripe
  /// source plus the reconstructed write on the rebuilt disk (its ledger
  /// models the replacement spindle), all queued FCFS behind foreground
  /// traffic. A completing step returns the disk to service through the
  /// normal fault machinery — a synthetic kRecover at the same instant —
  /// so the observed downtime (DiskRecoverEvent) *is* the repair time.
  void run_rebuild_step(const RebuildScheduler::Step& step) {
    const Seconds at = step.time;
    scratch_sources_.clear();
    scheme_->rebuild_sources(ctx_, step.disk, step.index, scratch_sources_);
    SimObserver* const obs = ctx_.observer_;
    Joules energy_before{0.0};
    if (obs != nullptr) {
      energy_before = ctx_.disks_[step.disk].ledger().energy;
      for (const DiskId s : scratch_sources_) {
        energy_before += ctx_.disks_[s].ledger().energy;
      }
    }
    for (const DiskId s : scratch_sources_) {
      rebuild_io(s, at, step.bytes);
    }
    rebuild_io(step.disk, at, step.bytes);
    ctx_.counters_.add(h_rebuild_steps_);
    if (obs != nullptr) {
      Joules energy_after = ctx_.disks_[step.disk].ledger().energy;
      for (const DiskId s : scratch_sources_) {
        energy_after += ctx_.disks_[s].ledger().energy;
      }
      obs->on_rebuild_progress(RebuildProgressEvent{
          at, step.disk, step.done, step.total, energy_after - energy_before});
    }
    if (step.completes) {
      ctx_.counters_.add(h_rebuilds_completed_);
      if (obs != nullptr) {
        obs->on_rebuild_complete(RebuildCompleteEvent{
            at, step.disk, step.total, at - step.started});
      }
      apply_fault(FaultEvent{at, step.disk, FaultKind::kRecover, 1.0});
    }
  }

  /// Apply one plan event to the live FaultState; announce it (and bump
  /// the matching counter) only when it actually changed something —
  /// idempotent events stay invisible.
  void apply_fault(const FaultEvent& e) {
    const FaultState::ApplyResult applied = ctx_.fault_.apply(e);
    if (!applied.changed) return;
    SimObserver* const obs = ctx_.observer_;
    switch (e.kind) {
      case FaultKind::kFail:
        ctx_.counters_.add(h_faults_);
        if (obs != nullptr) {
          obs->on_disk_fail(
              DiskFailEvent{e.time, e.disk, FaultMode::kFailStop, 1.0});
        }
        if (parity_on_) on_parity_failure(e.time, e.disk);
        break;
      case FaultKind::kRecover:
        ctx_.counters_.add(h_recovers_);
        // The disk came back by external means (a plan kRecover) while a
        // rebuild was still copying — drop the now-moot rebuild.
        if (rebuild_on_ && rebuild_.abort(e.disk)) {
          ctx_.counters_.add(h_rebuilds_aborted_);
        }
        if (obs != nullptr) {
          obs->on_disk_recover(
              DiskRecoverEvent{e.time, e.disk, applied.downtime});
        }
        break;
      case FaultKind::kSlowdown:
        ctx_.counters_.add(h_slowdowns_);
        if (obs != nullptr) {
          obs->on_disk_fail(
              DiskFailEvent{e.time, e.disk, FaultMode::kSlowdown, e.factor});
        }
        break;
    }
  }

  /// Refresh the cached lower bound on the earliest pending deferred
  /// event (see ArrayContext::wake_hint_). Called after every slow-path
  /// drain; schedule_idle_check lowers the hint incrementally in between.
  void recompute_wake_hint() {
    Seconds hint = next_epoch_;
    if (ctx_.use_timer_) {
      if (!ctx_.idle_timer_.empty()) {
        hint = std::min(hint, ctx_.idle_timer_.next_time());
      }
    } else if (!ctx_.idle_events_.empty()) {
      hint = std::min(hint, ctx_.idle_events_.next_time());
    }
    if (ctx_.faults_on_) {
      const auto& events = faults_->events();
      if (fault_cursor_ < events.size()) {
        hint = std::min(hint, events[fault_cursor_].time);
      }
      if (rebuild_on_) {
        hint = std::min(hint, rebuild_.next_time());
      }
    }
    ctx_.wake_hint_ = hint;
  }

  /// Advance simulated time to `t`, interleaving plan events and rebuild
  /// steps with the deferred-event stream. Ordering at one instant: epoch
  /// work → fault events → rebuild steps → DPM idle checks (drain_until
  /// runs exclusive up to each fault/rebuild instant, then inclusive to
  /// `t`). The fault-free path collapses to plain drain_until.
  void advance_until(Seconds t) {
    if (ctx_.faults_on_) {
      const auto& events = faults_->events();
      for (;;) {
        const Seconds fault_next = fault_cursor_ < events.size()
                                       ? events[fault_cursor_].time
                                       : kNeverTime;
        const Seconds rebuild_next =
            rebuild_on_ ? rebuild_.next_time() : kNeverTime;
        const Seconds next = std::min(fault_next, rebuild_next);
        if (!(next <= t)) break;
        drain_until(next, /*inclusive=*/false);
        fire_epochs_until(next);
        ctx_.now_ = next;
        if (fault_next <= rebuild_next) {
          apply_fault(events[fault_cursor_]);
          ++fault_cursor_;
        } else {
          RebuildScheduler::Step step;
          if (rebuild_.pop_due(next, step)) run_rebuild_step(step);
        }
      }
    }
    drain_until(t);
  }

  void validate_placement() const {
    for (std::size_t f = 0; f < ctx_.placement_.size(); ++f) {
      if (ctx_.placement_[f] == kInvalidDisk) {
        throw std::logic_error("policy left file " + std::to_string(f) +
                               " unplaced");
      }
    }
  }

  void arm_initial_idle_checks() {
    for (DiskId d = 0; d < ctx_.disks_.size(); ++d) {
      ctx_.schedule_idle_check(d, Seconds{0.0});
    }
  }

  /// Process deferred events with time <= t (and epoch boundaries that
  /// precede them), in order. Two backends behind one drain interface:
  /// the per-disk timer heap (default; every popped deadline is live) and
  /// the event-queue fallback (pops are filtered by generation staleness).
  /// Stale queue events have no side effects beyond churn counters —
  /// fire_epochs_until is monotone in the popped time — so both backends
  /// interleave epochs, spin-downs and observer emissions identically.
  void drain_until(Seconds t, bool inclusive = true) {
    const auto due = [t, inclusive](Seconds next) {
      return inclusive ? next <= t : next < t;
    };
    if (ctx_.use_timer_) {
      auto& timer = ctx_.idle_timer_;
      while (!timer.empty() && due(timer.next_time())) {
        const auto deadline = timer.pop();
        PR_INVARIANT(!(deadline.time < ctx_.now_),
                     "drain_until: idle deadline fired in the past");
        fire_epochs_until(deadline.time);
        ctx_.now_ = deadline.time;
        handle_idle_check(deadline.time, deadline.disk);
      }
    } else {
      while (!ctx_.idle_events_.empty() &&
             due(ctx_.idle_events_.next_time())) {
        const auto event = ctx_.idle_events_.pop();
        PR_INVARIANT(!(event.time < ctx_.now_),
                     "drain_until: idle event fired in the past");
        fire_epochs_until(event.time);
        ctx_.now_ = event.time;
        ctx_.counters_.add(h_idle_checks_);
        if (ctx_.disks_[event.payload.disk].activity_generation() !=
            event.payload.generation) {
          ctx_.counters_.add(h_idle_stale_);
          continue;  // invalidated by a later service
        }
        handle_idle_check(event.time, event.payload.disk);
      }
    }
  }

  /// A live idle check for disk `d` fired at `at`: spin down if the disk
  /// has genuinely been idle past its (current) threshold.
  void handle_idle_check(Seconds at, DiskId d) {
    Disk& disk = ctx_.disks_[d];
    if (ctx_.use_timer_) ctx_.counters_.add(h_idle_checks_);
    if (!ctx_.dpm_[d].spin_down_when_idle) return;
    if (disk.speed() != DiskSpeed::kHigh) return;
    // The threshold may have grown since this check was scheduled (READ's
    // adaptive doubling), or the disk may still be working off queued
    // I/O: honour the *current* deadline. The strict `>` comparison on the
    // deadline (not on the elapsed idle time) guarantees any re-armed
    // event lies strictly in the future — comparing elapsed-vs-H instead
    // can re-arm an event at its own timestamp when floating-point
    // rounding makes (at − idle_since) dip just below H, which livelocks.
    const Seconds idle_since = disk.ready_time();
    const Seconds deadline = idle_since + ctx_.dpm_[d].idleness_threshold;
    if (deadline > at) {
      ctx_.counters_.add(h_idle_deferred_);
      if (ctx_.use_timer_) {
        ctx_.idle_timer_.arm(d, deadline, ctx_.idle_seq_++);
      } else {
        ctx_.idle_events_.push(
            deadline,
            ArrayContext::IdleCheck{d, ctx_.disks_[d].activity_generation()});
      }
      return;
    }
    if (!policy_.allow_spin_down(ctx_, d, at)) {
      ctx_.counters_.add(h_spin_vetoed_);
      return;
    }
    const Joules energy_before =
        ctx_.observer_ != nullptr ? disk.ledger().energy : Joules{0.0};
    const Seconds finish = disk.transition(at, DiskSpeed::kLow);
    ctx_.counters_.add(h_spin_downs_);
    ctx_.emit_transition(d, DiskSpeed::kHigh, DiskSpeed::kLow, at, finish,
                         TransitionCause::kDpmIdle,
                         disk.ledger().energy - energy_before);
  }

  void fire_epochs_until(Seconds t) {
    while (next_epoch_ <= t) {
      ctx_.now_ = next_epoch_;
      policy_.on_epoch(ctx_, next_epoch_);
      ctx_.counters_.add(h_epochs_);
#if PR_CONTRACTS_ENABLED
      // Epoch boundaries are the quiescent points where every disk's
      // ledger must conserve: each accounted instant lands in exactly one
      // bucket and energy never goes negative (this is what makes the
      // reported energy/AFR trustworthy between goldens).
      for (const Disk& disk : ctx_.disks_) {
        PR_INVARIANT(disk.ledger_conserves(),
                     "epoch boundary: disk ledger does not conserve");
      }
#endif
      if (ctx_.observer_ != nullptr) {
        // After the policy's boundary work (so its migrations precede the
        // epoch-close event) and before the counts reset.
        ctx_.observer_->on_epoch_end(
            EpochEndEvent{next_epoch_, epoch_index_, ctx_.epoch_requests_});
      }
      // Control closes the loop after the boundary's epoch-end event (its
      // ControlUpdateEvent documents itself as following EpochEndEvent)
      // and before the counts reset, so the policy's decayed counts it
      // reads are the ones on_epoch just produced.
      if (control_on_) control_step(next_epoch_);
      ++epoch_index_;
      std::fill(ctx_.epoch_counts_.begin(), ctx_.epoch_counts_.end(), 0);
      ctx_.epoch_requests_ = 0;
      next_epoch_ += epoch_len_;
    }
  }

  /// Control-mode admission at dispatch: measure the routed disk's FCFS
  /// backlog (how long the request would wait before service begins),
  /// fold it into the epoch window, and — when an admission window is
  /// configured — shed the request instead of queueing it unboundedly.
  /// A shed request is recorded, not served: no response-time sample, no
  /// completion event, no after_serve (the epoch popularity bump stands:
  /// demand existed even if unmet — same contract as a lost request).
  bool admit(const Request& req, DiskId primary) {
    const double backlog = std::max(
        0.0, (ctx_.disks_[primary].ready_time() - req.arrival).value());
    if (shed_window_ > 0.0 && backlog > shed_window_) {
      ctx_.counters_.add(h_ctl_shed_);
      ++ctl_epoch_shed_;
      return false;
    }
    if (backlog > ctl_epoch_backlog_) ctl_epoch_backlog_ = backlog;
    return true;
  }

  /// Close the epoch's control window: fold the observed latency / energy
  /// / backlog into the ControlLoop, actuate its knob decisions — DPM
  /// idleness thresholds here, the hot-zone size through
  /// Policy::on_control, the epoch length via the boundary stride — and
  /// announce the update to the observer. The energy window is the ledger
  /// delta between boundaries; ledgers close idle stretches lazily (on
  /// the next activity), so a window's spend can lag by a trailing idle
  /// stretch — deterministic, and it evens out across windows.
  void control_step(Seconds boundary) {
    const ControlConfig& cfg = config_.control;
    Joules energy_now{0.0};
    for (const Disk& disk : ctx_.disks_) energy_now += disk.ledger().energy;

    ControlInputs in;
    in.epoch_s = epoch_len_.value();
    in.requests = ctl_epoch_served_;
    in.mean_rt_s =
        ctl_epoch_served_ > 0
            ? ctl_epoch_rt_sum_ / static_cast<double>(ctl_epoch_served_)
            : 0.0;
    in.max_backlog_s = ctl_epoch_backlog_;
    in.energy_j = (energy_now - ctl_last_energy_).value();
    in.shed = ctl_epoch_shed_;

    const ControlDecision decision = control_.update(in);
    ctx_.counters_.add(h_ctl_updates_);

    if (decision.h_scale != 1.0) {
      // Rescale every DPM-managed disk's idleness threshold; disks the
      // policy left un-managed (cold zones, always-on disks) are not the
      // latency controller's to touch.
      bool scaled = false;
      for (DiskId d = 0; d < ctx_.disks_.size(); ++d) {
        if (!ctx_.dpm_[d].spin_down_when_idle) continue;
        const double h = ctx_.dpm_[d].idleness_threshold.value();
        const double stretched =
            std::clamp(h * decision.h_scale, cfg.h_min_s, cfg.h_max_s);
        if (stretched != h) {
          ctx_.set_idleness_threshold(d, Seconds{stretched});
          scaled = true;
        }
      }
      if (scaled) ctx_.counters_.add(h_ctl_h_scaled_);
    }

    int applied = 0;
    if (decision.hot_delta != 0) {
      applied = policy_.on_control(ctx_, decision, boundary);
      if (applied > 0) {
        ctx_.counters_.add(h_ctl_hot_grows_,
                           static_cast<std::uint64_t>(applied));
      } else if (applied < 0) {
        ctx_.counters_.add(h_ctl_hot_shrinks_,
                           static_cast<std::uint64_t>(-applied));
      }
    }

    if (decision.epoch_scale != 1.0) {
      const double stretched = std::clamp(
          epoch_len_.value() * decision.epoch_scale, cfg.epoch_min_s,
          cfg.epoch_max_s);
      if (stretched != epoch_len_.value()) {
        epoch_len_ = Seconds{stretched};
        ctx_.counters_.add(h_ctl_epoch_scaled_);
      }
    }

    if (ctx_.observer_ != nullptr) {
      ControlUpdateEvent event;
      event.time = boundary;
      event.epoch_index = epoch_index_;
      event.requests = ctl_epoch_served_;
      event.shed = ctl_epoch_shed_;
      event.mean_rt_s = in.mean_rt_s;
      event.max_backlog_s = in.max_backlog_s;
      event.energy_j = in.energy_j;
      event.h_scale = decision.h_scale;
      event.hot_delta = applied;
      event.epoch_scale = decision.epoch_scale;
      event.epoch_len_s = epoch_len_.value();
      ctx_.observer_->on_control_update(event);
    }

    ctl_last_energy_ = energy_now;
    ctl_epoch_served_ = 0;
    ctl_epoch_rt_sum_ = 0.0;
    ctl_epoch_backlog_ = 0.0;
    ctl_epoch_shed_ = 0;
  }

  void emit_run_start() {
    if (ctx_.observer_ == nullptr) return;
    RunStartEvent event;
    event.disk_count = ctx_.disks_.size();
    event.file_count = files_.size();
    event.epoch = config_.epoch;
    event.initial_speeds.reserve(ctx_.disks_.size());
    for (const Disk& d : ctx_.disks_) event.initial_speeds.push_back(d.speed());
    ctx_.observer_->on_run_start(event);
  }

  void finalize(Seconds horizon) {
    result_.policy_name = policy_.name();
    result_.horizon = horizon;
    result_.ledgers.reserve(ctx_.disks_.size());
    result_.telemetry.reserve(ctx_.disks_.size());
    Joules final_idle{0.0};
    for (auto& disk : ctx_.disks_) {
      const Joules before_close = disk.ledger().energy;
      disk.finish(horizon);
      final_idle += disk.ledger().energy - before_close;
      result_.ledgers.push_back(disk.ledger());
      result_.telemetry.push_back(
          extract_telemetry(disk, config_.temperature_attribution));
      result_.total_energy += disk.ledger().energy;
      result_.total_transitions += disk.ledger().transitions;
      result_.max_transitions_per_day =
          std::max(result_.max_transitions_per_day,
                   disk.ledger().press_transitions_per_day());
    }
    result_.migrations = ctx_.migrations_;
    result_.migration_bytes = ctx_.migration_bytes_;
    result_.counters = ctx_.counters_.snapshot();
    if (ctx_.observer_ != nullptr) {
      ctx_.observer_->on_run_end(RunEndEvent{
          horizon, static_cast<std::uint64_t>(result_.user_requests),
          result_.total_energy, final_idle});
    }
  }

  const SimConfig& config_;
  const FileSet& files_;
  RequestSource& source_;
  Policy& policy_;
  ArrayContext ctx_;
  /// Attached fault plan (nullptr or empty = fault-free fast path) and the
  /// index of its next unapplied event.
  const FaultPlan* faults_ = nullptr;
  std::size_t fault_cursor_ = 0;
  /// Resolved redundancy seam: the config-owned parity scheme (wins) or
  /// the policy's copy-set scheme; nullptr = degraded requests are lost.
  std::unique_ptr<RedundancyScheme> owned_scheme_;
  RedundancyScheme* scheme_ = nullptr;
  /// True when a parity scheme is live under an attached fault plan — the
  /// reconstruct / data-loss / rebuild machinery can fire.
  bool parity_on_ = false;
  bool rebuild_on_ = false;
  RebuildScheduler rebuild_;
  /// Per-request / per-step scratch (cleared before each use).
  std::vector<StripeChunk> scratch_reads_;
  std::vector<StripeChunk> plan_serves_;
  std::vector<PlannedDegrade> planned_degrades_;
  std::vector<DiskId> scratch_sources_;
  /// Whether the in-flight request hit an injected slowdown (and the worst
  /// factor across its chunks); drives the kSlowed emission.
  bool request_slowed_ = false;
  double request_slowdown_ = 1.0;
  // Feedback-control state; armed only when SimConfig::control.enabled.
  // epoch_len_ starts at config.epoch and only the epoch controller ever
  // moves it, so control-free runs keep today's fixed boundary stride.
  bool control_on_ = false;
  ControlLoop control_;
  double shed_window_ = 0.0;
  Seconds epoch_len_{0.0};
  std::uint64_t ctl_epoch_served_ = 0;
  double ctl_epoch_rt_sum_ = 0.0;
  double ctl_epoch_backlog_ = 0.0;
  std::uint64_t ctl_epoch_shed_ = 0;
  Joules ctl_last_energy_{0.0};
  Seconds next_epoch_{0.0};
  std::uint64_t epoch_index_ = 0;
  SimResult result_;
  /// Disks served during the current request (usually one; several for
  /// striped requests), pending idle-check arming.
  std::vector<DiskId> touched_;
  /// Accumulator for the in-flight request's observer event (backlog,
  /// service-time and energy deltas across its chunks); only maintained
  /// while an observer is attached.
  RequestCompleteEvent pending_;

  // Interned core-counter handles (hot-path bumps are one vector add).
  CounterRegistry::Handle h_epochs_;
  CounterRegistry::Handle h_idle_checks_;
  CounterRegistry::Handle h_idle_stale_;
  CounterRegistry::Handle h_idle_deferred_;
  CounterRegistry::Handle h_spin_downs_;
  CounterRegistry::Handle h_spin_vetoed_;
  CounterRegistry::Handle h_spin_ups_;
  // Fault counters; interned (and thus reported) only when a non-empty
  // FaultPlan is attached.
  CounterRegistry::Handle h_faults_ = 0;
  CounterRegistry::Handle h_recovers_ = 0;
  CounterRegistry::Handle h_slowdowns_ = 0;
  CounterRegistry::Handle h_lost_ = 0;
  CounterRegistry::Handle h_redirected_ = 0;
  CounterRegistry::Handle h_slowed_ = 0;
  // Redundancy counters; interned only when a parity scheme is live under
  // an attached fault plan (the rebuild set only with the engine on).
  CounterRegistry::Handle h_reconstructed_ = 0;
  CounterRegistry::Handle h_data_loss_ = 0;
  CounterRegistry::Handle h_rebuild_steps_ = 0;
  CounterRegistry::Handle h_rebuild_wakeups_ = 0;
  CounterRegistry::Handle h_rebuilds_started_ = 0;
  CounterRegistry::Handle h_rebuilds_completed_ = 0;
  CounterRegistry::Handle h_rebuilds_aborted_ = 0;
  // Control counters; interned only when SimConfig::control.enabled.
  CounterRegistry::Handle h_ctl_updates_ = 0;
  CounterRegistry::Handle h_ctl_shed_ = 0;
  CounterRegistry::Handle h_ctl_h_scaled_ = 0;
  CounterRegistry::Handle h_ctl_hot_grows_ = 0;
  CounterRegistry::Handle h_ctl_hot_shrinks_ = 0;
  CounterRegistry::Handle h_ctl_epoch_scaled_ = 0;
};

SimResult run_simulation(const SimConfig& config, const FileSet& files,
                         RequestSource& source, Policy& policy,
                         SimObserver* observer, const FaultPlan* faults) {
  validate(config.disk_params);
  if (faults != nullptr) faults->validate(config.disk_count);
  ArraySimulator sim(config, files, source, policy, observer, faults);
  return sim.run();
}

SimResult run_simulation(const SimConfig& config, const FileSet& files,
                         RequestSource& source, Policy& policy,
                         SimObserver* observer) {
  return run_simulation(config, files, source, policy, observer, nullptr);
}

SimResult run_simulation(const SimConfig& config, const FileSet& files,
                         RequestSource& source, Policy& policy) {
  return run_simulation(config, files, source, policy, nullptr, nullptr);
}

SimResult run_simulation(const SimConfig& config, const FileSet& files,
                         const Trace& trace, Policy& policy,
                         SimObserver* observer, const FaultPlan* faults) {
  // Upfront validation preserves the historical contract that a bad trace
  // throws before the policy runs initialize().
  if (!trace.is_sorted()) {
    throw std::invalid_argument("run_simulation: trace is not sorted");
  }
  for (const auto& r : trace.requests) {
    if (r.file == kInvalidFile || r.file >= files.size()) {
      throw std::invalid_argument(
          "run_simulation: trace references unknown file");
    }
  }
  TraceSource source(trace);
  return run_simulation(config, files, source, policy, observer, faults);
}

SimResult run_simulation(const SimConfig& config, const FileSet& files,
                         const Trace& trace, Policy& policy,
                         SimObserver* observer) {
  return run_simulation(config, files, trace, policy, observer, nullptr);
}

SimResult run_simulation(const SimConfig& config, const FileSet& files,
                         const Trace& trace, Policy& policy) {
  return run_simulation(config, files, trace, policy, nullptr, nullptr);
}

}  // namespace pr
