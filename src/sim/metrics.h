// metrics.h — everything a finished simulation reports. The paper's §5
// metrics are mean response time (user requests only), total energy, and
// the per-disk ESRRA telemetry PRESS turns into an array AFR; we addition-
// ally keep percentiles and per-disk ledgers because downstream users of a
// library need more than three scalars.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "disk/disk.h"
#include "disk/telemetry.h"
#include "util/stats.h"
#include "util/units.h"

namespace pr {

struct SimResult {
  std::string policy_name;

  /// User-request response times, in seconds (arrival -> completion).
  StreamingStats response_time;
  /// Reservoir for percentiles (p95/p99) over the same population.
  ReservoirSample response_time_sample{4096};

  Joules total_energy{0.0};
  /// Simulation horizon: max(last arrival, last completion); all ledgers
  /// are closed at this instant.
  Seconds horizon{0.0};

  std::size_t user_requests = 0;
  std::uint64_t migrations = 0;
  Bytes migration_bytes = 0;
  std::uint64_t total_transitions = 0;
  /// Highest per-disk transitions/day across the array (the quantity
  /// READ's cap S constrains).
  double max_transitions_per_day = 0.0;

  std::vector<DiskLedger> ledgers;
  std::vector<DiskTelemetry> telemetry;

  /// Policy-defined counters (e.g. MAID cache hits/misses).
  std::map<std::string, std::uint64_t> counters;

  [[nodiscard]] double mean_response_time_s() const {
    return response_time.mean();
  }
  [[nodiscard]] double energy_joules() const { return total_energy.value(); }

  /// Mean utilization across disks and its spread — READ's "more even
  /// utilization distribution" claim is checked against the spread.
  [[nodiscard]] double mean_utilization() const;
  [[nodiscard]] double utilization_stddev() const;
};

}  // namespace pr
