// fleet_sim.h — sharded fleet simulation: thousands of disks, hundreds of
// millions of requests, deterministic to the byte regardless of thread
// count.
//
// Model: a fleet is `shards` independent arrays of `shard.disk_count`
// disks each. Arrays do not share files or traffic (the paper's arrays are
// self-contained; a fleet is a building full of them), so shards simulate
// embarrassingly parallel on util/thread_pool and their SimResults merge
// afterwards. Determinism discipline is the scenario engine's, applied
// inside one run: every shard writes only its own indexed slot, per-shard
// seeds are SplitMix64-derived from the fleet base seed (never from thread
// identity), and the merge folds strictly in shard order — so threads=1
// and threads=N produce byte-identical merged results, counters, CSV and
// per-shard JSONL (test_fleet pins this).
//
// Fleet disk ids are `shard * disks_per_shard + local`, kept in 32 bits
// (DiskId) with an overflow-checked constructor (fleet_disk_count).
//
// Workload: each shard gets an independent synthetic stream — the config's
// request_count is the *fleet total*, split evenly across shards (first
// `total % shards` shards take one extra). By default shards synthesize
// requests on pull (SyntheticSource: bounded memory at any fleet size);
// materialize_fleet_workload() pre-generates every shard's trace once for
// replay-many benchmarking, byte-identical to the streamed path.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/observer.h"
#include "obs/time_series.h"
#include "sim/array_sim.h"
#include "sim/metrics.h"
#include "workload/synthetic.h"

namespace pr {

/// SplitMix64 finalizer (the same mixer pr::Rng and the scenario engine's
/// plan seeds use) — exposed so tests can predict per-shard seeds.
[[nodiscard]] constexpr std::uint64_t fleet_splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Shard `shard`'s independent workload seed, derived from the fleet base
/// seed. Pure function of (base, shard) — never of thread identity.
[[nodiscard]] constexpr std::uint64_t fleet_shard_seed(std::uint64_t base,
                                                       std::uint64_t shard) {
  return fleet_splitmix(fleet_splitmix(base) ^ shard);
}

/// Checked fleet geometry: `shards * disks_per_shard` as a DiskId, or
/// std::invalid_argument when either factor is zero or the product leaves
/// the 32-bit id space (kInvalidDisk is reserved). Every fleet-facing
/// entry point sizes through this, so >4096-disk configs that used to
/// overflow int-typed indices fail loudly instead.
[[nodiscard]] std::uint32_t fleet_disk_count(std::uint32_t shards,
                                             std::uint32_t disks_per_shard);

struct FleetConfig {
  /// Per-shard array configuration; `shard.disk_count` is disks PER SHARD.
  SimConfig shard;
  std::uint32_t shards = 1;
  /// Worker threads for the shard fan-out: 1 (default) runs inline on the
  /// caller's thread, 0 = hardware concurrency, N = N workers. The thread
  /// count is a throughput knob only — results are byte-identical.
  unsigned threads = 1;
  /// Synthetic workload template. `workload.request_count` is the fleet
  /// total (split across shards); `workload.seed` is ignored in favour of
  /// fleet_shard_seed(base_seed, shard).
  SyntheticWorkloadConfig workload;
  std::uint64_t base_seed = 42;
  /// Policy factory — one fresh instance per shard (policies hold
  /// per-array state, so sharing one across shards would corrupt both).
  std::function<std::unique_ptr<Policy>()> policy;
  /// Optional per-shard fault plan (composes [fault] with [fleet]). Called
  /// once per shard, possibly concurrently — must be a pure function of
  /// the shard index.
  std::function<FaultPlan(std::uint32_t shard)> shard_faults;
  /// Optional per-shard observer factory (JSONL writers, recorders, ...).
  /// Same purity/concurrency contract as shard_faults; the observer lives
  /// for exactly that shard's run.
  std::function<std::unique_ptr<SimObserver>(std::uint32_t shard)>
      shard_observer;
};

/// Per-shard synthetic workloads, materialized once for replay-many use
/// (benchmarks re-running the same fleet day; generation costs more than
/// simulation at fleet scale). Index = shard.
struct FleetWorkload {
  std::vector<SyntheticWorkload> shards;
};

struct FleetResult {
  /// Shard-order merge of every shard's SimResult: scalars summed,
  /// horizon/max'd, response-time stats Welford-merged, the percentile
  /// reservoir folded deterministically, ledgers/telemetry concatenated
  /// (fleet disk id = shard * disks_per_shard + local), counters summed
  /// by name. Scoreable by PressModel like any single-array result.
  SimResult merged;
  /// The unmerged per-shard results, in shard order.
  std::vector<SimResult> shards;
  std::uint32_t shard_count = 0;
  std::uint32_t disks_per_shard = 0;

  [[nodiscard]] std::uint32_t fleet_disks() const {
    return shard_count * disks_per_shard;
  }
};

/// The per-shard workload config run_fleet() uses for shard `shard` —
/// exposed so callers (benchmarks, tests) can reproduce a single shard's
/// stream exactly.
[[nodiscard]] SyntheticWorkloadConfig fleet_shard_workload(
    const FleetConfig& config, std::uint32_t shard);

/// Generate every shard's workload up front (parallel under
/// config.threads). Draining shard s of the result equals the stream
/// shard s sees in run_fleet(config) — byte-identical either way.
[[nodiscard]] FleetWorkload materialize_fleet_workload(
    const FleetConfig& config);

/// Run the fleet, synthesizing each shard's requests on pull (bounded
/// memory at any fleet size). Throws std::invalid_argument for bad
/// geometry and std::logic_error when no policy factory is set.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config);

/// Run the fleet over pre-materialized workloads (replay-many mode).
/// `workload.shards.size()` must equal `config.shards`.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config,
                                    const FleetWorkload& workload);

/// Fleet-wide windowed telemetry merged from per-shard recorders: window
/// `w` of fleet disk `s * disks_per_shard + d` is `shards[s]->at(w, d)`.
/// Shards may materialize different window counts (a quiet shard's run
/// ends earlier); short shards read as zero samples in the tail windows.
struct FleetTimeSeries {
  Seconds window{60.0};
  std::uint32_t disks = 0;
  /// windows[w][fleet disk]
  std::vector<std::vector<WindowSample>> windows;

  /// Same long-form schema as TimeSeriesRecorder::write_csv.
  void write_csv(std::ostream& out) const;
};

/// Merge per-shard recorders by window (all must share the same window
/// length and disks_per_shard disk count; std::invalid_argument
/// otherwise).
[[nodiscard]] FleetTimeSeries merge_time_series(
    const std::vector<const TimeSeriesRecorder*>& shards,
    std::uint32_t disks_per_shard);

}  // namespace pr
