#include "sim/metrics.h"

#include <cmath>

namespace pr {

double SimResult::mean_utilization() const {
  if (ledgers.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& l : ledgers) sum += l.utilization();
  return sum / static_cast<double>(ledgers.size());
}

double SimResult::utilization_stddev() const {
  if (ledgers.size() < 2) return 0.0;
  const double mean = mean_utilization();
  double m2 = 0.0;
  for (const auto& l : ledgers) {
    const double d = l.utilization() - mean;
    m2 += d * d;
  }
  return std::sqrt(m2 / static_cast<double>(ledgers.size() - 1));
}

}  // namespace pr
