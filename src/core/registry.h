// registry.h — name-based construction of every policy the library ships.
// Before this registry, each bench/example re-declared the same factory
// lambdas; now `pr::policies::make("read")` is the single spelling, and
// `names()` lets tools (CLIs, sweep drivers, dashboards) enumerate what is
// available without recompiling.
//
// Policies are also *parameterized* through the registry: every tunable a
// policy's config struct exposes is registered as a named knob, and
// `make(name, params)` applies a ParamMap of them — the registry is the
// single plugin surface, so a scenario file (src/exp/scenario.h) or a CLI
// flag can reach any knob without a recompiled switch statement.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "util/param_map.h"

namespace pr::policies {

/// One documented knob of a registered policy.
struct ParamInfo {
  std::string name;           ///< key accepted in a ParamMap
  std::string default_value;  ///< textual default (valid input to make())
  std::string description;    ///< one-line doc for --help / scenario docs
};

/// Factory for the policy registered under `name` (canonical names are
/// lowercase; lookup is case-insensitive and accepts the aliases below).
/// Throws std::invalid_argument for unknown names, listing the valid ones.
[[nodiscard]] PolicyFactory make(std::string_view name);

/// Parameterized factory: `params` keys must be a subset of
/// `param_names(name)` — an unknown key throws std::invalid_argument
/// listing the valid ones. Values are parsed strictly when the factory
/// runs (full-token, see util/parse.h); absent keys keep the config
/// struct's defaults, so an empty ParamMap is identical to make(name).
[[nodiscard]] PolicyFactory make(std::string_view name, ParamMap params);

/// True when `name` is registered (case-insensitive; aliases count).
[[nodiscard]] bool contains(std::string_view name);

/// Canonical registered names, sorted.
[[nodiscard]] std::vector<std::string> names();

/// Historical/CLI spellings accepted by make(): (alias, canonical) pairs.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> aliases();

/// The documented knobs of `name` (empty for knob-less policies such as
/// "static"). Throws std::invalid_argument for unknown names.
[[nodiscard]] std::vector<ParamInfo> param_info(std::string_view name);

/// Just the knob names of `name`, in registration order.
[[nodiscard]] std::vector<std::string> param_names(std::string_view name);

}  // namespace pr::policies
