// registry.h — name-based construction of every policy the library ships.
// Before this registry, each bench/example re-declared the same factory
// lambdas; now `pr::policies::make("read")` is the single spelling, and
// `names()` lets tools (CLIs, sweep drivers, dashboards) enumerate what is
// available without recompiling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"

namespace pr::policies {

/// Factory for the policy registered under `name` (canonical names are
/// lowercase; lookup is case-insensitive). Throws std::invalid_argument
/// for unknown names, listing the valid ones.
[[nodiscard]] PolicyFactory make(std::string_view name);

/// True when `name` is registered (case-insensitive).
[[nodiscard]] bool contains(std::string_view name);

/// Canonical registered names, sorted.
[[nodiscard]] std::vector<std::string> names();

}  // namespace pr::policies
