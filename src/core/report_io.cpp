#include "core/report_io.h"

#include <fstream>
#include <iomanip>
#include <locale>
#include <sstream>

#include "util/fmt.h"

namespace pr {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex.imbue(std::locale::classic());
          hex << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c));
          out += hex.str();
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

class JsonWriter {
 public:
  // Floating values go through util/fmt.h (std::to_chars, precision 17):
  // same bytes as the precision(17) ostream formatting this replaced, but
  // immune to whatever global locale the host process installed. The
  // classic locale keeps the integer fields free of grouping separators.
  explicit JsonWriter(std::ostream& out) : out_(out) {
    out_.imbue(std::locale::classic());
  }

  void key(const std::string& name) {
    comma();
    out_ << '"' << json_escape(name) << "\":";
    pending_comma_ = false;
  }
  void value(double v) { scalar() << format_double(v, 17); }
  void value(std::uint64_t v) { scalar() << v; }
  void value(const std::string& v) {
    scalar() << '"' << json_escape(v) << '"';
  }
  void open_object() { open('{'); }
  void close_object() { close('}'); }
  void open_array() { open('['); }
  void close_array() { close(']'); }

 private:
  std::ostream& scalar() {
    comma();
    pending_comma_ = true;
    return out_;
  }
  void open(char c) {
    comma();
    out_ << c;
    pending_comma_ = false;
  }
  void close(char c) {
    out_ << c;
    pending_comma_ = true;
  }
  void comma() {
    if (pending_comma_) out_ << ',';
  }

  std::ostream& out_;
  bool pending_comma_ = false;
};

}  // namespace

void write_json(const SystemReport& report, std::ostream& out) {
  JsonWriter w(out);
  const SimResult& sim = report.sim;
  w.open_object();
  w.key("policy");
  w.value(sim.policy_name);
  w.key("requests");
  w.value(static_cast<std::uint64_t>(sim.user_requests));
  w.key("mean_response_time_s");
  w.value(sim.mean_response_time_s());
  w.key("p95_response_time_s");
  w.value(sim.response_time_sample.quantile(0.95));
  w.key("p99_response_time_s");
  w.value(sim.response_time_sample.quantile(0.99));
  w.key("energy_joules");
  w.value(sim.energy_joules());
  w.key("horizon_s");
  w.value(sim.horizon.value());
  w.key("total_transitions");
  w.value(sim.total_transitions);
  w.key("max_transitions_per_day");
  w.value(sim.max_transitions_per_day);
  w.key("migrations");
  w.value(sim.migrations);
  w.key("migration_bytes");
  w.value(static_cast<std::uint64_t>(sim.migration_bytes));
  w.key("array_afr");
  w.value(report.array_afr);
  w.key("worst_disk");
  w.value(static_cast<std::uint64_t>(report.worst_disk));

  w.key("counters");
  w.open_object();
  for (const auto& [name, count] : sim.counters) {
    w.key(name);
    w.value(count);
  }
  w.close_object();

  w.key("disks");
  w.open_array();
  for (std::size_t d = 0; d < sim.telemetry.size(); ++d) {
    const auto& t = sim.telemetry[d];
    const auto& l = sim.ledgers[d];
    w.open_object();
    w.key("disk");
    w.value(static_cast<std::uint64_t>(t.disk));
    w.key("temperature_c");
    w.value(t.temperature.value());
    w.key("utilization");
    w.value(t.utilization);
    w.key("transitions_per_day");
    w.value(t.transitions_per_day);
    w.key("busy_s");
    w.value(l.busy_time.value());
    w.key("idle_s");
    w.value(l.idle_time.value());
    w.key("transition_s");
    w.value(l.transition_time.value());
    w.key("energy_joules");
    w.value(l.energy.value());
    w.key("requests");
    w.value(l.requests);
    w.key("internal_ops");
    w.value(l.internal_ops);
    if (d < report.disk_press.size()) {
      const auto& b = report.disk_press[d];
      w.key("afr");
      w.open_object();
      w.key("temperature");
      w.value(b.temperature_afr);
      w.key("utilization");
      w.value(b.utilization_afr);
      w.key("frequency");
      w.value(b.frequency_afr);
      w.key("combined");
      w.value(b.combined_afr);
      w.close_object();
    }
    w.close_object();
  }
  w.close_array();
  w.close_object();
  out << "\n";
}

std::string to_json(const SystemReport& report) {
  std::ostringstream out;
  write_json(report, out);
  return out.str();
}

void write_json_file(const SystemReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_json_file: cannot open " + path);
  write_json(report, out);
  if (!out) throw std::runtime_error("write_json_file: write failed " + path);
}

}  // namespace pr
