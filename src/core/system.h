// system.h — the report types for a scored run: configure an array, a
// workload and a policy; get back the paper's three evaluation metrics
// (mean response time, energy, PRESS array AFR) plus full per-disk detail.
//
// Typical use (see examples/quickstart.cpp) goes through the session:
//
//   auto workload = pr::generate_workload(pr::worldcup98_light_config());
//   pr::SystemConfig config;
//   config.sim.disk_count = 8;
//   pr::SystemReport report = pr::SimulationSession(config)
//                                 .with_workload(workload)
//                                 .with_policy("read")
//                                 .run();
//   std::cout << report.summary();
#pragma once

#include <string>

#include "press/press_model.h"
#include "sim/array_sim.h"

namespace pr {

struct SystemConfig {
  SystemConfig() { sim.disk_params = two_speed_cheetah(); }

  SimConfig sim;
  PressConfig press;
};

/// A SimResult augmented with the PRESS reliability verdict.
struct SystemReport {
  SimResult sim;
  /// Per-disk AFR breakdowns (index = disk id).
  std::vector<PressBreakdown> disk_press;
  /// Array AFR = worst disk (§3.5).
  double array_afr = 0.0;
  /// Id of the disk that determines the array AFR.
  DiskId worst_disk = 0;

  /// Human-readable multi-line summary (policy, RT, energy, AFR).
  [[nodiscard]] std::string summary() const;
};

/// Score an already-run simulation (e.g. to re-score one run under several
/// PRESS integrator strategies, bench ABL3).
[[nodiscard]] SystemReport score(const PressModel& press, SimResult sim);

}  // namespace pr
