#include "core/session.h"

#include <stdexcept>

#include "core/registry.h"

namespace pr {

SimulationSession::SimulationSession(SystemConfig config)
    : config_(std::move(config)) {}

SimulationSession& SimulationSession::with_workload(const FileSet& files,
                                                    const Trace& trace) {
  files_ = &files;
  trace_ = &trace;
  source_ = nullptr;
  synthetic_.reset();
  return *this;
}

SimulationSession& SimulationSession::with_source(const FileSet& files,
                                                  RequestSource& source) {
  files_ = &files;
  source_ = &source;
  trace_ = nullptr;
  synthetic_.reset();
  return *this;
}

SimulationSession& SimulationSession::with_workload(
    const SyntheticWorkload& workload) {
  return with_workload(workload.files, workload.trace);
}

SimulationSession& SimulationSession::with_workload(
    const SyntheticWorkloadConfig& workload) {
  synthetic_ = workload;
  files_ = nullptr;
  trace_ = nullptr;
  source_ = nullptr;
  return *this;
}

SimulationSession& SimulationSession::with_fleet(std::uint32_t shards,
                                                 std::uint32_t disks_per_shard,
                                                 unsigned threads) {
  (void)fleet_disk_count(shards, disks_per_shard);  // geometry check
  fleet_shards_ = shards;
  fleet_threads_ = threads;
  config_.sim.disk_count = disks_per_shard;
  return *this;
}

SimulationSession& SimulationSession::with_policy(std::string_view name) {
  factory_ = policies::make(name);
  owned_policy_.reset();
  borrowed_policy_ = nullptr;
  return *this;
}

SimulationSession& SimulationSession::with_policy(
    std::unique_ptr<Policy> policy) {
  if (policy == nullptr) {
    throw std::invalid_argument("SimulationSession::with_policy: null policy");
  }
  owned_policy_ = std::move(policy);
  factory_ = nullptr;
  borrowed_policy_ = nullptr;
  return *this;
}

SimulationSession& SimulationSession::with_policy(Policy& policy) {
  borrowed_policy_ = &policy;
  factory_ = nullptr;
  owned_policy_.reset();
  return *this;
}

SimulationSession& SimulationSession::with_observer(SimObserver& observer) {
  observers_.add(observer);
  return *this;
}

SimulationSession& SimulationSession::with_faults(const FaultPlan& plan) {
  faults_ = &plan;
  return *this;
}

SimulationSession& SimulationSession::with_disks(std::size_t count) {
  config_.sim.disk_count = count;
  return *this;
}

SimulationSession& SimulationSession::with_epoch(Seconds epoch) {
  config_.sim.epoch = epoch;
  return *this;
}

SystemReport SimulationSession::run() {
  if (fleet_shards_ > 0) {
    if (!synthetic_) {
      throw std::logic_error(
          "SimulationSession::run: fleet mode needs a "
          "SyntheticWorkloadConfig workload (with_workload(config))");
    }
    if (!factory_) {
      throw std::logic_error(
          "SimulationSession::run: fleet mode needs a name-based policy "
          "(with_policy(name)) so each shard gets a fresh instance");
    }
    if (!observers_.empty() || faults_ != nullptr) {
      throw std::logic_error(
          "SimulationSession::run: observers/faults are per-array; use "
          "run_fleet() with FleetConfig::shard_observer/shard_faults");
    }
    FleetConfig fleet;
    fleet.shard = config_.sim;
    fleet.shards = fleet_shards_;
    fleet.threads = fleet_threads_;
    fleet.workload = *synthetic_;
    fleet.base_seed = synthetic_->seed;
    fleet.policy = factory_;
    return score(PressModel{config_.press},
                 std::move(run_fleet(fleet).merged));
  }
  if (synthetic_ && source_ == nullptr) {
    SyntheticSource source(*synthetic_);
    // Re-enter through the streaming path with the temporary source (the
    // `source_ == nullptr` guard stops the recursion); the pointers are
    // restored so the session stays re-runnable with a fresh source.
    files_ = &source.files();
    source_ = &source;
    SystemReport report = run();
    files_ = nullptr;
    source_ = nullptr;
    return report;
  }
  if (files_ == nullptr || (trace_ == nullptr && source_ == nullptr)) {
    throw std::logic_error("SimulationSession::run: no workload configured");
  }
  std::unique_ptr<Policy> fresh;
  Policy* policy = borrowed_policy_;
  if (policy == nullptr && owned_policy_ != nullptr) {
    policy = owned_policy_.get();
  }
  if (policy == nullptr && factory_) {
    fresh = factory_();
    policy = fresh.get();
  }
  if (policy == nullptr) {
    throw std::logic_error("SimulationSession::run: no policy configured");
  }
  // Skip the fan-out shim when 0 or 1 observers are attached.
  SimObserver* observer = observers_.empty()
                              ? nullptr
                              : (observers_.sole() != nullptr
                                     ? observers_.sole()
                                     : static_cast<SimObserver*>(&observers_));
  SimResult sim =
      source_ != nullptr
          ? run_simulation(config_.sim, *files_, *source_, *policy, observer,
                           faults_)
          : run_simulation(config_.sim, *files_, *trace_, *policy, observer,
                           faults_);
  return score(PressModel{config_.press}, std::move(sim));
}

}  // namespace pr
