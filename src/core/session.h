// session.h — the library's front door. A SimulationSession gathers
// everything one run needs — config, workload, policy, observers — with a
// fluent builder, then runs the simulation and scores it with PRESS:
//
//   pr::TimeSeriesRecorder timeline{pr::Seconds{60.0}};
//   auto report = pr::SimulationSession(config)
//                     .with_workload(workload)
//                     .with_policy("read")
//                     .with_observer(timeline)
//                     .run();
//
// Every code path routes through a session — the old bare evaluate()
// wrapper in core/system.h was removed after its call sites migrated.
#pragma once

#include <memory>
#include <string_view>

#include <optional>

#include "core/experiment.h"
#include "core/system.h"
#include "fault/fault_plan.h"
#include "obs/observer.h"
#include "sim/fleet_sim.h"
#include "workload/synthetic.h"

namespace pr {

class SimulationSession {
 public:
  explicit SimulationSession(SystemConfig config = {});

  /// Point the session at a workload. The files/trace must outlive run().
  SimulationSession& with_workload(const FileSet& files, const Trace& trace);
  SimulationSession& with_workload(const SyntheticWorkload& workload);

  /// Point the session at a synthetic workload *template* (copied). The
  /// only workload form fleet mode accepts — each shard derives its own
  /// stream from it — and also usable single-array (the session
  /// synthesizes on pull via SyntheticSource).
  SimulationSession& with_workload(const SyntheticWorkloadConfig& workload);

  /// Switch the session to fleet mode: `shards` independent arrays of
  /// `disks_per_shard` disks fanned over `threads` workers (1 = inline,
  /// 0 = hardware concurrency; the knob never changes result bytes).
  /// Fleet mode requires a name-based policy (with_policy(name), so every
  /// shard gets a fresh instance) and a SyntheticWorkloadConfig workload;
  /// observers and fault plans are per-array concerns — use run_fleet()
  /// and FleetConfig::shard_observer / shard_faults directly for those.
  /// Throws std::invalid_argument for bad geometry (zero factors or more
  /// than 2^32-1 total disks).
  SimulationSession& with_fleet(std::uint32_t shards,
                                std::uint32_t disks_per_shard,
                                unsigned threads = 1);

  /// Point the session at a streaming workload: `files` is the universe,
  /// `source` produces the requests (trace::open, SyntheticSource, or any
  /// custom RequestSource). Both must outlive run(). Sources are
  /// single-pass, so re-running the session requires a fresh source.
  SimulationSession& with_source(const FileSet& files, RequestSource& source);

  /// Choose the policy by registry name (see core/registry.h; throws
  /// std::invalid_argument for unknown names)...
  SimulationSession& with_policy(std::string_view name);
  /// ...or hand over a constructed instance (owned)...
  SimulationSession& with_policy(std::unique_ptr<Policy> policy);
  /// ...or borrow one the caller keeps alive (lets tests inspect policy
  /// state after the run).
  SimulationSession& with_policy(Policy& policy);

  /// Attach an observer (repeatable; callbacks fan out in attachment
  /// order). The observer must outlive run().
  SimulationSession& with_observer(SimObserver& observer);

  /// Attach a fault-injection plan (fault/fault_plan.h). The plan must
  /// outlive run(); an empty plan is byte-identical to not attaching one.
  SimulationSession& with_faults(const FaultPlan& plan);

  // Conveniences for the two most-tweaked knobs.
  SimulationSession& with_disks(std::size_t count);
  SimulationSession& with_epoch(Seconds epoch);

  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] SystemConfig& config() { return config_; }

  /// Run the simulation and score it with PRESS. Throws std::logic_error
  /// when no workload or policy was configured. May be called repeatedly;
  /// each call builds a fresh policy instance when the policy was given by
  /// name, and reuses the same instance otherwise.
  [[nodiscard]] SystemReport run();

 private:
  SystemConfig config_;
  const FileSet* files_ = nullptr;
  const Trace* trace_ = nullptr;
  RequestSource* source_ = nullptr;         // streaming workload
  std::optional<SyntheticWorkloadConfig> synthetic_;  // template workload
  std::uint32_t fleet_shards_ = 0;          // 0 = single-array mode
  unsigned fleet_threads_ = 1;
  PolicyFactory factory_;                   // name-based (fresh per run)
  std::unique_ptr<Policy> owned_policy_;    // adopted instance
  Policy* borrowed_policy_ = nullptr;       // caller-owned instance
  ObserverList observers_;
  const FaultPlan* faults_ = nullptr;       // caller-owned plan
};

}  // namespace pr
