#include "core/system.h"

#include <sstream>

#include "util/table.h"

namespace pr {

SystemReport score(const PressModel& press, SimResult sim) {
  SystemReport report;
  report.sim = std::move(sim);
  report.disk_press.reserve(report.sim.telemetry.size());
  for (const auto& t : report.sim.telemetry) {
    report.disk_press.push_back(press.breakdown(t));
  }
  for (std::size_t d = 0; d < report.disk_press.size(); ++d) {
    if (report.disk_press[d].combined_afr > report.array_afr) {
      report.array_afr = report.disk_press[d].combined_afr;
      report.worst_disk = static_cast<DiskId>(d);
    }
  }
  return report;
}

std::string SystemReport::summary() const {
  std::ostringstream out;
  out << "policy: " << sim.policy_name << "\n"
      << "  requests:          " << sim.user_requests << "\n"
      << "  mean response:     " << num(sim.mean_response_time_s() * 1e3, 3)
      << " ms  (p95 " << num(sim.response_time_sample.quantile(0.95) * 1e3, 3)
      << " ms, p99 " << num(sim.response_time_sample.quantile(0.99) * 1e3, 3)
      << " ms)\n"
      << "  energy:            " << si(sim.energy_joules()) << "J\n"
      << "  array AFR (PRESS): " << pct(array_afr, 2) << "  (worst disk "
      << worst_disk << ")\n"
      << "  transitions:       " << sim.total_transitions << " total, max "
      << num(sim.max_transitions_per_day, 1) << "/day on one disk\n"
      << "  migrations:        " << sim.migrations << " ("
      << si(static_cast<double>(sim.migration_bytes)) << "B)\n"
      << "  mean utilization:  " << pct(sim.mean_utilization(), 1)
      << " (stddev " << pct(sim.utilization_stddev(), 1) << ")\n";
  for (const auto& [key, value] : sim.counters) {
    out << "  " << key << ": " << value << "\n";
  }
  return out.str();
}

}  // namespace pr
