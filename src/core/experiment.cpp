#include "core/experiment.h"

#include <cmath>
#include <stdexcept>

#include "core/session.h"
#include "util/thread_pool.h"

namespace pr {

std::vector<SweepCell> run_sweep(
    const SweepConfig& config,
    const std::vector<std::pair<std::string, PolicyFactory>>& policies,
    const std::vector<NamedWorkload>& workloads) {
  if (policies.empty() || workloads.empty() || config.disk_counts.empty()) {
    throw std::invalid_argument("run_sweep: empty axis");
  }
  for (const auto& w : workloads) {
    if (w.files == nullptr || w.trace == nullptr) {
      throw std::invalid_argument("run_sweep: workload '" + w.name +
                                  "' missing files/trace");
    }
  }

  struct CellSpec {
    std::size_t policy_idx;
    std::size_t workload_idx;
    std::size_t disk_count;
  };
  std::vector<CellSpec> specs;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      for (std::size_t n : config.disk_counts) {
        specs.push_back({p, w, n});
      }
    }
  }

  std::vector<SweepCell> cells(specs.size());
  ThreadPool pool(config.threads);
  pool.parallel_for(specs.size(), [&](std::size_t i) {
    const CellSpec& spec = specs[i];
    const auto& [policy_name, factory] = policies[spec.policy_idx];
    const NamedWorkload& workload = workloads[spec.workload_idx];

    SystemConfig cell_config = config.base;
    cell_config.sim.disk_count = spec.disk_count;

    auto policy = factory();
    SweepCell cell;
    cell.policy = policy_name;
    cell.workload = workload.name;
    cell.disk_count = spec.disk_count;
    cell.report = SimulationSession(cell_config)
                      .with_workload(*workload.files, *workload.trace)
                      .with_policy(*policy)
                      .run();
    cells[i] = std::move(cell);
  });
  return cells;
}

double improvement(double ours, double baseline) {
  // Degenerate inputs (zero baseline, NaN/inf from an empty or failed
  // cell) would yield NaN/±inf here and poison every downstream average;
  // report "no improvement" for them instead.
  if (!std::isfinite(ours) || !std::isfinite(baseline) || baseline == 0.0) {
    return 0.0;
  }
  return (baseline - ours) / baseline;
}

}  // namespace pr
