// report_io.h — machine-readable export of simulation reports. The ASCII
// tables serve humans; toolchains (dashboards, regression trackers,
// plotting scripts) get JSON. Only an emitter is provided — the library
// never needs to parse its own reports back.
#pragma once

#include <iosfwd>
#include <string>

#include "core/system.h"

namespace pr {

/// JSON-escape a string (control characters, quotes, backslashes).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Serialize a full report: run-level metrics, per-disk telemetry and the
/// PRESS breakdowns. Stable key order; numbers in full precision.
[[nodiscard]] std::string to_json(const SystemReport& report);

/// Write to a stream / file (throws std::runtime_error on I/O failure).
void write_json(const SystemReport& report, std::ostream& out);
void write_json_file(const SystemReport& report, const std::string& path);

}  // namespace pr
