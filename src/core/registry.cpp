#include "core/registry.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <memory>
#include <span>
#include <stdexcept>

#include "policy/drpm_policy.h"
#include "policy/hibernator_policy.h"
#include "policy/maid_policy.h"
#include "policy/online_read_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "policy/replication.h"
#include "policy/static_policy.h"
#include "policy/striped_read_policy.h"
#include "policy/striping.h"

namespace pr::policies {

namespace {

struct ParamSpec {
  const char* name;
  const char* default_value;
  const char* description;
};

// READ's knobs appear standalone and embedded (replicated/striped READ
// wrap a full ReadConfig), so they are shared.
constexpr std::array<ParamSpec, 5> kReadParams = {{
    {"theta", "0", "Zipf skew θ; 0 = estimate from the file set"},
    {"cap", "40", "daily speed-transition budget S per disk"},
    {"threshold", "10", "initial idleness threshold H (seconds)"},
    {"theta_b", "0.2", "fraction-of-files point where θ is measured"},
    {"adaptive_threshold", "true",
     "double H once half the daily budget is spent (Fig. 6 l.20-24)"},
}};

constexpr std::array<ParamSpec, 2> kDrpmParams = {{
    {"threshold", "15", "idle time before dropping to low speed (seconds)"},
    {"promotion_backlog", "0.05",
     "backlog (seconds) promoting a low-speed disk back to high"},
}};

constexpr std::array<ParamSpec, 2> kHibernatorParams = {{
    {"response_target", "0.02",
     "mean-response-time SLA (seconds); exceeding forces all-high"},
    {"park_load_fraction", "0.5",
     "park a disk at low speed below this fraction of a fair load share"},
}};

constexpr std::array<ParamSpec, 3> kMaidParams = {{
    {"cache_disks", "0", "cache disk count; 0 = max(1, disks/4)"},
    {"threshold", "15", "data-disk idleness threshold (seconds)"},
    {"cache_capacity_fraction", "1",
     "cache byte budget as a fraction of the cache disks' capacity"},
}};

constexpr std::array<ParamSpec, 3> kPdcParams = {{
    {"threshold", "60", "idleness threshold (seconds)"},
    {"load_budget", "0.7",
     "per-disk load budget as a fraction of one disk's epoch capacity"},
    {"concentration_fraction", "0.8",
     "cumulative access fraction defining the migrated popular head"},
}};

constexpr std::array<ParamSpec, 7> kOnlineReadParams = {{
    kReadParams[0],
    kReadParams[1],
    kReadParams[2],
    kReadParams[3],
    kReadParams[4],
    {"promote_margin", "0",
     "decayed-count headroom above the bar before an online promotion"},
    {"decay_shift", "1",
     "per-epoch right-shift of the cumulative counts; 0 = no decay"},
}};

constexpr std::array<ParamSpec, 7> kReplicatedReadParams = {{
    {"replicas", "2", "copies per replicated file, including the primary"},
    {"top_files", "64", "how many of the hottest files get replicas"},
    kReadParams[0],
    kReadParams[1],
    kReadParams[2],
    kReadParams[3],
    kReadParams[4],
}};

constexpr std::array<ParamSpec, 6> kStripedReadParams = {{
    {"stripe_unit", "524288",
     "files larger than this many bytes are striped over the hot zone"},
    kReadParams[0],
    kReadParams[1],
    kReadParams[2],
    kReadParams[3],
    kReadParams[4],
}};

constexpr std::array<ParamSpec, 1> kStripingParams = {{
    {"stripe_unit", "524288", "RAID-0 stripe unit in bytes"},
}};

ReadConfig read_config_from(const ParamMap& p) {
  ReadConfig c;
  c.theta = p.get_double("theta", c.theta);
  c.max_transitions_per_day = p.get_u64("cap", c.max_transitions_per_day);
  c.idleness_threshold =
      Seconds{p.get_double("threshold", c.idleness_threshold.value())};
  c.theta_b = p.get_double("theta_b", c.theta_b);
  c.adaptive_threshold = p.get_bool("adaptive_threshold", c.adaptive_threshold);
  return c;
}

DrpmConfig drpm_config_from(const ParamMap& p, bool aggressive) {
  DrpmConfig c;
  c.aggressive = aggressive;
  c.idleness_threshold =
      Seconds{p.get_double("threshold", c.idleness_threshold.value())};
  c.promotion_backlog =
      Seconds{p.get_double("promotion_backlog", c.promotion_backlog.value())};
  return c;
}

struct Entry {
  const char* name;
  std::span<const ParamSpec> params;
  std::unique_ptr<Policy> (*build)(const ParamMap&);
};

// Sorted by name (names() relies on it). Every policy is registered with
// its paper-default configuration; variants that differ only in tuning get
// their own name (drpm-aggressive). Absent ParamMap keys keep defaults, so
// make(name) == make(name, {}).
const std::array<Entry, 11> kEntries = {{
    {"drpm", kDrpmParams,
     [](const ParamMap& p) {
       return std::unique_ptr<Policy>(new DrpmPolicy(drpm_config_from(p, false)));
     }},
    {"drpm-aggressive", kDrpmParams,
     [](const ParamMap& p) {
       return std::unique_ptr<Policy>(new DrpmPolicy(drpm_config_from(p, true)));
     }},
    {"hibernator", kHibernatorParams,
     [](const ParamMap& p) {
       HibernatorConfig c;
       c.response_target =
           Seconds{p.get_double("response_target", c.response_target.value())};
       c.park_load_fraction =
           p.get_double("park_load_fraction", c.park_load_fraction);
       return std::unique_ptr<Policy>(new HibernatorPolicy(c));
     }},
    {"maid", kMaidParams,
     [](const ParamMap& p) {
       MaidConfig c;
       c.cache_disks = p.get_size("cache_disks", c.cache_disks);
       c.idleness_threshold =
           Seconds{p.get_double("threshold", c.idleness_threshold.value())};
       c.cache_capacity_fraction =
           p.get_double("cache_capacity_fraction", c.cache_capacity_fraction);
       return std::unique_ptr<Policy>(new MaidPolicy(c));
     }},
    {"online-read", kOnlineReadParams,
     [](const ParamMap& p) {
       OnlineReadConfig c;
       c.read = read_config_from(p);
       c.promote_margin = p.get_u64("promote_margin", c.promote_margin);
       c.decay_shift = static_cast<std::uint32_t>(
           p.get_u64("decay_shift", c.decay_shift));
       return std::unique_ptr<Policy>(new OnlineReadPolicy(c));
     }},
    {"pdc", kPdcParams,
     [](const ParamMap& p) {
       PdcConfig c;
       c.idleness_threshold =
           Seconds{p.get_double("threshold", c.idleness_threshold.value())};
       c.load_budget = p.get_double("load_budget", c.load_budget);
       c.concentration_fraction =
           p.get_double("concentration_fraction", c.concentration_fraction);
       return std::unique_ptr<Policy>(new PdcPolicy(c));
     }},
    {"read", kReadParams,
     [](const ParamMap& p) {
       return std::unique_ptr<Policy>(new ReadPolicy(read_config_from(p)));
     }},
    {"replicated-read", kReplicatedReadParams,
     [](const ParamMap& p) {
       ReplicationConfig c;
       c.replicas = p.get_size("replicas", c.replicas);
       c.top_files = p.get_size("top_files", c.top_files);
       c.read = read_config_from(p);
       return std::unique_ptr<Policy>(new ReplicatedReadPolicy(c));
     }},
    {"static", {},
     [](const ParamMap&) {
       return std::unique_ptr<Policy>(new StaticPolicy());
     }},
    {"striped-read", kStripedReadParams,
     [](const ParamMap& p) {
       StripedReadConfig c;
       c.stripe_unit = p.get_u64("stripe_unit", c.stripe_unit);
       c.read = read_config_from(p);
       return std::unique_ptr<Policy>(new StripedReadPolicy(c));
     }},
    {"striped-static", kStripingParams,
     [](const ParamMap& p) {
       StripingConfig c;
       c.stripe_unit = p.get_u64("stripe_unit", c.stripe_unit);
       return std::unique_ptr<Policy>(new StripedStaticPolicy(c));
     }},
}};

// Historical CLI spellings (run_experiment pre-dated the registry).
constexpr std::array<std::pair<const char*, const char*>, 3> kAliases = {{
    {"raid0", "striped-static"},
    {"read-raid0", "striped-read"},
    {"read-repl", "replicated-read"},
}};

std::string canonical(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  for (const auto& [alias, target] : kAliases) {
    if (out == alias) return target;
  }
  return out;
}

const Entry* find(std::string_view name) {
  const std::string key = canonical(name);
  for (const Entry& e : kEntries) {
    if (key == e.name) return &e;
  }
  return nullptr;
}

const Entry& find_or_throw(std::string_view name, std::string_view who) {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::string message = "pr::policies::";
    message += who;
    message += ": unknown policy '";
    message += name;
    message += "'; registered:";
    for (const Entry& e : kEntries) {
      message += ' ';
      message += e.name;
    }
    throw std::invalid_argument(message);
  }
  return *entry;
}

void validate_keys(const Entry& entry, const ParamMap& params) {
  for (const std::string& key : params.keys()) {
    const bool known =
        std::any_of(entry.params.begin(), entry.params.end(),
                    [&](const ParamSpec& s) { return key == s.name; });
    if (known) continue;
    std::string message = "pr::policies::make: policy '";
    message += entry.name;
    message += "' has no parameter '";
    message += key;
    message += "'; ";
    if (entry.params.empty()) {
      message += "it takes no parameters";
    } else {
      message += "valid:";
      for (const ParamSpec& s : entry.params) {
        message += ' ';
        message += s.name;
      }
    }
    throw std::invalid_argument(message);
  }
}

}  // namespace

PolicyFactory make(std::string_view name) { return make(name, ParamMap{}); }

PolicyFactory make(std::string_view name, ParamMap params) {
  const Entry& entry = find_or_throw(name, "make");
  validate_keys(entry, params);
  // Parse the values once up front so a malformed value fails at make()
  // time (where the caller's context is) rather than mid-sweep.
  (void)entry.build(params);
  return [&entry, params = std::move(params)] { return entry.build(params); };
}

bool contains(std::string_view name) { return find(name) != nullptr; }

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(kEntries.size());
  for (const Entry& e : kEntries) out.emplace_back(e.name);
  return out;
}

std::vector<std::pair<std::string, std::string>> aliases() {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(kAliases.size());
  for (const auto& [alias, target] : kAliases) out.emplace_back(alias, target);
  return out;
}

std::vector<ParamInfo> param_info(std::string_view name) {
  const Entry& entry = find_or_throw(name, "param_info");
  std::vector<ParamInfo> out;
  out.reserve(entry.params.size());
  for (const ParamSpec& s : entry.params) {
    out.push_back({s.name, s.default_value, s.description});
  }
  return out;
}

std::vector<std::string> param_names(std::string_view name) {
  const Entry& entry = find_or_throw(name, "param_names");
  std::vector<std::string> out;
  out.reserve(entry.params.size());
  for (const ParamSpec& s : entry.params) out.emplace_back(s.name);
  return out;
}

}  // namespace pr::policies
