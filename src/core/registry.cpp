#include "core/registry.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <memory>
#include <stdexcept>

#include "policy/drpm_policy.h"
#include "policy/hibernator_policy.h"
#include "policy/maid_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "policy/replication.h"
#include "policy/static_policy.h"
#include "policy/striped_read_policy.h"
#include "policy/striping.h"

namespace pr::policies {

namespace {

struct Entry {
  const char* name;
  std::unique_ptr<Policy> (*build)();
};

// Sorted by name (names() relies on it). Every policy is registered with
// its paper-default configuration; variants that differ only in tuning get
// their own name (drpm-aggressive).
constexpr auto kEntries = std::to_array<Entry>({
    {"drpm", [] { return std::unique_ptr<Policy>(new DrpmPolicy()); }},
    {"drpm-aggressive",
     [] {
       DrpmConfig config;
       config.aggressive = true;
       return std::unique_ptr<Policy>(new DrpmPolicy(config));
     }},
    {"hibernator",
     [] { return std::unique_ptr<Policy>(new HibernatorPolicy()); }},
    {"maid", [] { return std::unique_ptr<Policy>(new MaidPolicy()); }},
    {"pdc", [] { return std::unique_ptr<Policy>(new PdcPolicy()); }},
    {"read", [] { return std::unique_ptr<Policy>(new ReadPolicy()); }},
    {"replicated-read",
     [] { return std::unique_ptr<Policy>(new ReplicatedReadPolicy()); }},
    {"static", [] { return std::unique_ptr<Policy>(new StaticPolicy()); }},
    {"striped-read",
     [] { return std::unique_ptr<Policy>(new StripedReadPolicy()); }},
    {"striped-static",
     [] { return std::unique_ptr<Policy>(new StripedStaticPolicy()); }},
});

std::string canonical(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

const Entry* find(std::string_view name) {
  const std::string key = canonical(name);
  for (const Entry& e : kEntries) {
    if (key == e.name) return &e;
  }
  return nullptr;
}

}  // namespace

PolicyFactory make(std::string_view name) {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::string message = "pr::policies::make: unknown policy '";
    message += name;
    message += "'; registered:";
    for (const Entry& e : kEntries) {
      message += ' ';
      message += e.name;
    }
    throw std::invalid_argument(message);
  }
  return PolicyFactory{entry->build};
}

bool contains(std::string_view name) { return find(name) != nullptr; }

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(kEntries.size());
  for (const Entry& e : kEntries) out.emplace_back(e.name);
  return out;
}

}  // namespace pr::policies
