// experiment.h — the sweep harness behind every Fig. 7-style evaluation:
// a grid of (policy × array size × workload) cells fanned across a thread
// pool. Each cell builds its own policy instance and runs an independent,
// deterministic simulation.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "workload/synthetic.h"

namespace pr {

/// Factory so each sweep cell gets a fresh policy (policies are stateful).
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

struct NamedWorkload {
  std::string name;          // e.g. "light", "heavy"
  const FileSet* files = nullptr;
  const Trace* trace = nullptr;
};

struct SweepCell {
  std::string policy;
  std::string workload;
  std::size_t disk_count = 0;
  SystemReport report;
};

struct SweepConfig {
  SystemConfig base;
  std::vector<std::size_t> disk_counts;  // paper: 6..16
  /// Worker threads (0 = hardware concurrency).
  unsigned threads = 0;
};

/// Run |policies| × |workloads| × |disk_counts| cells. Results are ordered
/// (policy-major, then workload, then disk count) regardless of the
/// parallel execution order.
[[nodiscard]] std::vector<SweepCell> run_sweep(
    const SweepConfig& config,
    const std::vector<std::pair<std::string, PolicyFactory>>& policies,
    const std::vector<NamedWorkload>& workloads);

/// Relative improvement of `ours` over `baseline` for a lower-is-better
/// metric: (baseline − ours) / baseline. Positive = we are better.
/// Degenerate inputs — a zero baseline or any non-finite operand — return
/// 0.0 ("no improvement") instead of NaN/±inf, so sweep-level averages of
/// this quantity stay meaningful.
[[nodiscard]] double improvement(double ours, double baseline);

}  // namespace pr
