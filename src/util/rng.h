// rng.h — deterministic, fast pseudo-random number generation.
//
// The whole reproduction is required to be bit-deterministic for a given
// seed (DESIGN.md §4.6): the event queue tie-breaks deterministically and
// every stochastic choice flows through this generator. We implement
// xoshiro256** (Blackman & Vigna) seeded via SplitMix64 rather than relying
// on std::mt19937 so that the stream is identical across standard libraries.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace pr {

/// xoshiro256** 1.0 — public-domain algorithm, 256-bit state, period 2^256−1.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via SplitMix64, which
  /// guarantees a well-mixed non-zero state for any seed, including 0.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Unbiased via rejection.
  std::uint64_t uniform_index(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Exponentially distributed sample with the given mean (> 0).
  double exponential(double mean) {
    // 1 - uniform() is in (0, 1], so the log is finite.
    return -mean * std::log(1.0 - uniform());
  }

  /// Standard normal via Box–Muller (single value; the pair's twin is
  /// discarded to keep the generator state independent of call history
  /// shape — determinism beats a factor of two here).
  double normal() {
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Log-normal sample parameterised by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = uniform_index(i + 1);
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// A decorrelated child generator (for per-worker streams in sweeps).
  Rng split() { return Rng((*this)() ^ 0xA3EC647659359ACDULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pr
