// fmt.h — locale-independent numeric text via std::to_chars.
//
// Every byte-deterministic emitter (CSV, JSONL, report JSON) must produce
// the same output no matter what std::locale::global(...) an embedding
// application installed. iostream `<<` on floating values consults the
// stream's imbued locale (a German global locale turns 0.5 into "0,5" and
// corrupts every CSV), so output paths route through these helpers
// instead. std::to_chars with an explicit precision is specified to match
// printf("%.{precision}g") in the "C" locale — byte-identical to what the
// default-locale ostream code it replaces produced.
#pragma once

#include <string>
#include <string_view>

namespace pr {

/// `%.{precision}g`-style text for `v` in the C locale. precision 17
/// round-trips every finite double; 6 matches the default ostream
/// formatting the figure benches historically emitted.
[[nodiscard]] std::string format_double(double v, int precision = 17);

/// Append form of format_double for string-building emitters.
void append_double(std::string& out, double v, int precision = 17);

/// Locale-independent counterpart of std::stod (which honours the global C
/// locale's decimal point). The whole of `text` must parse; throws
/// std::invalid_argument otherwise.
[[nodiscard]] double parse_double(std::string_view text);

}  // namespace pr
