// thread_pool.h — a small fixed-size worker pool used to fan parameter
// sweeps (policy × array-size × load grids) across cores. Each simulation
// run is single-threaded and independent, so the pool only needs a plain
// mutex-guarded queue: the per-task work (an entire trace-driven simulation)
// dwarfs any queue contention.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pr {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; the returned future carries the task's result or
  /// exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Map fn over [0, n) collecting results in order. Convenience wrapper used
/// by the experiment runner.
template <typename R>
std::vector<R> parallel_map(ThreadPool& pool, std::size_t n,
                            const std::function<R(std::size_t)>& fn) {
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i, &fn] { return fn(i); }));
  }
  std::vector<R> results;
  results.reserve(n);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace pr
