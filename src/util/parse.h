// parse.h — strict full-token parsing of numeric/boolean text. std::stoul
// and friends accept trailing garbage ("8x" parses as 8) and silently wrap
// negative input into huge unsigned values; every CLI flag, scenario-file
// value and ParamMap knob goes through these instead, so a typo fails with
// an error naming the flag/key rather than running the wrong experiment.
#pragma once

#include <cstdint>
#include <string_view>

namespace pr {

/// Parse `text` as an unsigned 64-bit integer. The whole token must be
/// consumed; leading '-'/'+'/whitespace and trailing characters are
/// rejected. `what` names the flag/key in the std::invalid_argument.
[[nodiscard]] std::uint64_t parse_u64(std::string_view text,
                                      std::string_view what);

/// parse_u64 narrowed to std::size_t (range-checked on 32-bit targets).
[[nodiscard]] std::size_t parse_size(std::string_view text,
                                     std::string_view what);

/// Parse `text` as a finite double. Whole token must be consumed;
/// "inf"/"nan" are rejected (no knob wants them).
[[nodiscard]] double parse_double(std::string_view text,
                                  std::string_view what);

/// Parse a boolean: true/false, 1/0, yes/no, on/off (case-insensitive).
[[nodiscard]] bool parse_bool(std::string_view text, std::string_view what);

}  // namespace pr
