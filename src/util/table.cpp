#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace pr {

void AsciiTable::add_separator() { rows_.emplace_back(); }

std::string AsciiTable::render() const {
  // Column widths from header + all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (auto w : widths) total += w;

  std::ostringstream out;
  auto rule = [&](char c) { out << std::string(std::max<std::size_t>(total, title_.size()), c) << "\n"; };

  rule('=');
  out << title_ << "\n";
  rule('=');

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) out << " | ";
    }
    out << "\n";
  };

  if (!header_.empty()) {
    emit_row(header_);
    rule('-');
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule('-');
    } else {
      emit_row(row);
    }
  }
  rule('=');
  return out.str();
}

void AsciiTable::print(std::ostream& out) const { out << render(); }

std::string num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  const double mag = std::abs(v);
  if (mag >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (mag >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (mag >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  return num(scaled, precision) + suffix;
}

}  // namespace pr
