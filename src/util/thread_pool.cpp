#include "util/thread_pool.h"

#include <atomic>
#include <exception>

namespace pr {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([i, &fn] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pr
