// table.h — ASCII table rendering for the figure/table benchmark binaries.
// Each bench prints the same rows the paper's figures plot, so the output
// must be easy to eyeball and to diff across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pr {

/// Column-aligned ASCII table with a title, a header row and data rows.
/// Numeric formatting is the caller's job (pass pre-formatted strings or
/// use the `num()` helper below).
class AsciiTable {
 public:
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }
  void add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }
  /// Insert a horizontal separator after the current last row.
  void add_separator();

  [[nodiscard]] std::string render() const;
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Fixed-precision numeric formatting ("%.3f"-style without printf).
[[nodiscard]] std::string num(double v, int precision = 3);

/// Percent formatting: 0.123 -> "12.3%".
[[nodiscard]] std::string pct(double fraction, int precision = 1);

/// Engineering-style formatting with SI suffix for large magnitudes
/// (1234567 -> "1.23M"). Used for energy/ops counters.
[[nodiscard]] std::string si(double v, int precision = 2);

}  // namespace pr
