// log.h — leveled logging to stderr. The simulator is a library first, so
// logging defaults to Warn and is globally (thread-safely) adjustable; the
// hot path never formats a suppressed message.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace pr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped unformatted.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit a pre-formatted message (used by the macro below).
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace pr

/// Usage: PR_LOG(kInfo) << "epoch " << i << " migrated " << n << " files";
#define PR_LOG(level_suffix)                                        \
  if (::pr::LogLevel::level_suffix < ::pr::log_level()) {           \
  } else                                                            \
    ::pr::detail::LogLine(::pr::LogLevel::level_suffix)
