// stats.h — streaming statistics, histograms and quantile estimation for
// simulation metrics. All accumulators are single-pass and numerically
// stable (Welford) because a day-long trace run feeds ~1.5M samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pr {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;

  /// Quantile estimate by linear interpolation inside the located bin.
  /// q in [0, 1]. Returns lo/hi bounds for out-of-range mass.
  [[nodiscard]] double quantile(double q) const;

  /// Multi-line ASCII rendering (for example programs / debugging).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Reservoir sampler for exact-ish quantiles of unbounded streams; keeps a
/// uniform random subset of at most `capacity` samples.
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t capacity, std::uint64_t seed = 1);

  void add(double x);
  /// Deterministically fold another reservoir into this one: the other's
  /// retained samples are re-streamed through add() in their stored
  /// order, then the rest of its population is credited to seen(). Exact
  /// when the union fits in capacity, a deterministic approximation of a
  /// union reservoir otherwise. Merge order is part of the byte contract
  /// — fleet merges always fold in shard order.
  void merge(const ReservoirSample& other);
  [[nodiscard]] std::size_t seen() const { return seen_; }
  [[nodiscard]] std::size_t size() const { return sample_.size(); }

  /// Quantile (q in [0,1]) over the retained sample. Sorts a copy.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::uint64_t rng_state_;
  std::vector<double> sample_;

  std::uint64_t next_u64();
};

/// Pearson correlation of two equal-length series (0 if degenerate).
[[nodiscard]] double pearson_correlation(const std::vector<double>& x,
                                         const std::vector<double>& y);

/// Spearman rank correlation (0 if degenerate). Used by tests to check the
/// size/popularity anti-correlation the synthetic workload must exhibit.
[[nodiscard]] double spearman_correlation(const std::vector<double>& x,
                                          const std::vector<double>& y);

}  // namespace pr
