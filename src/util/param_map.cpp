#include "util/param_map.h"

#include <stdexcept>

#include "util/parse.h"

namespace pr {

ParamMap::ParamMap(
    std::initializer_list<std::pair<std::string, std::string>> kvs) {
  for (const auto& [key, value] : kvs) set(key, value);
}

ParamMap& ParamMap::set(std::string key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
  return *this;
}

bool ParamMap::contains(std::string_view key) const {
  return find(key) != nullptr;
}

std::vector<std::string> ParamMap::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

const std::string& ParamMap::raw(std::string_view key) const {
  const std::string* value = find(key);
  if (value == nullptr) {
    throw std::out_of_range("ParamMap: no key '" + std::string(key) + "'");
  }
  return *value;
}

std::uint64_t ParamMap::get_u64(std::string_view key,
                                std::uint64_t fallback) const {
  const std::string* value = find(key);
  return value ? parse_u64(*value, key) : fallback;
}

std::size_t ParamMap::get_size(std::string_view key,
                               std::size_t fallback) const {
  const std::string* value = find(key);
  return value ? parse_size(*value, key) : fallback;
}

double ParamMap::get_double(std::string_view key, double fallback) const {
  const std::string* value = find(key);
  return value ? parse_double(*value, key) : fallback;
}

bool ParamMap::get_bool(std::string_view key, bool fallback) const {
  const std::string* value = find(key);
  return value ? parse_bool(*value, key) : fallback;
}

std::string ParamMap::get_string(std::string_view key,
                                 std::string_view fallback) const {
  const std::string* value = find(key);
  return value ? *value : std::string(fallback);
}

const std::string* ParamMap::find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace pr
