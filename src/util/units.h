// units.h — lightweight strongly-named scalar quantities used across the
// simulator. We deliberately keep these as thin wrappers (value semantics,
// constexpr, no virtual anything) so they vanish at -O2 while still making
// interfaces self-documenting: a function taking `Seconds` cannot silently
// receive milliseconds.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace pr {

/// Tagged scalar. `Tag` makes each instantiation a distinct type.
template <typename Tag, typename Rep = double>
class Quantity {
 public:
  using rep = Rep;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep v) : value_(v) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  constexpr auto operator<=>(const Quantity&) const = default;

  constexpr Quantity& operator+=(Quantity o) {
    value_ += o.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    value_ -= o.value_;
    return *this;
  }
  constexpr Quantity& operator*=(Rep s) {
    value_ *= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(Quantity a, Rep s) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(Rep s, Quantity a) {
    return Quantity(s * a.value_);
  }
  friend constexpr Quantity operator/(Quantity a, Rep s) {
    return Quantity(a.value_ / s);
  }
  /// Ratio of two like quantities is a plain scalar.
  friend constexpr Rep operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

 private:
  Rep value_{};
};

struct SecondsTag {};
struct JoulesTag {};
struct WattsTag {};
struct CelsiusTag {};

/// Simulation time and durations, in seconds.
using Seconds = Quantity<SecondsTag>;
/// Energy, in joules.
using Joules = Quantity<JoulesTag>;
/// Power, in watts.
using Watts = Quantity<WattsTag>;
/// Temperature, in degrees Celsius.
using Celsius = Quantity<CelsiusTag>;

constexpr Seconds operator""_s(long double v) {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_ms(long double v) {
  return Seconds(static_cast<double>(v) * 1e-3);
}
constexpr Seconds operator""_ms(unsigned long long v) {
  return Seconds(static_cast<double>(v) * 1e-3);
}

/// Energy = power × time.
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules(p.value() * t.value());
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }

/// Bytes as an explicit integer type; helpers keep call sites readable.
using Bytes = std::uint64_t;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

[[nodiscard]] constexpr double to_mib(Bytes b) {
  return static_cast<double>(b) / static_cast<double>(kMiB);
}

/// Kelvin conversion used by the Arrhenius term (paper §3.4 uses
/// 273.16 + °C, which we follow even though 273.15 is the exact offset —
/// fidelity to the printed constants matters more here).
[[nodiscard]] constexpr double to_kelvin_paper(Celsius c) {
  return 273.16 + c.value();
}

constexpr Seconds kSecondsPerDay{86'400.0};
constexpr Seconds kSecondsPerYear{365.0 * 86'400.0};

/// Invalid/unset time sentinel.
constexpr Seconds kNeverTime{std::numeric_limits<double>::infinity()};

}  // namespace pr
