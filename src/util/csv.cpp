#include "util/csv.h"

#include <fstream>
#include <locale>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/fmt.h"

namespace pr {

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n") != std::string_view::npos;
}

std::string escape_field(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape_field(fields[i]);
  }
  out_ << '\n';
}

template <typename T>
std::string CsvWriter::format_field(const T& v) {
  std::ostringstream os;
  // Classic locale: a host application's global locale must never add
  // grouping separators (or anything else) to CSV cells.
  os.imbue(std::locale::classic());
  os << v;
  return os.str();
}

/// Doubles take the locale-independent util/fmt.h path; precision 6
/// matches the default ostream formatting this specialization replaced,
/// so existing figure CSVs keep their exact bytes.
template <>
std::string CsvWriter::format_field<double>(const double& v) {
  return format_double(v, 6);
}

// Explicit instantiations for the types benches actually use keeps the
// template out of every translation unit.
template std::string CsvWriter::format_field<int>(const int&);
template std::string CsvWriter::format_field<unsigned>(const unsigned&);
template std::string CsvWriter::format_field<long>(const long&);
template std::string CsvWriter::format_field<unsigned long>(
    const unsigned long&);
template std::string CsvWriter::format_field<std::string>(const std::string&);

CsvReader CsvReader::parse(std::string_view text, bool has_header) {
  CsvReader reader;
  std::size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) {
      if (end == text.size()) break;
      continue;
    }
    auto fields = split_csv_line(line);
    if (first && has_header) {
      reader.header_ = std::move(fields);
    } else {
      reader.rows_.push_back(std::move(fields));
    }
    first = false;
    if (end == text.size()) break;
  }
  return reader;
}

CsvReader CsvReader::load(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("CsvReader: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), has_header);
}

int CsvReader::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace pr
