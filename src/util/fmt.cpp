#include "util/fmt.h"

#include <charconv>
#include <stdexcept>
#include <system_error>

#include "util/contracts.h"

namespace pr {

void append_double(std::string& out, double v, int precision) {
  PR_PRECONDITION(precision > 0, "format_double: precision must be positive");
  // 17 significant digits + sign + decimal point + "e+308" exponent fits
  // comfortably; 64 leaves slack for any sane precision.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v,
                                 std::chars_format::general, precision);
  PR_ASSERT(res.ec == std::errc{}, "format_double: to_chars overflow");
  out.append(buf, res.ptr);
}

std::string format_double(double v, int precision) {
  std::string out;
  append_double(out, v, precision);
  return out;
}

double parse_double(std::string_view text) {
  double v = 0.0;
  const auto res = std::from_chars(text.data(), text.data() + text.size(), v);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size()) {
    throw std::invalid_argument("parse_double: bad float '" +
                                std::string(text) + "'");
  }
  return v;
}

}  // namespace pr
