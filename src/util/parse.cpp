#include "util/parse.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace pr {

namespace {

[[noreturn]] void fail(std::string_view what, std::string_view kind,
                       std::string_view text) {
  std::string message(what);
  message += ": invalid ";
  message += kind;
  message += " '";
  message += text;
  message += "'";
  throw std::invalid_argument(message);
}

}  // namespace

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  // from_chars is already strict about sign/whitespace; we only add the
  // full-token requirement (ptr must reach the end).
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    fail(what, "unsigned integer", text);
  }
  return value;
}

std::size_t parse_size(std::string_view text, std::string_view what) {
  const std::uint64_t value = parse_u64(text, what);
  if (value > std::numeric_limits<std::size_t>::max()) {
    fail(what, "unsigned integer (out of range)", text);
  }
  return static_cast<std::size_t>(value);
}

double parse_double(std::string_view text, std::string_view what) {
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty() ||
      !std::isfinite(value)) {
    fail(what, "number", text);
  }
  return value;
}

bool parse_bool(std::string_view text, std::string_view what) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  fail(what, "boolean", text);
}

}  // namespace pr
