#include "util/contracts.h"

#include <cstdio>
#include <cstdlib>

namespace pr::detail {

void contract_fail(const char* kind, const char* expr, const char* msg,
                   const char* file, int line) noexcept {
  std::fprintf(stderr, "%s:%d: %s failed: %s — %s\n", file, line, kind, expr,
               msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace pr::detail
