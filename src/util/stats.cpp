#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace pr {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument("Histogram::merge: incompatible layout");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_low(i) + frac * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    out << "[" << bin_low(i) << ", " << bin_high(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_state_(seed ? seed : 1) {
  sample_.reserve(capacity);
}

std::uint64_t ReservoirSample::next_u64() {
  // SplitMix64: ample quality for reservoir index selection.
  rng_state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void ReservoirSample::merge(const ReservoirSample& other) {
  for (const double x : other.sample_) add(x);
  // The unretained remainder of the other population influenced which
  // samples it kept; credit it to seen() so acceptance odds keep scaling
  // with the true population size across repeated merges.
  seen_ += other.seen_ - other.sample_.size();
}

void ReservoirSample::add(double x) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(x);
    return;
  }
  const std::uint64_t j = next_u64() % seen_;
  if (j < capacity_) sample_[j] = x;
}

double ReservoirSample::quantile(double q) const {
  if (sample_.empty()) return 0.0;
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Average-of-ties ranks.
std::vector<double> ranks_of(const std::vector<double>& v) {
  std::vector<std::size_t> order(v.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(v.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_correlation(const std::vector<double>& x,
                            const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return pearson_correlation(ranks_of(x), ranks_of(y));
}

}  // namespace pr
