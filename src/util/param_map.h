// param_map.h — a small ordered string→string bag with strictly-typed
// getters, the currency of parameterized policy construction
// (pr::policies::make(name, params)) and of scenario files. Values stay
// text until a getter asks for a type; parsing is full-token strict
// (util/parse.h) and errors name the offending key, so a scenario file's
// `cap = 40x` fails loudly instead of truncating.
//
// Keys are unique; insertion order is preserved (error messages and
// serialized forms stay stable). The expected scale is a handful of knobs
// per policy, so storage is a flat vector with linear lookup.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pr {

class ParamMap {
 public:
  ParamMap() = default;
  ParamMap(std::initializer_list<std::pair<std::string, std::string>> kvs);

  /// Insert or overwrite. Returns *this so calls chain.
  ParamMap& set(std::string key, std::string value);

  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Keys in insertion order.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Raw textual value; throws std::out_of_range when absent.
  [[nodiscard]] const std::string& raw(std::string_view key) const;

  // Typed getters: return `fallback` when the key is absent; throw
  // std::invalid_argument (naming the key) when the value is malformed.
  [[nodiscard]] std::uint64_t get_u64(std::string_view key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] std::size_t get_size(std::string_view key,
                                     std::size_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;

 private:
  [[nodiscard]] const std::string* find(std::string_view key) const;

  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace pr
