// csv.h — minimal, dependency-free CSV reading/writing used by the trace
// layer and the benchmark harnesses (each figure bench also emits a CSV so
// results can be re-plotted outside the repo).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pr {

/// Splits one CSV line. Handles double-quoted fields with embedded commas
/// and doubled quotes (RFC 4180 subset, no embedded newlines).
[[nodiscard]] std::vector<std::string> split_csv_line(std::string_view line);

/// Streaming writer; quotes fields only when necessary.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Write a full row; each field is escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: variadic row of stream-formattable values.
  template <typename... Ts>
  void row(const Ts&... vals) {
    write_row({format_field(vals)...});
  }

 private:
  template <typename T>
  static std::string format_field(const T& v);

  std::ostream& out_;
};

/// Doubles are formatted locale-independently (util/fmt.h); declared here
/// so every translation unit sees the specialization before use.
template <>
std::string CsvWriter::format_field<double>(const double& v);

/// Whole-file reader (traces are at most a few hundred MB; figure CSVs are
/// tiny). Returns rows of fields; skips fully empty lines.
class CsvReader {
 public:
  /// Parse CSV text. If `has_header` the first row is stored separately.
  static CsvReader parse(std::string_view text, bool has_header);
  /// Load and parse a file. Throws std::runtime_error on I/O failure.
  static CsvReader load(const std::string& path, bool has_header);

  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }
  /// Index of a header column, or -1 if absent.
  [[nodiscard]] int column_index(std::string_view name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pr
