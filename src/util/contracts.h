// contracts.h — PR_ASSERT / PR_PRECONDITION / PR_INVARIANT.
//
// Machine-checked statements of the invariants the golden tests only probe
// end-to-end: event-time monotonicity, legal 2-speed state transitions,
// energy-ledger conservation, counter-handle validity. Checks are active
// whenever NDEBUG is not defined (Debug and the sanitizer CI builds) or
// when PR_CONTRACTS_FORCE is defined explicitly; in Release they compile
// to `((void)0)` and the condition expression is NOT evaluated, so hot
// paths pay nothing.
//
// A failed contract prints `file:line: <kind> failed: <expr> — <msg>` to
// stderr and aborts, which is what tests/test_contracts.cpp death-tests
// against. Contracts are for programming errors (caller broke the API,
// internal state corrupted); recoverable input problems keep throwing
// std::invalid_argument / std::runtime_error as before.
#pragma once

#if !defined(NDEBUG) || defined(PR_CONTRACTS_FORCE)
#define PR_CONTRACTS_ENABLED 1
#else
#define PR_CONTRACTS_ENABLED 0
#endif

namespace pr::detail {

/// Report a contract violation and abort. Never returns.
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* msg, const char* file,
                                int line) noexcept;

}  // namespace pr::detail

#if PR_CONTRACTS_ENABLED
#define PR_CONTRACT_CHECK_(kind, cond, msg)                            \
  (static_cast<bool>(cond)                                             \
       ? static_cast<void>(0)                                          \
       : ::pr::detail::contract_fail(kind, #cond, msg, __FILE__, __LINE__))
#else
#define PR_CONTRACT_CHECK_(kind, cond, msg) static_cast<void>(0)
#endif

/// General internal-consistency assertion.
#define PR_ASSERT(cond, msg) PR_CONTRACT_CHECK_("assertion", cond, msg)
/// Caller-facing API requirement (argument/state legality on entry).
#define PR_PRECONDITION(cond, msg) PR_CONTRACT_CHECK_("precondition", cond, msg)
/// Structural invariant that must hold at a quiescent point.
#define PR_INVARIANT(cond, msg) PR_CONTRACT_CHECK_("invariant", cond, msg)
