// disk_soa.h — structure-of-arrays storage for the per-request-touched
// disk state, plus the shared vocabulary types (DiskSpeed, DiskId,
// DiskLedger) that both the SoA and the Disk facade need.
//
// Why SoA: at fleet scale (10k+ disks) the epoch/finalize passes and the
// DPM fast paths walk *one field* across *every disk* — speed, busy-until,
// energy. With each Disk owning its own fields those walks pointer-chase
// 10k scattered objects; with DiskArraySoA they are linear scans over
// contiguous lanes. The `Disk` class (disk.h) remains the API — it is a
// facade holding a (soa, slot) pair — so policies, tests and benches
// compile unchanged, and the seed-layout golden (test_seed_layout_golden)
// proves the refactor is byte-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "disk/geometry.h"
#include "util/units.h"

namespace pr {

enum class DiskSpeed : std::uint8_t { kLow = 0, kHigh = 1 };

[[nodiscard]] constexpr const char* to_string(DiskSpeed s) {
  return s == DiskSpeed::kLow ? "low" : "high";
}

/// Fleet-facing disk index. Kept at 32 bits deliberately: a fleet slot is
/// an array index, and 4G disks is far beyond any simulated fleet, while
/// the narrower type keeps the SoA lanes and event payloads dense.
using DiskId = std::uint32_t;

/// Aggregated per-disk counters for a finished simulation window.
struct DiskLedger {
  Seconds busy_time{0.0};        // positioning + transfer
  Seconds idle_time{0.0};        // spinning, no I/O
  Seconds transition_time{0.0};  // switching speed
  Seconds time_at_low{0.0};      // idle+busy at low speed
  Seconds time_at_high{0.0};     // idle+busy at high speed
  Joules energy{0.0};            // everything: busy + idle + transitions
  std::uint64_t transitions = 0;
  std::uint64_t transitions_up = 0;
  /// Most transitions begun within any single calendar day of the run —
  /// the quantity READ's budget S bounds (§5.2). Unlike
  /// transitions_per_day() below this does not extrapolate, so it is the
  /// right check for multi-day simulations.
  std::uint64_t max_transitions_in_day = 0;
  std::uint64_t requests = 0;
  Bytes bytes_served = 0;
  /// Background/internal I/O (file migrations, cache copies): occupies the
  /// disk and burns energy like any other I/O — it is part of busy_time —
  /// but is counted separately because the paper's response-time metric
  /// covers user requests only.
  std::uint64_t internal_ops = 0;
  Bytes internal_bytes = 0;

  [[nodiscard]] Seconds observed() const {
    return busy_time + idle_time + transition_time;
  }
  /// Fraction of powered-on time spent doing I/O (the paper's §3.3
  /// definition: active time over total power-on time).
  [[nodiscard]] double utilization() const {
    const double total = observed().value();
    return total > 0.0 ? busy_time.value() / total : 0.0;
  }
  /// Speed transitions per day over the observed window.
  [[nodiscard]] double transitions_per_day() const {
    const double days = observed() / kSecondsPerDay;
    return days > 0.0 ? static_cast<double>(transitions) / days : 0.0;
  }
  /// Transition frequency fed to PRESS's frequency-AFR term (Eq. 3).
  /// For windows of at least one simulated day this is the day-bucketed
  /// max_transitions_in_day — the quantity READ's budget S actually bounds.
  /// Sub-day windows fall back to the raw transition count: a 1-hour smoke
  /// run with 2 transitions reports 2, not the 48/day the extrapolating
  /// transitions_per_day() would claim (which inflated the frequency AFR —
  /// nothing observed supports projecting the burst across a full day).
  [[nodiscard]] double press_transitions_per_day() const {
    if (observed() >= kSecondsPerDay) {
      return static_cast<double>(max_transitions_in_day);
    }
    return static_cast<double>(transitions);
  }
};

/// Hot disk-array state, one contiguous lane per field. Owned by
/// ArrayContext (shared across its Disk facades) or by a standalone Disk
/// (a 1-slot instance). Lanes are grouped by access frequency:
/// per-request (speed/ready/accounted/generation/ledger), per-transition
/// (day bucketing, history), and positional (head).
struct DiskArraySoA {
  DiskArraySoA() = default;
  explicit DiskArraySoA(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    speed.assign(n, DiskSpeed::kHigh);
    initial_speed.assign(n, DiskSpeed::kHigh);
    ready_time.assign(n, Seconds{0.0});
    accounted_until.assign(n, Seconds{0.0});
    activity_generation.assign(n, 0);
    ledger.assign(n, DiskLedger{});
    current_day.assign(n, 0);
    transitions_in_day.assign(n, 0);
    head.assign(n, 0);
    speed_history.assign(n, {});
  }

  [[nodiscard]] std::size_t size() const { return speed.size(); }

  // --- touched by every request --------------------------------------
  std::vector<DiskSpeed> speed;
  std::vector<Seconds> ready_time;        // earliest start for new work
  std::vector<Seconds> accounted_until;   // ledger coverage watermark
  std::vector<std::uint64_t> activity_generation;
  std::vector<DiskLedger> ledger;

  // --- touched per transition -----------------------------------------
  std::vector<DiskSpeed> initial_speed;
  std::vector<std::int64_t> current_day;
  std::vector<std::uint64_t> transitions_in_day;
  /// Completed speed changes as (finish time, new speed), in order —
  /// input to the optional thermal-lag model (disk/thermal.h).
  std::vector<std::vector<std::pair<Seconds, DiskSpeed>>> speed_history;

  // --- positional mode only -------------------------------------------
  std::vector<Cylinder> head;
};

}  // namespace pr
