// thermal.h — first-order thermal model for a disk's operating
// temperature. §3.2 assigns each speed a steady-state band ([35,40] °C at
// 3,600 RPM, [45,50] °C at 10,000 RPM, heat ∝ ~RPM³ per [18]); a real
// drive approaches those points exponentially — [12] reports a Cheetah
// taking ~48 minutes to reach thermal steady state. This module
// reconstructs the temperature trajectory from a disk's speed-change
// history and reports the statistics PRESS can consume (time-weighted
// mean, maximum reached).
//
// The default PRESS pipeline uses the paper's simpler attribution (band
// values weighted by time-at-speed); the lag model is an opt-in
// refinement (`TemperatureAttribution::kThermalLag`) whose main effect is
// to soften the temperature factor for disks that switch speed often —
// they never dwell long enough to reach the hot band's steady point.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "disk/disk.h"
#include "disk/disk_params.h"
#include "util/units.h"

namespace pr {

struct ThermalParams {
  /// Exponential time constant of the drive + enclosure. [12]'s ~48 min
  /// to steady state corresponds to 3–4 time constants.
  Seconds time_constant{900.0};
  /// Temperature the disk starts at when the window opens. Negative
  /// means "start at the first segment's steady-state target" (a disk
  /// that has been running in that mode for a while).
  Celsius initial{-1.0};
};

/// One constant-speed segment of a disk's history.
struct SpeedSegment {
  Seconds start{0.0};
  Celsius steady_target{40.0};
};

struct ThermalTrace {
  Celsius mean{0.0};   // time-weighted average over the window
  Celsius max{0.0};    // hottest instant
  Celsius final{0.0};  // temperature at window end
};

/// Integrate the first-order response across `segments` (sorted by start,
/// first at/before the window start) over [window_start, window_end].
/// Throws std::invalid_argument for an empty/unsorted history or an
/// inverted window.
[[nodiscard]] ThermalTrace simulate_thermal(
    std::span<const SpeedSegment> segments, Seconds window_start,
    Seconds window_end, const ThermalParams& params = {});

/// Convenience: build the segment list for a two-speed disk from its
/// initial speed and transition history (pairs of completion time + new
/// speed), using each mode's operating temperature as the steady target.
[[nodiscard]] std::vector<SpeedSegment> segments_from_history(
    const TwoSpeedDiskParams& params, DiskSpeed initial_speed,
    std::span<const std::pair<Seconds, DiskSpeed>> transitions);

}  // namespace pr
