// telemetry.h — the bridge between the simulator and the PRESS model: the
// three ESRRA factors (§3) extracted from a finished disk ledger.
#pragma once

#include <vector>

#include "disk/disk.h"

namespace pr {

/// PRESS inputs for one disk over an observation window.
struct DiskTelemetry {
  DiskId disk = 0;
  /// Operating temperature fed to the temperature-reliability function.
  Celsius temperature{40.0};
  /// Utilization as a fraction in [0, 1] (PRESS clamps to its [25%, 100%]
  /// domain internally, matching §3.3's measurement floor).
  double utilization = 0.0;
  /// Speed-transition frequency for PRESS's Eq. 3: the day-bucketed
  /// maximum for runs >= 1 simulated day, the raw (non-extrapolated)
  /// transition count for shorter windows
  /// (DiskLedger::press_transitions_per_day).
  double transitions_per_day = 0.0;
};

enum class TemperatureAttribution {
  /// Time-weighted mean of the per-speed operating points (default — a
  /// disk that spends the day at high speed reports ≈50 °C, one that
  /// mostly rests reports ≈40 °C; the paper's own attribution in §3.5).
  kTimeWeighted,
  /// Hottest sustained operating point (conservative).
  kMax,
  /// First-order thermal-lag reconstruction (disk/thermal.h): mean of the
  /// simulated temperature trajectory. Softens the temperature factor for
  /// frequently-switching disks that never reach steady state.
  kThermalLag,
};

/// Extract PRESS inputs from a finished disk.
[[nodiscard]] DiskTelemetry extract_telemetry(
    const Disk& disk,
    TemperatureAttribution attribution = TemperatureAttribution::kTimeWeighted);

[[nodiscard]] std::vector<DiskTelemetry> extract_telemetry(
    const std::vector<Disk>& disks,
    TemperatureAttribution attribution = TemperatureAttribution::kTimeWeighted);

}  // namespace pr
