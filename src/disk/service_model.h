// service_model.h — per-request service-time and energy computation for one
// speed mode. Whole-file sequential access (paper §4): service = average
// seek + average rotational latency + size / transfer-rate.
#pragma once

#include "disk/disk_params.h"
#include "util/units.h"

namespace pr {

struct ServiceCost {
  Seconds time{0.0};
  Joules energy{0.0};
};

/// Service time of a whole-file transfer of `bytes` at the given mode.
[[nodiscard]] Seconds service_time(const DiskSpeedMode& mode, Bytes bytes);

/// Service time + active-power energy for the transfer.
[[nodiscard]] ServiceCost service_cost(const DiskSpeedMode& mode, Bytes bytes);

/// Break-even idle time for a down+up transition pair: spinning down only
/// saves energy when the idle period exceeds this (the paper's §5.2
/// observation that "a disk spin down can cause more energy consumption if
/// the idle time is not long enough"). Computed from the power gap and the
/// transition overheads.
[[nodiscard]] Seconds transition_break_even_idle(
    const TwoSpeedDiskParams& params);

}  // namespace pr
