#include "disk/service_model.h"

namespace pr {

Seconds service_time(const DiskSpeedMode& mode, Bytes bytes) {
  const double transfer =
      static_cast<double>(bytes) / mode.transfer_bytes_per_s();
  return mode.avg_seek + mode.avg_rotational_latency() + Seconds{transfer};
}

ServiceCost service_cost(const DiskSpeedMode& mode, Bytes bytes) {
  ServiceCost cost;
  cost.time = service_time(mode, bytes);
  cost.energy = mode.active_power * cost.time;
  return cost;
}

Seconds transition_break_even_idle(const TwoSpeedDiskParams& params) {
  // Spending T idle at low speed instead of high saves
  //   (ih - il) * (T - t_down - t_up)   [no service during transitions]
  // and costs E_down + E_up plus the idle-at-low energy during the
  // transition windows themselves (already excluded above by construction:
  // transition energy is accounted as a lump). Break-even:
  //   (ih - il) * T_be = E_down + E_up + ih * (t_down + t_up)
  // where staying at high for the transition windows would itself have
  // cost ih * (t_down + t_up); being conservative we require the *saved*
  // energy to cover the lumps:
  const double gap =
      params.high.idle_power.value() - params.low.idle_power.value();
  if (gap <= 0.0) return kNeverTime;
  const double lumps = params.transition_down_energy.value() +
                       params.transition_up_energy.value();
  const double transit =
      params.transition_down_time.value() + params.transition_up_time.value();
  return Seconds{lumps / gap + transit};
}

}  // namespace pr
