#include "disk/disk_params.h"

#include <stdexcept>

namespace pr {

TwoSpeedDiskParams two_speed_cheetah() {
  TwoSpeedDiskParams p;
  p.model_name = "cheetah-2speed";
  p.capacity = 18 * kGiB;

  p.high.rpm = 10'000.0;
  p.high.transfer_mib_per_s = 31.0;
  p.high.avg_seek = Seconds{5.3e-3};
  p.high.active_power = Watts{13.5};
  p.high.idle_power = Watts{10.2};
  p.high.operating_temp = Celsius{50.0};

  p.low.rpm = 3'600.0;
  p.low.transfer_mib_per_s = 31.0 * 3'600.0 / 10'000.0;  // linear in RPM
  p.low.avg_seek = Seconds{5.3e-3};
  p.low.active_power = Watts{6.1};
  p.low.idle_power = Watts{2.9};
  p.low.operating_temp = Celsius{40.0};

  p.transition_up_time = Seconds{8.0};
  p.transition_down_time = Seconds{2.0};
  p.transition_up_energy = Joules{135.0};
  p.transition_down_energy = Joules{13.0};
  return p;
}

TwoSpeedDiskParams two_speed_deskstar() {
  TwoSpeedDiskParams p;
  p.model_name = "deskstar-7k400-2speed";
  p.capacity = 400 * kGiB;

  p.high.rpm = 7'200.0;
  p.high.transfer_mib_per_s = 60.0;
  p.high.avg_seek = Seconds{8.5e-3};
  p.high.active_power = Watts{12.6};
  p.high.idle_power = Watts{8.5};
  // Desktop drive in a cooler enclosure than a server Cheetah; §3.2's
  // RPM-cubed argument puts 7,200 RPM between the paper's two bands.
  p.high.operating_temp = Celsius{45.0};

  p.low.rpm = 4'500.0;
  p.low.transfer_mib_per_s = 60.0 * 4'500.0 / 7'200.0;
  p.low.avg_seek = Seconds{8.5e-3};
  p.low.active_power = Watts{7.2};
  p.low.idle_power = Watts{4.7};  // Hitachi's "unload idle / low RPM" mode
  p.low.operating_temp = Celsius{40.0};

  // Shallower RPM gap: faster, cheaper transitions than the Cheetah.
  p.transition_up_time = Seconds{4.0};
  p.transition_down_time = Seconds{1.5};
  p.transition_up_energy = Joules{55.0};
  p.transition_down_energy = Joules{8.0};
  return p;
}

void validate(const TwoSpeedDiskParams& params) {
  auto check_mode = [](const DiskSpeedMode& m, const char* which) {
    if (!(m.rpm > 0.0)) {
      throw std::invalid_argument(std::string("disk params: ") + which +
                                  ": rpm must be > 0");
    }
    if (!(m.transfer_mib_per_s > 0.0)) {
      throw std::invalid_argument(std::string("disk params: ") + which +
                                  ": transfer rate must be > 0");
    }
    if (m.avg_seek < Seconds{0.0}) {
      throw std::invalid_argument(std::string("disk params: ") + which +
                                  ": negative seek");
    }
    if (m.active_power < m.idle_power) {
      throw std::invalid_argument(std::string("disk params: ") + which +
                                  ": active power below idle power");
    }
    if (!(m.idle_power.value() >= 0.0)) {
      throw std::invalid_argument(std::string("disk params: ") + which +
                                  ": negative idle power");
    }
  };
  check_mode(params.low, "low mode");
  check_mode(params.high, "high mode");
  if (params.low.rpm >= params.high.rpm) {
    throw std::invalid_argument("disk params: low rpm must be < high rpm");
  }
  if (params.low.transfer_mib_per_s > params.high.transfer_mib_per_s) {
    throw std::invalid_argument(
        "disk params: low transfer rate exceeds high transfer rate");
  }
  if (params.transition_up_time < Seconds{0.0} ||
      params.transition_down_time < Seconds{0.0}) {
    throw std::invalid_argument("disk params: negative transition time");
  }
  if (params.transition_up_energy < Joules{0.0} ||
      params.transition_down_energy < Joules{0.0}) {
    throw std::invalid_argument("disk params: negative transition energy");
  }
  if (params.capacity == 0) {
    throw std::invalid_argument("disk params: zero capacity");
  }
}

}  // namespace pr
