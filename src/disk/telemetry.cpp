#include "disk/telemetry.h"

#include "disk/thermal.h"

namespace pr {

DiskTelemetry extract_telemetry(const Disk& disk,
                                TemperatureAttribution attribution) {
  DiskTelemetry t;
  t.disk = disk.id();
  switch (attribution) {
    case TemperatureAttribution::kMax:
      t.temperature = disk.max_temperature();
      break;
    case TemperatureAttribution::kThermalLag: {
      const auto segments = segments_from_history(
          disk.params(), disk.initial_speed(), disk.speed_history());
      const Seconds window = disk.ledger().observed();
      if (window > Seconds{0.0}) {
        t.temperature =
            simulate_thermal(segments, Seconds{0.0}, window).mean;
      } else {
        t.temperature = disk.mean_temperature();
      }
      break;
    }
    case TemperatureAttribution::kTimeWeighted:
      t.temperature = disk.mean_temperature();
      break;
  }
  t.utilization = disk.ledger().utilization();
  t.transitions_per_day = disk.ledger().press_transitions_per_day();
  return t;
}

std::vector<DiskTelemetry> extract_telemetry(
    const std::vector<Disk>& disks, TemperatureAttribution attribution) {
  std::vector<DiskTelemetry> out;
  out.reserve(disks.size());
  for (const auto& d : disks) out.push_back(extract_telemetry(d, attribution));
  return out;
}

}  // namespace pr
