// disk.h — simulation state machine for one 2-speed disk.
//
// The disk serves whole-file requests FCFS, can switch speed (no request is
// served during a transition, §4), and keeps a complete energy/occupancy
// ledger: every instant of simulated time is attributed to exactly one of
// {idle@speed, busy@speed, transitioning}, which the tests verify sums to
// the simulation horizon. All ESRRA telemetry the PRESS model needs —
// utilization, speed-transition frequency, operating temperature exposure —
// falls out of this ledger.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "disk/disk_params.h"
#include "disk/geometry.h"
#include "disk/service_model.h"
#include "util/units.h"

namespace pr {

enum class DiskSpeed : std::uint8_t { kLow = 0, kHigh = 1 };

[[nodiscard]] constexpr const char* to_string(DiskSpeed s) {
  return s == DiskSpeed::kLow ? "low" : "high";
}

using DiskId = std::uint32_t;

/// Aggregated per-disk counters for a finished simulation window.
struct DiskLedger {
  Seconds busy_time{0.0};        // positioning + transfer
  Seconds idle_time{0.0};        // spinning, no I/O
  Seconds transition_time{0.0};  // switching speed
  Seconds time_at_low{0.0};      // idle+busy at low speed
  Seconds time_at_high{0.0};     // idle+busy at high speed
  Joules energy{0.0};            // everything: busy + idle + transitions
  std::uint64_t transitions = 0;
  std::uint64_t transitions_up = 0;
  /// Most transitions begun within any single calendar day of the run —
  /// the quantity READ's budget S bounds (§5.2). Unlike
  /// transitions_per_day() below this does not extrapolate, so it is the
  /// right check for multi-day simulations.
  std::uint64_t max_transitions_in_day = 0;
  std::uint64_t requests = 0;
  Bytes bytes_served = 0;
  /// Background/internal I/O (file migrations, cache copies): occupies the
  /// disk and burns energy like any other I/O — it is part of busy_time —
  /// but is counted separately because the paper's response-time metric
  /// covers user requests only.
  std::uint64_t internal_ops = 0;
  Bytes internal_bytes = 0;

  [[nodiscard]] Seconds observed() const {
    return busy_time + idle_time + transition_time;
  }
  /// Fraction of powered-on time spent doing I/O (the paper's §3.3
  /// definition: active time over total power-on time).
  [[nodiscard]] double utilization() const {
    const double total = observed().value();
    return total > 0.0 ? busy_time.value() / total : 0.0;
  }
  /// Speed transitions per day over the observed window.
  [[nodiscard]] double transitions_per_day() const {
    const double days = observed() / kSecondsPerDay;
    return days > 0.0 ? static_cast<double>(transitions) / days : 0.0;
  }
  /// Transition frequency fed to PRESS's frequency-AFR term (Eq. 3).
  /// For windows of at least one simulated day this is the day-bucketed
  /// max_transitions_in_day — the quantity READ's budget S actually bounds.
  /// Sub-day windows fall back to the raw transition count: a 1-hour smoke
  /// run with 2 transitions reports 2, not the 48/day the extrapolating
  /// transitions_per_day() would claim (which inflated the frequency AFR —
  /// nothing observed supports projecting the burst across a full day).
  [[nodiscard]] double press_transitions_per_day() const {
    if (observed() >= kSecondsPerDay) {
      return static_cast<double>(max_transitions_in_day);
    }
    return static_cast<double>(transitions);
  }
};

class Disk {
 public:
  Disk(DiskId id, const TwoSpeedDiskParams& params, DiskSpeed initial);

  [[nodiscard]] DiskId id() const { return id_; }
  [[nodiscard]] const TwoSpeedDiskParams& params() const { return params_; }

  /// Speed the disk will be in once all scheduled work completes.
  [[nodiscard]] DiskSpeed speed() const { return speed_; }
  /// Earliest time new work can start.
  [[nodiscard]] Seconds ready_time() const { return ready_time_; }

  /// Serve a whole-file request arriving at `arrival`; returns completion
  /// time (start delayed by queueing/transitions, FCFS). `internal` marks
  /// background I/O (migration/copy traffic) that should not count as a
  /// user request.
  Seconds serve(Seconds arrival, Bytes bytes, bool internal = false);

  /// Positional variant (requires a seek curve, see set_seek_curve):
  /// positioning cost is the seek from the current head cylinder to
  /// `cylinder` plus average rotational latency; the head parks at the
  /// target afterwards. Falls back to serve() when no curve is set.
  Seconds serve_positioned(Seconds arrival, Bytes bytes, Cylinder cylinder,
                           bool internal = false);

  /// Install a seek curve enabling positional service (DiskSim-style
  /// fidelity; see disk/geometry.h). Only legal before the simulation
  /// starts accounting time.
  void set_seek_curve(const SeekCurve& curve);
  [[nodiscard]] bool positioned() const { return seek_curve_.has_value(); }
  [[nodiscard]] Cylinder head_position() const { return head_; }

  /// Switch to `target`, starting no earlier than `at` and after queued
  /// work completes; returns the time the transition finishes. A request to
  /// switch to the current speed is a no-op (no cost, no count).
  Seconds transition(Seconds at, DiskSpeed target);

  /// Set the speed the disk *starts* the simulation in — free, uncounted.
  /// Only legal before any time has been accounted (throws
  /// std::logic_error otherwise); policies use it during initialize().
  void set_initial_speed(DiskSpeed speed);

  /// Close the ledger at simulation end (accounts trailing idle time).
  void finish(Seconds end);

  /// Monotonically increasing count of serve() calls — used by DPM events
  /// to detect "a request arrived since this idle-check was scheduled".
  [[nodiscard]] std::uint64_t activity_generation() const {
    return activity_generation_;
  }

  /// Instant up to which every moment of simulated time has been
  /// attributed to the ledger. Exposed for the PR_INVARIANT conservation
  /// checks at epoch boundaries (every ledger bucket must sum back to
  /// exactly this much time).
  [[nodiscard]] Seconds accounted_until() const { return accounted_until_; }

  /// True when the ledger conserves time: busy + idle + transition equals
  /// the accounted horizon, and the per-speed split equals busy + idle,
  /// within floating-point accumulation error of `rel_tol`.
  [[nodiscard]] bool ledger_conserves(double rel_tol = 1e-9) const;

  /// Speed transitions begun in the current sim-day (`now` determines the
  /// day). READ's adaptive threshold (Fig. 6 lines 20-24) consults this.
  [[nodiscard]] std::uint64_t transitions_today(Seconds now) const;
  /// Total transitions ever.
  [[nodiscard]] std::uint64_t total_transitions() const {
    return ledger_.transitions;
  }

  [[nodiscard]] const DiskLedger& ledger() const { return ledger_; }

  /// Time-weighted operating temperature over the window (low/high band
  /// midpoints per §3.2/§3.5; transitions count at the band midpoint).
  [[nodiscard]] Celsius mean_temperature() const;
  /// Hottest sustained operating point the disk was exposed to.
  [[nodiscard]] Celsius max_temperature() const;

  /// Speed the disk started the simulation in.
  [[nodiscard]] DiskSpeed initial_speed() const { return initial_speed_; }
  /// Completed speed changes as (finish time, new speed), in order —
  /// input to the optional thermal-lag model (disk/thermal.h).
  [[nodiscard]] const std::vector<std::pair<Seconds, DiskSpeed>>&
  speed_history() const {
    return speed_history_;
  }

 private:
  void account_idle_until(Seconds t);
  void add_time_at_speed(DiskSpeed s, Seconds dt);
  void note_transition_start(Seconds at);
  Seconds serve_impl(Seconds arrival, Bytes bytes, bool internal,
                     std::optional<Cylinder> cylinder);

  DiskId id_;
  TwoSpeedDiskParams params_;
  DiskSpeed speed_;
  DiskSpeed initial_speed_;
  std::vector<std::pair<Seconds, DiskSpeed>> speed_history_;
  Seconds ready_time_{0.0};
  Seconds accounted_until_{0.0};
  std::uint64_t activity_generation_ = 0;

  // per-day transition tracking
  std::int64_t current_day_ = 0;
  std::uint64_t transitions_in_day_ = 0;

  // optional positional model
  std::optional<SeekCurve> seek_curve_;
  Cylinder head_ = 0;

  DiskLedger ledger_;
};

}  // namespace pr
