// disk.h — simulation state machine for one 2-speed disk.
//
// The disk serves whole-file requests FCFS, can switch speed (no request is
// served during a transition, §4), and keeps a complete energy/occupancy
// ledger: every instant of simulated time is attributed to exactly one of
// {idle@speed, busy@speed, transitioning}, which the tests verify sums to
// the simulation horizon. All ESRRA telemetry the PRESS model needs —
// utilization, speed-transition frequency, operating temperature exposure —
// falls out of this ledger.
//
// Storage: since the fleet-scale refactor, Disk is a *facade* over a
// DiskArraySoA slot (disk/disk_soa.h). An ArrayContext owns one SoA for
// its whole array and binds each Disk to a slot; the standalone
// constructor (tests, benches, ad-hoc use) owns a private 1-slot SoA so
// the historical value-type API keeps working. The seed-layout golden
// pins this refactor byte-identical to the pre-SoA AoS layout.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "disk/disk_params.h"
#include "disk/disk_soa.h"
#include "disk/geometry.h"
#include "disk/service_model.h"
#include "util/units.h"

namespace pr {

class Disk {
 public:
  /// Standalone disk owning its own 1-slot SoA (tests/benches).
  Disk(DiskId id, const TwoSpeedDiskParams& params, DiskSpeed initial);
  /// Facade over `soa` slot `slot` (fleet/array use; `soa` must outlive
  /// the facade and already be sized past `slot`).
  Disk(DiskArraySoA& soa, std::uint32_t slot, DiskId id,
       const TwoSpeedDiskParams& params, DiskSpeed initial);

  Disk(Disk&&) noexcept = default;
  Disk& operator=(Disk&&) noexcept = default;

  [[nodiscard]] DiskId id() const { return id_; }
  [[nodiscard]] const TwoSpeedDiskParams& params() const { return params_; }

  /// Speed the disk will be in once all scheduled work completes.
  [[nodiscard]] DiskSpeed speed() const { return soa_->speed[slot_]; }
  /// Earliest time new work can start.
  [[nodiscard]] Seconds ready_time() const { return soa_->ready_time[slot_]; }

  /// Serve a whole-file request arriving at `arrival`; returns completion
  /// time (start delayed by queueing/transitions, FCFS). `internal` marks
  /// background I/O (migration/copy traffic) that should not count as a
  /// user request.
  Seconds serve(Seconds arrival, Bytes bytes, bool internal = false);

  /// Positional variant (requires a seek curve, see set_seek_curve):
  /// positioning cost is the seek from the current head cylinder to
  /// `cylinder` plus average rotational latency; the head parks at the
  /// target afterwards. Falls back to serve() when no curve is set.
  Seconds serve_positioned(Seconds arrival, Bytes bytes, Cylinder cylinder,
                           bool internal = false);

  /// Install a seek curve enabling positional service (DiskSim-style
  /// fidelity; see disk/geometry.h). Only legal before the simulation
  /// starts accounting time.
  void set_seek_curve(const SeekCurve& curve);
  [[nodiscard]] bool positioned() const { return seek_curve_.has_value(); }
  [[nodiscard]] Cylinder head_position() const { return soa_->head[slot_]; }

  /// Switch to `target`, starting no earlier than `at` and after queued
  /// work completes; returns the time the transition finishes. A request to
  /// switch to the current speed is a no-op (no cost, no count).
  Seconds transition(Seconds at, DiskSpeed target);

  /// Set the speed the disk *starts* the simulation in — free, uncounted.
  /// Only legal before any time has been accounted (throws
  /// std::logic_error otherwise); policies use it during initialize().
  void set_initial_speed(DiskSpeed speed);

  /// Close the ledger at simulation end (accounts trailing idle time).
  void finish(Seconds end);

  /// Monotonically increasing count of serve() calls — used by DPM events
  /// to detect "a request arrived since this idle-check was scheduled".
  [[nodiscard]] std::uint64_t activity_generation() const {
    return soa_->activity_generation[slot_];
  }

  /// Instant up to which every moment of simulated time has been
  /// attributed to the ledger. Exposed for the PR_INVARIANT conservation
  /// checks at epoch boundaries (every ledger bucket must sum back to
  /// exactly this much time).
  [[nodiscard]] Seconds accounted_until() const {
    return soa_->accounted_until[slot_];
  }

  /// True when the ledger conserves time: busy + idle + transition equals
  /// the accounted horizon, and the per-speed split equals busy + idle,
  /// within floating-point accumulation error of `rel_tol`.
  [[nodiscard]] bool ledger_conserves(double rel_tol = 1e-9) const;

  /// Speed transitions begun in the current sim-day (`now` determines the
  /// day). READ's adaptive threshold (Fig. 6 lines 20-24) consults this.
  [[nodiscard]] std::uint64_t transitions_today(Seconds now) const;
  /// Total transitions ever.
  [[nodiscard]] std::uint64_t total_transitions() const {
    return soa_->ledger[slot_].transitions;
  }

  [[nodiscard]] const DiskLedger& ledger() const {
    return soa_->ledger[slot_];
  }

  /// Time-weighted operating temperature over the window (low/high band
  /// midpoints per §3.2/§3.5; transitions count at the band midpoint).
  [[nodiscard]] Celsius mean_temperature() const;
  /// Hottest sustained operating point the disk was exposed to.
  [[nodiscard]] Celsius max_temperature() const;

  /// Speed the disk started the simulation in.
  [[nodiscard]] DiskSpeed initial_speed() const {
    return soa_->initial_speed[slot_];
  }
  /// Completed speed changes as (finish time, new speed), in order —
  /// input to the optional thermal-lag model (disk/thermal.h).
  [[nodiscard]] const std::vector<std::pair<Seconds, DiskSpeed>>&
  speed_history() const {
    return soa_->speed_history[slot_];
  }

 private:
  void account_idle_until(Seconds t);
  void add_time_at_speed(DiskSpeed s, Seconds dt);
  void note_transition_start(Seconds at);
  Seconds serve_impl(Seconds arrival, Bytes bytes, bool internal,
                     std::optional<Cylinder> cylinder);

  /// Set iff this disk owns its storage (standalone constructor); the
  /// facade constructor leaves it null. soa_ always points at the live
  /// storage (owned_.get() or the ArrayContext's shared SoA) and the heap
  /// allocation is address-stable across moves.
  std::unique_ptr<DiskArraySoA> owned_;
  DiskArraySoA* soa_;
  std::uint32_t slot_;

  DiskId id_;
  TwoSpeedDiskParams params_;

  // optional positional model (per-disk, cold)
  std::optional<SeekCurve> seek_curve_;
};

}  // namespace pr
