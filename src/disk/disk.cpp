#include "disk/disk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.h"

namespace pr {

namespace {

bool approx_eq(double a, double b, double rel_tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= rel_tol * scale;
}

}  // namespace

bool Disk::ledger_conserves(double rel_tol) const {
  const double observed = ledger_.observed().value();
  const double at_speeds =
      (ledger_.time_at_low + ledger_.time_at_high).value();
  const double busy_idle = (ledger_.busy_time + ledger_.idle_time).value();
  return approx_eq(observed, accounted_until_.value(), rel_tol) &&
         approx_eq(at_speeds, busy_idle, rel_tol) &&
         !(ledger_.energy < Joules{0.0});
}

Disk::Disk(DiskId id, const TwoSpeedDiskParams& params, DiskSpeed initial)
    : id_(id), params_(params), speed_(initial), initial_speed_(initial) {
  validate(params_);
}

void Disk::add_time_at_speed(DiskSpeed s, Seconds dt) {
  if (s == DiskSpeed::kLow) {
    ledger_.time_at_low += dt;
  } else {
    ledger_.time_at_high += dt;
  }
}

void Disk::account_idle_until(Seconds t) {
  PR_PRECONDITION(!(t < Seconds{0.0}),
                  "Disk: cannot account time before the simulation start");
  if (t <= accounted_until_) return;
  const Seconds dt = t - accounted_until_;
  ledger_.idle_time += dt;
  ledger_.energy += params_.mode(speed_ == DiskSpeed::kHigh).idle_power * dt;
  add_time_at_speed(speed_, dt);
  accounted_until_ = t;
}

Seconds Disk::serve(Seconds arrival, Bytes bytes, bool internal) {
  return serve_impl(arrival, bytes, internal, std::nullopt);
}

Seconds Disk::serve_positioned(Seconds arrival, Bytes bytes,
                               Cylinder cylinder, bool internal) {
  if (!seek_curve_) return serve(arrival, bytes, internal);
  return serve_impl(arrival, bytes, internal, cylinder);
}

void Disk::set_seek_curve(const SeekCurve& curve) {
  if (accounted_until_ > Seconds{0.0} || ready_time_ > Seconds{0.0} ||
      activity_generation_ != 0) {
    throw std::logic_error("Disk::set_seek_curve: simulation already started");
  }
  seek_curve_ = curve;
}

Seconds Disk::serve_impl(Seconds arrival, Bytes bytes, bool internal,
                         std::optional<Cylinder> cylinder) {
  if (arrival < Seconds{0.0}) {
    throw std::invalid_argument("Disk::serve: negative arrival");
  }
  ++activity_generation_;
  const Seconds start = std::max(arrival, ready_time_);
  account_idle_until(start);

  const auto& mode = params_.mode(speed_ == DiskSpeed::kHigh);
  ServiceCost cost = service_cost(mode, bytes);
  if (cylinder) {
    // Replace the average seek with the head-travel seek.
    const Cylinder target =
        *cylinder % seek_curve_->geometry().cylinders;
    const Cylinder distance = target >= head_ ? target - head_
                                              : head_ - target;
    cost.time = cost.time - mode.avg_seek + seek_curve_->seek_time(distance);
    cost.energy = mode.active_power * cost.time;
    head_ = target;
  }
  ledger_.busy_time += cost.time;
  ledger_.energy += cost.energy;
  add_time_at_speed(speed_, cost.time);
  if (internal) {
    ++ledger_.internal_ops;
    ledger_.internal_bytes += bytes;
  } else {
    ++ledger_.requests;
    ledger_.bytes_served += bytes;
  }

  ready_time_ = start + cost.time;
  accounted_until_ = ready_time_;
  PR_INVARIANT(!(ready_time_ < start),
               "Disk::serve: ready time moved backwards");
  return ready_time_;
}

void Disk::note_transition_start(Seconds at) {
  const auto day = static_cast<std::int64_t>(
      std::floor(at.value() / kSecondsPerDay.value()));
  if (day != current_day_) {
    current_day_ = day;
    transitions_in_day_ = 0;
  }
  ++transitions_in_day_;
  ledger_.max_transitions_in_day =
      std::max(ledger_.max_transitions_in_day, transitions_in_day_);
}

Seconds Disk::transition(Seconds at, DiskSpeed target) {
  PR_PRECONDITION(!(at < Seconds{0.0}),
                  "Disk::transition: negative transition time");
  const Seconds start = std::max(at, ready_time_);
  if (target == speed_) return start;
  // 2-speed legality: each recorded transition changes the speed, so the
  // history must strictly alternate low/high.
  PR_INVARIANT(speed_history_.empty() ||
                   speed_history_.back().second != target,
               "Disk::transition: speed history stopped alternating");
  account_idle_until(start);

  const bool up = target == DiskSpeed::kHigh;
  const Seconds dur =
      up ? params_.transition_up_time : params_.transition_down_time;
  const Joules lump =
      up ? params_.transition_up_energy : params_.transition_down_energy;

  ledger_.transition_time += dur;
  ledger_.energy += lump;
  ++ledger_.transitions;
  if (up) ++ledger_.transitions_up;
  note_transition_start(start);

  speed_ = target;
  ready_time_ = start + dur;
  accounted_until_ = ready_time_;
  speed_history_.emplace_back(ready_time_, target);
  return ready_time_;
}

void Disk::finish(Seconds end) {
  account_idle_until(end);
  PR_INVARIANT(ledger_conserves(),
               "Disk::finish: ledger does not conserve time/energy");
}

void Disk::set_initial_speed(DiskSpeed speed) {
  if (accounted_until_ > Seconds{0.0} || ready_time_ > Seconds{0.0} ||
      activity_generation_ != 0 || ledger_.transitions != 0) {
    throw std::logic_error(
        "Disk::set_initial_speed: simulation already started");
  }
  speed_ = speed;
  initial_speed_ = speed;
}

std::uint64_t Disk::transitions_today(Seconds now) const {
  const auto day = static_cast<std::int64_t>(
      std::floor(now.value() / kSecondsPerDay.value()));
  return day == current_day_ ? transitions_in_day_ : 0;
}

Celsius Disk::mean_temperature() const {
  const double t_low = ledger_.time_at_low.value();
  const double t_high = ledger_.time_at_high.value();
  const double t_trans = ledger_.transition_time.value();
  const double total = t_low + t_high + t_trans;
  const double low_c = params_.low.operating_temp.value();
  const double high_c = params_.high.operating_temp.value();
  if (total <= 0.0) {
    return speed_ == DiskSpeed::kHigh ? params_.high.operating_temp
                                      : params_.low.operating_temp;
  }
  const double mid = 0.5 * (low_c + high_c);
  return Celsius{(t_low * low_c + t_high * high_c + t_trans * mid) / total};
}

Celsius Disk::max_temperature() const {
  if (ledger_.time_at_high.value() > 0.0 || speed_ == DiskSpeed::kHigh) {
    return params_.high.operating_temp;
  }
  return params_.low.operating_temp;
}

}  // namespace pr
