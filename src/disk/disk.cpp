#include "disk/disk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.h"

namespace pr {

namespace {

bool approx_eq(double a, double b, double rel_tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= rel_tol * scale;
}

}  // namespace

bool Disk::ledger_conserves(double rel_tol) const {
  const DiskLedger& ledger = soa_->ledger[slot_];
  const double observed = ledger.observed().value();
  const double at_speeds = (ledger.time_at_low + ledger.time_at_high).value();
  const double busy_idle = (ledger.busy_time + ledger.idle_time).value();
  return approx_eq(observed, soa_->accounted_until[slot_].value(), rel_tol) &&
         approx_eq(at_speeds, busy_idle, rel_tol) &&
         !(ledger.energy < Joules{0.0});
}

Disk::Disk(DiskId id, const TwoSpeedDiskParams& params, DiskSpeed initial)
    : owned_(std::make_unique<DiskArraySoA>(1)),
      soa_(owned_.get()),
      slot_(0),
      id_(id),
      params_(params) {
  validate(params_);
  soa_->speed[slot_] = initial;
  soa_->initial_speed[slot_] = initial;
}

Disk::Disk(DiskArraySoA& soa, std::uint32_t slot, DiskId id,
           const TwoSpeedDiskParams& params, DiskSpeed initial)
    : soa_(&soa), slot_(slot), id_(id), params_(params) {
  PR_PRECONDITION(slot < soa.size(),
                  "Disk: facade slot beyond the SoA's size");
  validate(params_);
  soa_->speed[slot_] = initial;
  soa_->initial_speed[slot_] = initial;
}

void Disk::add_time_at_speed(DiskSpeed s, Seconds dt) {
  DiskLedger& ledger = soa_->ledger[slot_];
  if (s == DiskSpeed::kLow) {
    ledger.time_at_low += dt;
  } else {
    ledger.time_at_high += dt;
  }
}

void Disk::account_idle_until(Seconds t) {
  PR_PRECONDITION(!(t < Seconds{0.0}),
                  "Disk: cannot account time before the simulation start");
  if (t <= soa_->accounted_until[slot_]) return;
  const Seconds dt = t - soa_->accounted_until[slot_];
  DiskLedger& ledger = soa_->ledger[slot_];
  ledger.idle_time += dt;
  ledger.energy +=
      params_.mode(soa_->speed[slot_] == DiskSpeed::kHigh).idle_power * dt;
  add_time_at_speed(soa_->speed[slot_], dt);
  soa_->accounted_until[slot_] = t;
}

Seconds Disk::serve(Seconds arrival, Bytes bytes, bool internal) {
  return serve_impl(arrival, bytes, internal, std::nullopt);
}

Seconds Disk::serve_positioned(Seconds arrival, Bytes bytes,
                               Cylinder cylinder, bool internal) {
  if (!seek_curve_) return serve(arrival, bytes, internal);
  return serve_impl(arrival, bytes, internal, cylinder);
}

void Disk::set_seek_curve(const SeekCurve& curve) {
  if (soa_->accounted_until[slot_] > Seconds{0.0} ||
      soa_->ready_time[slot_] > Seconds{0.0} ||
      soa_->activity_generation[slot_] != 0) {
    throw std::logic_error("Disk::set_seek_curve: simulation already started");
  }
  seek_curve_ = curve;
}

Seconds Disk::serve_impl(Seconds arrival, Bytes bytes, bool internal,
                         std::optional<Cylinder> cylinder) {
  if (arrival < Seconds{0.0}) {
    throw std::invalid_argument("Disk::serve: negative arrival");
  }
  ++soa_->activity_generation[slot_];
  const Seconds start = std::max(arrival, soa_->ready_time[slot_]);
  account_idle_until(start);

  const auto& mode = params_.mode(soa_->speed[slot_] == DiskSpeed::kHigh);
  ServiceCost cost = service_cost(mode, bytes);
  if (cylinder) {
    // Replace the average seek with the head-travel seek.
    const Cylinder head = soa_->head[slot_];
    const Cylinder target = *cylinder % seek_curve_->geometry().cylinders;
    const Cylinder distance = target >= head ? target - head : head - target;
    cost.time = cost.time - mode.avg_seek + seek_curve_->seek_time(distance);
    cost.energy = mode.active_power * cost.time;
    soa_->head[slot_] = target;
  }
  DiskLedger& ledger = soa_->ledger[slot_];
  ledger.busy_time += cost.time;
  ledger.energy += cost.energy;
  add_time_at_speed(soa_->speed[slot_], cost.time);
  if (internal) {
    ++ledger.internal_ops;
    ledger.internal_bytes += bytes;
  } else {
    ++ledger.requests;
    ledger.bytes_served += bytes;
  }

  const Seconds ready = start + cost.time;
  soa_->ready_time[slot_] = ready;
  soa_->accounted_until[slot_] = ready;
  PR_INVARIANT(!(ready < start), "Disk::serve: ready time moved backwards");
  return ready;
}

void Disk::note_transition_start(Seconds at) {
  const auto day = static_cast<std::int64_t>(
      std::floor(at.value() / kSecondsPerDay.value()));
  if (day != soa_->current_day[slot_]) {
    soa_->current_day[slot_] = day;
    soa_->transitions_in_day[slot_] = 0;
  }
  ++soa_->transitions_in_day[slot_];
  DiskLedger& ledger = soa_->ledger[slot_];
  ledger.max_transitions_in_day = std::max(ledger.max_transitions_in_day,
                                           soa_->transitions_in_day[slot_]);
}

Seconds Disk::transition(Seconds at, DiskSpeed target) {
  PR_PRECONDITION(!(at < Seconds{0.0}),
                  "Disk::transition: negative transition time");
  const Seconds start = std::max(at, soa_->ready_time[slot_]);
  if (target == soa_->speed[slot_]) return start;
  // 2-speed legality: each recorded transition changes the speed, so the
  // history must strictly alternate low/high.
  auto& history = soa_->speed_history[slot_];
  PR_INVARIANT(history.empty() || history.back().second != target,
               "Disk::transition: speed history stopped alternating");
  account_idle_until(start);

  const bool up = target == DiskSpeed::kHigh;
  const Seconds dur =
      up ? params_.transition_up_time : params_.transition_down_time;
  const Joules lump =
      up ? params_.transition_up_energy : params_.transition_down_energy;

  DiskLedger& ledger = soa_->ledger[slot_];
  ledger.transition_time += dur;
  ledger.energy += lump;
  ++ledger.transitions;
  if (up) ++ledger.transitions_up;
  note_transition_start(start);

  soa_->speed[slot_] = target;
  const Seconds ready = start + dur;
  soa_->ready_time[slot_] = ready;
  soa_->accounted_until[slot_] = ready;
  history.emplace_back(ready, target);
  return ready;
}

void Disk::finish(Seconds end) {
  account_idle_until(end);
  PR_INVARIANT(ledger_conserves(),
               "Disk::finish: ledger does not conserve time/energy");
}

void Disk::set_initial_speed(DiskSpeed speed) {
  if (soa_->accounted_until[slot_] > Seconds{0.0} ||
      soa_->ready_time[slot_] > Seconds{0.0} ||
      soa_->activity_generation[slot_] != 0 ||
      soa_->ledger[slot_].transitions != 0) {
    throw std::logic_error(
        "Disk::set_initial_speed: simulation already started");
  }
  soa_->speed[slot_] = speed;
  soa_->initial_speed[slot_] = speed;
}

std::uint64_t Disk::transitions_today(Seconds now) const {
  const auto day = static_cast<std::int64_t>(
      std::floor(now.value() / kSecondsPerDay.value()));
  return day == soa_->current_day[slot_] ? soa_->transitions_in_day[slot_]
                                         : 0;
}

Celsius Disk::mean_temperature() const {
  const DiskLedger& ledger = soa_->ledger[slot_];
  const double t_low = ledger.time_at_low.value();
  const double t_high = ledger.time_at_high.value();
  const double t_trans = ledger.transition_time.value();
  const double total = t_low + t_high + t_trans;
  const double low_c = params_.low.operating_temp.value();
  const double high_c = params_.high.operating_temp.value();
  if (total <= 0.0) {
    return soa_->speed[slot_] == DiskSpeed::kHigh ? params_.high.operating_temp
                                                  : params_.low.operating_temp;
  }
  const double mid = 0.5 * (low_c + high_c);
  return Celsius{(t_low * low_c + t_high * high_c + t_trans * mid) / total};
}

Celsius Disk::max_temperature() const {
  if (soa_->ledger[slot_].time_at_high.value() > 0.0 ||
      soa_->speed[slot_] == DiskSpeed::kHigh) {
    return params_.high.operating_temp;
  }
  return params_.low.operating_temp;
}

}  // namespace pr
