#include "disk/thermal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace pr {

ThermalTrace simulate_thermal(std::span<const SpeedSegment> segments,
                              Seconds window_start, Seconds window_end,
                              const ThermalParams& params) {
  if (segments.empty()) {
    throw std::invalid_argument("simulate_thermal: no segments");
  }
  if (window_end < window_start) {
    throw std::invalid_argument("simulate_thermal: inverted window");
  }
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].start < segments[i - 1].start) {
      throw std::invalid_argument("simulate_thermal: unsorted segments");
    }
  }
  if (segments.front().start > window_start) {
    throw std::invalid_argument(
        "simulate_thermal: first segment starts after the window");
  }

  const double tau = params.time_constant.value();
  if (!(tau > 0.0)) {
    throw std::invalid_argument("simulate_thermal: non-positive tau");
  }

  double temp = params.initial.value() >= 0.0
                    ? params.initial.value()
                    : segments.front().steady_target.value();

  ThermalTrace trace;
  trace.max = Celsius{temp};
  double weighted_sum = 0.0;
  const double window = (window_end - window_start).value();

  for (std::size_t i = 0; i < segments.size(); ++i) {
    const double seg_begin =
        std::max(segments[i].start.value(), window_start.value());
    const double seg_end = i + 1 < segments.size()
                               ? std::min(segments[i + 1].start.value(),
                                          window_end.value())
                               : window_end.value();
    if (seg_end <= seg_begin) continue;
    const double dt = seg_end - seg_begin;
    const double target = segments[i].steady_target.value();

    // T(t) = target + (T0 − target)·e^(−t/τ); mean over [0, dt] is
    // target + (T0 − target)·τ/dt·(1 − e^(−dt/τ)).
    const double decay = std::exp(-dt / tau);
    const double mean_seg =
        target + (temp - target) * tau / dt * (1.0 - decay);
    weighted_sum += mean_seg * dt;

    const double end_temp = target + (temp - target) * decay;
    // Temperature is monotone within a segment: extremes at endpoints.
    trace.max = Celsius{std::max({trace.max.value(), temp, end_temp})};
    temp = end_temp;
  }

  trace.final = Celsius{temp};
  trace.mean = window > 0.0 ? Celsius{weighted_sum / window} : trace.final;
  if (window == 0.0) trace.max = trace.final;
  return trace;
}

std::vector<SpeedSegment> segments_from_history(
    const TwoSpeedDiskParams& params, DiskSpeed initial_speed,
    std::span<const std::pair<Seconds, DiskSpeed>> transitions) {
  std::vector<SpeedSegment> segments;
  segments.reserve(transitions.size() + 1);
  auto target = [&](DiskSpeed s) {
    return params.mode(s == DiskSpeed::kHigh).operating_temp;
  };
  segments.push_back({Seconds{0.0}, target(initial_speed)});
  for (const auto& [when, speed] : transitions) {
    segments.push_back({when, target(speed)});
  }
  return segments;
}

}  // namespace pr
