// geometry.h — optional positional realism for the service-time model.
//
// The default pipeline uses average-case positioning (average seek + half
// a revolution), which is the granularity the paper's file-level simulator
// needs. For users who want DiskSim-style fidelity, this module provides:
//   * a cylinder-count geometry,
//   * the classic concave seek curve t(d) = a·√(d−1) + b·(d−1) + c
//     (Lee's approximation, used throughout the DiskSim literature),
//     calibrated from a drive's (single-track, average, full-stroke)
//     seek specification, and
//   * a per-disk head-position model: consecutive requests pay the seek
//     distance between the previous request's cylinder and theirs.
//
// Enabled via SimConfig::positioned_io; the array simulator then lays
// files out contiguously per disk (placement order) and passes each
// request's cylinder to the disk.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace pr {

using Cylinder = std::uint32_t;

struct DiskGeometry {
  Cylinder cylinders = 50'000;

  friend bool operator==(const DiskGeometry&, const DiskGeometry&) = default;
};

/// Three-point concave seek curve. For a seek of d cylinders (d ≥ 1):
///   t(d) = a·sqrt(d − 1) + b·(d − 1) + c,   t(0) = 0.
/// Calibrated so t(1) = single-track, t(cyl/3) = average (the mean seek
/// distance of uniformly random request pairs is ≈ C/3), and
/// t(cyl − 1) = full-stroke.
class SeekCurve {
 public:
  /// Throws std::invalid_argument for non-increasing seek specs or a
  /// geometry too small to calibrate (needs ≥ 4 cylinders).
  SeekCurve(const DiskGeometry& geometry, Seconds single_track,
            Seconds average, Seconds full_stroke);

  [[nodiscard]] Seconds seek_time(Cylinder distance) const;
  [[nodiscard]] const DiskGeometry& geometry() const { return geometry_; }

  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }
  [[nodiscard]] double c() const { return c_; }

 private:
  DiskGeometry geometry_;
  double a_ = 0.0;
  double b_ = 0.0;
  double c_ = 0.0;
};

/// A Cheetah-10K-class calibration matching the repo's default preset:
/// 0.6 ms single-track, 5.3 ms average, 10.5 ms full-stroke over 50k
/// cylinders.
[[nodiscard]] SeekCurve cheetah_seek_curve();

}  // namespace pr
