// disk_params.h — parameterisation of the 2-speed disk the paper simulates.
//
// §3.2/§5.1: the study considers two-speed disks with a 3,600 RPM low mode
// and a 10,000 RPM high mode; low-speed characteristics are derived from a
// conventional Seagate Cheetah 10K drive "the same strategy used in [23]"
// (Pinheiro & Bianchini, PDC): mechanical positioning scales with RPM and
// the sequential transfer rate scales linearly with RPM, spindle power
// roughly with RPM² (aerodynamic drag torque ~RPM², heat ~RPM³, which is
// why §3.2 pins the thermal operating bands at [35,40] °C low and
// [45,50] °C high).
#pragma once

#include <string>

#include "util/units.h"

namespace pr {

/// One speed mode of a multi-speed disk.
struct DiskSpeedMode {
  double rpm = 0.0;
  /// Sustained media transfer rate.
  double transfer_mib_per_s = 0.0;
  /// Average seek time (we model average-case positioning; the paper's
  /// simulator is file-granular, so per-cylinder seek curves would add
  /// noise without changing any comparison).
  Seconds avg_seek{0.0};
  /// Power while seeking/transferring.
  Watts active_power{0.0};
  /// Power while spinning idle at this speed.
  Watts idle_power{0.0};
  /// Operating temperature band for PRESS (§3.2): the disk runs at
  /// `operating_temp` when continuously at this speed.
  Celsius operating_temp{0.0};

  /// Average rotational latency = half a revolution.
  [[nodiscard]] Seconds avg_rotational_latency() const {
    return Seconds{30.0 / rpm};  // (60 s / rpm) / 2
  }
  [[nodiscard]] double transfer_bytes_per_s() const {
    return transfer_mib_per_s * static_cast<double>(kMiB);
  }
};

/// Full two-speed disk description.
struct TwoSpeedDiskParams {
  std::string model_name = "generic-2speed";
  DiskSpeedMode low;
  DiskSpeedMode high;
  Bytes capacity = 18 * kGiB;

  /// Speed-transition costs (§3.4: transitions cost time and energy and no
  /// request can be served while a disk switches speed).
  Seconds transition_up_time{0.0};    // low -> high
  Seconds transition_down_time{0.0};  // high -> low
  Joules transition_up_energy{0.0};
  Joules transition_down_energy{0.0};

  [[nodiscard]] const DiskSpeedMode& mode(bool high_speed) const {
    return high_speed ? high : low;
  }
};

/// The repo-wide default preset: Cheetah-10K-derived 2-speed disk matching
/// the paper's setup (10,000 / 3,600 RPM). Values follow the DRPM /
/// PDC / Hibernator literature for this drive class:
///  * high:  10,000 RPM, 5.3 ms avg seek, 31 MiB/s, 13.5 W active,
///           10.2 W idle, 50 °C operating point;
///  * low:   3,600 RPM (0.36× RPM): transfer 11.2 MiB/s (linear in RPM),
///           seek unchanged (arm dynamics), 6.1 W active, 2.9 W idle
///           (spindle drag ~RPM²), 40 °C operating point;
///  * transitions: 8 s / 135 J up, 2 s / 13 J down — spin-up dominates,
///    matching the paper's argument that transitions are roughly half as
///    damaging and costly as full start/stops.
[[nodiscard]] TwoSpeedDiskParams two_speed_cheetah();

/// The real two-speed drive the paper cites (§2, [16]): the Hitachi
/// Deskstar 7K400 with its "Power & Acoustic Management" low-RPM idle
/// mode. A 7,200 RPM desktop-class drive: slower and cooler than the
/// Cheetah preset, with a shallower speed gap (7,200 → 4,500 RPM), so
/// transitions are cheaper but the low mode saves less — a useful second
/// hardware point for sensitivity runs.
[[nodiscard]] TwoSpeedDiskParams two_speed_deskstar();

/// Validation: throws std::invalid_argument when a parameter set is
/// physically inconsistent (non-positive rates, inverted speeds, ...).
void validate(const TwoSpeedDiskParams& params);

}  // namespace pr
