#include "disk/geometry.h"

#include <cmath>
#include <stdexcept>

namespace pr {

SeekCurve::SeekCurve(const DiskGeometry& geometry, Seconds single_track,
                     Seconds average, Seconds full_stroke)
    : geometry_(geometry) {
  if (geometry.cylinders < 4) {
    throw std::invalid_argument("SeekCurve: need >= 4 cylinders");
  }
  const double t1 = single_track.value();
  const double ta = average.value();
  const double tf = full_stroke.value();
  if (!(t1 > 0.0) || !(ta > t1) || !(tf > ta)) {
    throw std::invalid_argument(
        "SeekCurve: need 0 < single-track < average < full-stroke");
  }

  // Anchor distances (in the (d − 1) domain of the curve).
  const double d_avg = static_cast<double>(geometry.cylinders) / 3.0 - 1.0;
  const double d_full = static_cast<double>(geometry.cylinders) - 2.0;

  // t(1): a·0 + b·0 + c = t1  =>  c = t1.
  c_ = t1;
  // Two equations in (a, b):
  //   a·sqrt(d_avg)  + b·d_avg  = ta − c
  //   a·sqrt(d_full) + b·d_full = tf − c
  const double s1 = std::sqrt(d_avg);
  const double s2 = std::sqrt(d_full);
  const double r1 = ta - c_;
  const double r2 = tf - c_;
  const double det = s1 * d_full - s2 * d_avg;
  if (det == 0.0) {
    throw std::invalid_argument("SeekCurve: degenerate calibration");
  }
  a_ = (r1 * d_full - r2 * d_avg) / det;
  b_ = (s1 * r2 - s2 * r1) / det;
  // A physically sensible spec yields a ≥ 0 (concave start); b may be
  // small either way, but the curve must stay monotone over the domain —
  // verify at the far end where the b term dominates.
  if (seek_time(geometry.cylinders - 1) < seek_time(geometry.cylinders / 2)) {
    throw std::invalid_argument("SeekCurve: non-monotone calibration");
  }
}

Seconds SeekCurve::seek_time(Cylinder distance) const {
  if (distance == 0) return Seconds{0.0};
  const double d = static_cast<double>(distance) - 1.0;
  return Seconds{a_ * std::sqrt(d) + b_ * d + c_};
}

SeekCurve cheetah_seek_curve() {
  return SeekCurve(DiskGeometry{50'000}, Seconds{0.6e-3}, Seconds{5.3e-3},
                   Seconds{10.5e-3});
}

}  // namespace pr
