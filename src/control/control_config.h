// control_config.h — knobs for the feedback-control subsystem (ROADMAP
// "Adaptive control on the streaming substrate"; Behzadnia et al. in
// PAPERS.md is the model). The paper fixes H, the hot-zone size k and the
// epoch length P offline; ControlConfig declares which of those knobs a
// run may adjust *online* from observed per-epoch telemetry, and within
// what bounds. Plain scalars only: this header is the bottom of the
// control layer and is embedded by value in SimConfig.
//
// Every controller is off by default; a default-constructed (or
// enabled=false) config is the byte-identical no-control path.
#pragma once

#include <cstdint>

namespace pr {

struct ControlConfig {
  /// Master switch. When false the simulator neither aggregates epoch
  /// windows nor interns any control.* counter — output is byte-identical
  /// to a build without the control subsystem.
  bool enabled = false;

  // --- target-latency proportional controller (knob: spin-down H) ------
  /// Mean response-time target per epoch, milliseconds; 0 disables the
  /// latency controller. Epochs slower than the target raise the DPM
  /// idleness thresholds (fewer spin-downs, better latency); faster
  /// epochs lower them (more spin-downs, better energy).
  double target_rt_ms = 0.0;
  /// Proportional gain: relative threshold step per unit of relative
  /// latency error (step is clamped by max_step).
  double gain = 0.5;
  /// Hysteresis dead band as a fraction of the setpoint: errors within
  /// ±hysteresis produce no action and reset the persistence streak.
  double hysteresis = 0.25;
  /// Consecutive same-direction out-of-band epochs required before any
  /// controller acts (>= 1). The default 2 makes a load signal that
  /// alternates direction every epoch (a square wave at the epoch
  /// frequency) structurally incapable of moving a knob.
  std::uint32_t persistence = 2;
  /// Largest multiplicative knob change per epoch (> 1).
  double max_step = 2.0;
  /// Clamp for adjusted idleness thresholds, seconds.
  double h_min_s = 1.0;
  double h_max_s = 3600.0;

  // --- energy-budget cap-spend controller (knob: hot-zone size k) ------
  /// Average power budget in watts (joules per simulated second); 0
  /// disables. Epochs spending above budget shrink the hot zone by one
  /// disk, epochs with spare budget grow it — subject to the policy's
  /// θ̂ guardrail (Policy::on_control may refuse or clamp the resize).
  double energy_budget_w = 0.0;

  // --- backlog controller (knob: epoch length P) -----------------------
  /// When true, sustained backlog pressure (shed requests, or queueing
  /// beyond half the reference window) halves the epoch length so
  /// re-ranking reacts faster; sustained calm doubles it back, within
  /// [epoch_min_s, epoch_max_s]. The reference window is admit_window_s
  /// when set, else 4 × target_rt_ms.
  bool adapt_epoch = false;
  double epoch_min_s = 60.0;
  double epoch_max_s = 14400.0;

  // --- admission window (load shedding) --------------------------------
  /// Bounded admission: a request whose routed disk is already backlogged
  /// by more than this many seconds is shed (counted under
  /// control.shed_requests, never served) instead of stretching the FCFS
  /// queue without bound. 0 disables shedding.
  double admit_window_s = 0.0;
};

}  // namespace pr
