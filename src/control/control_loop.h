// control_loop.h — the deterministic feedback controllers closing the
// loop from observed per-epoch telemetry back into policy knobs (ROADMAP
// "Adaptive control on the streaming substrate").
//
// Layering: control sits *below* the engine in the architecture DAG
// (tools/detlint/layers.ini), so this class never touches the simulator.
// It is a pure component — the simulator aggregates one ControlInputs
// window per epoch, calls update(), and actuates the returned
// ControlDecision itself (idleness thresholds via the DPM table, the
// hot-zone size via Policy::on_control, the epoch length via its own
// boundary stride). That inversion is what keeps every controller
// trivially deterministic: fixed-order scalar arithmetic over one input
// struct, no clocks, no state the simulator cannot replay.
//
// Oscillation control is two-layered and shared by all three
// controllers: a hysteresis dead band (errors within ±hysteresis of the
// setpoint are ignored and reset the streak) plus a persistence
// requirement (the error must leave the band in the *same direction* for
// `persistence` consecutive epochs before the knob moves). A load signal
// alternating direction every epoch therefore never moves a knob at the
// default persistence of 2 — pinned by tests/test_control.cpp.
#pragma once

#include <cstdint>

#include "control/control_config.h"

namespace pr {

/// One epoch's observed window, aggregated by the simulator.
struct ControlInputs {
  /// Length of the epoch that just closed, seconds.
  double epoch_s = 0.0;
  /// User requests served inside the epoch (shed/lost excluded).
  std::uint64_t requests = 0;
  /// Mean response time over those requests, seconds (0 when idle).
  double mean_rt_s = 0.0;
  /// Worst FCFS backlog seen at any dispatch inside the epoch, seconds.
  double max_backlog_s = 0.0;
  /// Ledger energy spent across the epoch, joules (all disks).
  double energy_j = 0.0;
  /// Requests shed by the admission window inside the epoch.
  std::uint64_t shed = 0;
};

/// What the controllers want changed; all fields are "hold" by default.
/// Scales are per-epoch multipliers — the simulator clamps the resulting
/// absolute values to the configured bounds at actuation time.
struct ControlDecision {
  /// Multiplier on every spin-down idleness threshold (1 = hold).
  double h_scale = 1.0;
  /// Hot-zone resize request: +1 grow, -1 shrink, 0 hold. Advisory — the
  /// policy's Policy::on_control applies its own guardrails and reports
  /// the delta actually taken.
  int hot_delta = 0;
  /// Multiplier on the epoch length (1 = hold).
  double epoch_scale = 1.0;

  [[nodiscard]] bool any() const {
    return h_scale != 1.0 || hot_delta != 0 || epoch_scale != 1.0;
  }
};

class ControlLoop {
 public:
  /// Validates the config (std::invalid_argument) when it is enabled; a
  /// disabled config is accepted untouched so the simulator can hold a
  /// ControlLoop unconditionally.
  explicit ControlLoop(ControlConfig config);

  /// Fold one epoch window into the controllers and return the knob
  /// decision. Deterministic: same input sequence, same decisions.
  [[nodiscard]] ControlDecision update(const ControlInputs& in);

  [[nodiscard]] const ControlConfig& config() const { return config_; }

 private:
  /// Update a signed persistence streak with this epoch's direction and
  /// report whether the controller may act (|streak| >= persistence).
  [[nodiscard]] bool persists(int* streak, int direction) const;

  ControlConfig config_;
  int rt_streak_ = 0;
  int energy_streak_ = 0;
  int epoch_streak_ = 0;
};

}  // namespace pr
