#include "control/zipf_estimator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "trace/trace_stats.h"

namespace pr {

ZipfEstimator::ZipfEstimator(double files_fraction, std::size_t fit_ranks)
    : files_fraction_(files_fraction), fit_ranks_(fit_ranks) {
  if (!(files_fraction > 0.0) || !(files_fraction < 1.0)) {
    throw std::invalid_argument(
        "ZipfEstimator: files_fraction must be in (0, 1)");
  }
}

ZipfEstimate ZipfEstimator::estimate(
    std::span<const std::uint64_t> counts) const {
  ZipfEstimate out;
  out.theta = estimate_theta(counts, files_fraction_);

  rank_scratch_.clear();
  for (const std::uint64_t c : counts) {
    if (c > 0) rank_scratch_.push_back(c);
  }
  out.active_files = rank_scratch_.size();

  // α fit mirrors compute_trace_stats: least-squares slope of log(count)
  // on log(rank) over the top `fit_ranks_` active counts. Selection by
  // value only — the multiset determines the ranked prefix regardless of
  // file-id order, so the estimate is stable under any counts layout.
  std::size_t n = rank_scratch_.size();
  if (fit_ranks_ > 0) n = std::min(n, fit_ranks_);
  if (n >= 3) {
    std::partial_sort(rank_scratch_.begin(), rank_scratch_.begin() + n,
                      rank_scratch_.end(), std::greater<>());
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = std::log(static_cast<double>(i + 1));
      const double y = std::log(static_cast<double>(rank_scratch_[i]));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const auto dn = static_cast<double>(n);
    const double denom = dn * sxx - sx * sx;
    if (denom > 0.0) {
      out.alpha = -(dn * sxy - sx * sy) / denom;
    }
  }
  return out;
}

}  // namespace pr
