// zipf_estimator.h — online θ/α popularity-skew estimation over live
// per-file access counts (the decayed counters OnlineReadPolicy already
// maintains), feeding the hot-zone controller its guardrail.
//
// θ is Lee et al.'s cumulative skew parameter (trace/trace_stats.h:
// the top x fraction of files captures x^θ of accesses — 1.0 = uniform,
// small = skewed); α is the Zipf exponent from a least-squares fit of
// log(count) on log(rank) over the top ranks, mirroring
// compute_trace_stats' fit so the online estimate converges to the
// offline characterisation on a stationary workload. Both are pure
// functions of the counts multiset: deterministic, allocation-bounded by
// the fit width, no simulator types.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pr {

struct ZipfEstimate {
  /// Cumulative skew θ ∈ (0, 1]; 1.0 for degenerate inputs (uniform).
  double theta = 1.0;
  /// Fitted Zipf exponent; 0 when fewer than 3 distinct active ranks.
  double alpha = 0.0;
  /// Files with a non-zero count (the active universe behind both fits).
  std::size_t active_files = 0;
};

class ZipfEstimator {
 public:
  /// `files_fraction` is the top-B point θ is measured at (trace_stats'
  /// default 0.2 reproduces the classic 80/20 reading); `fit_ranks`
  /// bounds the α log-log fit to the top ranks (0 = all active files).
  /// Throws std::invalid_argument unless 0 < files_fraction < 1.
  explicit ZipfEstimator(double files_fraction = 0.2,
                         std::size_t fit_ranks = 64);

  /// Estimate from live counts (need not be sorted; zeros are ignored).
  /// Deterministic: the result depends only on the counts multiset.
  [[nodiscard]] ZipfEstimate estimate(
      std::span<const std::uint64_t> counts) const;

 private:
  double files_fraction_;
  std::size_t fit_ranks_;
  /// Scratch for the per-call top-rank selection, reused across calls so
  /// steady-state estimation allocates nothing. Mutable-by-design via
  /// const_cast-free mutable member.
  mutable std::vector<std::uint64_t> rank_scratch_;
};

}  // namespace pr
