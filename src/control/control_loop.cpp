#include "control/control_loop.h"

#include <algorithm>
#include <stdexcept>

namespace pr {

namespace {

void validate(const ControlConfig& c) {
  if (!(c.gain > 0.0)) {
    throw std::invalid_argument("ControlConfig: gain must be > 0");
  }
  if (c.hysteresis < 0.0) {
    throw std::invalid_argument("ControlConfig: hysteresis must be >= 0");
  }
  if (c.persistence == 0) {
    throw std::invalid_argument("ControlConfig: persistence must be >= 1");
  }
  if (!(c.max_step > 1.0)) {
    throw std::invalid_argument("ControlConfig: max_step must be > 1");
  }
  if (!(c.h_min_s > 0.0) || c.h_max_s < c.h_min_s) {
    throw std::invalid_argument(
        "ControlConfig: need 0 < h_min_s <= h_max_s");
  }
  if (!(c.epoch_min_s > 0.0) || c.epoch_max_s < c.epoch_min_s) {
    throw std::invalid_argument(
        "ControlConfig: need 0 < epoch_min_s <= epoch_max_s");
  }
  if (c.target_rt_ms < 0.0 || c.energy_budget_w < 0.0 ||
      c.admit_window_s < 0.0) {
    throw std::invalid_argument(
        "ControlConfig: targets/budgets/windows must be >= 0");
  }
  if (c.adapt_epoch && c.admit_window_s == 0.0 && c.target_rt_ms == 0.0) {
    throw std::invalid_argument(
        "ControlConfig: adapt_epoch needs admit_window_s or target_rt_ms "
        "as its backlog yardstick");
  }
}

}  // namespace

ControlLoop::ControlLoop(ControlConfig config) : config_(config) {
  if (config_.enabled) validate(config_);
}

bool ControlLoop::persists(int* streak, int direction) const {
  if (direction == 0) {
    *streak = 0;
    return false;
  }
  // Same direction extends the streak; a reversal restarts it — the knob
  // only moves after `persistence` consecutive same-direction epochs.
  *streak = (direction > 0) == (*streak > 0) ? *streak + direction
                                             : direction;
  return static_cast<std::uint32_t>(*streak > 0 ? *streak : -*streak) >=
         config_.persistence;
}

ControlDecision ControlLoop::update(const ControlInputs& in) {
  ControlDecision out;
  if (!config_.enabled) return out;

  // Target-latency proportional controller -> idleness-threshold scale.
  // Idle epochs (no requests) carry no latency signal and reset the
  // streak — silence is not evidence of headroom.
  if (config_.target_rt_ms > 0.0) {
    int dir = 0;
    double error = 0.0;
    if (in.requests > 0) {
      const double target_s = config_.target_rt_ms / 1000.0;
      error = (in.mean_rt_s - target_s) / target_s;
      if (error > config_.hysteresis) dir = 1;        // too slow: raise H
      if (error < -config_.hysteresis) dir = -1;      // headroom: lower H
    }
    if (persists(&rt_streak_, dir)) {
      const double magnitude = error > 0.0 ? error : -error;
      const double step =
          std::min(config_.max_step, 1.0 + config_.gain * magnitude);
      out.h_scale = dir > 0 ? step : 1.0 / step;
    }
  }

  // Energy-budget cap-spend controller -> hot-zone resize request.
  if (config_.energy_budget_w > 0.0 && in.epoch_s > 0.0) {
    const double spend_w = in.energy_j / in.epoch_s;
    const double error =
        (spend_w - config_.energy_budget_w) / config_.energy_budget_w;
    int dir = 0;
    if (error > config_.hysteresis) dir = -1;   // over budget: shrink k
    if (error < -config_.hysteresis) dir = 1;   // spare budget: grow k
    if (persists(&energy_streak_, dir)) out.hot_delta = dir;
  }

  // Backlog controller -> epoch-length scale. The reference window is the
  // admission window when shedding is armed, else 4x the latency target.
  if (config_.adapt_epoch) {
    const double reference = config_.admit_window_s > 0.0
                                 ? config_.admit_window_s
                                 : 4.0 * config_.target_rt_ms / 1000.0;
    int dir = 0;
    if (in.shed > 0 || in.max_backlog_s > 0.5 * reference) {
      dir = -1;  // pressure: re-rank more often
    } else if (in.requests > 0 && in.max_backlog_s < 0.125 * reference) {
      dir = 1;   // calm: stretch the epoch back out
    }
    if (persists(&epoch_streak_, dir)) {
      out.epoch_scale = dir < 0 ? 0.5 : 2.0;
    }
  }

  return out;
}

}  // namespace pr
