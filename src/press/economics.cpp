#include "press/economics.h"

#include <stdexcept>

namespace pr {

AnnualCost annual_cost(Joules energy, Seconds window,
                       std::span<const double> disk_afrs,
                       const CostModel& model) {
  if (!(window.value() > 0.0)) {
    throw std::invalid_argument("annual_cost: non-positive window");
  }
  AnnualCost cost;

  const double years = window / kSecondsPerYear;
  const double joules_per_year = energy.value() / years;
  const double kwh_per_year = joules_per_year / 3.6e6;
  cost.energy_dollars = kwh_per_year * model.dollars_per_kwh;

  for (double afr : disk_afrs) {
    cost.expected_failures_per_year += afr;
    cost.replacement_dollars += afr * model.disk_replacement_dollars;
    cost.data_loss_dollars += afr * model.data_loss_probability *
                              model.data_loss_dollars_per_failure;
  }
  return cost;
}

CostDelta compare_costs(const AnnualCost& candidate,
                        const AnnualCost& baseline) {
  CostDelta delta;
  delta.energy_saved = baseline.energy_dollars - candidate.energy_dollars;
  delta.reliability_added =
      candidate.reliability_dollars() - baseline.reliability_dollars();
  return delta;
}

}  // namespace pr
