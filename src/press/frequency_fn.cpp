#include "press/frequency_fn.h"

#include <algorithm>
#include <stdexcept>

namespace pr {

double eq3_frequency_afr(double transitions_per_day) {
  if (transitions_per_day < 0.0) {
    throw std::invalid_argument("eq3_frequency_afr: negative frequency");
  }
  const double f = std::min(transitions_per_day, kFrequencyDomainMax);
  const double r = kEq3A * f * f + kEq3B * f + kEq3C;
  return std::max(r, 0.0);
}

namespace {
// Quadratic a·x² + b·x through (0, 0) and the paper's stated point
// (350/month, +0.15 AFR) with the curvature of a convex adder (the curve
// "bends up": we place a third implicit anchor at (175, 0.06), i.e. the
// midpoint adds 40% of the endpoint value, matching the re-plotted shape).
constexpr double kIdemaMid = 175.0;
constexpr double kIdemaMidAdder = 0.06;
constexpr double kIdemaEnd = 350.0;
constexpr double kIdemaEndAdder = 0.15;
// Solve a·175² + b·175 = 0.06 ; a·350² + b·350 = 0.15:
constexpr double kIdemaA =
    (kIdemaEndAdder - 2.0 * kIdemaMidAdder) / (2.0 * kIdemaMid * kIdemaMid);
constexpr double kIdemaB =
    (4.0 * kIdemaMidAdder - kIdemaEndAdder) / (2.0 * kIdemaMid);
}  // namespace

double idema_start_stop_adder(double start_stops_per_month) {
  if (start_stops_per_month < 0.0) {
    throw std::invalid_argument("idema_start_stop_adder: negative rate");
  }
  return kIdemaA * start_stops_per_month * start_stops_per_month +
         kIdemaB * start_stops_per_month;
}

double halved_idema_frequency_afr(double transitions_per_day) {
  const double f = std::min(transitions_per_day, kFrequencyDomainMax);
  return 0.5 * idema_start_stop_adder(f);
}

double frequency_afr(double transitions_per_day, FrequencyCurve curve) {
  switch (curve) {
    case FrequencyCurve::kEq3:
      return eq3_frequency_afr(transitions_per_day);
    case FrequencyCurve::kHalvedIdema:
      return halved_idema_frequency_afr(transitions_per_day);
  }
  return eq3_frequency_afr(transitions_per_day);
}

}  // namespace pr
