#include "press/montecarlo.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace pr {

namespace {
constexpr double kHoursPerYear = 8'760.0;
}

unsigned fault_tolerance(RaidLevel level) {
  switch (level) {
    case RaidLevel::kRaid0: return 0;
    case RaidLevel::kRaid1: return 1;  // per mirrored pair; conservative
    case RaidLevel::kRaid5: return 1;
    case RaidLevel::kRaid6: return 2;
  }
  return 0;
}

MonteCarloResult simulate_array_lifetime(RaidLevel level,
                                         std::span<const double> disk_afrs,
                                         const MonteCarloConfig& config) {
  if (disk_afrs.empty()) {
    throw std::invalid_argument("simulate_array_lifetime: empty array");
  }
  for (double afr : disk_afrs) {
    if (!(afr > 0.0)) {
      throw std::invalid_argument(
          "simulate_array_lifetime: non-positive AFR");
    }
  }
  if (!(config.horizon_years > 0.0) || config.trials == 0 ||
      !(config.mttr.value() > 0.0)) {
    throw std::invalid_argument("simulate_array_lifetime: bad config");
  }

  const unsigned tolerance = fault_tolerance(level);
  const double horizon_h = config.horizon_years * kHoursPerYear;
  const double mttr_h = config.mttr.value() / 3'600.0;
  const std::size_t n = disk_afrs.size();

  std::vector<double> rate_per_hour(n);
  for (std::size_t d = 0; d < n; ++d) {
    rate_per_hour[d] = disk_afrs[d] / kHoursPerYear;
  }

  Rng rng(config.seed);
  MonteCarloResult result;
  result.trials = config.trials;
  result.horizon_years = config.horizon_years;

  std::size_t trials_with_loss = 0;
  double total_loss_events = 0.0;
  double total_failures = 0.0;
  double total_first_loss_h = 0.0;

  // Per-trial event simulation. State per disk: next failure time (while
  // healthy) or repair-completion time (while failed). With at most a few
  // dozen disks a linear scan per event is faster than a heap.
  std::vector<double> next_event(n);
  std::vector<char> failed(n);

  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    for (std::size_t d = 0; d < n; ++d) {
      next_event[d] = rng.exponential(1.0 / rate_per_hour[d]);
      failed[d] = 0;
    }
    unsigned down = 0;
    bool lost = false;
    double first_loss_h = 0.0;
    double loss_events = 0.0;

    for (;;) {
      std::size_t who = 0;
      double when = next_event[0];
      for (std::size_t d = 1; d < n; ++d) {
        if (next_event[d] < when) {
          when = next_event[d];
          who = d;
        }
      }
      if (when >= horizon_h) break;

      if (!failed[who]) {
        // Failure.
        failed[who] = 1;
        ++down;
        total_failures += 1.0;
        next_event[who] = when + rng.exponential(mttr_h);
        if (down > tolerance) {
          // Data loss: restore the whole array instantly (fresh disks,
          // fresh failure clocks) and keep counting.
          loss_events += 1.0;
          if (!lost) {
            lost = true;
            first_loss_h = when;
          }
          down = 0;
          for (std::size_t d = 0; d < n; ++d) {
            failed[d] = 0;
            next_event[d] = when + rng.exponential(1.0 / rate_per_hour[d]);
          }
        }
      } else {
        // Repair completes; schedule the next failure.
        failed[who] = 0;
        --down;
        next_event[who] = when + rng.exponential(1.0 / rate_per_hour[who]);
      }
    }

    if (lost) {
      ++trials_with_loss;
      total_first_loss_h += first_loss_h;
    }
    total_loss_events += loss_events;
  }

  const auto trials_d = static_cast<double>(config.trials);
  result.loss_probability = static_cast<double>(trials_with_loss) / trials_d;
  result.mean_loss_events = total_loss_events / trials_d;
  result.mean_failures = total_failures / trials_d;
  result.mean_hours_to_first_loss =
      trials_with_loss > 0
          ? total_first_loss_h / static_cast<double>(trials_with_loss)
          : 0.0;
  return result;
}

}  // namespace pr
