// mttdl.h — array-level data-loss reliability from per-disk AFR.
//
// The paper's §1 frames the problem at array scale ("the very large number
// of disks dramatically lowers down the overall MTBF of the entire
// system") and its baseline storage model is RAID-style redundancy. This
// module closes the loop: PRESS gives a per-disk failure rate λ; classic
// Markov MTTDL formulas (Patterson/Gibson/Katz and successors, the
// paper's [10][29] territory) turn λ plus a repair rate into the mean
// time to data loss and an annual data-loss probability for common
// layouts — so an energy policy's reliability damage can be quoted as
// "expected data-loss events per year" for the array a user actually
// runs.
//
// Assumptions (standard for these closed forms): independent exponential
// failures at rate λ per disk, exponential repairs at rate μ = 1/MTTR,
// μ >> λ, one repair at a time.
#pragma once

#include <cstddef>

#include "util/units.h"

namespace pr {

enum class RaidLevel {
  kRaid0,   // any single failure loses data
  kRaid1,   // mirrored pairs (n even)
  kRaid5,   // single parity, survives one failure per group
  kRaid6,   // double parity, survives two failures per group
};

struct MttdlInputs {
  /// Per-disk AFR (fraction/year) — e.g. the PRESS array bottleneck value
  /// applied uniformly, or a population mean.
  double disk_afr = 0.04;
  /// Disks in the array / group.
  std::size_t disks = 8;
  /// Mean time to repair/rebuild one disk.
  Seconds mttr{24.0 * 3600.0};
};

/// Per-disk failure rate λ in 1/hour from an AFR fraction/year.
[[nodiscard]] double afr_to_failures_per_hour(double afr);

/// Mean time to data loss, in hours. Throws std::invalid_argument for
/// degenerate inputs (zero disks, non-positive rates, RAID1 with odd n,
/// RAID5 with < 2 disks, RAID6 with < 3).
[[nodiscard]] double mttdl_hours(RaidLevel level, const MttdlInputs& inputs);

/// P(at least one data-loss event within one year) assuming the loss
/// process is ~Poisson with rate 1/MTTDL (valid when MTTDL >> 1 year,
/// conservative otherwise).
[[nodiscard]] double annual_data_loss_probability(RaidLevel level,
                                                  const MttdlInputs& inputs);

}  // namespace pr
