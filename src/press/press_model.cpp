#include "press/press_model.h"

#include <algorithm>
#include <cmath>

namespace pr {

PressBreakdown PressModel::breakdown(const DiskTelemetry& t) const {
  PressBreakdown b;
  b.temperature_afr = temperature_afr(t.temperature);
  b.utilization_afr = utilization_afr(t.utilization);
  b.frequency_afr =
      frequency_afr(std::max(t.transitions_per_day, 0.0),
                    config_.frequency_curve);
  b.combined_afr = integrate(b);
  return b;
}

double PressModel::integrate(const PressBreakdown& b) const {
  double afr = 0.0;
  switch (config_.integrator) {
    case IntegratorStrategy::kSum:
      afr = b.temperature_afr + b.utilization_afr + b.frequency_afr;
      break;
    case IntegratorStrategy::kMax:
      afr = std::max({b.temperature_afr, b.utilization_afr, b.frequency_afr});
      break;
    case IntegratorStrategy::kIndependentHazards:
      afr = 1.0 - (1.0 - b.temperature_afr) * (1.0 - b.utilization_afr) *
                      (1.0 - b.frequency_afr);
      break;
  }
  return std::clamp(afr, 0.0, 1.0);
}

double PressModel::disk_afr(const DiskTelemetry& t) const {
  return breakdown(t).combined_afr;
}

double PressModel::array_afr(std::span<const DiskTelemetry> disks) const {
  double worst = 0.0;
  for (const auto& t : disks) worst = std::max(worst, disk_afr(t));
  return worst;
}

double PressModel::recommended_max_transitions_per_day() {
  return derive_speed_transition_damage().daily_limit_5yr;
}

}  // namespace pr
