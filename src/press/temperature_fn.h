// temperature_fn.h — the temperature-reliability function (paper §3.2,
// Fig. 2b). Derived from the 3-year-old disk population of Pinheiro et
// al.'s field study (Google, FAST'07 — the paper's [22], Figure 5): the
// paper argues the 3-year cohort is the right foundation because damage
// from early high-temperature exposure surfaces as failures in year 3,
// while the 4-year data "loses the hidden failures".
//
// [22] publishes the relationship as a figure only, so we use digitized
// anchor points (documented below) joined piecewise-linearly; the shape —
// mild below 35 °C, steep above — is what all of the paper's reasoning
// relies on, and every policy is scored with the same curve (the paper's
// §3.5 validity argument).
#pragma once

#include "util/units.h"

namespace pr {

/// AFR (fraction/year, e.g. 0.10 == 10%) of a 3-year-old disk operating at
/// temperature `temp`. Clamped to the study's [25, 50] °C domain.
[[nodiscard]] double temperature_afr(Celsius temp);

/// Domain of the function (Fig. 2b X axis).
constexpr Celsius kTemperatureDomainLow{25.0};
constexpr Celsius kTemperatureDomainHigh{50.0};

/// Anchor table (digitized from [22] Fig. 5, 3-year-old series), exposed
/// for tests and for the Fig. 2b bench.
struct TemperatureAnchor {
  double celsius;
  double afr;
};
inline constexpr TemperatureAnchor kTemperatureAnchors[] = {
    {25.0, 0.045},  // <=25 °C bucket
    {30.0, 0.050},
    {35.0, 0.055},  // knee: effects become salient above 35 °C (§3.2)
    {40.0, 0.095},
    {45.0, 0.120},
    {50.0, 0.145},  // >=45 °C bucket extrapolated to the band edge
};

}  // namespace pr
