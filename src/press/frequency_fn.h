// frequency_fn.h — the frequency-reliability function (paper §3.4,
// Fig. 4a/4b and Eq. 3).
//
// Construction chain in the paper:
//   1. IDEMA's spindle start/stop failure-rate adder (Fig. 4a), given for
//      [0, 350] start/stops per month, extended by quadratic fitting;
//   2. the Coffin–Manson derivation (coffin_manson.h) concluding a speed
//      transition causes ≈50% of a start/stop's damage, so the adder is
//      halved and the X axis relabelled to transitions/day (Fig. 4b);
//   3. the final quadratic fit, printed as Eq. 3:
//         R(f) = 1.51e-5·f² − 1.09e-4·f + 1.39e-4,   f ∈ [0, 1600]/day.
//
// Fidelity note (also in EXPERIMENTS.md): the printed Eq. 3 is not
// numerically consistent with step 2 at small f (the paper's own
// inconsistency — e.g. IDEMA's "10/day adds 0.15 AFR" vs Eq. 3's 5.6e-4 at
// f = 10). We implement both: Eq. 3 verbatim (PRESS's default, since it is
// the only printed formula and it makes frequency the dominant ESRRA
// factor exactly as §3.5 claims) and the halved-IDEMA construction.
#pragma once

namespace pr {

constexpr double kFrequencyDomainMax = 1600.0;  // transitions/day (Eq. 3)

/// Eq. 3 verbatim, clamped to its stated domain and floored at 0 (the
/// polynomial dips slightly negative for f ∈ (1.66, 5.56)).
[[nodiscard]] double eq3_frequency_afr(double transitions_per_day);

/// IDEMA spindle start/stop failure-rate adder (Fig. 4a): AFR added as a
/// function of start/stops per *month*. Quadratic through the paper's
/// stated anchors — 0 at 0, +0.15 AFR at 350/month (≈10/day + margin) —
/// extended beyond 350/month by the same quadratic, per §3.4.
[[nodiscard]] double idema_start_stop_adder(double start_stops_per_month);

/// The halved, per-day-relabelled curve of Fig. 4b built from Fig. 4a:
/// 0.5 × idema_start_stop_adder evaluated with the per-day count on the
/// original per-month axis (the paper "changes the unit of the X axis").
[[nodiscard]] double halved_idema_frequency_afr(double transitions_per_day);

enum class FrequencyCurve {
  kEq3,          // printed Eq. 3 (default)
  kHalvedIdema,  // construction-chain curve
};

[[nodiscard]] double frequency_afr(double transitions_per_day,
                                   FrequencyCurve curve = FrequencyCurve::kEq3);

/// Eq. 3 coefficients, exposed for tests/benches.
inline constexpr double kEq3A = 1.51e-5;
inline constexpr double kEq3B = -1.09e-4;
inline constexpr double kEq3C = 1.39e-4;

}  // namespace pr
