// afr_agreement.h — scores PRESS's predicted AFR against ground truth
// from fault injection. The fault sweep (scenarios/fault_sweep.ini) dials
// an injected exponential hazard per disk; a run then yields three AFRs:
//   predicted — PRESS's model output from the run's ESRRA telemetry,
//   injected  — the hazard rate the FaultPlan was generated from,
//   observed  — failures actually experienced per disk-year of exposure.
// The ratios predicted/observed and predicted/injected are the paper-loop
// closure: a well-calibrated model should track the injected rate as the
// sweep scales it (Pinheiro et al., FAST'07 treat field failures the same
// way).
#pragma once

#include <cstdint>

#include "util/units.h"

namespace pr {

struct AfrAgreement {
  /// PRESS's array AFR for the run (fraction/year).
  double predicted_afr = 0.0;
  /// The hazard rate the FaultPlan was generated from (fraction/year).
  double injected_afr = 0.0;
  /// Failures per disk-year actually experienced over the horizon.
  double observed_afr = 0.0;
  /// predicted / observed (0 when nothing was observed).
  double predicted_over_observed = 0.0;
  /// predicted / injected (0 when nothing was injected).
  double predicted_over_injected = 0.0;
};

/// Compute the agreement scores. `observed_failures` is the count of
/// injected fail-stop faults that actually struck (DegradationAnalyzer's
/// failures()); exposure is disks × horizon, annualized. Ratios with a
/// zero denominator are reported as 0 rather than inf/nan so fixed-schema
/// CSV cells stay finite.
[[nodiscard]] AfrAgreement score_afr_agreement(double predicted_afr,
                                               double injected_afr,
                                               std::uint64_t observed_failures,
                                               std::size_t disks,
                                               Seconds horizon);

}  // namespace pr
