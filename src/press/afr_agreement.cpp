#include "press/afr_agreement.h"

namespace pr {

AfrAgreement score_afr_agreement(double predicted_afr, double injected_afr,
                                 std::uint64_t observed_failures,
                                 std::size_t disks, Seconds horizon) {
  AfrAgreement a;
  a.predicted_afr = predicted_afr;
  a.injected_afr = injected_afr;
  const double disk_years = static_cast<double>(disks) *
                            (horizon.value() / kSecondsPerYear.value());
  if (disk_years > 0.0) {
    a.observed_afr = static_cast<double>(observed_failures) / disk_years;
  }
  if (a.observed_afr > 0.0) {
    a.predicted_over_observed = predicted_afr / a.observed_afr;
  }
  if (injected_afr > 0.0) {
    a.predicted_over_injected = predicted_afr / injected_afr;
  }
  return a;
}

}  // namespace pr
