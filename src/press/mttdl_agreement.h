// mttdl_agreement.h — scores the MTTDL closed forms (mttdl.h) against
// simulated ground truth from the redundancy layer. A fault-injected run
// with a parity scheme counts actual data-loss events (two overlapping
// failures in one protection domain — redundancy.data_loss_events); this
// module converts the closed-form MTTDL into a predicted loss rate per
// array-year and compares it with the rate the simulation experienced, the
// same ratio-style loop closure as afr_agreement.h. Most short horizons
// observe zero losses against a tiny predicted rate — that is agreement,
// not failure, which is why the scenario engine reports the raw rates
// alongside the ratio instead of thresholding.
#pragma once

#include <cstdint>

#include "press/mttdl.h"
#include "util/units.h"

namespace pr {

struct MttdlAgreement {
  /// Closed-form mean time to data loss for the run's layout (hours).
  double predicted_mttdl_hours = 0.0;
  /// Expected data-loss events per array-year (8760 / MTTDL hours).
  double predicted_losses_per_year = 0.0;
  /// Data-loss events the simulation actually recorded per array-year of
  /// exposure (events / (arrays x horizon-years)).
  double observed_losses_per_year = 0.0;
  /// observed / predicted (0 when the prediction is zero-rate). Values
  /// near 1 mean the Markov model matches the injected-fault simulation;
  /// 0 with a tiny predicted rate is the expected no-loss outcome.
  double observed_over_predicted = 0.0;
};

/// Compute the agreement scores. `observed_losses` is the simulation's
/// redundancy.data_loss_events total across `arrays` independent runs
/// (fleet shards each count as one array), each simulated for `horizon`.
/// Ratios with a zero denominator are reported as 0 rather than inf/nan
/// so fixed-schema CSV cells stay finite. Degenerate MTTDL inputs (afr or
/// mttr <= 0, too few disks) are reported as all-zero scores instead of
/// propagating mttdl_hours's throw — the caller may legitimately have a
/// run with no repair data yet.
[[nodiscard]] MttdlAgreement score_mttdl_agreement(RaidLevel level,
                                                   const MttdlInputs& inputs,
                                                   std::uint64_t observed_losses,
                                                   std::size_t arrays,
                                                   Seconds horizon);

}  // namespace pr
