// coffin_manson.h — the modified Coffin–Manson fatigue chain of §3.4.
//
// The paper derives how damaging a *speed transition* is relative to a full
// spindle start/stop:
//
//   Eq. 1   Nf = A0 · f^α · ΔT^(−β) · G(Tmax)        (cycles to failure)
//   Eq. 2   G(T) = A · exp(−Ea / (K · T))            (Arrhenius term)
//
// with α the cycling-frequency exponent ("around −1/3" per NIST [9]),
// β = 2 the thermal-range exponent, Ea = 1.25 eV, K = 8.617e-5 eV/K.
//
// Reproducing the paper's printed constants (A·A0 = 2.564317e26 from
// Nf = 50,000, f = 25/day, ΔT = 22 °C, Tmax = 50 °C) shows the authors
// evaluated the frequency factor as f^(+1/3) — i.e. f^|α| — so that is what
// `paper` mode computes; `nist` mode applies the literal f^(−1/3). Both are
// exposed because the *conclusion* (a transition causes roughly half the
// damage of a start/stop; keep transitions under ~65/day for a 5-year
// warranty) is what PRESS builds on, and it holds under either convention
// (the frequency factor cancels in the Nf'/Nf ratio when f is equal).
#pragma once

#include "util/units.h"

namespace pr {

/// NIST/paper constants (§3.4).
struct CoffinMansonConstants {
  double alpha_magnitude = 1.0 / 3.0;  // |α|, cycling-frequency exponent
  double beta = 2.0;                   // temperature-range exponent
  double activation_energy_ev = 1.25;  // Ea
  double boltzmann_ev_per_k = 8.617e-5;  // K
};

enum class FrequencyExponentConvention {
  kPaper,  // f^(+1/3): reproduces the printed A·A0 and N'f
  kNist,   // f^(−1/3): the literal Eq. 1
};

/// Arrhenius factor exp(−Ea/(K·T)) with T in Kelvin via the paper's
/// 273.16 + °C conversion. Excludes the scaling constant A (the paper
/// only ever uses A·A0 as a single fitted constant).
[[nodiscard]] double arrhenius_g(Celsius tmax,
                                 const CoffinMansonConstants& k = {});

/// The frequency factor f^(±1/3) under the chosen convention.
[[nodiscard]] double frequency_factor(double cycles_per_day,
                                      FrequencyExponentConvention convention,
                                      const CoffinMansonConstants& k = {});

/// Calibrate the combined constant A·A0 from a known cycles-to-failure
/// rating: A·A0 = Nf / (f^(±1/3) · ΔT^(−β) · G(Tmax)).
[[nodiscard]] double calibrate_a_a0(
    double cycles_to_failure, double cycles_per_day, double delta_t_celsius,
    Celsius tmax,
    FrequencyExponentConvention convention = FrequencyExponentConvention::kPaper,
    const CoffinMansonConstants& k = {});

/// Cycles to failure given a calibrated A·A0.
[[nodiscard]] double cycles_to_failure(
    double a_a0, double cycles_per_day, double delta_t_celsius, Celsius tmax,
    FrequencyExponentConvention convention = FrequencyExponentConvention::kPaper,
    const CoffinMansonConstants& k = {});

/// The paper's full §3.4 derivation, bundled for the Fig. 4 bench & tests.
struct SpeedTransitionDerivation {
  double g_tmax_start_stop;    // G(50 °C)   ≈ 3.2275e-20
  double a_a0;                 // ≈ 2.564317e26
  double g_tmax_transition;    // G(45 °C)
  double transitions_to_failure;  // N'f ≈ 118,529
  double damage_ratio;         // N'f / Nf ≈ 2.37 (≈ "half the damage")
  double daily_limit_5yr;      // N'f / (5·365) ≈ 65 transitions/day
};

/// Run the derivation with the paper's inputs: Nf = 50,000 power cycles,
/// 25 cycles/day, ambient 28 °C → 50 °C (ΔT = 22), transitions at
/// Tmax = 45 °C midway point with ΔT = 10 (the low/high band gap).
[[nodiscard]] SpeedTransitionDerivation derive_speed_transition_damage(
    FrequencyExponentConvention convention = FrequencyExponentConvention::kPaper,
    const CoffinMansonConstants& k = {});

}  // namespace pr
