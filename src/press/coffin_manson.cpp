#include "press/coffin_manson.h"

#include <cmath>
#include <stdexcept>

namespace pr {

double arrhenius_g(Celsius tmax, const CoffinMansonConstants& k) {
  const double t_kelvin = to_kelvin_paper(tmax);
  return std::exp(-k.activation_energy_ev /
                  (k.boltzmann_ev_per_k * t_kelvin));
}

double frequency_factor(double cycles_per_day,
                        FrequencyExponentConvention convention,
                        const CoffinMansonConstants& k) {
  if (!(cycles_per_day > 0.0)) {
    throw std::invalid_argument("frequency_factor: cycles_per_day <= 0");
  }
  const double exponent = convention == FrequencyExponentConvention::kPaper
                              ? k.alpha_magnitude
                              : -k.alpha_magnitude;
  return std::pow(cycles_per_day, exponent);
}

double calibrate_a_a0(double cycles_to_failure_rating, double cycles_per_day,
                      double delta_t_celsius, Celsius tmax,
                      FrequencyExponentConvention convention,
                      const CoffinMansonConstants& k) {
  if (!(cycles_to_failure_rating > 0.0) || !(delta_t_celsius > 0.0)) {
    throw std::invalid_argument("calibrate_a_a0: non-positive input");
  }
  const double f_term = frequency_factor(cycles_per_day, convention, k);
  const double dt_term = std::pow(delta_t_celsius, -k.beta);
  const double g = arrhenius_g(tmax, k);
  return cycles_to_failure_rating / (f_term * dt_term * g);
}

double cycles_to_failure(double a_a0, double cycles_per_day,
                         double delta_t_celsius, Celsius tmax,
                         FrequencyExponentConvention convention,
                         const CoffinMansonConstants& k) {
  if (!(a_a0 > 0.0) || !(delta_t_celsius > 0.0)) {
    throw std::invalid_argument("cycles_to_failure: non-positive input");
  }
  const double f_term = frequency_factor(cycles_per_day, convention, k);
  const double dt_term = std::pow(delta_t_celsius, -k.beta);
  const double g = arrhenius_g(tmax, k);
  return a_a0 * f_term * dt_term * g;
}

SpeedTransitionDerivation derive_speed_transition_damage(
    FrequencyExponentConvention convention, const CoffinMansonConstants& k) {
  SpeedTransitionDerivation d{};

  // Start/stop calibration (§3.4): datasheet limit Nf = 50,000 cycles,
  // suggested 25 power cycles/day, ambient 28 °C to Tmax 50 °C => ΔT = 22.
  constexpr double kNfStartStop = 50'000.0;
  constexpr double kCyclesPerDay = 25.0;
  constexpr double kDeltaTStartStop = 22.0;
  const Celsius kTmaxStartStop{50.0};

  d.g_tmax_start_stop = arrhenius_g(kTmaxStartStop, k);
  d.a_a0 = calibrate_a_a0(kNfStartStop, kCyclesPerDay, kDeltaTStartStop,
                          kTmaxStartStop, convention, k);

  // Speed transitions: same 25/day, Tmax = 45 °C (midway between the low
  // band's 40 °C and the high band's 50 °C, since transitions are
  // bi-directional), ΔT = 10 (gap between the two bands).
  constexpr double kDeltaTTransition = 10.0;
  const Celsius kTmaxTransition{45.0};

  d.g_tmax_transition = arrhenius_g(kTmaxTransition, k);
  d.transitions_to_failure =
      cycles_to_failure(d.a_a0, kCyclesPerDay, kDeltaTTransition,
                        kTmaxTransition, convention, k);
  d.damage_ratio = d.transitions_to_failure / kNfStartStop;
  d.daily_limit_5yr = d.transitions_to_failure / (5.0 * 365.0);
  return d;
}

}  // namespace pr
