// economics.h — the title question in dollars. §3.5 argues: "the high AFR
// caused by a high speed transition frequency would cost much more than
// the energy-saving gained. Normally, the value of lost data plus the
// price of failed disks substantially outweigh the energy-saving gained."
// This module turns a simulated day (energy) and a PRESS verdict (per-disk
// AFR) into an annualized cost comparison so that claim can be computed
// rather than asserted (bench/cost_analysis).
#pragma once

#include <span>

#include "util/units.h"

namespace pr {

struct CostModel {
  /// Electricity price. US commercial average around the paper's era.
  double dollars_per_kwh = 0.10;
  /// Replacement cost of one enterprise drive (2008-era 10K SCSI/SAS).
  double disk_replacement_dollars = 300.0;
  /// Expected value of data lost per disk failure. Dominated by recovery
  /// labour/downtime rather than the raw bytes; deliberately conservative
  /// (the paper's argument only needs it to be >> the energy delta).
  double data_loss_dollars_per_failure = 5'000.0;
  /// Probability a disk failure actually loses data (a RAID-protected
  /// array mostly turns failures into rebuilds; see mttdl.h for the
  /// array-level view). 1.0 = unprotected JBOD.
  double data_loss_probability = 1.0;
};

struct AnnualCost {
  double energy_dollars = 0.0;
  double replacement_dollars = 0.0;     // Σ per-disk AFR × disk cost
  double data_loss_dollars = 0.0;       // Σ per-disk AFR × P(loss) × value
  double expected_failures_per_year = 0.0;

  [[nodiscard]] double reliability_dollars() const {
    return replacement_dollars + data_loss_dollars;
  }
  [[nodiscard]] double total_dollars() const {
    return energy_dollars + reliability_dollars();
  }
};

/// Annualize a measured window: `energy` consumed over `window` scales to
/// a year; `disk_afrs` are PRESS per-disk AFRs (fractions/year).
/// Throws std::invalid_argument for a non-positive window.
[[nodiscard]] AnnualCost annual_cost(Joules energy, Seconds window,
                                     std::span<const double> disk_afrs,
                                     const CostModel& model = {});

/// Convenience: dollars saved per year by `candidate` relative to
/// `baseline` (positive = candidate cheaper), split into the energy and
/// reliability components so "is it worthwhile?" reads off directly.
struct CostDelta {
  double energy_saved = 0.0;       // baseline.energy − candidate.energy
  double reliability_added = 0.0;  // candidate.rel − baseline.rel
  [[nodiscard]] double net_saved() const {
    return energy_saved - reliability_added;
  }
  [[nodiscard]] bool worthwhile() const { return net_saved() > 0.0; }
};

[[nodiscard]] CostDelta compare_costs(const AnnualCost& candidate,
                                      const AnnualCost& baseline);

}  // namespace pr
