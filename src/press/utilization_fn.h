// utilization_fn.h — the utilization-reliability function (paper §3.3,
// Fig. 3b). Based on the 4-year-old disk population of [22] Figure 3: the
// paper selects that cohort because (1) only disks older than 1 year are
// considered, (2) the 2/3-year cohorts show no explicit utilization effect
// (the paper's "middle-age resilience" reading), (3) 5-year disks are
// outside typical warranty, and (4) the 4-year results match Seagate's
// duty-cycle findings [5].
//
// §3.3 converts [22]'s categorical buckets into a continuous metric:
// low = [25%, 50%), medium = [50%, 75%), high = [75%, 100%]. We anchor the
// AFR at each category midpoint (digitized from the 4-year series) and
// interpolate linearly, holding the end values flat to the domain edges.
#pragma once

namespace pr {

enum class UtilizationBand { kLow, kMedium, kHigh };

/// §3.3's banding over the [25%, 100%] domain (fraction in [0,1]).
[[nodiscard]] UtilizationBand utilization_band(double utilization);

/// AFR (fraction/year) of a 4-year-old disk at `utilization` ∈ [0, 1].
/// Inputs below the study's 25% floor are clamped up to it.
[[nodiscard]] double utilization_afr(double utilization);

constexpr double kUtilizationDomainLow = 0.25;
constexpr double kUtilizationDomainHigh = 1.00;

/// Category-midpoint anchors (digitized from [22] Fig. 3, 4-year series).
struct UtilizationAnchor {
  double utilization;  // fraction
  double afr;
};
inline constexpr UtilizationAnchor kUtilizationAnchors[] = {
    {0.375, 0.025},  // low    [25%, 50%)  midpoint
    {0.625, 0.035},  // medium [50%, 75%)  midpoint
    {0.875, 0.065},  // high   [75%, 100%] midpoint
};

}  // namespace pr
