// press_model.h — PRESS: Predictor of Reliability for Energy-Saving
// Schemes (paper §3, Fig. 1). Three ESRRA-factor functions feed a
// reliability integrator that yields a per-disk AFR; the array's AFR is
// that of its least reliable disk (§3.5: "the reliability level of a disk
// array is only as high as the lowest level of reliability possessed by a
// single disk").
#pragma once

#include <span>
#include <vector>

#include "disk/telemetry.h"
#include "press/coffin_manson.h"
#include "press/frequency_fn.h"
#include "press/temperature_fn.h"
#include "press/utilization_fn.h"
#include "util/units.h"

namespace pr {

/// How the integrator combines the three per-factor AFR values. The paper
/// specifies the inputs and the array-level max but not the per-disk
/// combination rule; kSum treats the frequency term as the "adder" IDEMA
/// calls it and the temperature/utilization terms as additive marginal
/// hazards, and is the default (see DESIGN.md §4.3 and the ABL3 bench).
enum class IntegratorStrategy {
  kSum,                 // AFR_t + AFR_u + AFR_f (clamped to [0,1])
  kMax,                 // worst single factor
  kIndependentHazards,  // 1 − (1−AFR_t)(1−AFR_u)(1−AFR_f)
};

struct PressConfig {
  IntegratorStrategy integrator = IntegratorStrategy::kSum;
  FrequencyCurve frequency_curve = FrequencyCurve::kEq3;
};

/// Per-factor breakdown for one disk (useful for reporting/benches).
struct PressBreakdown {
  double temperature_afr = 0.0;
  double utilization_afr = 0.0;
  double frequency_afr = 0.0;
  double combined_afr = 0.0;
};

class PressModel {
 public:
  explicit PressModel(PressConfig config = {}) : config_(config) {}

  [[nodiscard]] const PressConfig& config() const { return config_; }

  /// AFR of a single disk from its ESRRA telemetry.
  [[nodiscard]] double disk_afr(const DiskTelemetry& t) const;
  [[nodiscard]] PressBreakdown breakdown(const DiskTelemetry& t) const;

  /// Array AFR = AFR of the least reliable member disk (§3.5). Returns 0
  /// for an empty array.
  [[nodiscard]] double array_afr(std::span<const DiskTelemetry> disks) const;

  /// §3.5 insight 1: the speed-transition budget compatible with a 5-year
  /// warranty (≈65/day from the Coffin–Manson derivation).
  [[nodiscard]] static double recommended_max_transitions_per_day();

 private:
  [[nodiscard]] double integrate(const PressBreakdown& b) const;

  PressConfig config_;
};

}  // namespace pr
