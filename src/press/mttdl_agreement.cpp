#include "press/mttdl_agreement.h"

#include <stdexcept>

namespace pr {

MttdlAgreement score_mttdl_agreement(RaidLevel level,
                                     const MttdlInputs& inputs,
                                     std::uint64_t observed_losses,
                                     std::size_t arrays, Seconds horizon) {
  MttdlAgreement a;
  try {
    a.predicted_mttdl_hours = mttdl_hours(level, inputs);
  } catch (const std::invalid_argument&) {
    return a;  // degenerate layout/rates: all-zero scores, not a throw
  }
  if (a.predicted_mttdl_hours > 0.0) {
    a.predicted_losses_per_year = 8760.0 / a.predicted_mttdl_hours;
  }
  const double array_years = static_cast<double>(arrays) *
                             (horizon.value() / kSecondsPerYear.value());
  if (array_years > 0.0) {
    a.observed_losses_per_year =
        static_cast<double>(observed_losses) / array_years;
  }
  if (a.predicted_losses_per_year > 0.0) {
    a.observed_over_predicted =
        a.observed_losses_per_year / a.predicted_losses_per_year;
  }
  return a;
}

}  // namespace pr
