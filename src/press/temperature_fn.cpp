#include "press/temperature_fn.h"

#include <algorithm>
#include <iterator>

namespace pr {

double temperature_afr(Celsius temp) {
  const double t = std::clamp(temp.value(), kTemperatureDomainLow.value(),
                              kTemperatureDomainHigh.value());
  const auto* begin = std::begin(kTemperatureAnchors);
  const auto* end = std::end(kTemperatureAnchors);
  if (t <= begin->celsius) return begin->afr;
  for (const auto* it = begin; it + 1 != end; ++it) {
    const auto& a = *it;
    const auto& b = *(it + 1);
    if (t <= b.celsius) {
      const double frac = (t - a.celsius) / (b.celsius - a.celsius);
      return a.afr + frac * (b.afr - a.afr);
    }
  }
  return (end - 1)->afr;
}

}  // namespace pr
