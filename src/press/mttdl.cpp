#include "press/mttdl.h"

#include <cmath>
#include <stdexcept>

namespace pr {

namespace {
constexpr double kHoursPerYear = 8'760.0;
}

double afr_to_failures_per_hour(double afr) {
  if (afr < 0.0) {
    throw std::invalid_argument("afr_to_failures_per_hour: negative AFR");
  }
  return afr / kHoursPerYear;
}

double mttdl_hours(RaidLevel level, const MttdlInputs& inputs) {
  if (inputs.disks == 0) {
    throw std::invalid_argument("mttdl_hours: zero disks");
  }
  if (!(inputs.disk_afr > 0.0)) {
    throw std::invalid_argument("mttdl_hours: non-positive AFR");
  }
  if (!(inputs.mttr.value() > 0.0)) {
    throw std::invalid_argument("mttdl_hours: non-positive MTTR");
  }
  const double lambda = afr_to_failures_per_hour(inputs.disk_afr);
  const double mu = 3'600.0 / inputs.mttr.value();  // repairs per hour
  const auto n = static_cast<double>(inputs.disks);

  switch (level) {
    case RaidLevel::kRaid0:
      // First failure anywhere loses data.
      return 1.0 / (n * lambda);
    case RaidLevel::kRaid1: {
      // n/2 mirrored pairs; a pair dies when its partner fails during
      // repair: MTTDL_pair = (λ+μ... standard: ≈ μ / (2λ²) per pair.
      if (inputs.disks % 2 != 0 || inputs.disks < 2) {
        throw std::invalid_argument("mttdl_hours: RAID1 needs even n >= 2");
      }
      const double pairs = n / 2.0;
      const double per_pair = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
      return per_pair / pairs;
    }
    case RaidLevel::kRaid5: {
      // Classic PGK: MTTDL ≈ μ / (n(n−1)λ²) (+ lower-order terms).
      if (inputs.disks < 2) {
        throw std::invalid_argument("mttdl_hours: RAID5 needs n >= 2");
      }
      return ((2.0 * n - 1.0) * lambda + mu) /
             (n * (n - 1.0) * lambda * lambda);
    }
    case RaidLevel::kRaid6: {
      // Double parity: three failures in overlapping repair windows.
      if (inputs.disks < 3) {
        throw std::invalid_argument("mttdl_hours: RAID6 needs n >= 3");
      }
      return mu * mu /
             (n * (n - 1.0) * (n - 2.0) * lambda * lambda * lambda);
    }
  }
  throw std::invalid_argument("mttdl_hours: unknown RAID level");
}

double annual_data_loss_probability(RaidLevel level,
                                    const MttdlInputs& inputs) {
  const double mttdl = mttdl_hours(level, inputs);
  return 1.0 - std::exp(-kHoursPerYear / mttdl);
}

}  // namespace pr
