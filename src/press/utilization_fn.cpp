#include "press/utilization_fn.h"

#include <algorithm>
#include <iterator>

namespace pr {

UtilizationBand utilization_band(double utilization) {
  const double u = std::clamp(utilization, kUtilizationDomainLow,
                              kUtilizationDomainHigh);
  if (u < 0.50) return UtilizationBand::kLow;
  if (u < 0.75) return UtilizationBand::kMedium;
  return UtilizationBand::kHigh;
}

double utilization_afr(double utilization) {
  const double u = std::clamp(utilization, kUtilizationDomainLow,
                              kUtilizationDomainHigh);
  const auto* begin = std::begin(kUtilizationAnchors);
  const auto* end = std::end(kUtilizationAnchors);
  if (u <= begin->utilization) return begin->afr;
  for (const auto* it = begin; it + 1 != end; ++it) {
    const auto& a = *it;
    const auto& b = *(it + 1);
    if (u <= b.utilization) {
      const double frac = (u - a.utilization) / (b.utilization - a.utilization);
      return a.afr + frac * (b.afr - a.afr);
    }
  }
  return (end - 1)->afr;
}

}  // namespace pr
