// montecarlo.h — Monte-Carlo failure/repair simulation of a redundant
// array driven by PRESS per-disk AFRs. The closed-form MTTDL expressions
// in mttdl.h rest on exponential/μ≫λ assumptions; this simulator makes no
// such approximation and also yields quantities the formulas cannot —
// the distribution of data-loss times, loss probability over a finite
// deployment horizon, and expected replacement counts (feeding the §3.5
// economics with array-level numbers).
//
// Model: each disk fails independently at its own exponential rate
// (per-disk AFRs may differ — e.g. PRESS output where one hot disk is the
// bottleneck). A failed disk begins repair immediately (unbounded repair
// crew, exponential repair time). Data is lost when the number of
// concurrently-failed disks exceeds the layout's tolerance (RAID0: 0,
// RAID1/RAID5: 1, RAID6: 2). After a loss event the array is restored and
// the clock keeps running (losses form a renewal-ish process).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "press/mttdl.h"
#include "util/rng.h"
#include "util/units.h"

namespace pr {

struct MonteCarloConfig {
  /// Simulated deployment length per trial.
  double horizon_years = 5.0;
  /// Independent trials.
  std::size_t trials = 2'000;
  /// Mean repair/rebuild time.
  Seconds mttr{24.0 * 3600.0};
  std::uint64_t seed = 42;
};

struct MonteCarloResult {
  std::size_t trials = 0;
  double horizon_years = 0.0;
  /// Fraction of trials with >= 1 data-loss event.
  double loss_probability = 0.0;
  /// Mean data-loss events per trial.
  double mean_loss_events = 0.0;
  /// Mean disk failures (replacements) per trial.
  double mean_failures = 0.0;
  /// Mean time to the first loss among trials that lost data, in hours
  /// (0 when no trial lost data).
  double mean_hours_to_first_loss = 0.0;
};

/// Tolerated concurrent failures for a layout (RAID0: 0, RAID1/5: 1,
/// RAID6: 2).
[[nodiscard]] unsigned fault_tolerance(RaidLevel level);

/// Run the simulation. `disk_afrs` gives each disk's AFR (fraction/year);
/// size defines the array. Throws std::invalid_argument on an empty
/// array, non-positive AFR/MTTR/horizon, or zero trials.
[[nodiscard]] MonteCarloResult simulate_array_lifetime(
    RaidLevel level, std::span<const double> disk_afrs,
    const MonteCarloConfig& config = {});

}  // namespace pr
