// run_experiment — command-line driver exposing the library without
// writing code: pick a policy and knobs, run one simulation, print the
// full report (optionally the per-disk breakdown).
//
//   $ ./run_experiment --policy read --disks 8 --load 1.0 --cap 40
//   $ ./run_experiment --policy maid --disks 12 --cache-disks 3
//   $ ./run_experiment --policy pdc --epoch 1800 --detail
//   $ ./run_experiment --policy read --trace mytrace.csv
//
// Flags (all optional):
//   --policy read|maid|pdc|static|raid0|read-repl|read-raid0|drpm|hibernator
//   --disks N            array size                  (default 8)
//   --load X             arrival-rate multiplier     (default 1.0)
//   --requests N         synthetic request count     (default 1480081)
//   --files N            synthetic file count        (default 4079)
//   --epoch SECONDS      epoch length P              (default 3600)
//   --cap S              READ transition budget      (default 40)
//   --threshold SECONDS  initial idleness threshold
//   --cache-disks N      MAID cache disk count       (default n/4)
//   --seed N             workload seed               (default 42)
//   --trace FILE         CSV trace instead of synthetic workload
//   --positioned         enable seek-curve positional I/O
//   --detail             per-disk ESRRA/PRESS table
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/system.h"
#include "policy/drpm_policy.h"
#include "policy/hibernator_policy.h"
#include "policy/maid_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "policy/replication.h"
#include "policy/static_policy.h"
#include "policy/striped_read_policy.h"
#include "policy/striping.h"
#include "trace/csv_trace.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace {

struct Options {
  std::string policy = "read";
  std::size_t disks = 8;
  double load = 1.0;
  std::size_t requests = 1'480'081;
  std::size_t files = 4'079;
  double epoch_s = 3600.0;
  std::uint64_t cap = 40;
  std::optional<double> threshold_s;
  std::size_t cache_disks = 0;
  std::uint64_t seed = 42;
  std::string trace_file;
  bool positioned = false;
  bool detail = false;
};

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--policy") opt.policy = next();
    else if (flag == "--disks") opt.disks = std::stoul(next());
    else if (flag == "--load") opt.load = std::stod(next());
    else if (flag == "--requests") opt.requests = std::stoul(next());
    else if (flag == "--files") opt.files = std::stoul(next());
    else if (flag == "--epoch") opt.epoch_s = std::stod(next());
    else if (flag == "--cap") opt.cap = std::stoull(next());
    else if (flag == "--threshold") opt.threshold_s = std::stod(next());
    else if (flag == "--cache-disks") opt.cache_disks = std::stoul(next());
    else if (flag == "--seed") opt.seed = std::stoull(next());
    else if (flag == "--trace") opt.trace_file = next();
    else if (flag == "--positioned") opt.positioned = true;
    else if (flag == "--detail") opt.detail = true;
    else if (flag == "--help" || flag == "-h") return false;
    else throw std::runtime_error("unknown flag " + flag);
  }
  return true;
}

std::unique_ptr<pr::Policy> make_policy(const Options& opt) {
  using namespace pr;
  if (opt.policy == "read") {
    ReadConfig rc;
    rc.max_transitions_per_day = opt.cap;
    if (opt.threshold_s) rc.idleness_threshold = Seconds{*opt.threshold_s};
    return std::make_unique<ReadPolicy>(rc);
  }
  if (opt.policy == "read-repl") {
    ReplicationConfig rc;
    rc.read.max_transitions_per_day = opt.cap;
    if (opt.threshold_s) {
      rc.read.idleness_threshold = Seconds{*opt.threshold_s};
    }
    return std::make_unique<ReplicatedReadPolicy>(rc);
  }
  if (opt.policy == "maid") {
    MaidConfig mc;
    mc.cache_disks = opt.cache_disks;
    if (opt.threshold_s) mc.idleness_threshold = Seconds{*opt.threshold_s};
    return std::make_unique<MaidPolicy>(mc);
  }
  if (opt.policy == "pdc") {
    PdcConfig pc;
    if (opt.threshold_s) pc.idleness_threshold = Seconds{*opt.threshold_s};
    return std::make_unique<PdcPolicy>(pc);
  }
  if (opt.policy == "static") return std::make_unique<StaticPolicy>();
  if (opt.policy == "raid0") return std::make_unique<StripedStaticPolicy>();
  if (opt.policy == "read-raid0") {
    StripedReadConfig src;
    src.read.max_transitions_per_day = opt.cap;
    if (opt.threshold_s) {
      src.read.idleness_threshold = Seconds{*opt.threshold_s};
    }
    return std::make_unique<StripedReadPolicy>(src);
  }
  if (opt.policy == "drpm") {
    DrpmConfig dc;
    if (opt.threshold_s) dc.idleness_threshold = Seconds{*opt.threshold_s};
    return std::make_unique<DrpmPolicy>(dc);
  }
  if (opt.policy == "hibernator") {
    return std::make_unique<HibernatorPolicy>();
  }
  throw std::runtime_error("unknown policy '" + opt.policy + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pr;
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      std::cout << "usage: see header comment of run_experiment.cpp\n";
      return 0;
    }

    FileSet files;
    Trace trace;
    if (!opt.trace_file.empty()) {
      trace = read_csv_trace_file(opt.trace_file);
      files = FileSet::from_trace_stats(compute_trace_stats(trace));
      std::cout << "loaded " << trace.size() << " requests over "
                << files.size() << " files from " << opt.trace_file << "\n";
    } else {
      auto wc = worldcup98_light_config(opt.seed);
      wc.load_factor = opt.load;
      wc.file_count = opt.files;
      wc.request_count = opt.requests;
      auto workload = generate_workload(wc);
      files = std::move(workload.files);
      trace = std::move(workload.trace);
      std::cout << "synthesised " << trace.size() << " requests over "
                << files.size() << " files (load x" << opt.load << ")\n";
    }

    SystemConfig config;
    config.sim.disk_count = opt.disks;
    config.sim.epoch = Seconds{opt.epoch_s};
    if (opt.positioned) config.sim.seek_curve = cheetah_seek_curve();

    auto policy = make_policy(opt);
    const SystemReport report = evaluate(config, files, trace, *policy);
    std::cout << "\n" << report.summary();

    if (opt.detail) {
      AsciiTable detail("per-disk ESRRA / PRESS breakdown");
      detail.set_header({"disk", "temp", "util", "trans/day", "AFR"});
      for (std::size_t d = 0; d < report.sim.telemetry.size(); ++d) {
        const auto& t = report.sim.telemetry[d];
        detail.add_row({std::to_string(d),
                        num(t.temperature.value(), 1) + "C",
                        pct(t.utilization, 1), num(t.transitions_per_day, 1),
                        pct(report.disk_press[d].combined_afr, 2)});
      }
      detail.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
