// run_experiment — command-line driver exposing the library without
// writing code. Two modes:
//
//   Single run (legacy flags): pick a policy and knobs, run one
//   simulation, print the full report (optionally per-disk breakdown).
//
//     $ ./run_experiment --policy read --disks 8 --load 1.0 --cap 40
//     $ ./run_experiment --policy maid --disks 12 --cache-disks 3
//     $ ./run_experiment --policy striped-read --param stripe_unit=1048576
//     $ ./run_experiment --policy read --trace jsonl:mytrace.jl
//     $ ./run_experiment --emit-trace | ./run_experiment --source - --files 4079
//
//   Scenario sweep: run a declarative grid from a config file
//   (grammar: EXPERIMENTS.md "Scenario files"; examples: scenarios/).
//
//     $ ./run_experiment --config scenarios/fig7_overall.ini
//     $ ./run_experiment --config scenarios/smoke.ini --csv out.csv
//
// All policy construction flows through pr::policies — `--policy` accepts
// any registry name (or alias), `--param key=value` reaches any registered
// knob, and `--help` prints the live registry. Numeric flags are parsed
// strictly: trailing garbage ("--disks 8x") and negative values are
// errors naming the flag, not silent truncation.
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <system_error>

#include "core/registry.h"
#include "core/session.h"
#include "disk/geometry.h"
#include "exp/scenario.h"
#include "exp/scenario_engine.h"
#include "exp/scenario_report.h"
#include "trace/csv_trace.h"
#include "trace/trace_reader.h"
#include "trace/trace_stats.h"
#include "util/parse.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace {

using namespace pr;

struct Options {
  std::string policy = "read";
  std::size_t disks = 8;
  double load = 1.0;
  std::size_t requests = 1'480'081;
  std::size_t files = 4'079;
  double epoch_s = 3600.0;
  // Policy knobs: only explicitly-set flags reach the ParamMap, so
  // registry defaults stay in charge otherwise.
  std::optional<std::string> cap;
  std::optional<std::string> threshold;
  std::optional<std::string> cache_disks;
  ParamMap params;  // --param key=value, forwarded verbatim
  std::uint64_t seed = 42;
  std::string trace_file;
  std::string source;       // streaming trace spec ('-' = stdin)
  bool emit_trace = false;  // stream the synthetic workload to stdout
  bool positioned = false;
  bool detail = false;
  // Scenario mode.
  std::string config_file;
  std::optional<unsigned> threads;
  std::optional<unsigned> fleet_threads;
  std::string csv_path;
  std::string json_path;
};

void print_help() {
  std::cout <<
      "usage: run_experiment [flags]\n"
      "\n"
      "single run:\n"
      "  --policy NAME        energy-management policy      (default read)\n"
      "  --disks N            array size                    (default 8)\n"
      "  --load X             arrival-rate multiplier       (default 1.0)\n"
      "  --requests N         synthetic request count       (default 1480081)\n"
      "  --files N            synthetic file count          (default 4079)\n"
      "  --epoch SECONDS      epoch length P                (default 3600)\n"
      "  --cap S              READ transition budget\n"
      "  --threshold SECONDS  initial idleness threshold\n"
      "  --cache-disks N      MAID cache disk count\n"
      "  --param KEY=VALUE    any registry knob (repeatable)\n"
      "  --seed N             workload seed                 (default 42)\n"
      "  --trace SPEC         materialize a trace instead of synthesizing\n"
      "                       ([format:]path; formats: clf, csv, jsonl, wc98)\n"
      "  --source SPEC        stream a trace through a bounded buffer\n"
      "                       ('-' = CSV on stdin; needs --files for the\n"
      "                       file universe, ids must be < N)\n"
      "  --emit-trace         stream the synthetic workload as CSV to\n"
      "                       stdout and exit (pairs with --source -)\n"
      "  --csv FILE           also write the run as a one-cell scenario CSV\n"
      "  --positioned         enable seek-curve positional I/O\n"
      "  --detail             per-disk ESRRA/PRESS table\n"
      "\n"
      "scenario sweep:\n"
      "  --config FILE        run a declarative scenario (see scenarios/)\n"
      "  --threads N          sweep worker threads (0 = hardware)\n"
      "  --fleet-threads N    override [fleet] threads (never changes\n"
      "                       result bytes; 0 = hardware)\n"
      "  --csv FILE           cell CSV (default results/<scenario>.csv)\n"
      "  --json FILE          cell JSON (off by default)\n"
      "\n"
      "policies (pr::policies registry):\n";
  for (const std::string& name : pr::policies::names()) {
    std::string params_line;
    for (const auto& info : pr::policies::param_info(name)) {
      params_line += params_line.empty() ? "" : ", ";
      params_line += info.name;
    }
    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 18; ++pad) std::cout << ' ';
    std::cout << (params_line.empty() ? "(no knobs)" : "knobs: " + params_line)
              << "\n";
  }
  std::cout << "aliases:";
  for (const auto& [alias, target] : pr::policies::aliases()) {
    std::cout << " " << alias << "=" << target;
  }
  std::cout << "\n";
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--policy") opt.policy = next();
    else if (flag == "--disks") opt.disks = parse_size(next(), flag);
    else if (flag == "--load") opt.load = parse_double(next(), flag);
    else if (flag == "--requests") opt.requests = parse_size(next(), flag);
    else if (flag == "--files") opt.files = parse_size(next(), flag);
    else if (flag == "--epoch") opt.epoch_s = parse_double(next(), flag);
    else if (flag == "--cap") {
      opt.cap = next();
      (void)parse_u64(*opt.cap, flag);
    } else if (flag == "--threshold") {
      opt.threshold = next();
      (void)parse_double(*opt.threshold, flag);
    } else if (flag == "--cache-disks") {
      opt.cache_disks = next();
      (void)parse_size(*opt.cache_disks, flag);
    } else if (flag == "--param") {
      const std::string kv = next();
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::runtime_error("--param expects KEY=VALUE, got '" + kv + "'");
      }
      opt.params.set(kv.substr(0, eq), kv.substr(eq + 1));
    }
    else if (flag == "--seed") opt.seed = parse_u64(next(), flag);
    else if (flag == "--trace") opt.trace_file = next();
    else if (flag == "--source") opt.source = next();
    else if (flag == "--emit-trace") opt.emit_trace = true;
    else if (flag == "--positioned") opt.positioned = true;
    else if (flag == "--detail") opt.detail = true;
    else if (flag == "--config") opt.config_file = next();
    else if (flag == "--threads")
      opt.threads = static_cast<unsigned>(parse_u64(next(), flag));
    else if (flag == "--fleet-threads")
      opt.fleet_threads = static_cast<unsigned>(parse_u64(next(), flag));
    else if (flag == "--csv") opt.csv_path = next();
    else if (flag == "--json") opt.json_path = next();
    else if (flag == "--help" || flag == "-h") return false;
    else throw std::runtime_error("unknown flag " + flag + " (see --help)");
  }
  if (opt.disks == 0) throw std::runtime_error("--disks must be > 0");
  if (!(opt.load > 0.0)) throw std::runtime_error("--load must be > 0");
  if (!(opt.epoch_s > 0.0)) throw std::runtime_error("--epoch must be > 0");
  if (!opt.trace_file.empty() && !opt.source.empty()) {
    throw std::runtime_error("--trace and --source are mutually exclusive");
  }
  return true;
}

/// Fold the convenience flags into the ParamMap, keeping only knobs the
/// chosen policy actually declares (the legacy CLI silently ignored e.g.
/// --cap under MAID; we keep that behaviour but say so).
ParamMap policy_params(const Options& opt) {
  ParamMap params = opt.params;
  auto add = [&](const char* key, const std::optional<std::string>& value) {
    if (value && !params.contains(key)) params.set(key, *value);
  };
  add("cap", opt.cap);
  add("threshold", opt.threshold);
  add("cache_disks", opt.cache_disks);

  const std::vector<std::string> known =
      pr::policies::param_names(opt.policy);
  ParamMap filtered;
  for (const std::string& key : params.keys()) {
    bool supported = false;
    for (const std::string& k : known) supported = supported || k == key;
    if (supported) {
      filtered.set(key, params.raw(key));
    } else {
      std::cerr << "note: policy '" << opt.policy << "' has no knob '" << key
                << "'; ignored\n";
    }
  }
  return filtered;
}

/// The synthetic workload config the single-run flags describe.
SyntheticWorkloadConfig synthetic_config(const Options& opt) {
  auto wc = worldcup98_light_config(opt.seed);
  wc.load_factor = opt.load;
  wc.file_count = opt.files;
  wc.request_count = opt.requests;
  return wc;
}

/// `--files N` uniform universe for single-pass stdin sources, where no
/// stats prepass is possible: N files of the from_trace_stats default
/// size, rate 0 (policies learn popularity from the stream itself).
FileSet uniform_fileset(std::size_t count) {
  std::vector<FileInfo> infos(count);
  for (std::size_t i = 0; i < count; ++i) {
    infos[i].id = static_cast<FileId>(i);
    infos[i].size = 4 * kKiB;
  }
  return FileSet(std::move(infos));
}

/// --emit-trace: pull the synthetic generator through the streaming CSV
/// writer — no Trace is ever materialized, so this scales to traces
/// larger than memory.
int emit_trace(const Options& opt) {
  SyntheticSource source(synthetic_config(opt));
  write_csv_trace(source, std::cout);
  if (!std::cout) throw std::runtime_error("--emit-trace: write failed");
  return 0;
}

int run_single(const Options& opt) {
  SystemConfig config;
  config.sim.disk_count = opt.disks;
  config.sim.epoch = Seconds{opt.epoch_s};
  if (opt.positioned) config.sim.seek_curve = cheetah_seek_curve();
  auto policy = pr::policies::make(opt.policy, policy_params(opt))();

  FileSet files;
  Trace trace;
  SystemReport report;
  std::string workload_label;
  if (!opt.source.empty()) {
    workload_label = opt.source;
    if (pr::trace::resolve_spec(opt.source).path == "-") {
      files = uniform_fileset(opt.files);
    } else {
      // Seekable sources afford a stats prepass: stream once through the
      // accumulator to measure the file universe, then re-open to run.
      auto probe = pr::trace::open(opt.source);
      TraceStatsAccumulator stats;
      Request r;
      while (probe->next(r)) stats.add(r);
      files = FileSet::from_trace_stats(stats.finalize());
    }
    auto source = pr::trace::open(opt.source);
    std::cout << "streaming " << source->describe() << " over "
              << files.size() << " files\n";
    report = SimulationSession(config)
                 .with_source(files, *source)
                 .with_policy(*policy)
                 .run();
    std::cout << "consumed " << source->produced() << " requests\n";
  } else {
    if (!opt.trace_file.empty()) {
      workload_label = opt.trace_file;
      trace = pr::trace::open_trace(opt.trace_file);
      files = FileSet::from_trace_stats(compute_trace_stats(trace));
      std::cout << "loaded " << trace.size() << " requests over "
                << files.size() << " files from " << opt.trace_file << "\n";
    } else {
      workload_label = "synthetic";
      auto workload = generate_workload(synthetic_config(opt));
      files = std::move(workload.files);
      trace = std::move(workload.trace);
      std::cout << "synthesised " << trace.size() << " requests over "
                << files.size() << " files (load x" << opt.load << ")\n";
    }
    report = SimulationSession(config)
                 .with_workload(files, trace)
                 .with_policy(*policy)
                 .run();
  }
  std::cout << "\n" << report.summary();

  if (!opt.csv_path.empty()) {
    // One-cell scenario export so streaming/smoke tooling can assert the
    // same CSV schema the sweep engine emits.
    ScenarioResult one;
    one.scenario = "single";
    ScenarioCell cell;
    cell.policy = opt.policy;
    cell.workload = workload_label;
    cell.load = opt.load;
    cell.seed = opt.seed;
    cell.epoch_s = opt.epoch_s;
    cell.disks = opt.disks;
    cell.report = report;
    one.cells.push_back(std::move(cell));
    write_scenario_csv_file(one, opt.csv_path);
    std::cout << "wrote " << opt.csv_path << "\n";
  }

  if (opt.detail) {
    AsciiTable detail("per-disk ESRRA / PRESS breakdown");
    detail.set_header({"disk", "temp", "util", "trans/day", "AFR"});
    for (std::size_t d = 0; d < report.sim.telemetry.size(); ++d) {
      const auto& t = report.sim.telemetry[d];
      detail.add_row({std::to_string(d),
                      num(t.temperature.value(), 1) + "C",
                      pct(t.utilization, 1), num(t.transitions_per_day, 1),
                      pct(report.disk_press[d].combined_afr, 2)});
    }
    detail.print(std::cout);
  }
  return 0;
}

int run_config(const Options& opt) {
  ScenarioSpec spec = load_scenario_file(opt.config_file);
  if (opt.threads) spec.threads = *opt.threads;
  if (opt.fleet_threads) spec.fleet.threads = *opt.fleet_threads;

  std::cout << "scenario '" << spec.name << "' from " << opt.config_file
            << "\n";
  const ScenarioResult result = run_scenario(spec);
  std::cout << "ran " << result.cells.size() << " cells\n\n";

  AsciiTable table("scenario '" + result.scenario + "' — per-cell summary");
  table.set_header({"policy", "workload", "load", "seed", "epoch", "disks",
                    "array AFR", "energy (kJ)", "mean RT (ms)"});
  for (const ScenarioCell& c : result.cells) {
    table.add_row({c.policy, c.workload, num(c.load, 2),
                   std::to_string(c.seed), num(c.epoch_s, 0),
                   std::to_string(c.disks), pct(c.report.array_afr, 2),
                   num(c.report.sim.energy_joules() / 1e3, 1),
                   num(c.report.sim.mean_response_time_s() * 1e3, 2)});
  }
  table.print(std::cout);

  std::string csv_path = opt.csv_path;
  if (csv_path.empty()) {
    std::error_code ec;
    std::filesystem::create_directories("results", ec);  // best effort
    csv_path = "results/" + result.scenario + ".csv";
  }
  write_scenario_csv_file(result, csv_path);
  std::cout << "\nwrote " << csv_path;
  if (!opt.json_path.empty()) {
    write_scenario_json_file(result, opt.json_path, /*include_reports=*/true);
    std::cout << " and " << opt.json_path;
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      print_help();
      return 0;
    }
    if (opt.emit_trace) return emit_trace(opt);
    return opt.config_file.empty() ? run_single(opt) : run_config(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
