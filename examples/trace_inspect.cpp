// trace_inspect — workload characterisation tool: reads a trace in any
// registered format (trace::open specs — CSV/JSONL interchange, raw
// WorldCup98 binary, Apache CLF) and prints the statistics the READ
// policy parameterises itself with — the skew parameter θ, the fitted
// Zipf exponent, arrival-rate and size profiles. With no arguments it
// synthesises a demo trace so the output is self-contained.
//
//   $ ./trace_inspect                      # demo on a synthetic trace
//   $ ./trace_inspect trace.csv            # CSV trace (time,file,bytes,op)
//   $ ./trace_inspect requests.jsonl       # JSONL trace
//   $ ./trace_inspect wc98:wc_day66_1      # raw WorldCup98 binary log
//   $ ./trace_inspect clf:access.log       # Apache CLF/Combined log
#include <iostream>
#include <string>

#include "trace/trace_reader.h"
#include "trace/trace_stats.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace {

pr::Trace load(int argc, char** argv, std::string& source) {
  using namespace pr;
  if (argc >= 2) {
    source = argv[1];
    return pr::trace::open_trace(argv[1]);
  }
  source = "synthetic demo (WC98-like, 200k requests)";
  auto config = worldcup98_light_config(7);
  config.file_count = 2'000;
  config.request_count = 200'000;
  return generate_workload(config).trace;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pr;
  std::string source;
  Trace trace;
  try {
    trace = load(argc, argv, source);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (trace.empty()) {
    std::cerr << "error: empty trace\n";
    return 1;
  }

  const TraceStats stats = compute_trace_stats(trace);

  AsciiTable table("Trace characterisation — " + source);
  table.set_header({"statistic", "value"});
  table.add_row({"requests", std::to_string(stats.request_count)});
  table.add_row({"distinct files", std::to_string(stats.file_count)});
  table.add_row({"duration", num(stats.duration.value() / 3600.0, 2) + " h"});
  table.add_row({"mean inter-arrival",
                 num(stats.mean_interarrival.value() * 1e3, 2) + " ms"});
  table.add_row({"mean request size",
                 num(stats.mean_request_bytes / 1024.0, 2) + " KiB"});
  table.add_row({"total transferred", si(static_cast<double>(stats.total_bytes)) + "B"});
  table.add_row({"skew θ (Lee et al.)", num(stats.theta, 3)});
  table.add_row({"top-" + pct(stats.theta_b, 0) + "-of-files access share",
                 pct(stats.top_fraction_accesses, 1)});
  table.add_row({"fitted Zipf exponent α", num(stats.zipf_alpha, 3)});
  table.print(std::cout);

  // Inter-arrival histogram — the burstiness DPM schemes live off.
  Histogram gaps(0.0, stats.mean_interarrival.value() * 5.0, 20);
  for (std::size_t i = 1; i < trace.requests.size(); ++i) {
    gaps.add((trace.requests[i].arrival - trace.requests[i - 1].arrival)
                 .value());
  }
  std::cout << "\ninter-arrival distribution (s):\n" << gaps.render(40);

  std::cout << "\nREAD would size its zones from θ = " << num(stats.theta, 3)
            << ": popular files |Fp| = (1-θ)m = "
            << static_cast<std::size_t>((1.0 - stats.theta) *
                                        static_cast<double>(stats.file_count))
            << " of " << stats.file_count << "\n";
  return 0;
}
