// fleet_cost_report — the economics workflow end-to-end: simulate a
// server fleet's day under a chosen policy, score it with PRESS, convert
// to an annual budget (energy + replacements + expected data loss),
// cross-check the array's data-loss risk by Monte-Carlo under several
// RAID levels, and emit a machine-readable JSON report next to the
// human-readable tables.
//
//   $ ./fleet_cost_report [policy] [workload] [out.json]
//     policy:   read|maid|pdc|static          (default read)
//     workload: web|proxy|ftp|email           (default web)
#include <iostream>
#include <memory>
#include <string>

#include "core/report_io.h"
#include "core/session.h"
#include "policy/maid_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "press/economics.h"
#include "press/montecarlo.h"
#include "press/mttdl.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace {

pr::SyntheticWorkloadConfig pick_workload(const std::string& name) {
  using namespace pr;
  SyntheticWorkloadConfig cfg;
  if (name == "proxy") {
    cfg = proxy_server_config();
  } else if (name == "ftp") {
    cfg = ftp_mirror_config();
  } else if (name == "email") {
    cfg = email_server_config();
  } else {
    cfg = worldcup98_light_config();
  }
  // Keep the example snappy regardless of preset.
  cfg.request_count = std::min<std::size_t>(cfg.request_count, 300'000);
  cfg.file_count = std::min<std::size_t>(cfg.file_count, 20'000);
  return cfg;
}

std::unique_ptr<pr::Policy> pick_policy(const std::string& name) {
  using namespace pr;
  if (name == "maid") return std::make_unique<MaidPolicy>();
  if (name == "pdc") return std::make_unique<PdcPolicy>();
  if (name == "static") return std::make_unique<StaticPolicy>();
  return std::make_unique<ReadPolicy>();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pr;
  const std::string policy_name = argc > 1 ? argv[1] : "read";
  const std::string workload_name = argc > 2 ? argv[2] : "web";
  const std::string json_path = argc > 3 ? argv[3] : "";

  std::cout << "simulating a " << workload_name << " day under "
            << policy_name << "...\n";
  const auto workload = generate_workload(pick_workload(workload_name));

  SystemConfig config;
  config.sim.disk_count = 8;
  config.sim.epoch = Seconds{3600.0};
  auto policy = pick_policy(policy_name);
  const SystemReport report = SimulationSession(config)
                                  .with_workload(workload)
                                  .with_policy(*policy)
                                  .run();
  std::cout << "\n" << report.summary() << "\n";

  // ------------------------------------------------------ annual budget
  std::vector<double> afrs;
  for (const auto& b : report.disk_press) afrs.push_back(b.combined_afr);
  const CostModel money;
  const auto cost =
      annual_cost(report.sim.total_energy, report.sim.horizon, afrs, money);

  AsciiTable budget("Annualized budget ($" + num(money.dollars_per_kwh, 2) +
                    "/kWh, $" + num(money.disk_replacement_dollars, 0) +
                    "/disk, $" +
                    num(money.data_loss_dollars_per_failure, 0) + "/loss)");
  budget.set_header({"component", "$/year"});
  budget.add_row({"energy", num(cost.energy_dollars, 2)});
  budget.add_row({"disk replacements", num(cost.replacement_dollars, 2)});
  budget.add_row({"expected data loss", num(cost.data_loss_dollars, 2)});
  budget.add_separator();
  budget.add_row({"total", num(cost.total_dollars(), 2)});
  budget.print(std::cout);
  std::cout << "expected disk failures/year: "
            << num(cost.expected_failures_per_year, 3) << "\n\n";

  // --------------------------------------------- data-loss risk by RAID
  AsciiTable risk("5-year data-loss risk by layout (Monte-Carlo, per-disk "
                  "AFRs from PRESS; 24 h rebuild)");
  risk.set_header({"layout", "P(loss in 5 yr)", "mean failures/5 yr"});
  MonteCarloConfig mc;
  mc.horizon_years = 5.0;
  mc.trials = 1'500;
  struct Layout {
    const char* label;
    RaidLevel level;
  };
  for (const Layout& layout :
       {Layout{"RAID0 (no redundancy)", RaidLevel::kRaid0},
        Layout{"RAID5 (single parity)", RaidLevel::kRaid5},
        Layout{"RAID1 (mirrored)", RaidLevel::kRaid1},
        Layout{"RAID6 (double parity)", RaidLevel::kRaid6}}) {
    const auto result =
        simulate_array_lifetime(layout.level, afrs, mc);
    risk.add_row({layout.label, pct(result.loss_probability, 2),
                  num(result.mean_failures, 2)});
  }
  risk.print(std::cout);

  if (!json_path.empty()) {
    write_json_file(report, json_path);
    std::cout << "\nmachine-readable report written to " << json_path << "\n";
  }
  return 0;
}
