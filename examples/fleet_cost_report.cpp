// fleet_cost_report — the economics workflow end-to-end: simulate a
// server fleet's day under a chosen policy, score it with PRESS, convert
// to an annual budget (energy + replacements + expected data loss),
// cross-check the array's data-loss risk by Monte-Carlo under several
// RAID levels, and emit a machine-readable JSON report next to the
// human-readable tables.
//
//   $ ./fleet_cost_report [policy] [workload] [out.json] [shards] [disks]
//     policy:   read|maid|pdc|static          (default read)
//     workload: web|proxy|ftp|email           (default web)
//     shards:   array count in the fleet      (default 1)
//     disks:    disks per shard/array         (default 8)
//
// With shards > 1 the run goes through the sharded fleet simulator
// (sim/fleet_sim): shards × disks arrays merged into one scored result.
// Geometry is validated through fleet_disk_count, so >4096-disk fleets
// are first-class and anything past the 32-bit DiskId space fails loudly
// instead of overflowing an int-typed index.
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>

#include "core/report_io.h"
#include "core/session.h"
#include "press/economics.h"
#include "press/montecarlo.h"
#include "press/mttdl.h"
#include "sim/fleet_sim.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace {

pr::SyntheticWorkloadConfig pick_workload(const std::string& name) {
  using namespace pr;
  SyntheticWorkloadConfig cfg;
  if (name == "proxy") {
    cfg = proxy_server_config();
  } else if (name == "ftp") {
    cfg = ftp_mirror_config();
  } else if (name == "email") {
    cfg = email_server_config();
  } else {
    cfg = worldcup98_light_config();
  }
  // Keep the example snappy regardless of preset. request_count is the
  // fleet total in fleet mode (split across shards).
  cfg.request_count = std::min<std::size_t>(cfg.request_count, 300'000);
  cfg.file_count = std::min<std::size_t>(cfg.file_count, 20'000);
  return cfg;
}

// Registry name for the session (fleet mode needs a name-based policy so
// every shard gets a fresh instance; see core/registry.h).
std::string pick_policy(const std::string& name) {
  if (name == "maid" || name == "pdc" || name == "static") return name;
  return "read";
}

// Parse a positive integer that must fit the 32-bit fleet id space.
std::uint32_t parse_u32(const char* text, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || value == 0 ||
      value > 0xFFFFFFFFull) {
    throw std::invalid_argument(std::string(what) + " must be in [1, 2^32): " +
                                text);
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace pr;
  const std::string policy_name = pick_policy(argc > 1 ? argv[1] : "read");
  const std::string workload_name = argc > 2 ? argv[2] : "web";
  const std::string json_path = argc > 3 ? argv[3] : "";
  const std::uint32_t shards = argc > 4 ? parse_u32(argv[4], "shards") : 1;
  const std::uint32_t disks = argc > 5 ? parse_u32(argv[5], "disks") : 8;
  // Checked geometry: throws before any simulation when shards × disks
  // leaves the 32-bit DiskId space.
  const std::uint32_t fleet_disks = fleet_disk_count(shards, disks);

  std::cout << "simulating a " << workload_name << " day on a " << fleet_disks
            << "-disk fleet (" << shards << " x " << disks << ") under "
            << policy_name << "...\n";

  SystemConfig config;
  config.sim.disk_count = disks;
  config.sim.epoch = Seconds{3600.0};
  SimulationSession session(config);
  session.with_workload(pick_workload(workload_name))
      .with_policy(policy_name);
  if (shards > 1) session.with_fleet(shards, disks, /*threads=*/0);
  const SystemReport report = session.run();
  std::cout << "\n" << report.summary() << "\n";

  // ------------------------------------------------------ annual budget
  std::vector<double> afrs;
  for (const auto& b : report.disk_press) afrs.push_back(b.combined_afr);
  const CostModel money;
  const auto cost =
      annual_cost(report.sim.total_energy, report.sim.horizon, afrs, money);

  AsciiTable budget("Annualized budget ($" + num(money.dollars_per_kwh, 2) +
                    "/kWh, $" + num(money.disk_replacement_dollars, 0) +
                    "/disk, $" +
                    num(money.data_loss_dollars_per_failure, 0) + "/loss)");
  budget.set_header({"component", "$/year"});
  budget.add_row({"energy", num(cost.energy_dollars, 2)});
  budget.add_row({"disk replacements", num(cost.replacement_dollars, 2)});
  budget.add_row({"expected data loss", num(cost.data_loss_dollars, 2)});
  budget.add_separator();
  budget.add_row({"total", num(cost.total_dollars(), 2)});
  budget.print(std::cout);
  std::cout << "expected disk failures/year: "
            << num(cost.expected_failures_per_year, 3) << "\n\n";

  // --------------------------------------------- data-loss risk by RAID
  // RAID redundancy is a per-array property, so the Monte-Carlo uses one
  // shard's worth of AFRs (the whole report in single-array mode). This
  // also keeps the example snappy at fleet scale — the trials are linear
  // in disk count.
  const std::vector<double> array_afrs(
      afrs.begin(), afrs.begin() + std::min<std::size_t>(afrs.size(), disks));
  AsciiTable risk("5-year data-loss risk by layout, one " +
                  std::to_string(array_afrs.size()) +
                  "-disk array (Monte-Carlo, per-disk "
                  "AFRs from PRESS; 24 h rebuild)");
  risk.set_header({"layout", "P(loss in 5 yr)", "mean failures/5 yr"});
  MonteCarloConfig mc;
  mc.horizon_years = 5.0;
  mc.trials = 1'500;
  struct Layout {
    const char* label;
    RaidLevel level;
  };
  for (const Layout& layout :
       {Layout{"RAID0 (no redundancy)", RaidLevel::kRaid0},
        Layout{"RAID5 (single parity)", RaidLevel::kRaid5},
        Layout{"RAID1 (mirrored)", RaidLevel::kRaid1},
        Layout{"RAID6 (double parity)", RaidLevel::kRaid6}}) {
    const auto result =
        simulate_array_lifetime(layout.level, array_afrs, mc);
    risk.add_row({layout.label, pct(result.loss_probability, 2),
                  num(result.mean_failures, 2)});
  }
  risk.print(std::cout);

  if (!json_path.empty()) {
    write_json_file(report, json_path);
    std::cout << "\nmachine-readable report written to " << json_path << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
