// webserver_day — the paper's headline scenario as an application: a full
// WorldCup98-like day served by an 8-disk array under all four policies,
// with a per-disk ESRRA breakdown showing *why* PRESS ranks them the way
// it does (which disk is the reliability bottleneck and which factor —
// temperature, utilization or transition frequency — drives it).
//
//   $ ./webserver_day [--quick]
//
// Set PR_TRACE_JSONL=<prefix> to also stream each policy's control-plane
// event log (speed transitions, epochs, migrations) to
// <prefix>.<policy>.jsonl via the observability layer (docs/OBSERVABILITY.md).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/session.h"
#include "obs/jsonl_writer.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  using namespace pr;
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  auto workload_config = worldcup98_light_config(42);
  if (quick) {
    workload_config.file_count = 1'000;
    workload_config.request_count = 80'000;
  }
  std::cout << "simulating one web-server day: "
            << workload_config.request_count << " requests over "
            << workload_config.file_count << " files\n\n";
  const auto workload = generate_workload(workload_config);

  SystemConfig config;
  config.sim.disk_count = 8;
  config.sim.epoch = Seconds{3600.0};

  AsciiTable overview("One day, four energy-saving schemes (8 disks)");
  overview.set_header({"policy", "mean RT", "p99 RT", "energy", "array AFR",
                       "transitions", "migrations"});

  for (const std::string& name : {std::string("read"), std::string("maid"),
                                  std::string("pdc"), std::string("static")}) {
    // The registry-based session API: name the policy, attach observers.
    // PR_TRACE_JSONL=<path-prefix> streams the control-plane event log
    // (speed transitions, epochs, migrations) per policy for inspection.
    SimulationSession session(config);
    session.with_workload(workload).with_policy(name);
    std::unique_ptr<JsonlTraceWriter> jsonl;
    if (const char* prefix = std::getenv("PR_TRACE_JSONL")) {
      JsonlOptions options;
      options.requests = false;  // control-plane only; keep files small
      try {
        jsonl = std::make_unique<JsonlTraceWriter>(
            std::string(prefix) + "." + name + ".jsonl", options);
      } catch (const std::runtime_error& e) {
        std::cerr << e.what() << "\n";
        return 1;
      }
      session.with_observer(*jsonl);
    }
    const auto report = session.run();
    overview.add_row(
        {report.sim.policy_name,
         num(report.sim.mean_response_time_s() * 1e3, 2) + " ms",
         num(report.sim.response_time_sample.quantile(0.99) * 1e3, 2) + " ms",
         si(report.sim.energy_joules()) + "J", pct(report.array_afr, 2),
         std::to_string(report.sim.total_transitions),
         std::to_string(report.sim.migrations)});

    // Per-disk ESRRA breakdown for this policy.
    AsciiTable detail("  " + report.sim.policy_name +
                      " — per-disk ESRRA factors and PRESS AFR");
    detail.set_header({"disk", "temp", "util", "trans/day", "AFR(temp)",
                       "AFR(util)", "AFR(freq)", "AFR", "bottleneck?"});
    for (std::size_t d = 0; d < report.sim.telemetry.size(); ++d) {
      const auto& t = report.sim.telemetry[d];
      const auto& b = report.disk_press[d];
      detail.add_row({std::to_string(d), num(t.temperature.value(), 1) + "C",
                      pct(t.utilization, 1), num(t.transitions_per_day, 1),
                      pct(b.temperature_afr, 1), pct(b.utilization_afr, 1),
                      pct(b.frequency_afr, 1), pct(b.combined_afr, 1),
                      d == report.worst_disk ? "<- worst" : ""});
    }
    detail.print(std::cout);
    std::cout << "\n";
  }

  overview.print(std::cout);
  std::cout << "\nThe paper's claim (abstract): READ beats MAID and PDC on "
               "performance and reliability at comparable energy.\n";
  return 0;
}
