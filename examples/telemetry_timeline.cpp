// telemetry_timeline — the observability layer end to end: run one policy
// over a synthetic day with a TimeSeriesRecorder (and optionally a
// JsonlTraceWriter) attached, then print the windowed per-array timeline —
// the time-resolved view that aggregate end-of-run numbers hide (when do
// disks spin down, where does the queue build, which hour burns the
// energy).
//
//   $ ./telemetry_timeline [policy] [--quick]
//
// `policy` is any pr::policies registry name (default "read").
// Output files in the working directory:
//   timeline.<policy>.csv    — long-form window × disk series
//   timeline.<policy>.jsonl  — control-plane event log (set
//                              PR_TELEMETRY_JSONL=0 to skip)
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/registry.h"
#include "core/session.h"
#include "obs/jsonl_writer.h"
#include "obs/time_series.h"
#include "util/table.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  using namespace pr;

  std::string policy = "read";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      policy = argv[i];
    }
  }
  if (!policies::contains(policy)) {
    std::cerr << "unknown policy '" << policy << "'; valid names:";
    for (const auto& name : policies::names()) std::cerr << ' ' << name;
    std::cerr << "\n";
    return 1;
  }

  auto workload_config = worldcup98_light_config(42);
  if (quick) {
    workload_config.file_count = 1'000;
    workload_config.request_count = 80'000;
  }
  const auto workload = generate_workload(workload_config);
  std::cout << "policy " << policy << ", "
            << workload.trace.requests.size() << " requests, 8 disks\n\n";

  SystemConfig config;
  config.sim.disk_count = 8;
  config.sim.epoch = Seconds{3600.0};

  // One-hour windows keep the table terminal-sized; use Seconds{60.0} for
  // plot-resolution series.
  TimeSeriesRecorder timeline{Seconds{3600.0}};
  SimulationSession session(config);
  session.with_workload(workload).with_policy(policy).with_observer(timeline);

  std::unique_ptr<JsonlTraceWriter> jsonl;
  const char* jsonl_flag = std::getenv("PR_TELEMETRY_JSONL");
  if (jsonl_flag == nullptr || std::strcmp(jsonl_flag, "0") != 0) {
    JsonlOptions options;
    options.requests = false;  // control-plane only; keeps the file small
    jsonl = std::make_unique<JsonlTraceWriter>(
        "timeline." + policy + ".jsonl", options);
    session.with_observer(*jsonl);
  }

  const auto report = session.run();

  AsciiTable table("Array timeline — " + report.sim.policy_name +
                   ", 1 h windows (all disks summed)");
  table.set_header({"hour", "requests", "util", "high-speed", "energy (kJ)",
                    "max backlog (ms)", "trans", "migrations"});
  for (std::size_t w = 0; w < timeline.window_count(); ++w) {
    const auto total = timeline.array_total(w);
    const double disks = static_cast<double>(timeline.disk_count());
    table.add_row(
        {std::to_string(w),
         std::to_string(total.requests),
         pct(total.utilization(timeline.window_length()) / disks, 1),
         pct(total.high_speed_fraction(timeline.window_length()) / disks, 1),
         num(total.energy.value() / 1e3, 1),
         num(total.max_backlog.value() * 1e3, 2),
         std::to_string(total.transitions_up + total.transitions_down),
         std::to_string(total.migrations_in)});
  }
  table.print(std::cout);

  std::cout << "\ntotals: energy " << si(report.sim.energy_joules())
            << "J, mean RT " << num(report.sim.mean_response_time_s() * 1e3, 2)
            << " ms, array AFR " << pct(report.array_afr, 2) << ", "
            << report.sim.total_transitions << " transitions\n";

  const std::string csv_path = "timeline." + policy + ".csv";
  std::ofstream csv(csv_path);
  timeline.write_csv(csv);
  std::cout << "wrote " << csv_path;
  if (jsonl != nullptr) {
    std::cout << " and timeline." << policy << ".jsonl ("
              << jsonl->lines_written() << " events)";
  }
  std::cout << "\n";
  return 0;
}
