// capacity_planning — a storage-administrator workflow built on the
// library (the use case §1 motivates: "storage system administrators can
// evaluate existing energy-saving schemes' impacts on disk array
// reliability, and thus choose the most appropriate one"):
// given a reliability budget (max array AFR) and a response-time SLO,
// sweep array sizes × policies and recommend the cheapest-energy
// configuration that satisfies both.
//
//   $ ./capacity_planning [max_afr_percent] [slo_ms] [--quick]
//                         [--disks n,n,...]
//
// --disks overrides the swept array sizes (paper default 6..16). Values
// are validated through fleet_disk_count, so >4096-disk configurations
// are accepted up to the 32-bit DiskId space and anything beyond fails
// loudly instead of overflowing an int-typed disk index.
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/experiment.h"
#include "policy/maid_policy.h"
#include "policy/pdc_policy.h"
#include "policy/read_policy.h"
#include "policy/static_policy.h"
#include "sim/fleet_sim.h"
#include "util/table.h"
#include "workload/synthetic.h"

namespace {

// Comma-separated array sizes, each range-checked through the fleet id
// constructor (throws std::invalid_argument on zero or 32-bit overflow).
std::vector<std::size_t> parse_disk_list(const std::string& text) {
  std::vector<std::size_t> disks;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string field = text.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(field.c_str(), &end, 10);
    if (field.empty() || end != field.c_str() + field.size() ||
        value > 0xFFFFFFFFull) {
      throw std::invalid_argument("--disks: bad count '" + field + "'");
    }
    disks.push_back(
        pr::fleet_disk_count(1, static_cast<std::uint32_t>(value)));
    pos = comma + 1;
  }
  return disks;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace pr;
  double max_afr = 0.20;
  double slo_ms = 15.0;
  bool quick = false;
  std::vector<std::size_t> disk_counts = {6, 8, 10, 12, 14, 16};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--disks") == 0 && i + 1 < argc) {
      disk_counts = parse_disk_list(argv[++i]);
    } else if (max_afr == 0.20) {
      max_afr = std::atof(argv[i]) / 100.0;
    } else {
      slo_ms = std::atof(argv[i]);
    }
  }

  auto workload_config = worldcup98_light_config(42);
  if (quick) {
    workload_config.file_count = 1'000;
    workload_config.request_count = 80'000;
  }
  const auto workload = generate_workload(workload_config);

  SweepConfig sweep;
  sweep.base.sim.epoch = Seconds{3600.0};
  sweep.disk_counts = disk_counts;

  const std::vector<std::pair<std::string, PolicyFactory>> policies = {
      {"READ", [] { return std::make_unique<ReadPolicy>(); }},
      {"MAID", [] { return std::make_unique<MaidPolicy>(); }},
      {"PDC", [] { return std::make_unique<PdcPolicy>(); }},
      {"Static", [] { return std::make_unique<StaticPolicy>(); }},
  };
  const std::vector<NamedWorkload> workloads = {
      {"day", &workload.files, &workload.trace}};

  std::cout << "requirements: array AFR <= " << pct(max_afr, 1)
            << ", mean response time <= " << slo_ms << " ms\n"
            << "sweeping " << policies.size() * sweep.disk_counts.size()
            << " configurations...\n\n";
  const auto cells = run_sweep(sweep, policies, workloads);

  AsciiTable table("Configuration sweep (one WC98-like day)");
  table.set_header({"policy", "disks", "AFR", "mean RT (ms)", "energy (kJ)",
                    "feasible"});
  std::optional<SweepCell> best;
  for (const auto& cell : cells) {
    const bool afr_ok = cell.report.array_afr <= max_afr;
    const bool rt_ok =
        cell.report.sim.mean_response_time_s() * 1e3 <= slo_ms;
    const bool feasible = afr_ok && rt_ok;
    table.add_row({cell.policy, std::to_string(cell.disk_count),
                   pct(cell.report.array_afr, 2),
                   num(cell.report.sim.mean_response_time_s() * 1e3, 2),
                   num(cell.report.sim.energy_joules() / 1e3, 1),
                   feasible       ? "yes"
                   : afr_ok       ? "no (RT)"
                   : rt_ok        ? "no (AFR)"
                                  : "no (both)"});
    if (feasible &&
        (!best || cell.report.sim.energy_joules() <
                      best->report.sim.energy_joules())) {
      best = cell;
    }
  }
  table.print(std::cout);

  if (best) {
    std::cout << "\nrecommendation: " << best->policy << " on "
              << best->disk_count << " disks — "
              << num(best->report.sim.energy_joules() / 1e3, 1) << " kJ/day, AFR "
              << pct(best->report.array_afr, 2) << ", mean RT "
              << num(best->report.sim.mean_response_time_s() * 1e3, 2)
              << " ms\n";
  } else {
    std::cout << "\nno configuration satisfies the requirements — relax the "
                 "AFR budget or the SLO, or extend the sweep.\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
