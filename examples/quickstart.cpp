// quickstart — the smallest useful program: build a synthetic web
// workload, run the READ policy on an 8-disk array of 2-speed disks, and
// print the three metrics the paper evaluates (mean response time, energy,
// PRESS array AFR).
//
//   $ ./quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/session.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. A workload: 1,000 files, ~30 minutes of Zipf-skewed web traffic.
  pr::SyntheticWorkloadConfig workload_config;
  workload_config.file_count = 1'000;
  workload_config.request_count = 30'000;
  workload_config.seed = seed;
  const pr::SyntheticWorkload workload = pr::generate_workload(workload_config);

  // 2. A system: 8 two-speed Cheetah-class disks, hourly epochs.
  pr::SystemConfig config;
  config.sim.disk_count = 8;
  config.sim.epoch = pr::Seconds{600.0};

  // 3+4. Pick READ (paper transition budget S = 40/day) from the policy
  // registry, run, and report.
  const pr::SystemReport report = pr::SimulationSession(config)
                                      .with_workload(workload)
                                      .with_policy("read")
                                      .run();
  std::cout << report.summary() << "\n";

  std::cout << "PRESS guidance: keep speed transitions under "
            << pr::PressModel::recommended_max_transitions_per_day()
            << "/day per disk for a 5-year warranty (paper §3.5).\n";
  return 0;
}
