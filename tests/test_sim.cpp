// Tests for the discrete-event array simulator: event ordering, DPM
// mechanics, epochs, migrations and ledger consistency.
#include "sim/array_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "policy/static_policy.h"
#include "sim/event_queue.h"
#include "sim/idle_timer.h"
#include "util/rng.h"

namespace pr {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.push(Seconds{3.0}, 3);
  q.push(Seconds{1.0}, 1);
  q.push(Seconds{2.0}, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoAmongTies) {
  EventQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(Seconds{5.0}, i);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.pop().payload, i);
  }
}

TEST(EventQueue, NextTimePeeks) {
  EventQueue<int> q;
  q.push(Seconds{7.0}, 0);
  q.push(Seconds{4.0}, 1);
  EXPECT_DOUBLE_EQ(q.next_time().value(), 4.0);
  EXPECT_EQ(q.size(), 2u);
}

/// Payload that counts copies vs. moves, so the test can assert pop()
/// moves the payload out instead of copying it.
struct MoveProbe {
  int tag = 0;
  int copies = 0;
  int moves = 0;
  MoveProbe() = default;
  explicit MoveProbe(int t) : tag(t) {}
  MoveProbe(const MoveProbe& o)
      : tag(o.tag), copies(o.copies + 1), moves(o.moves) {}
  MoveProbe(MoveProbe&& o) noexcept
      : tag(o.tag), copies(o.copies), moves(o.moves + 1) {}
  MoveProbe& operator=(const MoveProbe& o) {
    tag = o.tag;
    copies = o.copies + 1;
    moves = o.moves;
    return *this;
  }
  MoveProbe& operator=(MoveProbe&& o) noexcept {
    tag = o.tag;
    copies = o.copies;
    moves = o.moves + 1;
    return *this;
  }
};

TEST(EventQueue, PopMovesPayloadAndKeepsFifoTies) {
  EventQueue<MoveProbe> q;
  // Ties at t=2 interleaved with an earlier event: FIFO order among the
  // ties must survive the move-out pop.
  q.push(Seconds{2.0}, MoveProbe{10});
  q.push(Seconds{2.0}, MoveProbe{11});
  q.push(Seconds{1.0}, MoveProbe{0});
  q.push(Seconds{2.0}, MoveProbe{12});

  auto first = q.pop();
  EXPECT_EQ(first.payload.tag, 0);
  // Payloads reach the caller without a single copy: one move into the
  // heap's storage on push, moves during heap sifting, and one move out
  // on pop — never a copy.
  EXPECT_EQ(first.payload.copies, 0);
  EXPECT_GE(first.payload.moves, 1);

  EXPECT_EQ(q.pop().payload.tag, 10);
  EXPECT_EQ(q.pop().payload.tag, 11);
  auto last = q.pop();
  EXPECT_EQ(last.payload.tag, 12);
  EXPECT_EQ(last.payload.copies, 0);
  EXPECT_TRUE(q.empty());
}

// --------------------------------------------------------------- IdleTimerHeap

TEST(IdleTimerHeap, PopsInDeadlineOrder) {
  IdleTimerHeap h;
  h.resize(4);
  EXPECT_TRUE(h.empty());
  h.arm(2, Seconds{3.0}, 0);
  h.arm(0, Seconds{1.0}, 1);
  h.arm(3, Seconds{2.0}, 2);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.next_time().value(), 1.0);
  EXPECT_EQ(h.pop().disk, 0u);
  EXPECT_EQ(h.pop().disk, 3u);
  EXPECT_EQ(h.pop().disk, 2u);
  EXPECT_TRUE(h.empty());
}

TEST(IdleTimerHeap, ArmSequenceBreaksTies) {
  // Equal deadlines pop in arm order — the same FIFO discipline the
  // EventQueue's (time, seq) key provides.
  IdleTimerHeap h;
  h.resize(4);
  h.arm(3, Seconds{5.0}, 0);
  h.arm(1, Seconds{5.0}, 1);
  h.arm(2, Seconds{5.0}, 2);
  EXPECT_EQ(h.pop().disk, 3u);
  EXPECT_EQ(h.pop().disk, 1u);
  EXPECT_EQ(h.pop().disk, 2u);
}

TEST(IdleTimerHeap, RearmReplacesInPlace) {
  IdleTimerHeap h;
  h.resize(3);
  h.arm(0, Seconds{10.0}, 0);
  h.arm(1, Seconds{4.0}, 1);
  // Re-arm disk 0 to an earlier deadline: exactly one entry survives.
  h.arm(0, Seconds{1.0}, 2);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.pop().disk, 0u);
  // Re-arm to a later deadline too.
  h.arm(1, Seconds{9.0}, 3);
  h.arm(2, Seconds{6.0}, 4);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.pop().disk, 2u);
  const auto last = h.pop();
  EXPECT_EQ(last.disk, 1u);
  EXPECT_DOUBLE_EQ(last.time.value(), 9.0);
  EXPECT_TRUE(h.empty());
}

TEST(IdleTimerHeap, DisarmRemovesAndIsIdempotent) {
  IdleTimerHeap h;
  h.resize(4);
  h.arm(0, Seconds{1.0}, 0);
  h.arm(1, Seconds{2.0}, 1);
  h.arm(2, Seconds{3.0}, 2);
  h.disarm(1);
  h.disarm(1);  // no-op on an unarmed disk
  h.disarm(3);  // never armed
  EXPECT_EQ(h.size(), 2u);
  EXPECT_TRUE(h.armed(0));
  EXPECT_FALSE(h.armed(1));
  EXPECT_EQ(h.pop().disk, 0u);
  EXPECT_EQ(h.pop().disk, 2u);
}

TEST(IdleTimerHeap, StressMatchesEventQueueOrder) {
  // Randomized arm/re-arm/disarm sequence: the surviving deadlines must
  // drain in the same order as an EventQueue holding only the latest
  // event per disk (the equivalence the timer scheduler relies on).
  constexpr std::size_t kDisks = 16;
  IdleTimerHeap h;
  h.resize(kDisks);
  std::vector<std::pair<double, std::uint64_t>> latest(
      kDisks, {0.0, 0});  // (deadline, seq) of surviving arm, seq 0 = unarmed
  Rng rng(2024);
  std::uint64_t seq = 1;
  for (int i = 0; i < 2000; ++i) {
    const auto d = static_cast<std::uint32_t>(rng() % kDisks);
    if (rng() % 8 == 0) {
      h.disarm(d);
      latest[d] = {0.0, 0};
    } else {
      // Coarse times force ties across disks.
      const double t = static_cast<double>(rng() % 64);
      h.arm(d, Seconds{t}, seq);
      latest[d] = {t, seq};
      ++seq;
    }
  }
  EventQueue<std::uint32_t> reference;
  // Push surviving arms in seq order so the queue's internal sequence
  // numbers replicate the arm sequence's tie-breaking.
  std::vector<std::size_t> by_seq;
  for (std::size_t d = 0; d < kDisks; ++d) {
    if (latest[d].second != 0) by_seq.push_back(d);
  }
  std::sort(by_seq.begin(), by_seq.end(), [&](std::size_t a, std::size_t b) {
    return latest[a].second < latest[b].second;
  });
  for (std::size_t d : by_seq) {
    reference.push(Seconds{latest[d].first}, static_cast<std::uint32_t>(d));
  }
  EXPECT_EQ(h.size(), reference.size());
  while (!reference.empty()) {
    const auto want = reference.pop();
    const auto got = h.pop();
    EXPECT_EQ(got.disk, want.payload);
    EXPECT_DOUBLE_EQ(got.time.value(), want.time.value());
  }
  EXPECT_TRUE(h.empty());
}

// ----------------------------------------------------------------- fixtures

FileSet two_files() {
  std::vector<FileInfo> files(2);
  files[0] = {0, 1 * kMiB, 1.0};
  files[1] = {1, 2 * kMiB, 0.5};
  return FileSet(std::move(files));
}

SimConfig config(std::size_t disks) {
  SimConfig c;
  c.disk_params = two_speed_cheetah();
  c.disk_count = disks;
  return c;
}

Trace trace_of(std::initializer_list<std::pair<double, FileId>> arrivals) {
  Trace t;
  for (auto [time, file] : arrivals) {
    Request r;
    r.arrival = Seconds{time};
    r.file = file;
    r.size = file == 0 ? 1 * kMiB : 2 * kMiB;
    t.requests.push_back(r);
  }
  return t;
}

/// Minimal configurable policy for exercising the simulator directly.
class ProbePolicy : public Policy {
 public:
  explicit ProbePolicy(DpmConfig dpm, DiskSpeed initial = DiskSpeed::kHigh)
      : dpm_(dpm), initial_(initial) {}

  std::string name() const override { return "Probe"; }

  void initialize(ArrayContext& ctx) override {
    for (DiskId d = 0; d < ctx.disk_count(); ++d) {
      ctx.set_initial_speed(d, initial_);
      ctx.set_dpm(d, dpm_);
    }
    for (FileId f = 0; f < ctx.files().size(); ++f) {
      ctx.place(f, static_cast<DiskId>(f % ctx.disk_count()));
    }
  }

  DiskId route(ArrayContext& ctx, const Request& req) override {
    return ctx.location(req.file);
  }

  void on_epoch(ArrayContext& ctx, Seconds now) override {
    ++epochs_;
    last_epoch_requests_ = ctx.epoch_requests();
    (void)now;
  }

  bool allow_spin_down(ArrayContext& ctx, DiskId d, Seconds now) override {
    (void)ctx;
    (void)d;
    (void)now;
    ++spin_down_queries_;
    return allow_spin_down_;
  }

  int epochs_ = 0;
  std::uint64_t last_epoch_requests_ = 0;
  int spin_down_queries_ = 0;
  bool allow_spin_down_ = true;

 private:
  DpmConfig dpm_;
  DiskSpeed initial_;
};

// -------------------------------------------------------------- basic runs

TEST(ArraySim, StaticPolicyExactResponseTimes) {
  StaticPolicy policy;
  const auto files = two_files();
  // Two far-apart requests on different disks: no queueing, no DPM.
  const auto trace = trace_of({{0.0, 0}, {100.0, 1}});
  const auto result = run_simulation(config(2), files, trace, policy);

  const auto& p = two_speed_cheetah();
  const double svc1 = service_time(p.high, 1 * kMiB).value();
  const double svc2 = service_time(p.high, 2 * kMiB).value();
  EXPECT_EQ(result.user_requests, 2u);
  EXPECT_NEAR(result.response_time.min(), std::min(svc1, svc2), 1e-9);
  EXPECT_NEAR(result.response_time.max(), std::max(svc1, svc2), 1e-9);
  EXPECT_NEAR(result.horizon.value(), 100.0 + svc2, 1e-9);
  EXPECT_EQ(result.total_transitions, 0u);
}

TEST(ArraySim, EnergyMatchesHandComputation) {
  StaticPolicy policy;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}});
  const auto result = run_simulation(config(2), files, trace, policy);

  const auto& p = two_speed_cheetah();
  const auto cost = service_cost(p.high, 1 * kMiB);
  const double horizon = cost.time.value();
  // Disk 0: busy the whole horizon. Disk 1: idle at high.
  const double expected =
      cost.energy.value() + p.high.idle_power.value() * horizon;
  EXPECT_NEAR(result.total_energy.value(), expected, 1e-9);
}

TEST(ArraySim, LedgersCoverHorizonOnEveryDisk) {
  ProbePolicy policy({.spin_down_when_idle = true,
                      .idleness_threshold = Seconds{5.0},
                      .spin_up_to_serve = true});
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {30.0, 1}, {60.0, 0}, {200.0, 1}});
  const auto result = run_simulation(config(3), files, trace, policy);
  for (const auto& l : result.ledgers) {
    EXPECT_NEAR(l.observed().value(), result.horizon.value(), 1e-6);
  }
}

TEST(ArraySim, RejectsUnsortedTrace) {
  StaticPolicy policy;
  const auto files = two_files();
  auto trace = trace_of({{5.0, 0}, {1.0, 1}});
  EXPECT_THROW((void)run_simulation(config(2), files, trace, policy),
               std::invalid_argument);
}

TEST(ArraySim, RejectsUnknownFileInTrace) {
  StaticPolicy policy;
  const auto files = two_files();
  Trace trace;
  Request r;
  r.arrival = Seconds{0.0};
  r.file = 17;  // not in the file set
  r.size = 100;
  trace.requests.push_back(r);
  EXPECT_THROW((void)run_simulation(config(2), files, trace, policy),
               std::invalid_argument);
}

TEST(ArraySim, RejectsPolicyThatLeavesFilesUnplaced) {
  class LazyPolicy : public Policy {
   public:
    std::string name() const override { return "Lazy"; }
    void initialize(ArrayContext&) override {}  // places nothing
    DiskId route(ArrayContext& ctx, const Request& req) override {
      return ctx.location(req.file);
    }
  } policy;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}});
  EXPECT_THROW((void)run_simulation(config(2), files, trace, policy),
               std::logic_error);
}

TEST(ArraySim, RejectsRouteToBadDisk) {
  class BadRouter : public Policy {
   public:
    std::string name() const override { return "Bad"; }
    void initialize(ArrayContext& ctx) override {
      for (FileId f = 0; f < ctx.files().size(); ++f) ctx.place(f, 0);
    }
    DiskId route(ArrayContext&, const Request&) override { return 999; }
  } policy;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}});
  EXPECT_THROW((void)run_simulation(config(2), files, trace, policy),
               std::logic_error);
}


TEST(ArraySim, QueueingMatchesMD1Theory) {
  // Validation against queueing theory: Poisson arrivals at rate lambda to
  // one disk, deterministic service time S (fixed request size, no DPM)
  // is an M/D/1 queue; the Pollaczek-Khinchine mean wait is
  // Wq = rho * S / (2 (1 - rho)). The simulator's mean response time must
  // converge to S + Wq.
  const auto p = two_speed_cheetah();
  const Bytes size = 1 * kMiB;
  const double service_s = service_time(p.high, size).value();
  const double rho = 0.6;
  const double lambda = rho / service_s;

  FileSet files = two_files();
  Trace trace;
  Rng rng(99);
  double t = 0.0;
  for (int i = 0; i < 200'000; ++i) {
    t += rng.exponential(1.0 / lambda);
    Request r;
    r.arrival = Seconds{t};
    r.file = 0;  // always the 1 MiB file on disk 0
    r.size = size;
    trace.requests.push_back(r);
  }
  StaticPolicy policy;
  const auto result = run_simulation(config(1), files, trace, policy);

  const double wq_theory = rho * service_s / (2.0 * (1.0 - rho));
  const double rt_theory = service_s + wq_theory;
  EXPECT_NEAR(result.response_time.mean(), rt_theory, rt_theory * 0.05);
}

// ---------------------------------------------------------------- DPM

TEST(ArraySim, IdleDiskSpinsDownAfterThreshold) {
  ProbePolicy policy({.spin_down_when_idle = true,
                      .idleness_threshold = Seconds{5.0},
                      .spin_up_to_serve = true});
  const auto files = two_files();
  // One early request on disk 0; long gap; horizon extended by late
  // request on disk 1 so the spin-down of disk 0 is inside the horizon.
  const auto trace = trace_of({{0.0, 0}, {100.0, 1}});
  const auto result = run_simulation(config(2), files, trace, policy);
  // Disk 0 spun down (1 transition), disk 1: initial idle check at 5 s
  // spun it down too, then spin-up-to-serve at 100 s (2 transitions).
  EXPECT_EQ(result.ledgers[0].transitions, 1u);
  EXPECT_EQ(result.ledgers[1].transitions, 2u);
  EXPECT_EQ(result.ledgers[1].transitions_up, 1u);
}

TEST(ArraySim, SpinUpDelaysService) {
  ProbePolicy policy({.spin_down_when_idle = true,
                      .idleness_threshold = Seconds{5.0},
                      .spin_up_to_serve = true},
                     DiskSpeed::kLow);
  const auto files = two_files();
  const auto trace = trace_of({{10.0, 0}});
  const auto result = run_simulation(config(2), files, trace, policy);
  const auto& p = two_speed_cheetah();
  const double expected =
      p.transition_up_time.value() + service_time(p.high, 1 * kMiB).value();
  EXPECT_NEAR(result.response_time.mean(), expected, 1e-9);
  EXPECT_EQ(result.ledgers[0].transitions_up, 1u);
}

TEST(ArraySim, ServeAtLowWhenSpinUpDisabled) {
  ProbePolicy policy({.spin_down_when_idle = false,
                      .idleness_threshold = Seconds{5.0},
                      .spin_up_to_serve = false},
                     DiskSpeed::kLow);
  const auto files = two_files();
  const auto trace = trace_of({{10.0, 0}});
  const auto result = run_simulation(config(2), files, trace, policy);
  const auto& p = two_speed_cheetah();
  EXPECT_NEAR(result.response_time.mean(),
              service_time(p.low, 1 * kMiB).value(), 1e-9);
  EXPECT_EQ(result.total_transitions, 0u);
}

TEST(ArraySim, BusyDiskDoesNotSpinDown) {
  // Requests every 2 s against a 5 s threshold: never idle long enough.
  ProbePolicy policy({.spin_down_when_idle = true,
                      .idleness_threshold = Seconds{5.0},
                      .spin_up_to_serve = true});
  const auto files = two_files();
  Trace trace;
  for (int i = 0; i < 50; ++i) {
    Request r;
    r.arrival = Seconds{2.0 * i};
    r.file = 0;
    r.size = 1 * kMiB;
    trace.requests.push_back(r);
  }
  const auto result = run_simulation(config(1), files, trace, policy);
  EXPECT_EQ(result.ledgers[0].transitions, 0u);
}

TEST(ArraySim, SpinDownVetoIsHonoured) {
  ProbePolicy policy({.spin_down_when_idle = true,
                      .idleness_threshold = Seconds{5.0},
                      .spin_up_to_serve = true});
  policy.allow_spin_down_ = false;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {100.0, 0}});
  const auto result = run_simulation(config(1), files, trace, policy);
  EXPECT_EQ(result.total_transitions, 0u);
  EXPECT_GT(policy.spin_down_queries_, 0);
}


TEST(ArraySim, BacklogPromotionTriggersOnQueueBuildup) {
  // spin_up_backlog: a low-speed disk serves isolated requests at low
  // speed, but a request arriving to a backlog beyond the limit promotes
  // the disk to high speed first.
  DpmConfig dpm;
  dpm.spin_down_when_idle = false;
  dpm.spin_up_to_serve = false;
  dpm.spin_up_backlog = Seconds{0.1};
  ProbePolicy policy(dpm, DiskSpeed::kLow);
  const auto files = two_files();
  // Three back-to-back requests on disk 0: the first is served at low
  // speed (~0.14 s for 1 MiB), the second arrives with ~0.14 s backlog
  // (> 0.1) and promotes the disk.
  const auto trace = trace_of({{0.0, 0}, {0.001, 0}, {0.002, 0}});
  const auto result = run_simulation(config(1), files, trace, policy);
  EXPECT_EQ(result.ledgers[0].transitions_up, 1u);
  EXPECT_EQ(result.ledgers[0].transitions, 1u);
}

TEST(ArraySim, BacklogPromotionDisabledByDefault) {
  DpmConfig dpm;
  dpm.spin_down_when_idle = false;
  dpm.spin_up_to_serve = false;
  ProbePolicy policy(dpm, DiskSpeed::kLow);
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {0.001, 0}, {0.002, 0}});
  const auto result = run_simulation(config(1), files, trace, policy);
  EXPECT_EQ(result.total_transitions, 0u);
  // All served at low speed.
  EXPECT_DOUBLE_EQ(result.ledgers[0].time_at_high.value(), 0.0);
}

TEST(ArraySim, BacklogBelowLimitStaysLow) {
  DpmConfig dpm;
  dpm.spin_down_when_idle = false;
  dpm.spin_up_to_serve = false;
  dpm.spin_up_backlog = Seconds{10.0};  // far above any backlog here
  ProbePolicy policy(dpm, DiskSpeed::kLow);
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {0.001, 0}, {0.002, 0}});
  const auto result = run_simulation(config(1), files, trace, policy);
  EXPECT_EQ(result.total_transitions, 0u);
}

// ---------------------------------------------------------------- epochs

TEST(ArraySim, EpochsFireAtBoundaries) {
  auto cfg = config(2);
  cfg.epoch = Seconds{10.0};
  ProbePolicy policy({});
  const auto files = two_files();
  const auto trace = trace_of({{1.0, 0}, {12.0, 1}, {35.0, 0}});
  (void)run_simulation(cfg, files, trace, policy);
  // Boundaries at 10, 20, 30 precede the arrival at 35.
  EXPECT_EQ(policy.epochs_, 3);
}

TEST(ArraySim, EpochAccessCountsResetEachEpoch) {
  auto cfg = config(2);
  cfg.epoch = Seconds{10.0};
  ProbePolicy policy({});
  const auto files = two_files();
  const auto trace = trace_of({{1.0, 0}, {2.0, 0}, {3.0, 1}, {15.0, 0}, {25.0, 1}});
  (void)run_simulation(cfg, files, trace, policy);
  // Epoch at 20 saw exactly the single request at t=15.
  EXPECT_EQ(policy.last_epoch_requests_, 1u);
}

// -------------------------------------------------------------- migrations

TEST(ArraySim, MigrationMovesPlacementAndCostsIo) {
  class MigratingPolicy : public ProbePolicy {
   public:
    MigratingPolicy() : ProbePolicy({}) {}
    void on_epoch(ArrayContext& ctx, Seconds) override {
      if (!moved_) {
        ctx.migrate(0, 1);
        moved_ = true;
      }
    }
    bool moved_ = false;
  };
  auto cfg = config(2);
  cfg.epoch = Seconds{10.0};
  MigratingPolicy policy;
  const auto files = two_files();
  const auto trace = trace_of({{1.0, 0}, {20.0, 0}});
  const auto result = run_simulation(cfg, files, trace, policy);
  EXPECT_EQ(result.migrations, 1u);
  EXPECT_EQ(result.migration_bytes, 1 * kMiB);
  // After migration the second request is served by disk 1.
  EXPECT_EQ(result.ledgers[1].requests, 1u);
  // Migration I/O shows up as internal ops on both disks.
  EXPECT_EQ(result.ledgers[0].internal_ops, 1u);
  EXPECT_EQ(result.ledgers[1].internal_ops, 1u);
}

TEST(ArraySim, BackgroundCopyDoesNotChangePlacement) {
  class CopyingPolicy : public ProbePolicy {
   public:
    CopyingPolicy() : ProbePolicy({}) {}
    void after_serve(ArrayContext& ctx, const Request& req,
                     DiskId d) override {
      if (!copied_) {
        ctx.background_copy(d, 1, req.size);
        copied_ = true;
      }
    }
    bool copied_ = false;
  };
  CopyingPolicy policy;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {50.0, 0}});
  const auto result = run_simulation(config(2), files, trace, policy);
  EXPECT_EQ(result.migrations, 0u);
  // Both user requests still served by disk 0 (placement unchanged).
  EXPECT_EQ(result.ledgers[0].requests, 2u);
  EXPECT_EQ(result.ledgers[1].internal_ops, 1u);
}

TEST(ArraySim, CountersSurfaceInResult) {
  class CountingPolicy : public ProbePolicy {
   public:
    CountingPolicy() : ProbePolicy({}) {}
    void after_serve(ArrayContext& ctx, const Request&, DiskId) override {
      ctx.bump("probe.touch");
    }
  };
  CountingPolicy policy;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {1.0, 1}, {2.0, 0}});
  const auto result = run_simulation(config(2), files, trace, policy);
  EXPECT_EQ(result.counters.at("probe.touch"), 3u);
}

TEST(ArraySim, DeterministicAcrossRuns) {
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {3.0, 1}, {50.0, 0}, {90.0, 1}});
  ProbePolicy p1({.spin_down_when_idle = true,
                  .idleness_threshold = Seconds{5.0},
                  .spin_up_to_serve = true});
  ProbePolicy p2({.spin_down_when_idle = true,
                  .idleness_threshold = Seconds{5.0},
                  .spin_up_to_serve = true});
  const auto a = run_simulation(config(2), files, trace, p1);
  const auto b = run_simulation(config(2), files, trace, p2);
  EXPECT_DOUBLE_EQ(a.total_energy.value(), b.total_energy.value());
  EXPECT_DOUBLE_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_EQ(a.total_transitions, b.total_transitions);
}

}  // namespace
}  // namespace pr
