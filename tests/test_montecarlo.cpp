// Tests for the Monte-Carlo array-lifetime simulator, including
// cross-validation against the closed-form MTTDL expressions.
#include "press/montecarlo.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pr {
namespace {

TEST(MonteCarlo, ValidatesInputs) {
  const std::vector<double> afrs{0.05, 0.05};
  MonteCarloConfig cfg;
  EXPECT_THROW(
      (void)simulate_array_lifetime(RaidLevel::kRaid5, {}, cfg),
      std::invalid_argument);
  const std::vector<double> bad{0.05, 0.0};
  EXPECT_THROW((void)simulate_array_lifetime(RaidLevel::kRaid5, bad, cfg),
               std::invalid_argument);
  cfg.trials = 0;
  EXPECT_THROW((void)simulate_array_lifetime(RaidLevel::kRaid5, afrs, cfg),
               std::invalid_argument);
  cfg = {};
  cfg.horizon_years = 0.0;
  EXPECT_THROW((void)simulate_array_lifetime(RaidLevel::kRaid5, afrs, cfg),
               std::invalid_argument);
  cfg = {};
  cfg.mttr = Seconds{0.0};
  EXPECT_THROW((void)simulate_array_lifetime(RaidLevel::kRaid5, afrs, cfg),
               std::invalid_argument);
}

TEST(MonteCarlo, FaultTolerances) {
  EXPECT_EQ(fault_tolerance(RaidLevel::kRaid0), 0u);
  EXPECT_EQ(fault_tolerance(RaidLevel::kRaid1), 1u);
  EXPECT_EQ(fault_tolerance(RaidLevel::kRaid5), 1u);
  EXPECT_EQ(fault_tolerance(RaidLevel::kRaid6), 2u);
}

TEST(MonteCarlo, DeterministicForSeed) {
  const std::vector<double> afrs(8, 0.08);
  MonteCarloConfig cfg;
  cfg.trials = 200;
  const auto a = simulate_array_lifetime(RaidLevel::kRaid5, afrs, cfg);
  const auto b = simulate_array_lifetime(RaidLevel::kRaid5, afrs, cfg);
  EXPECT_DOUBLE_EQ(a.loss_probability, b.loss_probability);
  EXPECT_DOUBLE_EQ(a.mean_failures, b.mean_failures);
}

TEST(MonteCarlo, Raid0LossMatchesFirstFailure) {
  // RAID0 loses data at the first failure: over a horizon T with n disks
  // at rate λ each, P(loss) = 1 − e^(−nλT).
  const std::vector<double> afrs(4, 0.10);
  MonteCarloConfig cfg;
  cfg.horizon_years = 1.0;
  cfg.trials = 4'000;
  const auto r = simulate_array_lifetime(RaidLevel::kRaid0, afrs, cfg);
  const double expected = 1.0 - std::exp(-4.0 * 0.10 * 1.0);
  EXPECT_NEAR(r.loss_probability, expected, 0.03);
}

TEST(MonteCarlo, MeanFailuresMatchesAfrSum) {
  // Failures per trial ≈ Σ AFR × years (repairs are fast; loss resets are
  // rare at these rates).
  const std::vector<double> afrs{0.02, 0.04, 0.06, 0.08};
  MonteCarloConfig cfg;
  cfg.horizon_years = 5.0;
  cfg.trials = 2'000;
  const auto r = simulate_array_lifetime(RaidLevel::kRaid6, afrs, cfg);
  const double expected = (0.02 + 0.04 + 0.06 + 0.08) * 5.0;
  EXPECT_NEAR(r.mean_failures, expected, expected * 0.1);
}

TEST(MonteCarlo, AgreesWithClosedFormRaid5) {
  // At moderate rates the closed form and the simulation must agree on
  // the annual loss probability within Monte-Carlo noise.
  MttdlInputs in;
  in.disk_afr = 0.30;  // high AFR so losses are observable in few trials
  in.disks = 8;
  in.mttr = Seconds{72.0 * 3600.0};
  const double closed = annual_data_loss_probability(RaidLevel::kRaid5, in);

  const std::vector<double> afrs(in.disks, in.disk_afr);
  MonteCarloConfig cfg;
  cfg.horizon_years = 1.0;
  cfg.trials = 20'000;
  cfg.mttr = in.mttr;
  const auto mc = simulate_array_lifetime(RaidLevel::kRaid5, afrs, cfg);
  EXPECT_NEAR(mc.loss_probability, closed, std::max(0.005, closed * 0.35));
}

TEST(MonteCarlo, RedundancyOrdering) {
  const std::vector<double> afrs(8, 0.25);
  MonteCarloConfig cfg;
  cfg.horizon_years = 3.0;
  cfg.trials = 3'000;
  cfg.mttr = Seconds{72.0 * 3600.0};
  const auto raid0 = simulate_array_lifetime(RaidLevel::kRaid0, afrs, cfg);
  const auto raid5 = simulate_array_lifetime(RaidLevel::kRaid5, afrs, cfg);
  const auto raid6 = simulate_array_lifetime(RaidLevel::kRaid6, afrs, cfg);
  EXPECT_GT(raid0.loss_probability, raid5.loss_probability);
  EXPECT_GT(raid5.loss_probability, raid6.loss_probability);
}

TEST(MonteCarlo, WorseBottleneckDiskRaisesRisk) {
  // The PRESS use case: identical arrays except one disk's AFR (the
  // energy policy's victim) — the heterogeneous array must be riskier.
  std::vector<double> uniform(8, 0.05);
  std::vector<double> skewed(8, 0.05);
  skewed[0] = 0.60;
  MonteCarloConfig cfg;
  cfg.horizon_years = 3.0;
  cfg.trials = 6'000;
  cfg.mttr = Seconds{72.0 * 3600.0};
  const auto base = simulate_array_lifetime(RaidLevel::kRaid5, uniform, cfg);
  const auto hot = simulate_array_lifetime(RaidLevel::kRaid5, skewed, cfg);
  EXPECT_GT(hot.loss_probability, base.loss_probability);
  EXPECT_GT(hot.mean_failures, base.mean_failures);
}

TEST(MonteCarlo, FirstLossTimeWithinHorizon) {
  const std::vector<double> afrs(6, 0.5);
  MonteCarloConfig cfg;
  cfg.horizon_years = 2.0;
  cfg.trials = 1'000;
  const auto r = simulate_array_lifetime(RaidLevel::kRaid0, afrs, cfg);
  ASSERT_GT(r.loss_probability, 0.5);
  EXPECT_GT(r.mean_hours_to_first_loss, 0.0);
  EXPECT_LT(r.mean_hours_to_first_loss, 2.0 * 8'760.0);
}

}  // namespace
}  // namespace pr
