// Tests for the JSON report emitter.
#include "core/report_io.h"

#include <gtest/gtest.h>

#include "core/session.h"
#include "policy/read_policy.h"
#include "workload/synthetic.h"

namespace pr {
namespace {

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("x\x01y", 3)), "x\\u0001y");
}

SystemReport sample_report() {
  SyntheticWorkloadConfig wc;
  wc.file_count = 100;
  wc.request_count = 3'000;
  wc.seed = 3;
  const auto w = generate_workload(wc);
  SystemConfig cfg;
  cfg.sim.disk_count = 4;
  ReadPolicy policy;
  return SimulationSession(cfg)
             .with_workload(w.files, w.trace)
             .with_policy(policy)
             .run();
}

TEST(ReportJson, ContainsRunLevelFields) {
  const auto report = sample_report();
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"policy\":\"READ\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\":3000"), std::string::npos);
  EXPECT_NE(json.find("\"array_afr\":"), std::string::npos);
  EXPECT_NE(json.find("\"energy_joules\":"), std::string::npos);
  EXPECT_NE(json.find("\"disks\":["), std::string::npos);
  EXPECT_NE(json.find("\"afr\":{"), std::string::npos);
}

TEST(ReportJson, PerDiskEntriesMatchArraySize) {
  const auto report = sample_report();
  const std::string json = to_json(report);
  std::size_t count = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"temperature_c\":", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(ReportJson, StructurallyBalanced) {
  // Cheap well-formedness check: balanced braces/brackets and no trailing
  // comma before a closer.
  const std::string json = to_json(sample_report());
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  char prev = '\0';
  for (const char c : json) {
    if (in_string) {
      if (c == '"' && prev != '\\') in_string = false;
    } else {
      if (c == '"') in_string = true;
      if (c == '{') ++braces;
      if (c == '}') --braces;
      if (c == '[') ++brackets;
      if (c == ']') --brackets;
      if ((c == '}' || c == ']') && prev == ',') {
        FAIL() << "trailing comma before closer";
      }
      ASSERT_GE(braces, 0);
      ASSERT_GE(brackets, 0);
    }
    prev = c;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportJson, WriteFileFailsOnBadPath) {
  const auto report = sample_report();
  EXPECT_THROW(write_json_file(report, "/no/such/dir/report.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace pr
