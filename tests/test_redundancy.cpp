// Redundancy layer (src/redundancy): scheme geometry and data-loss
// predicates, the RebuildScheduler's pacing, the simulator seam (RAID-5 /
// declustered degraded reads reconstruct instead of losing requests, the
// rebuild engine wakes disks and recovers them through the fault
// machinery), the MTTDL loop closure, the [redundancy] scenario section,
// and the determinism contracts — fault-free runs with a parity config
// are byte-identical to redundancy=none, faulted parity runs are
// byte-identical across idle schedulers, and fleet cells are
// byte-identical for threads = 1 vs N.
#include "redundancy/scheme.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session.h"
#include "exp/scenario.h"
#include "exp/scenario_engine.h"
#include "exp/scenario_report.h"
#include "fault/degradation_analyzer.h"
#include "fault/fault_plan.h"
#include "obs/jsonl_writer.h"
#include "press/mttdl_agreement.h"
#include "redundancy/rebuild.h"
#include "sim/array_sim.h"
#include "workload/synthetic.h"

namespace pr {
namespace {

// ----------------------------------------------------------------- fixtures

FileSet two_files() {
  std::vector<FileInfo> files(2);
  files[0] = {0, 1 * kMiB, 1.0};
  files[1] = {1, 2 * kMiB, 0.5};
  return FileSet(std::move(files));
}

Trace trace_of(std::initializer_list<std::pair<double, FileId>> arrivals) {
  Trace t;
  for (auto [time, file] : arrivals) {
    Request r;
    r.arrival = Seconds{time};
    r.file = file;
    r.size = file == 0 ? 1 * kMiB : 2 * kMiB;
    t.requests.push_back(r);
  }
  return t;
}

SimConfig config(std::size_t disks, RedundancyKind kind,
                 std::size_t group = 0, bool rebuild = true) {
  SimConfig c;
  c.disk_params = two_speed_cheetah();
  c.disk_count = disks;
  c.redundancy.kind = kind;
  c.redundancy.group = group;
  c.redundancy.rebuild = rebuild;
  return c;
}

/// Places file f on disk f % n (same shape as test_fault's ProbePolicy).
class ProbePolicy : public Policy {
 public:
  std::string name() const override { return "Probe"; }

  void initialize(ArrayContext& ctx) override {
    for (FileId f = 0; f < ctx.files().size(); ++f) {
      ctx.place(f, static_cast<DiskId>(f % ctx.disk_count()));
    }
  }

  DiskId route(ArrayContext& ctx, const Request& req) override {
    return ctx.location(req.file);
  }
};

/// Collects every redundancy-facing callback for ordering/content checks.
class RebuildRecorder : public SimObserver {
 public:
  void on_request_degraded(const RequestDegradedEvent& e) override {
    degraded.push_back(e);
  }
  void on_request_complete(const RequestCompleteEvent& e) override {
    completions.push_back(e);
  }
  void on_speed_transition(const SpeedTransitionEvent& e) override {
    transitions.push_back(e);
  }
  void on_migration(const MigrationEvent& e) override {
    migrations.push_back(e);
  }
  void on_background_copy(const BackgroundCopyEvent& e) override {
    copies.push_back(e);
  }
  void on_disk_recover(const DiskRecoverEvent& e) override {
    recovers.push_back(e);
  }
  void on_rebuild_start(const RebuildStartEvent& e) override {
    starts.push_back(e);
  }
  void on_rebuild_progress(const RebuildProgressEvent& e) override {
    progress.push_back(e);
  }
  void on_rebuild_complete(const RebuildCompleteEvent& e) override {
    completes.push_back(e);
  }
  void on_stripe_reconstruct(const StripeReconstructEvent& e) override {
    reconstructs.push_back(e);
  }
  void on_run_end(const RunEndEvent& e) override { run_end = e; }

  std::vector<RequestDegradedEvent> degraded;
  std::vector<RequestCompleteEvent> completions;
  std::vector<SpeedTransitionEvent> transitions;
  std::vector<MigrationEvent> migrations;
  std::vector<BackgroundCopyEvent> copies;
  std::vector<DiskRecoverEvent> recovers;
  std::vector<RebuildStartEvent> starts;
  std::vector<RebuildProgressEvent> progress;
  std::vector<RebuildCompleteEvent> completes;
  std::vector<StripeReconstructEvent> reconstructs;
  RunEndEvent run_end;
};

// ------------------------------------------------------------ scheme basics

TEST(RedundancyScheme, ValidateRejectsBadGeometry) {
  RedundancyConfig c;
  c.kind = RedundancyKind::kRaid5;
  EXPECT_NO_THROW(validate_redundancy(c, 8));  // group 0 = whole array
  c.group = 4;
  EXPECT_NO_THROW(validate_redundancy(c, 8));
  c.group = 3;  // 8 % 3 != 0
  EXPECT_THROW(validate_redundancy(c, 8), std::invalid_argument);
  c.group = 1;  // parity needs >= 2 members
  EXPECT_THROW(validate_redundancy(c, 8), std::invalid_argument);
  c.group = 9;  // wider than the array
  EXPECT_THROW(validate_redundancy(c, 8), std::invalid_argument);

  c.kind = RedundancyKind::kDeclustered;
  c.group = 3;  // declustered has no divisibility constraint
  EXPECT_NO_THROW(validate_redundancy(c, 8));

  c.rebuild_mbps = 0.0;
  EXPECT_THROW(validate_redundancy(c, 8), std::invalid_argument);
  c.rebuild_mbps = 32.0;
  c.rebuild_chunk = 0;
  EXPECT_THROW(validate_redundancy(c, 8), std::invalid_argument);
}

TEST(RedundancyScheme, MakeSchemeResolvesKindsAndNone) {
  RedundancyConfig none;
  EXPECT_EQ(make_scheme(none, 8), nullptr);

  RedundancyConfig r5;
  r5.kind = RedundancyKind::kRaid5;
  r5.group = 4;
  const auto raid5 = make_scheme(r5, 8);
  ASSERT_NE(raid5, nullptr);
  EXPECT_EQ(raid5->name(), "raid5");
  EXPECT_TRUE(raid5->parity());

  RedundancyConfig dc;
  dc.kind = RedundancyKind::kDeclustered;
  const auto declustered = make_scheme(dc, 8);
  ASSERT_NE(declustered, nullptr);
  EXPECT_EQ(declustered->name(), "declustered");
  EXPECT_TRUE(declustered->parity());
}

TEST(RedundancyScheme, LossPredicatesMatchTheLayouts) {
  // RAID-5 in groups of 4: loss iff both failures land in one group.
  Raid5Scheme raid5(8, 4);
  EXPECT_TRUE(raid5.loses_data(0, 3));
  EXPECT_TRUE(raid5.loses_data(5, 6));
  EXPECT_FALSE(raid5.loses_data(3, 4));
  EXPECT_FALSE(raid5.loses_data(0, 7));

  // Declustered parity couples every disk pair: some stripe always spans
  // both, so any overlap is loss — the classic declustering trade-off.
  DeclusteredScheme declustered(8, 4);
  EXPECT_TRUE(declustered.loses_data(0, 7));
  EXPECT_TRUE(declustered.loses_data(3, 4));
  EXPECT_FALSE(declustered.loses_data(2, 2));
}

// --------------------------------------------------------- RebuildScheduler

TEST(RebuildScheduler, PacesStepsAndCompletes) {
  RebuildScheduler s;
  s.configure(1.0, 1 * kMiB);  // period = 1048576 / 1e6 s per step
  const double period = static_cast<double>(1 * kMiB) / 1e6;
  EXPECT_FALSE(s.active());
  EXPECT_EQ(s.next_time(), kNeverTime);

  s.start(0, Seconds{10.0}, 2 * kMiB + 512 * kKiB);
  EXPECT_TRUE(s.active());
  EXPECT_TRUE(s.rebuilding(0));
  EXPECT_FALSE(s.rebuilding(1));
  EXPECT_DOUBLE_EQ(s.next_time().value(), 10.0 + period);
  // Starting again while in flight is a no-op.
  s.start(0, Seconds{11.0}, 99 * kMiB);
  EXPECT_DOUBLE_EQ(s.next_time().value(), 10.0 + period);

  RebuildScheduler::Step step;
  EXPECT_FALSE(s.pop_due(Seconds{10.0}, step));  // nothing due yet

  ASSERT_TRUE(s.pop_due(Seconds{10.0 + period}, step));
  EXPECT_EQ(step.disk, 0u);
  EXPECT_EQ(step.bytes, 1 * kMiB);
  EXPECT_EQ(step.index, 0u);
  EXPECT_FALSE(step.completes);

  ASSERT_TRUE(s.pop_due(Seconds{100.0}, step));
  EXPECT_EQ(step.index, 1u);
  EXPECT_FALSE(step.completes);

  ASSERT_TRUE(s.pop_due(Seconds{100.0}, step));  // short final step
  EXPECT_EQ(step.bytes, 512 * kKiB);
  EXPECT_TRUE(step.completes);
  EXPECT_EQ(step.done, step.total);
  EXPECT_DOUBLE_EQ(step.started.value(), 10.0);
  EXPECT_FALSE(s.active());
  EXPECT_FALSE(s.abort(0));  // already finished
}

TEST(RebuildScheduler, ZeroByteRebuildCompletesImmediately) {
  RebuildScheduler s;
  s.configure(32.0, 4 * kMiB);
  s.start(2, Seconds{5.0}, 0);
  EXPECT_DOUBLE_EQ(s.next_time().value(), 5.0);
  RebuildScheduler::Step step;
  ASSERT_TRUE(s.pop_due(Seconds{5.0}, step));
  EXPECT_EQ(step.disk, 2u);
  EXPECT_EQ(step.bytes, 0u);
  EXPECT_TRUE(step.completes);
  EXPECT_FALSE(s.active());
}

TEST(RebuildScheduler, AbortDropsInFlightRebuilds) {
  RebuildScheduler s;
  s.configure(32.0, 4 * kMiB);
  s.start(1, Seconds{0.0}, 8 * kMiB);
  EXPECT_TRUE(s.abort(1));
  EXPECT_FALSE(s.active());
  EXPECT_FALSE(s.abort(1));
}

// ------------------------------------------------------------ simulator seam

TEST(RedundancySim, Raid5ReconstructsInsteadOfLosing) {
  // One failure, parity over the whole 4-disk array: every request routed
  // at the dead disk is served by reads on the 3 survivors — zero lost.
  ProbePolicy policy;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {10.0, 0}, {30.0, 0}});
  const FaultPlan plan =
      FaultPlan::from_events({{Seconds{5.0}, 0, FaultKind::kFail}});

  RebuildRecorder obs;
  const auto result =
      run_simulation(config(4, RedundancyKind::kRaid5, 0, /*rebuild=*/false),
                     files, trace, policy, &obs, &plan);

  EXPECT_EQ(result.counters.at("sim.requests_lost"), 0u);
  EXPECT_EQ(result.counters.at("sim.requests_reconstructed"), 2u);
  EXPECT_EQ(result.counters.at("redundancy.data_loss_events"), 0u);
  EXPECT_EQ(result.user_requests, 3u);  // every request completed

  ASSERT_EQ(obs.degraded.size(), 2u);
  for (const auto& d : obs.degraded) {
    EXPECT_EQ(d.outcome, DegradedOutcome::kReconstructed);
    EXPECT_EQ(d.intended, 0u);
  }
  ASSERT_EQ(obs.reconstructs.size(), 2u);
  EXPECT_DOUBLE_EQ(obs.reconstructs[0].time.value(), 10.0);
  EXPECT_EQ(obs.reconstructs[0].failed, 0u);
  EXPECT_EQ(obs.reconstructs[0].sources, 3u);  // g - 1 survivors
  EXPECT_EQ(obs.reconstructs[0].bytes, 1 * kMiB);
  // Reconstructed completions fan over the survivors.
  ASSERT_EQ(obs.completions.size(), 3u);
  EXPECT_EQ(obs.completions.back().stripe_chunks, 3u);
}

TEST(RedundancySim, SecondGroupFailureLosesDataAndRequests) {
  ProbePolicy policy;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {10.0, 0}});
  // Groups of 2 on 4 disks: disks {0,1} share a group; killing both is a
  // data-loss event and leaves file 0 unservable.
  const FaultPlan plan = FaultPlan::from_events({
      {Seconds{2.0}, 0, FaultKind::kFail},
      {Seconds{3.0}, 1, FaultKind::kFail},
  });

  RebuildRecorder obs;
  const auto result =
      run_simulation(config(4, RedundancyKind::kRaid5, 2, /*rebuild=*/false),
                     files, trace, policy, &obs, &plan);

  EXPECT_EQ(result.counters.at("redundancy.data_loss_events"), 1u);
  EXPECT_EQ(result.counters.at("sim.requests_lost"), 1u);
  EXPECT_EQ(result.counters.at("sim.requests_reconstructed"), 0u);
  ASSERT_EQ(obs.degraded.size(), 1u);
  EXPECT_EQ(obs.degraded[0].outcome, DegradedOutcome::kLost);
}

TEST(RedundancySim, DeclusteredReconstructsFromRotatedPartners) {
  ProbePolicy policy;
  const auto files = two_files();
  const auto trace = trace_of({{10.0, 0}, {20.0, 0}});
  const FaultPlan plan =
      FaultPlan::from_events({{Seconds{5.0}, 0, FaultKind::kFail}});

  RebuildRecorder obs;
  const auto result = run_simulation(
      config(5, RedundancyKind::kDeclustered, 3, /*rebuild=*/false), files,
      trace, policy, &obs, &plan);

  EXPECT_EQ(result.counters.at("sim.requests_lost"), 0u);
  EXPECT_EQ(result.counters.at("sim.requests_reconstructed"), 2u);
  ASSERT_EQ(obs.reconstructs.size(), 2u);
  // group 3 => 2 surviving partner units per stripe.
  EXPECT_EQ(obs.reconstructs[0].sources, 2u);
}

TEST(RedundancySim, RebuildCompletesAndRecoversThroughFaultMachinery) {
  ProbePolicy policy;
  const auto files = two_files();
  const auto trace = trace_of({{0.0, 0}, {10.0, 0}});
  const FaultPlan plan =
      FaultPlan::from_events({{Seconds{5.0}, 0, FaultKind::kFail}});

  auto cfg = config(4, RedundancyKind::kRaid5, 0, /*rebuild=*/true);
  cfg.redundancy.rebuild_mbps = 1.0;
  cfg.redundancy.rebuild_chunk = 512 * kKiB;
  RebuildRecorder obs;
  const auto result = run_simulation(cfg, files, trace, policy, &obs, &plan);

  // File 0 (1 MiB) lives on the dead disk: two 512 KiB steps.
  EXPECT_EQ(result.counters.at("redundancy.rebuilds_started"), 1u);
  EXPECT_EQ(result.counters.at("redundancy.rebuilds_completed"), 1u);
  EXPECT_EQ(result.counters.at("redundancy.rebuild_steps"), 2u);
  EXPECT_EQ(result.counters.at("redundancy.data_loss_events"), 0u);
  EXPECT_EQ(result.counters.at("sim.fault_recoveries"), 1u);

  ASSERT_EQ(obs.starts.size(), 1u);
  EXPECT_DOUBLE_EQ(obs.starts[0].time.value(), 5.0);
  EXPECT_EQ(obs.starts[0].disk, 0u);
  EXPECT_EQ(obs.starts[0].bytes, 1 * kMiB);

  ASSERT_EQ(obs.progress.size(), 2u);
  EXPECT_EQ(obs.progress[0].done, 512 * kKiB);
  EXPECT_EQ(obs.progress[1].done, 1 * kMiB);

  const double period = static_cast<double>(512 * kKiB) / 1e6;
  ASSERT_EQ(obs.completes.size(), 1u);
  EXPECT_DOUBLE_EQ(obs.completes[0].time.value(), 5.0 + 2 * period);
  EXPECT_DOUBLE_EQ(obs.completes[0].duration.value(), 2 * period);

  // The rebuilt disk returns through the normal fault machinery, so its
  // measured downtime IS the repair time (MTTR as an output).
  ASSERT_EQ(obs.recovers.size(), 1u);
  EXPECT_EQ(obs.recovers[0].disk, 0u);
  EXPECT_DOUBLE_EQ(obs.recovers[0].time.value(),
                   obs.completes[0].time.value());
  EXPECT_DOUBLE_EQ(obs.recovers[0].downtime.value(), 2 * period);
}

TEST(RedundancySim, RebuildWakesSpunDownDisksAndPaysEnergy) {
  // MAID spins data disks down; a rebuild that needs them must wake them
  // (TransitionCause::kRebuild) and the energy shows in the ledger via
  // RebuildProgressEvent::energy — the conservation identity still holds.
  auto wc = worldcup98_light_config(42);
  wc.file_count = 200;
  wc.request_count = 20'000;  // horizon ~1170 s at the 58.4 ms mean gap
  const auto w = generate_workload(wc);
  const FaultPlan plan =
      FaultPlan::from_events({{Seconds{600.0}, 5, FaultKind::kFail}});

  SystemConfig cfg;
  cfg.sim.disk_count = 6;
  cfg.sim.epoch = Seconds{600.0};
  cfg.sim.redundancy.kind = RedundancyKind::kRaid5;
  cfg.sim.redundancy.rebuild_mbps = 8.0;

  RebuildRecorder obs;
  const auto report = SimulationSession(cfg)
                          .with_workload(w)
                          .with_policy("maid")
                          .with_observer(obs)
                          .with_faults(plan)
                          .run();

  ASSERT_FALSE(obs.progress.empty());
  double rebuild_energy = 0.0;
  for (const auto& p : obs.progress) rebuild_energy += p.energy.value();
  EXPECT_GT(rebuild_energy, 0.0);

  // Conservation: requests + non-serve non-rebuild transitions +
  // migrations + copies + rebuild steps + final idle == total.
  double sum = obs.run_end.final_idle_energy.value() + rebuild_energy;
  for (const auto& e : obs.completions) sum += e.energy.value();
  for (const auto& e : obs.transitions) {
    if (e.cause != TransitionCause::kSpinUpToServe &&
        e.cause != TransitionCause::kRebuild) {
      sum += e.energy.value();
    }
  }
  for (const auto& e : obs.migrations) sum += e.energy.value();
  for (const auto& e : obs.copies) sum += e.energy.value();
  const double total = obs.run_end.total_energy.value();
  EXPECT_NEAR(sum, total, 1e-6 * total);
  EXPECT_DOUBLE_EQ(report.sim.energy_joules(), total);

  // The wake-ups themselves are visible and counted.
  bool saw_rebuild_wake = false;
  for (const auto& e : obs.transitions) {
    if (e.cause == TransitionCause::kRebuild) saw_rebuild_wake = true;
  }
  EXPECT_EQ(saw_rebuild_wake,
            report.sim.counters.at("redundancy.rebuild_wakeups") > 0);
}

// ----------------------------------------------------- determinism contracts

TEST(RedundancySim, FaultFreeParityConfigIsByteIdenticalToNone) {
  auto wc = worldcup98_light_config(7);
  wc.file_count = 100;
  wc.request_count = 2'500;
  const auto w = generate_workload(wc);

  const auto run_once = [&](RedundancyKind kind) {
    ProbePolicy policy;
    auto cfg = config(4, kind);
    cfg.epoch = Seconds{600.0};
    std::ostringstream out;
    JsonlTraceWriter writer(out);
    auto result =
        run_simulation(cfg, w.files, w.trace, policy, &writer, nullptr);
    return std::pair{out.str(), std::move(result)};
  };

  const auto [none_text, none] = run_once(RedundancyKind::kNone);
  const auto [raid_text, raid] = run_once(RedundancyKind::kRaid5);
  EXPECT_FALSE(none_text.empty());
  EXPECT_EQ(none_text, raid_text);
  EXPECT_EQ(none.counters, raid.counters);  // no redundancy counters appear
  EXPECT_EQ(none.counters.count("sim.requests_reconstructed"), 0u);
  EXPECT_DOUBLE_EQ(none.energy_joules(), raid.energy_joules());
}

TEST(RedundancySim, FaultedParityRunsByteIdenticalAcrossSchedulers) {
  auto wc = worldcup98_light_config(5);
  wc.file_count = 100;
  wc.request_count = 2'500;
  const auto w = generate_workload(wc);

  FaultHazard hazard;
  hazard.seed = 3;
  hazard.afr = 400'000.0;
  hazard.mttr = Seconds{60.0};
  hazard.horizon = w.trace.requests.back().arrival;
  const FaultPlan plan = FaultPlan::from_hazard(hazard, 4);
  ASSERT_FALSE(plan.empty());

  const auto run_once = [&](IdleScheduler scheduler,
                            RedundancyKind kind) {
    SystemConfig cfg;
    cfg.sim.disk_count = 4;
    cfg.sim.epoch = Seconds{600.0};
    cfg.sim.idle_scheduler = scheduler;
    cfg.sim.redundancy.kind = kind;
    cfg.sim.redundancy.rebuild_mbps = 4.0;
    std::ostringstream out;
    JsonlTraceWriter writer(out);
    (void)SimulationSession(cfg)
        .with_workload(w)
        .with_policy("read")
        .with_observer(writer)
        .with_faults(plan)
        .run();
    return out.str();
  };

  for (const RedundancyKind kind :
       {RedundancyKind::kRaid5, RedundancyKind::kDeclustered}) {
    const std::string heap = run_once(IdleScheduler::kTimerHeap, kind);
    const std::string queue = run_once(IdleScheduler::kEventQueue, kind);
    EXPECT_FALSE(heap.empty());
    EXPECT_NE(heap.find("\"ev\":\"stripe_reconstruct\""), std::string::npos);
    EXPECT_NE(heap.find("\"ev\":\"rebuild_start\""), std::string::npos);
    EXPECT_EQ(heap, queue);
  }
}

// ------------------------------------------------------------ MTTDL closure

TEST(MttdlAgreement, ScoresObservedAgainstClosedForm) {
  MttdlInputs inputs;
  inputs.disk_afr = 0.5;
  inputs.disks = 4;
  inputs.mttr = Seconds{24.0 * 3600.0};
  const double hours = mttdl_hours(RaidLevel::kRaid5, inputs);

  // 3 losses over 2 domains x half a year = 3 per domain-year.
  const MttdlAgreement a = score_mttdl_agreement(
      RaidLevel::kRaid5, inputs, 3, 2,
      Seconds{0.5 * kSecondsPerYear.value()});
  EXPECT_DOUBLE_EQ(a.predicted_mttdl_hours, hours);
  EXPECT_DOUBLE_EQ(a.predicted_losses_per_year, 8760.0 / hours);
  EXPECT_DOUBLE_EQ(a.observed_losses_per_year, 3.0);
  EXPECT_DOUBLE_EQ(a.observed_over_predicted, 3.0 / (8760.0 / hours));
}

TEST(MttdlAgreement, DegenerateInputsScoreZeroInsteadOfThrowing) {
  MttdlInputs inputs;  // afr > 0 but...
  inputs.disk_afr = 0.0;  // ...zero rate is degenerate for the closed form
  const MttdlAgreement a = score_mttdl_agreement(
      RaidLevel::kRaid5, inputs, 5, 1, Seconds{kSecondsPerYear.value()});
  EXPECT_DOUBLE_EQ(a.predicted_mttdl_hours, 0.0);
  EXPECT_DOUBLE_EQ(a.predicted_losses_per_year, 0.0);
  EXPECT_DOUBLE_EQ(a.observed_losses_per_year, 0.0);
  EXPECT_DOUBLE_EQ(a.observed_over_predicted, 0.0);
}

// ------------------------------------------------- DegradationAnalyzer split

TEST(DegradationAnalyzer, TracksPerDiskCountsReconstructionsAndRebuilds) {
  DegradationAnalyzer a;
  RunStartEvent start;
  start.disk_count = 3;
  a.on_run_start(start);

  a.on_request_degraded(
      {Seconds{1.0}, 0, 0, 1, DegradedOutcome::kReconstructed, 1.0});
  a.on_request_degraded(
      {Seconds{2.0}, 1, 0, 1, DegradedOutcome::kReconstructed, 1.0});
  a.on_request_degraded({Seconds{3.0}, 2, 2, 2, DegradedOutcome::kLost, 1.0});

  RebuildStartEvent rs;
  rs.disk = 0;
  a.on_rebuild_start(rs);
  RebuildCompleteEvent rc;
  rc.disk = 0;
  rc.bytes = 4 * kMiB;
  rc.duration = Seconds{30.0};
  a.on_rebuild_complete(rc);

  EXPECT_EQ(a.reconstructed_requests(), 2u);
  EXPECT_EQ(a.lost_requests(), 1u);
  ASSERT_EQ(a.degraded_by_disk().size(), 3u);
  EXPECT_EQ(a.degraded_by_disk()[0], 2u);  // keyed by intended disk
  EXPECT_EQ(a.degraded_by_disk()[1], 0u);
  EXPECT_EQ(a.degraded_by_disk()[2], 1u);
  EXPECT_EQ(a.rebuilds_started(), 1u);
  EXPECT_EQ(a.rebuilds_completed(), 1u);
  EXPECT_EQ(a.rebuilt_bytes(), 4 * kMiB);
  EXPECT_DOUBLE_EQ(a.mean_rebuild_time().value(), 30.0);
  EXPECT_DOUBLE_EQ(a.max_rebuild_time().value(), 30.0);

  SimResult result;
  a.merge_into(result);
  EXPECT_EQ(result.counters.at("fault.disk0.degraded_requests"), 2u);
  EXPECT_EQ(result.counters.count("fault.disk1.degraded_requests"), 0u);
  EXPECT_EQ(result.counters.at("fault.disk2.degraded_requests"), 1u);
  EXPECT_EQ(result.counters.at("redundancy.mean_rebuild_ms"), 30'000u);
  EXPECT_EQ(result.counters.at("redundancy.max_rebuild_ms"), 30'000u);
}

// ------------------------------------------------------------ scenario layer

TEST(RedundancyScenario, ParsesRedundancyAndKillSections) {
  const auto spec = parse_scenario(R"(
[scenario]
name = rebuild_check
[system]
disks = 6
[policy read]
[fault]
afr = 0.2
rate_scale = 0
kill_disk = 0,3
kill_at = 100,200
[redundancy]
scheme = declustered
group = 3
rebuild_mbps = 64
rebuild_chunk = 1048576
)");
  EXPECT_TRUE(spec.fault.enabled);
  ASSERT_EQ(spec.fault.kill_disks.size(), 2u);
  EXPECT_EQ(spec.fault.kill_disks[1], 3u);
  EXPECT_DOUBLE_EQ(spec.fault.kill_at_s[1], 200.0);
  EXPECT_TRUE(spec.redundancy.enabled);
  EXPECT_EQ(spec.redundancy.scheme, "declustered");
  EXPECT_EQ(spec.redundancy.group, 3u);
  EXPECT_TRUE(spec.redundancy.rebuild);
  EXPECT_DOUBLE_EQ(spec.redundancy.rebuild_mbps, 64.0);
  EXPECT_EQ(spec.redundancy.rebuild_chunk, 1'048'576u);
  EXPECT_EQ(scenario_redundancy_kind(spec.redundancy),
            RedundancyKind::kDeclustered);
}

TEST(RedundancyScenario, ValidationRejectsBadSpecs) {
  const auto base = [](const std::string& extra) {
    return "[scenario]\nname = t\n[system]\ndisks = 8\n[policy read]\n" +
           extra;
  };
  // Unknown scheme name.
  EXPECT_THROW((void)parse_scenario(base("[redundancy]\nscheme = raid9\n")),
               std::invalid_argument);
  // RAID-5 group must divide the array.
  EXPECT_THROW(
      (void)parse_scenario(base("[redundancy]\nscheme = raid5\ngroup = 3\n")),
      std::invalid_argument);
  // kill lists must pair up.
  EXPECT_THROW((void)parse_scenario(
                   base("[fault]\nkill_disk = 0,1\nkill_at = 5\n")),
               std::invalid_argument);
  // kill targets must exist on every disks-axis value.
  EXPECT_THROW((void)parse_scenario(
                   base("[fault]\nkill_disk = 8\nkill_at = 5\n")),
               std::invalid_argument);
}

TEST(RedundancyScenario, KilledDiskRebuildsWithZeroLossEndToEnd) {
  ScenarioSpec spec;
  spec.name = "rebuild_smoke";
  spec.threads = 1;
  spec.disks = {4};
  spec.epochs = {600.0};
  ScenarioWorkload w;
  w.files = 80;
  w.requests = 4'000;
  spec.workloads.push_back(w);
  spec.policies.push_back({"read", "READ", {}});
  spec.fault.enabled = true;
  spec.fault.rate_scales = {0.0};  // scripted kill only — no hazard draw
  spec.fault.kill_disks = {0};
  // Mid-run (horizon ~234 s); the slow rebuild rate keeps the disk down
  // for a whole step period, so degraded reads actually happen.
  spec.fault.kill_at_s = {60.0};
  spec.redundancy.enabled = true;
  spec.redundancy.scheme = "raid5";
  spec.redundancy.rebuild_mbps = 0.2;

  const ScenarioResult result = run_scenario(spec);
  EXPECT_TRUE(result.redundant);
  ASSERT_EQ(result.cells.size(), 1u);
  const ScenarioCell& cell = result.cells[0];
  ASSERT_TRUE(cell.fault.has_value());
  ASSERT_TRUE(cell.redundancy.has_value());
  // Parity absorbed the failure: nothing lost, reads reconstructed, the
  // rebuild ran to completion, no data-loss event.
  EXPECT_EQ(cell.fault->lost_requests, 0u);
  EXPECT_GT(cell.redundancy->reconstructed_requests, 0u);
  EXPECT_EQ(cell.redundancy->data_loss_events, 0u);
  EXPECT_EQ(cell.redundancy->rebuilds_started, 1u);
  EXPECT_EQ(cell.redundancy->rebuilds_completed, 1u);
  EXPECT_GT(cell.redundancy->mean_rebuild_s, 0.0);

  // The CSV widens with the redundancy columns, append-only.
  std::ostringstream out;
  write_scenario_csv(result, out);
  const std::string csv = out.str();
  const std::string header = scenario_csv_header(true, true);
  EXPECT_EQ(csv.substr(0, header.size()), header);
  EXPECT_NE(csv.find(",raid5,"), std::string::npos);
}

TEST(RedundancyScenario, FleetCellsByteIdenticalAcrossThreadCounts) {
  ScenarioSpec spec;
  spec.name = "fleet_redundancy";
  spec.threads = 1;
  spec.disks = {4};
  spec.epochs = {600.0};
  ScenarioWorkload w;
  w.files = 60;
  w.requests = 2'000;
  spec.workloads.push_back(w);
  spec.policies.push_back({"read", "READ", {}});
  spec.fault.enabled = true;
  spec.fault.afr = 0.3;
  spec.fault.rate_scales = {0.0};
  spec.fault.kill_disks = {1};
  spec.fault.kill_at_s = {60.0};
  spec.redundancy.enabled = true;
  spec.redundancy.scheme = "declustered";
  spec.redundancy.group = 3;
  spec.redundancy.rebuild_mbps = 8.0;
  spec.fleet.enabled = true;
  spec.fleet.shards = 3;

  const auto run_with = [&](unsigned threads) {
    ScenarioSpec s = spec;
    s.fleet.threads = threads;
    std::ostringstream out;
    write_scenario_csv(run_scenario(s), out);
    return out.str();
  };

  const std::string serial = run_with(1);
  const std::string parallel = run_with(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Every shard saw the scripted kill and rebuilt it.
  EXPECT_NE(serial.find("declustered"), std::string::npos);
}

}  // namespace
}  // namespace pr
