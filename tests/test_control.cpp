// Feedback-control subsystem tests (ISSUE 10): ControlLoop's three
// deterministic controllers and their anti-oscillation machinery, the
// online Zipf estimator, the simulator's actuation seam (admission
// shedding, threshold/hot-zone/epoch-length knobs), the control-disabled
// byte-identity contract, scheduler/thread determinism with control on,
// the [control] scenario section, and the OnlineReadPolicy promotion-bar
// regression (ceiling-decayed bar across a decay boundary).
#include "control/control_loop.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "control/zipf_estimator.h"
#include "core/report_io.h"
#include "core/session.h"
#include "exp/scenario.h"
#include "exp/scenario_engine.h"
#include "exp/scenario_report.h"
#include "obs/jsonl_writer.h"
#include "policy/online_read_policy.h"
#include "policy/read_policy.h"
#include "trace/trace_stats.h"
#include "workload/synthetic.h"

namespace pr {
namespace {

// --------------------------------------------------- ControlLoop units

ControlConfig armed_config() {
  ControlConfig c;
  c.enabled = true;
  c.target_rt_ms = 100.0;
  c.energy_budget_w = 100.0;
  c.adapt_epoch = true;
  c.admit_window_s = 1.0;
  return c;
}

/// One epoch window with the three signals set relative to the armed
/// config's setpoints: rt_err / energy_err are relative errors, backlog
/// as a fraction of the admission window.
ControlInputs window(double rt_err, double energy_err, double backlog_frac,
                     std::uint64_t shed = 0) {
  ControlInputs in;
  in.epoch_s = 100.0;
  in.requests = 50;
  in.mean_rt_s = 0.1 * (1.0 + rt_err);
  in.energy_j = 100.0 * (1.0 + energy_err) * in.epoch_s;
  in.max_backlog_s = backlog_frac * 1.0;
  in.shed = shed;
  return in;
}

TEST(ControlLoopTest, DisabledConfigIsAcceptedAndHolds) {
  ControlConfig c;  // enabled = false
  c.gain = -1.0;    // invalid — but disabled configs skip validation so
  c.persistence = 0;  // the simulator can hold a ControlLoop by value
  ControlLoop loop(c);
  for (int i = 0; i < 5; ++i) {
    const ControlDecision d = loop.update(window(10.0, 10.0, 10.0, 99));
    EXPECT_FALSE(d.any());
  }
}

TEST(ControlLoopTest, EnabledConfigIsValidated) {
  const auto throws = [](auto mutate) {
    ControlConfig c = armed_config();
    mutate(c);
    EXPECT_THROW(ControlLoop{c}, std::invalid_argument);
  };
  throws([](ControlConfig& c) { c.gain = 0.0; });
  throws([](ControlConfig& c) { c.hysteresis = -0.1; });
  throws([](ControlConfig& c) { c.persistence = 0; });
  throws([](ControlConfig& c) { c.max_step = 1.0; });
  throws([](ControlConfig& c) { c.h_min_s = 0.0; });
  throws([](ControlConfig& c) { c.h_max_s = c.h_min_s / 2.0; });
  throws([](ControlConfig& c) { c.epoch_min_s = 0.0; });
  throws([](ControlConfig& c) { c.epoch_max_s = c.epoch_min_s / 2.0; });
  throws([](ControlConfig& c) { c.target_rt_ms = -1.0; });
  throws([](ControlConfig& c) { c.energy_budget_w = -1.0; });
  throws([](ControlConfig& c) { c.admit_window_s = -1.0; });
  // adapt_epoch needs a backlog yardstick (admission window or target).
  throws([](ControlConfig& c) {
    c.admit_window_s = 0.0;
    c.target_rt_ms = 0.0;
  });
}

TEST(ControlLoopTest, LatencyControllerNeedsPersistence) {
  ControlLoop loop(armed_config());
  // One slow epoch: streak 1 of 2, hold.
  EXPECT_EQ(loop.update(window(1.0, 0.0, 0.25)).h_scale, 1.0);
  // Second consecutive slow epoch: act. Relative error 1.0 with gain 0.5
  // gives step 1.5 (under max_step 2).
  EXPECT_DOUBLE_EQ(loop.update(window(1.0, 0.0, 0.25)).h_scale, 1.5);
  // A fast epoch reverses the streak: hold, then act downward (1/step).
  EXPECT_EQ(loop.update(window(-0.5, 0.0, 0.25)).h_scale, 1.0);
  EXPECT_DOUBLE_EQ(loop.update(window(-0.5, 0.0, 0.25)).h_scale,
                   1.0 / 1.25);
}

TEST(ControlLoopTest, LatencyStepIsCappedByMaxStep) {
  ControlLoop loop(armed_config());
  (void)loop.update(window(30.0, 0.0, 0.25));
  EXPECT_DOUBLE_EQ(loop.update(window(30.0, 0.0, 0.25)).h_scale, 2.0);
}

TEST(ControlLoopTest, IdleEpochsResetTheLatencyStreak) {
  ControlLoop loop(armed_config());
  EXPECT_FALSE(loop.update(window(1.0, 0.0, 0.25)).any());
  ControlInputs idle;  // no requests: silence is not evidence
  idle.epoch_s = 100.0;
  EXPECT_FALSE(loop.update(idle).any());
  // The pre-idle slow epoch must not carry over.
  EXPECT_EQ(loop.update(window(1.0, 0.0, 0.25)).h_scale, 1.0);
  EXPECT_GT(loop.update(window(1.0, 0.0, 0.25)).h_scale, 1.0);
}

TEST(ControlLoopTest, HysteresisBandHoldsForever) {
  ControlLoop loop(armed_config());  // hysteresis 0.25
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(loop.update(window(0.2, -0.2, 0.25)).any()) << i;
  }
}

/// The headline anti-oscillation pin: a load signal alternating direction
/// every epoch (a square wave at the epoch frequency) can never move any
/// knob at persistence 2 — every streak is reset before it matures.
TEST(ControlLoopTest, SquareWaveLoadNeverMovesAnyKnob) {
  ControlLoop loop(armed_config());
  for (int i = 0; i < 20; ++i) {
    const double flip = (i % 2 == 0) ? 1.0 : -0.6;
    const ControlDecision d =
        loop.update(window(flip, flip, i % 2 == 0 ? 0.9 : 0.0));
    EXPECT_FALSE(d.any()) << "epoch " << i;
  }
}

TEST(ControlLoopTest, EnergyControllerCapAndSpend) {
  ControlLoop loop(armed_config());
  EXPECT_EQ(loop.update(window(0.0, 1.0, 0.25)).hot_delta, 0);
  EXPECT_EQ(loop.update(window(0.0, 1.0, 0.25)).hot_delta, -1);  // over
  EXPECT_EQ(loop.update(window(0.0, -0.8, 0.25)).hot_delta, 0);
  EXPECT_EQ(loop.update(window(0.0, -0.8, 0.25)).hot_delta, 1);  // spare
}

TEST(ControlLoopTest, EpochControllerPressureHalvesCalmDoubles) {
  ControlLoop loop(armed_config());
  // Shed requests are pressure regardless of the backlog reading.
  EXPECT_EQ(loop.update(window(0.0, 0.0, 0.0, 5)).epoch_scale, 1.0);
  EXPECT_EQ(loop.update(window(0.0, 0.0, 0.0, 5)).epoch_scale, 0.5);
  // Calm: backlog under 1/8 of the reference window, with traffic.
  EXPECT_EQ(loop.update(window(0.0, 0.0, 0.01)).epoch_scale, 1.0);
  EXPECT_EQ(loop.update(window(0.0, 0.0, 0.01)).epoch_scale, 2.0);
  // The dead zone between 1/8 and 1/2 of the window resets the streak.
  EXPECT_EQ(loop.update(window(0.0, 0.0, 0.25)).epoch_scale, 1.0);
  EXPECT_EQ(loop.update(window(0.0, 0.0, 0.01)).epoch_scale, 1.0);
}

// ----------------------------------------------------- ZipfEstimator

TEST(ZipfEstimatorTest, UniformCountsReadAsUniform) {
  const std::vector<std::uint64_t> counts(50, 7);
  const ZipfEstimate e = ZipfEstimator().estimate(counts);
  EXPECT_DOUBLE_EQ(e.theta, 1.0);
  EXPECT_NEAR(e.alpha, 0.0, 1e-12);
  EXPECT_EQ(e.active_files, 50u);
}

TEST(ZipfEstimatorTest, SkewedCountsReadAsSkewed) {
  // counts ~ 10000 / rank: a textbook Zipf(1) profile.
  std::vector<std::uint64_t> counts;
  for (std::size_t r = 1; r <= 100; ++r) {
    counts.push_back(10'000 / static_cast<std::uint64_t>(r));
  }
  const ZipfEstimate e = ZipfEstimator().estimate(counts);
  EXPECT_LT(e.theta, 0.6);
  EXPECT_NEAR(e.alpha, 1.0, 0.25);
  EXPECT_EQ(e.active_files, 100u);

  // Zeros are ignored and layout is irrelevant (multiset semantics).
  std::vector<std::uint64_t> shuffled = counts;
  shuffled.insert(shuffled.begin(), 25, 0);
  std::swap(shuffled.front(), shuffled.back());
  const ZipfEstimate e2 = ZipfEstimator().estimate(shuffled);
  EXPECT_DOUBLE_EQ(e2.theta, e.theta);
  EXPECT_DOUBLE_EQ(e2.alpha, e.alpha);
  EXPECT_EQ(e2.active_files, 100u);
}

TEST(ZipfEstimatorTest, DegenerateInputsFallBackToDefaults) {
  const ZipfEstimate empty = ZipfEstimator().estimate({});
  EXPECT_DOUBLE_EQ(empty.theta, 1.0);
  EXPECT_DOUBLE_EQ(empty.alpha, 0.0);
  EXPECT_EQ(empty.active_files, 0u);

  const std::vector<std::uint64_t> two = {9, 3};  // < 3 ranks: no α fit
  EXPECT_DOUBLE_EQ(ZipfEstimator().estimate(two).alpha, 0.0);

  EXPECT_THROW(ZipfEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(ZipfEstimator(1.0), std::invalid_argument);
}

TEST(ZipfEstimatorTest, ConvergesToTheOfflineTraceFit) {
  SyntheticWorkloadConfig wc;
  wc.file_count = 200;
  wc.request_count = 5'000;
  wc.zipf_alpha = 0.9;
  wc.seed = 20260807;
  const auto workload = generate_workload(wc);
  const TraceStats stats = compute_trace_stats(workload.trace);

  // Same files_fraction and fit width (0 = all ranks) as trace_stats:
  // the online estimate over the full counts IS the offline fit.
  const ZipfEstimate e =
      ZipfEstimator(0.2, 0).estimate(stats.access_counts);
  EXPECT_DOUBLE_EQ(e.theta, stats.theta);
  EXPECT_DOUBLE_EQ(e.alpha, stats.zipf_alpha);
}

// ------------------------------------------- session / counter helpers

std::uint64_t counter(const SimResult& sim, const std::string& name) {
  const auto it = sim.counters.find(name);
  return it == sim.counters.end() ? 0 : it->second;
}

bool has_counter(const SimResult& sim, const std::string& name) {
  return sim.counters.find(name) != sim.counters.end();
}

SyntheticWorkloadConfig small_workload_config() {
  SyntheticWorkloadConfig c;
  c.file_count = 100;
  c.request_count = 2'000;
  c.mean_interarrival = Seconds{0.35};
  c.zipf_alpha = 0.9;
  c.diurnal_depth = 0.5;
  c.seed = 20260806;
  return c;
}

SystemConfig control_system_config() {
  SystemConfig config;
  config.sim.disk_count = 8;
  config.sim.epoch = Seconds{100.0};
  return config;
}

struct SessionRun {
  std::string report_json;
  std::string events;
  SystemReport report;
};

SessionRun run_session(const SystemConfig& config, const std::string& policy,
                       const SyntheticWorkload& workload) {
  std::ostringstream events;
  JsonlTraceWriter writer(events);
  SessionRun out;
  out.report = SimulationSession(config)
                   .with_workload(workload.files, workload.trace)
                   .with_policy(policy)
                   .with_observer(writer)
                   .run();
  out.report_json = to_json(out.report);
  out.events = events.str();
  return out;
}

// ------------------------------------------ disabled == today's bytes

/// The contract the whole PR hangs on: control disabled (even with every
/// knob set to something aggressive) produces byte-identical reports and
/// event streams to a config that never mentions control, and interns no
/// control.* counter.
TEST(ControlSimTest, DisabledControlIsByteIdenticalWithKnobsSet) {
  const auto workload = generate_workload(small_workload_config());
  for (const std::string policy : {"read", "online-read"}) {
    const SessionRun golden =
        run_session(control_system_config(), policy, workload);

    SystemConfig knobs = control_system_config();
    knobs.sim.control = armed_config();
    knobs.sim.control.enabled = false;  // master switch wins
    knobs.sim.control.target_rt_ms = 0.001;
    knobs.sim.control.admit_window_s = 0.001;
    const SessionRun off = run_session(knobs, policy, workload);

    EXPECT_EQ(off.report_json, golden.report_json) << policy;
    EXPECT_EQ(off.events, golden.events) << policy;
    EXPECT_FALSE(has_counter(off.report.sim, "control.updates")) << policy;
    EXPECT_FALSE(has_counter(off.report.sim, "control.shed_requests"))
        << policy;
  }
}

TEST(ControlSimTest, CountersInternOnlyWhenEnabled) {
  const auto workload = generate_workload(small_workload_config());
  SystemConfig config = control_system_config();
  config.sim.control = armed_config();
  const SessionRun run = run_session(config, "online-read", workload);
  EXPECT_TRUE(has_counter(run.report.sim, "control.updates"));
  EXPECT_GT(counter(run.report.sim, "control.updates"), 0u);
  // Snapshots include zero-valued counters, so the whole family must be
  // present (schema stability for downstream CSV/JSON consumers).
  for (const char* name :
       {"control.shed_requests", "control.h_scaled", "control.hot_grows",
        "control.hot_shrinks", "control.epoch_scaled"}) {
    EXPECT_TRUE(has_counter(run.report.sim, name)) << name;
  }
}

// ------------------------------------------------ determinism contract

TEST(ControlSimTest, DeterministicAcrossIdleSchedulers) {
  const auto workload = generate_workload(small_workload_config());
  std::string timer_events;
  std::string timer_json;
  std::map<std::string, std::uint64_t> timer_counters;
  for (const IdleScheduler scheduler :
       {IdleScheduler::kTimerHeap, IdleScheduler::kEventQueue}) {
    SystemConfig config = control_system_config();
    config.sim.idle_scheduler = scheduler;
    config.sim.control = armed_config();
    config.sim.control.target_rt_ms = 20.0;
    config.sim.control.admit_window_s = 2.0;
    const SessionRun run = run_session(config, "online-read", workload);

    // Across schedulers only the sim.idle_checks* churn family may
    // differ (the same allowance test_scheduler_golden pins); every
    // control decision, event and counter must be identical.
    std::map<std::string, std::uint64_t> comparable;
    for (const auto& [name, value] : run.report.sim.counters) {
      if (name.rfind("sim.idle_checks", 0) == 0) continue;
      comparable.emplace(name, value);
    }
    if (scheduler == IdleScheduler::kTimerHeap) {
      timer_events = run.events;
      timer_counters = comparable;
    } else {
      EXPECT_EQ(run.events, timer_events);
      EXPECT_EQ(comparable, timer_counters);
    }
  }
}

// --------------------------------------------------- admission window

TEST(ControlSimTest, ShedConservation) {
  // A hard burst to one file: every request routes to the same disk, the
  // FCFS backlog blows through the admission window, and the books must
  // still balance: served + shed == produced (no faults in play).
  FileSet files = []() {
    std::vector<FileInfo> f(4);
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i].id = static_cast<FileId>(i);
      f[i].size = 1 << 20;
      f[i].access_rate = 1.0;
    }
    return FileSet(std::move(f));
  }();
  Trace trace;
  for (int i = 0; i < 400; ++i) {
    Request r;
    r.arrival = Seconds{0.001 * i};
    r.file = 0;
    r.size = 1 << 20;
    trace.requests.push_back(r);
  }

  SimConfig config;
  config.disk_params = two_speed_cheetah();
  config.disk_count = 4;
  config.epoch = Seconds{50.0};
  config.control.enabled = true;
  config.control.admit_window_s = 0.25;
  ReadPolicy policy{ReadConfig{}};
  const SimResult result = run_simulation(config, files, trace, policy);

  const std::uint64_t shed = counter(result, "control.shed_requests");
  EXPECT_GT(shed, 0u);
  EXPECT_LT(shed, trace.requests.size());  // the window admits the head
  EXPECT_EQ(result.user_requests + shed, trace.requests.size());
}

// --------------------------------------------------- knob actuation

TEST(ControlSimTest, LatencyControllerScalesThresholdsUnderPressure) {
  const auto workload = generate_workload(small_workload_config());
  SystemConfig config = control_system_config();
  config.sim.control.enabled = true;
  config.sim.control.target_rt_ms = 0.001;  // unmeetable: always too slow
  const SessionRun run = run_session(config, "read", workload);
  EXPECT_GT(counter(run.report.sim, "control.updates"), 1u);
  EXPECT_GT(counter(run.report.sim, "control.h_scaled"), 0u);
}

TEST(ControlSimTest, EpochControllerStretchesCalmEpochs) {
  // Sparse steady traffic, huge admission window: every epoch is calm
  // (backlog under an eighth of the window), so after `persistence`
  // epochs the epoch length doubles.
  FileSet files = []() {
    std::vector<FileInfo> f(8);
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i].id = static_cast<FileId>(i);
      f[i].size = 4096;
      f[i].access_rate = 0.1;
    }
    return FileSet(std::move(f));
  }();
  Trace trace;
  for (int i = 0; i < 100; ++i) {
    Request r;
    r.arrival = Seconds{10.0 * i};
    r.file = static_cast<FileId>(i % 8);
    r.size = 4096;
    trace.requests.push_back(r);
  }
  SimConfig config;
  config.disk_params = two_speed_cheetah();
  config.disk_count = 4;
  config.epoch = Seconds{100.0};
  config.control.enabled = true;
  config.control.adapt_epoch = true;
  config.control.admit_window_s = 60.0;
  config.control.epoch_min_s = 50.0;
  config.control.epoch_max_s = 400.0;
  ReadPolicy policy{ReadConfig{}};
  const SimResult result = run_simulation(config, files, trace, policy);
  EXPECT_GT(counter(result, "control.epoch_scaled"), 0u);
  // Stretched epochs mean fewer boundaries than the fixed stride's
  // 1000s/100s; the clamp at epoch_max_s bounds it below.
  EXPECT_LT(counter(result, "control.updates"), 10u);
  EXPECT_GE(counter(result, "control.updates"), 3u);
}

TEST(ControlSimTest, EnergyControllerShrinksTheHotZoneOverBudget) {
  const auto workload = generate_workload(small_workload_config());
  SystemConfig config = control_system_config();
  config.sim.control.enabled = true;
  config.sim.control.energy_budget_w = 0.001;  // any spend is over budget
  const SessionRun run = run_session(config, "online-read", workload);
  EXPECT_GT(counter(run.report.sim, "control.hot_shrinks"), 0u);
  EXPECT_EQ(counter(run.report.sim, "control.hot_grows"), 0u);
}

TEST(ControlSimTest, ZipfGuardrailRefusesGrowthOnFlatLoad) {
  // Perfectly round-robin traffic: the online θ̂ reads (near) uniform, so
  // compute_zoning justifies a single hot disk and every grow request
  // from the spend-the-budget controller is refused.
  FileSet files = []() {
    std::vector<FileInfo> f(20);
    for (std::size_t i = 0; i < f.size(); ++i) {
      f[i].id = static_cast<FileId>(i);
      f[i].size = 4096;
      f[i].access_rate = 1.0;
    }
    return FileSet(std::move(f));
  }();
  Trace trace;
  for (int i = 0; i < 800; ++i) {
    Request r;
    r.arrival = Seconds{0.5 * i};
    r.file = static_cast<FileId>(i % 20);
    r.size = 4096;
    trace.requests.push_back(r);
  }
  SimConfig config;
  config.disk_params = two_speed_cheetah();
  config.disk_count = 8;
  config.epoch = Seconds{100.0};
  config.control.enabled = true;
  config.control.energy_budget_w = 1e9;  // bottomless: always grow
  OnlineReadPolicy policy;
  const SimResult result = run_simulation(config, files, trace, policy);
  EXPECT_GT(counter(result, "control.updates"), 1u);
  EXPECT_EQ(counter(result, "control.hot_grows"), 0u);
  EXPECT_EQ(policy.zoning().hot_disks, 1u);
}

// -------------------------- promotion-bar regression (decay boundary)

/// Phase-1 access counts chosen so the boundary ranking's cut falls
/// between a count-11 file and a count-10 file: after the >>1 decay both
/// collapse to 5, which is exactly the collision the floor-decayed bar
/// mishandled (a single post-boundary serve of the below-cut file would
/// out-promote the boundary ranking). The ceiling bar keeps a < b
/// implying decayed(a) < bar.
Trace bar_regression_trace(int extra_serves_of_file5) {
  const std::uint64_t counts[] = {40, 35, 30, 25, 11, 10, 8, 6, 4, 2};
  Trace trace;
  double t = 0.0;
  for (FileId f = 0; f < 10; ++f) {
    for (std::uint64_t k = 0; k < counts[f]; ++k) {
      Request r;
      r.arrival = Seconds{t};
      r.file = f;
      r.size = 4096;
      trace.requests.push_back(r);
      t += 0.6;  // 171 requests end at ~102 > nothing: all inside epoch 1
    }
  }
  // Cross the t=100 boundary with a serve of the top file (already hot,
  // no promotion in play), then the probe serves of file 5.
  Request cross;
  cross.arrival = Seconds{105.0};
  cross.file = 0;
  cross.size = 4096;
  trace.requests.push_back(cross);
  for (int i = 0; i < extra_serves_of_file5; ++i) {
    Request probe;
    probe.arrival = Seconds{106.0 + i};
    probe.file = 5;
    probe.size = 4096;
    trace.requests.push_back(probe);
  }
  return trace;
}

FileSet bar_regression_files() {
  std::vector<FileInfo> f(10);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i].id = static_cast<FileId>(i);
    f[i].size = 1000 * (i + 1);
    f[i].access_rate = 100.0 / static_cast<double>(i + 1);
  }
  return FileSet(std::move(f));
}

SimConfig bar_regression_config() {
  SimConfig c;
  c.disk_params = two_speed_cheetah();
  c.disk_count = 4;
  c.epoch = Seconds{100.0};
  return c;
}

TEST(OnlineReadBarRegression, ColdCountsSitStrictlyBelowTheBar) {
  OnlineReadConfig oc;
  oc.decay_shift = 1;
  oc.promote_margin = 0;
  OnlineReadPolicy policy(oc);
  (void)run_simulation(bar_regression_config(), bar_regression_files(),
                       bar_regression_trace(0), policy);
  ASSERT_TRUE(policy.warmed_up());
  // Weakest top-k count 11 decays to bar ceil(11/2) = 6; the strongest
  // cold file (10 accesses) decays to 5 — the floor-bar collision.
  EXPECT_EQ(policy.promotion_bar(), 6u);
  ASSERT_FALSE(policy.is_hot_file(5));
  EXPECT_EQ(policy.decayed_counts()[5], 5u);
  // The invariant the ceiling preserves: every cold file's decayed count
  // is strictly below the bar (pre-fix, file 5 tied it).
  for (FileId f = 0; f < 10; ++f) {
    if (policy.is_hot_file(f)) continue;
    EXPECT_LT(policy.decayed_counts()[f], policy.promotion_bar()) << f;
  }
}

TEST(OnlineReadBarRegression, SingleServeAcrossDecayBoundaryCannotPromote) {
  OnlineReadConfig oc;
  oc.decay_shift = 1;
  oc.promote_margin = 0;
  OnlineReadPolicy policy(oc);
  (void)run_simulation(bar_regression_config(), bar_regression_files(),
                       bar_regression_trace(1), policy);
  // One serve lifts file 5 to the bar exactly (5+1 == 6), never past it:
  // the boundary ranking placed it strictly below the cut, so a single
  // serve is not new evidence. (The floor bar of 5 promoted here.)
  EXPECT_EQ(policy.online_promotions(), 0u);
  EXPECT_FALSE(policy.is_hot_file(5));
}

TEST(OnlineReadBarRegression, SustainedServesStillPromote) {
  OnlineReadConfig oc;
  oc.decay_shift = 1;
  oc.promote_margin = 0;
  OnlineReadPolicy policy(oc);
  (void)run_simulation(bar_regression_config(), bar_regression_files(),
                       bar_regression_trace(2), policy);
  // Two serves beat the bar (5+2 == 7 > 6): genuine demand still
  // promotes mid-epoch — the fix narrows ties, it does not freeze the
  // hot set.
  EXPECT_EQ(policy.online_promotions(), 1u);
  EXPECT_TRUE(policy.is_hot_file(5));
}

// ------------------------------------------------ [control] scenarios

constexpr const char* kControlScenario = R"([scenario]
name = ctl
seeds = 11

[system]
disks = 6
epoch = 20

[workload day]
files = 60
requests = 1500
load = 1.0

[policy read]
[policy online-read]

[control]
target_rt_ms = 25
admit_window = 2.0
adapt_epoch = true
energy_budget_w = 120
)";

TEST(ControlScenarioTest, ParserReadsTheControlSection) {
  const ScenarioSpec spec = parse_scenario(kControlScenario, "ctl.ini");
  EXPECT_TRUE(spec.control.enabled);
  EXPECT_DOUBLE_EQ(spec.control.config.target_rt_ms, 25.0);
  EXPECT_DOUBLE_EQ(spec.control.config.admit_window_s, 2.0);
  EXPECT_TRUE(spec.control.config.adapt_epoch);
  EXPECT_DOUBLE_EQ(spec.control.config.energy_budget_w, 120.0);
  // Untouched knobs keep their defaults.
  EXPECT_DOUBLE_EQ(spec.control.config.gain, 0.5);
  EXPECT_EQ(spec.control.config.persistence, 2u);
}

TEST(ControlScenarioTest, ValidationRejectsBadKnobsAndFleet) {
  // Knob validation is the ControlLoop's, surfaced with scenario context.
  EXPECT_THROW((void)parse_scenario("[scenario]\nname = bad\n"
                                    "[control]\ngain = -1\n[policy read]\n"),
               std::invalid_argument);
  // Unknown keys carry file:line diagnostics.
  try {
    (void)parse_scenario("[control]\nnope = 1\n[policy read]\n", "c.ini");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("c.ini:2:"), std::string::npos)
        << e.what();
  }
  // [control] does not compose with [fleet] (shards share no window).
  EXPECT_THROW(
      (void)parse_scenario("[scenario]\nname = f\n[fleet]\nshards = 2\n"
                           "[control]\nadmit_window = 1\n[policy read]\n"),
      std::invalid_argument);
}

TEST(ControlScenarioTest, CsvWidensAndThreadsAreByteIdentical) {
  const ScenarioSpec spec = parse_scenario(kControlScenario, "ctl.ini");
  auto csv_of = [](const ScenarioResult& result) {
    std::ostringstream out;
    write_scenario_csv(result, out);
    return out.str();
  };

  const ScenarioResult result = run_scenario(spec);
  EXPECT_TRUE(result.controlled);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const ScenarioCell& cell : result.cells) {
    ASSERT_TRUE(cell.control.has_value());
    EXPECT_GT(cell.control->updates, 0u);
  }
  const std::string golden = csv_of(result);
  EXPECT_NE(golden.find(",control_updates,control_shed,control_h_scaled,"
                        "control_hot_grows,control_hot_shrinks,"
                        "control_epoch_scaled"),
            std::string::npos);

  // threads = 1 and threads = N: byte-identical CSV, control included.
  ScenarioSpec threaded = spec;
  threaded.threads = 4;
  EXPECT_EQ(csv_of(run_scenario(threaded)), golden);

  // A control-less spec keeps the narrow schema byte-for-byte.
  ScenarioSpec plain = spec;
  plain.control = ScenarioControl{};
  const ScenarioResult off = run_scenario(plain);
  EXPECT_FALSE(off.controlled);
  EXPECT_EQ(csv_of(off).find("control_updates"), std::string::npos);
}

}  // namespace
}  // namespace pr
