// Tests for the trace transformation utilities.
#include "trace/transform.h"

#include <gtest/gtest.h>

#include "trace/trace_stats.h"
#include "workload/synthetic.h"

namespace pr {
namespace {

Trace ramp_trace() {
  // 10 requests at t = 0,1,...,9 over files 0..4.
  Trace t;
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.arrival = Seconds{static_cast<double>(i)};
    r.file = static_cast<FileId>(i % 5);
    r.size = 100 * (i + 1);
    t.requests.push_back(r);
  }
  return t;
}

TEST(Transform, TimeWindowSelectsAndRebases) {
  const Trace t = ramp_trace();
  const Trace w = time_window(t, Seconds{3.0}, Seconds{7.0});
  ASSERT_EQ(w.size(), 4u);  // arrivals 3,4,5,6
  EXPECT_DOUBLE_EQ(w.requests[0].arrival.value(), 0.0);
  EXPECT_DOUBLE_EQ(w.requests[3].arrival.value(), 3.0);
  EXPECT_EQ(w.requests[0].size, 400u);
  EXPECT_THROW((void)time_window(t, Seconds{5.0}, Seconds{1.0}),
               std::invalid_argument);
}

TEST(Transform, TimeWindowEmptyWhenOutside) {
  const Trace w = time_window(ramp_trace(), Seconds{100.0}, Seconds{200.0});
  EXPECT_TRUE(w.empty());
}

TEST(Transform, HeadTruncates) {
  EXPECT_EQ(head(ramp_trace(), 3).size(), 3u);
  EXPECT_EQ(head(ramp_trace(), 99).size(), 10u);
  EXPECT_EQ(head(ramp_trace(), 0).size(), 0u);
}

TEST(Transform, ScaleRateCompressesTimeline) {
  const Trace t = ramp_trace();
  const Trace fast = scale_rate(t, 4.0);
  ASSERT_EQ(fast.size(), t.size());
  EXPECT_DOUBLE_EQ(fast.requests[8].arrival.value(), 2.0);
  EXPECT_DOUBLE_EQ(fast.duration().value(), t.duration().value() / 4.0);
  const Trace slow = scale_rate(t, 0.5);
  EXPECT_DOUBLE_EQ(slow.duration().value(), t.duration().value() * 2.0);
  EXPECT_THROW((void)scale_rate(t, 0.0), std::invalid_argument);
}

TEST(Transform, ScaleRateMatchesSyntheticHeavy) {
  // Scaling a measured trace 4x is the paper's "heavy" condition.
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 200;
  cfg.request_count = 20'000;
  cfg.seed = 2;
  const auto w = generate_workload(cfg);
  const auto heavy = scale_rate(w.trace, 4.0);
  const double light_ia =
      compute_trace_stats(w.trace).mean_interarrival.value();
  const double heavy_ia =
      compute_trace_stats(heavy).mean_interarrival.value();
  EXPECT_NEAR(light_ia / heavy_ia, 4.0, 1e-9);
}

TEST(Transform, SampleEveryThins) {
  const Trace t = ramp_trace();
  const Trace thinned = sample_every(t, 3);
  ASSERT_EQ(thinned.size(), 4u);  // indices 0,3,6,9
  EXPECT_DOUBLE_EQ(thinned.requests[1].arrival.value(), 3.0);
  EXPECT_EQ(sample_every(t, 1).size(), t.size());
  EXPECT_THROW((void)sample_every(t, 0), std::invalid_argument);
}

TEST(Transform, DensifyRenumbersInFirstAppearanceOrder) {
  Trace t;
  for (FileId f : {7u, 3u, 7u, 11u, 3u}) {
    Request r;
    r.arrival = Seconds{static_cast<double>(t.size())};
    r.file = f;
    r.size = 1;
    t.requests.push_back(r);
  }
  std::vector<FileId> old_ids;
  const Trace dense = densify_files(t, &old_ids);
  EXPECT_EQ(dense.requests[0].file, 0u);
  EXPECT_EQ(dense.requests[1].file, 1u);
  EXPECT_EQ(dense.requests[2].file, 0u);
  EXPECT_EQ(dense.requests[3].file, 2u);
  EXPECT_EQ(dense.file_universe(), 3u);
  EXPECT_EQ(old_ids, (std::vector<FileId>{7u, 3u, 11u}));
}

TEST(Transform, RepeatTilesTheTimeline) {
  const Trace t = ramp_trace();  // spans [0, 9]
  const Trace three = repeat(t, 3, Seconds{20.0});
  ASSERT_EQ(three.size(), 30u);
  EXPECT_TRUE(three.is_sorted());
  EXPECT_DOUBLE_EQ(three.requests[10].arrival.value(), 20.0);
  EXPECT_DOUBLE_EQ(three.requests[29].arrival.value(), 49.0);
  EXPECT_THROW((void)repeat(t, 0, Seconds{20.0}), std::invalid_argument);
  EXPECT_THROW((void)repeat(t, 2, Seconds{5.0}), std::invalid_argument);
}

TEST(Transform, PipelineComposition) {
  // Realistic use: cut a window, thin it, densify, and simulate-ready.
  SyntheticWorkloadConfig cfg;
  cfg.file_count = 300;
  cfg.request_count = 30'000;
  cfg.seed = 4;
  const auto w = generate_workload(cfg);
  const Seconds mid{w.trace.duration().value() / 2.0};
  Trace cut = time_window(w.trace, Seconds{0.0}, mid);
  cut = sample_every(cut, 2);
  std::vector<FileId> old_ids;
  const Trace final_trace = densify_files(cut, &old_ids);
  EXPECT_TRUE(final_trace.is_sorted());
  EXPECT_EQ(final_trace.file_universe(), old_ids.size());
  EXPECT_GT(final_trace.size(), 5'000u);
}

}  // namespace
}  // namespace pr
